# Empty compiler generated dependencies file for tune_detector.
# This may be replaced when dependencies are built.
