file(REMOVE_RECURSE
  "CMakeFiles/tune_detector.dir/tune_detector.cpp.o"
  "CMakeFiles/tune_detector.dir/tune_detector.cpp.o.d"
  "tune_detector"
  "tune_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
