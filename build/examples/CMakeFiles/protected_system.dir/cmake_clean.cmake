file(REMOVE_RECURSE
  "CMakeFiles/protected_system.dir/protected_system.cpp.o"
  "CMakeFiles/protected_system.dir/protected_system.cpp.o.d"
  "protected_system"
  "protected_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protected_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
