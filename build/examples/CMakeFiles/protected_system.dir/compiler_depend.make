# Empty compiler generated dependencies file for protected_system.
# This may be replaced when dependencies are built.
