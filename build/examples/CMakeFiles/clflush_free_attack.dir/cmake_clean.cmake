file(REMOVE_RECURSE
  "CMakeFiles/clflush_free_attack.dir/clflush_free_attack.cpp.o"
  "CMakeFiles/clflush_free_attack.dir/clflush_free_attack.cpp.o.d"
  "clflush_free_attack"
  "clflush_free_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clflush_free_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
