# Empty compiler generated dependencies file for clflush_free_attack.
# This may be replaced when dependencies are built.
