# Empty compiler generated dependencies file for evict_reload.
# This may be replaced when dependencies are built.
