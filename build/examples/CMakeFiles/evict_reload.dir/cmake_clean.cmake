file(REMOVE_RECURSE
  "CMakeFiles/evict_reload.dir/evict_reload.cpp.o"
  "CMakeFiles/evict_reload.dir/evict_reload.cpp.o.d"
  "evict_reload"
  "evict_reload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evict_reload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
