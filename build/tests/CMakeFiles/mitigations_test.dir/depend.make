# Empty dependencies file for mitigations_test.
# This may be replaced when dependencies are built.
