file(REMOVE_RECURSE
  "CMakeFiles/mitigations_test.dir/mitigations_test.cc.o"
  "CMakeFiles/mitigations_test.dir/mitigations_test.cc.o.d"
  "mitigations_test"
  "mitigations_test.pdb"
  "mitigations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
