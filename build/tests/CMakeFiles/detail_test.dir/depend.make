# Empty dependencies file for detail_test.
# This may be replaced when dependencies are built.
