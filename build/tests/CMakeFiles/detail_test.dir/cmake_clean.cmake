file(REMOVE_RECURSE
  "CMakeFiles/detail_test.dir/detail_test.cc.o"
  "CMakeFiles/detail_test.dir/detail_test.cc.o.d"
  "detail_test"
  "detail_test.pdb"
  "detail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
