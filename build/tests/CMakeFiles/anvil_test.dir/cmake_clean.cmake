file(REMOVE_RECURSE
  "CMakeFiles/anvil_test.dir/anvil_test.cc.o"
  "CMakeFiles/anvil_test.dir/anvil_test.cc.o.d"
  "anvil_test"
  "anvil_test.pdb"
  "anvil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
