# Empty compiler generated dependencies file for anvil_test.
# This may be replaced when dependencies are built.
