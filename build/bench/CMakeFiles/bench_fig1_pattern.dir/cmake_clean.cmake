file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pattern.dir/bench_fig1_pattern.cc.o"
  "CMakeFiles/bench_fig1_pattern.dir/bench_fig1_pattern.cc.o.d"
  "bench_fig1_pattern"
  "bench_fig1_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
