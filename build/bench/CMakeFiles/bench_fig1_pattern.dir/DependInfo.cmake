
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_pattern.cc" "bench/CMakeFiles/bench_fig1_pattern.dir/bench_fig1_pattern.cc.o" "gcc" "bench/CMakeFiles/bench_fig1_pattern.dir/bench_fig1_pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anvil/CMakeFiles/anvil_anvil.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/anvil_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/anvil_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigations/CMakeFiles/anvil_mitigations.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/anvil_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/anvil_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/anvil_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/anvil_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/anvil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/anvil_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
