# Empty dependencies file for bench_fig1_pattern.
# This may be replaced when dependencies are built.
