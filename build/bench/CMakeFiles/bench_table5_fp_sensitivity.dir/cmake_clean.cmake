file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fp_sensitivity.dir/bench_table5_fp_sensitivity.cc.o"
  "CMakeFiles/bench_table5_fp_sensitivity.dir/bench_table5_fp_sensitivity.cc.o.d"
  "bench_table5_fp_sensitivity"
  "bench_table5_fp_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fp_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
