# Empty dependencies file for bench_table5_fp_sensitivity.
# This may be replaced when dependencies are built.
