# Empty dependencies file for bench_table4_false_positives.
# This may be replaced when dependencies are built.
