file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_false_positives.dir/bench_table4_false_positives.cc.o"
  "CMakeFiles/bench_table4_false_positives.dir/bench_table4_false_positives.cc.o.d"
  "bench_table4_false_positives"
  "bench_table4_false_positives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_false_positives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
