file(REMOVE_RECURSE
  "CMakeFiles/bench_mitigation_comparison.dir/bench_mitigation_comparison.cc.o"
  "CMakeFiles/bench_mitigation_comparison.dir/bench_mitigation_comparison.cc.o.d"
  "bench_mitigation_comparison"
  "bench_mitigation_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mitigation_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
