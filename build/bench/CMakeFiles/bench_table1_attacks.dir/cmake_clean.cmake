file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_attacks.dir/bench_table1_attacks.cc.o"
  "CMakeFiles/bench_table1_attacks.dir/bench_table1_attacks.cc.o.d"
  "bench_table1_attacks"
  "bench_table1_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
