file(REMOVE_RECURSE
  "libanvil_cache.a"
)
