# Empty dependencies file for anvil_cache.
# This may be replaced when dependencies are built.
