file(REMOVE_RECURSE
  "CMakeFiles/anvil_cache.dir/cache.cc.o"
  "CMakeFiles/anvil_cache.dir/cache.cc.o.d"
  "CMakeFiles/anvil_cache.dir/hierarchy.cc.o"
  "CMakeFiles/anvil_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/anvil_cache.dir/replacement.cc.o"
  "CMakeFiles/anvil_cache.dir/replacement.cc.o.d"
  "libanvil_cache.a"
  "libanvil_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
