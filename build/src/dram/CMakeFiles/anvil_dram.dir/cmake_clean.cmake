file(REMOVE_RECURSE
  "CMakeFiles/anvil_dram.dir/address_map.cc.o"
  "CMakeFiles/anvil_dram.dir/address_map.cc.o.d"
  "CMakeFiles/anvil_dram.dir/disturbance.cc.o"
  "CMakeFiles/anvil_dram.dir/disturbance.cc.o.d"
  "CMakeFiles/anvil_dram.dir/dram_system.cc.o"
  "CMakeFiles/anvil_dram.dir/dram_system.cc.o.d"
  "libanvil_dram.a"
  "libanvil_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
