# Empty compiler generated dependencies file for anvil_dram.
# This may be replaced when dependencies are built.
