file(REMOVE_RECURSE
  "libanvil_dram.a"
)
