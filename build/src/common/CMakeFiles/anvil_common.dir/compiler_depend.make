# Empty compiler generated dependencies file for anvil_common.
# This may be replaced when dependencies are built.
