file(REMOVE_RECURSE
  "libanvil_common.a"
)
