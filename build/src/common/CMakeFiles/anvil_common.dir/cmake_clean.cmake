file(REMOVE_RECURSE
  "CMakeFiles/anvil_common.dir/log.cc.o"
  "CMakeFiles/anvil_common.dir/log.cc.o.d"
  "CMakeFiles/anvil_common.dir/rng.cc.o"
  "CMakeFiles/anvil_common.dir/rng.cc.o.d"
  "CMakeFiles/anvil_common.dir/stats.cc.o"
  "CMakeFiles/anvil_common.dir/stats.cc.o.d"
  "CMakeFiles/anvil_common.dir/table.cc.o"
  "CMakeFiles/anvil_common.dir/table.cc.o.d"
  "libanvil_common.a"
  "libanvil_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
