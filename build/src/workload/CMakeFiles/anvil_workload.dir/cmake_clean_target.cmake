file(REMOVE_RECURSE
  "libanvil_workload.a"
)
