file(REMOVE_RECURSE
  "CMakeFiles/anvil_workload.dir/profile.cc.o"
  "CMakeFiles/anvil_workload.dir/profile.cc.o.d"
  "CMakeFiles/anvil_workload.dir/workload.cc.o"
  "CMakeFiles/anvil_workload.dir/workload.cc.o.d"
  "libanvil_workload.a"
  "libanvil_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
