# Empty compiler generated dependencies file for anvil_workload.
# This may be replaced when dependencies are built.
