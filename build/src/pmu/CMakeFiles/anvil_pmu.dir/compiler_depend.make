# Empty compiler generated dependencies file for anvil_pmu.
# This may be replaced when dependencies are built.
