file(REMOVE_RECURSE
  "CMakeFiles/anvil_pmu.dir/pmu.cc.o"
  "CMakeFiles/anvil_pmu.dir/pmu.cc.o.d"
  "libanvil_pmu.a"
  "libanvil_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
