file(REMOVE_RECURSE
  "libanvil_pmu.a"
)
