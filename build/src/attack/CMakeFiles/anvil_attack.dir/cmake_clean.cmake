file(REMOVE_RECURSE
  "CMakeFiles/anvil_attack.dir/hammer.cc.o"
  "CMakeFiles/anvil_attack.dir/hammer.cc.o.d"
  "CMakeFiles/anvil_attack.dir/memory_layout.cc.o"
  "CMakeFiles/anvil_attack.dir/memory_layout.cc.o.d"
  "libanvil_attack.a"
  "libanvil_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
