
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/hammer.cc" "src/attack/CMakeFiles/anvil_attack.dir/hammer.cc.o" "gcc" "src/attack/CMakeFiles/anvil_attack.dir/hammer.cc.o.d"
  "/root/repo/src/attack/memory_layout.cc" "src/attack/CMakeFiles/anvil_attack.dir/memory_layout.cc.o" "gcc" "src/attack/CMakeFiles/anvil_attack.dir/memory_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/anvil_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/anvil_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/anvil_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/anvil_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/anvil_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
