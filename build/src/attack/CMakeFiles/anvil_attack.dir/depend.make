# Empty dependencies file for anvil_attack.
# This may be replaced when dependencies are built.
