file(REMOVE_RECURSE
  "libanvil_attack.a"
)
