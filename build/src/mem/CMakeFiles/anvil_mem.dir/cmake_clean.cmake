file(REMOVE_RECURSE
  "CMakeFiles/anvil_mem.dir/memory_system.cc.o"
  "CMakeFiles/anvil_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/anvil_mem.dir/virtual_memory.cc.o"
  "CMakeFiles/anvil_mem.dir/virtual_memory.cc.o.d"
  "libanvil_mem.a"
  "libanvil_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
