file(REMOVE_RECURSE
  "libanvil_mem.a"
)
