# Empty dependencies file for anvil_mem.
# This may be replaced when dependencies are built.
