file(REMOVE_RECURSE
  "CMakeFiles/anvil_sim.dir/event_queue.cc.o"
  "CMakeFiles/anvil_sim.dir/event_queue.cc.o.d"
  "libanvil_sim.a"
  "libanvil_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
