# Empty compiler generated dependencies file for anvil_sim.
# This may be replaced when dependencies are built.
