file(REMOVE_RECURSE
  "libanvil_sim.a"
)
