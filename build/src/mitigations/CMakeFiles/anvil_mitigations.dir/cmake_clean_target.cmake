file(REMOVE_RECURSE
  "libanvil_mitigations.a"
)
