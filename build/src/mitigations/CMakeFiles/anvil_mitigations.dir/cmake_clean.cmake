file(REMOVE_RECURSE
  "CMakeFiles/anvil_mitigations.dir/hardware.cc.o"
  "CMakeFiles/anvil_mitigations.dir/hardware.cc.o.d"
  "libanvil_mitigations.a"
  "libanvil_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
