# Empty dependencies file for anvil_mitigations.
# This may be replaced when dependencies are built.
