file(REMOVE_RECURSE
  "CMakeFiles/anvil_anvil.dir/anvil.cc.o"
  "CMakeFiles/anvil_anvil.dir/anvil.cc.o.d"
  "libanvil_anvil.a"
  "libanvil_anvil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anvil_anvil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
