# Empty compiler generated dependencies file for anvil_anvil.
# This may be replaced when dependencies are built.
