file(REMOVE_RECURSE
  "libanvil_anvil.a"
)
