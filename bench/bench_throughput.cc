/**
 * @file
 * End-to-end throughput benchmark (google-benchmark): simulated
 * accesses per host second through the full MemorySystem::access path —
 * translate, cache hierarchy, PMU observation, DRAM — for the workload
 * shapes the paper-reproduction sweeps are made of, each with and
 * without the ANVIL detector attached.
 *
 * This is the tracked perf gate for the simulator substrate: the
 * committed BENCH_throughput.json baseline pins the current numbers and
 * CI's perf-smoke job fails on >30% regression. Besides the normal
 * google-benchmark output formats, `--anvil-json=PATH` writes a stable
 * `anvil-bench-v1` report (see EXPERIMENTS.md for the schema).
 */
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iomanip>
#include <memory>
#include <string>
#include <vector>

#include "anvil/anvil.hh"
#include "scenario/testbed.hh"
#include "workload/workload.hh"

using namespace anvil;
using anvil::scenario::Testbed;

namespace {

/** Loads + stores retired — the access count every scenario reports. */
std::uint64_t
accesses_retired(const pmu::Pmu &pmu)
{
    return pmu.counter(pmu::Event::kLoadsRetired).value() +
           pmu.counter(pmu::Event::kStoresRetired).value();
}

/** Records simulated accesses/sec for the timing loop just finished. */
void
report_access_rate(benchmark::State &state, std::uint64_t accesses)
{
    state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
    state.counters["sim_accesses_per_sec"] = benchmark::Counter(
        static_cast<double>(accesses), benchmark::Counter::kIsRate);
}

std::unique_ptr<detector::Anvil>
maybe_attach_anvil(mem::MemorySystem &machine, pmu::Pmu &pmu, bool enabled)
{
    if (!enabled)
        return nullptr;
    auto anvil = std::make_unique<detector::Anvil>(
        machine, pmu, detector::AnvilConfig::baseline());
    anvil->start();
    return anvil;
}

/** Double-sided CLFLUSH hammer (Figure 1a) at full rate. */
void
BM_HammerDoubleSidedClflush(benchmark::State &state)
{
    Testbed bed;
    auto anvil = maybe_attach_anvil(bed.machine, bed.pmu, state.range(0));
    const auto target = bed.weakest_double_sided();
    attack::ClflushDoubleSided hammer(bed.machine, bed.attacker->pid(),
                                      *target);
    const std::uint64_t before = accesses_retired(bed.pmu);
    for (auto _ : state)
        hammer.step();
    report_access_rate(state, accesses_retired(bed.pmu) - before);
}
BENCHMARK(BM_HammerDoubleSidedClflush)->ArgName("anvil")->Arg(0)->Arg(1);

/** CLFLUSH-free double-sided hammer (Figure 1b): eviction-set driven. */
void
BM_HammerClflushFree(benchmark::State &state)
{
    Testbed bed;
    auto anvil = maybe_attach_anvil(bed.machine, bed.pmu, state.range(0));
    const auto target = bed.weakest_double_sided(true);
    attack::ClflushFreeDoubleSided hammer(bed.machine, bed.attacker->pid(),
                                          *target, bed.layout);
    const std::uint64_t before = accesses_retired(bed.pmu);
    for (auto _ : state)
        hammer.step();
    report_access_rate(state, accesses_retired(bed.pmu) - before);
}
BENCHMARK(BM_HammerClflushFree)->ArgName("anvil")->Arg(0)->Arg(1);

/** Streaming benign workload (libquantum profile: sequential-heavy). */
void
BM_WorkloadStreaming(benchmark::State &state)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    auto anvil = maybe_attach_anvil(machine, pmu, state.range(0));
    workload::Workload load(machine, workload::spec_profile("libquantum"));
    const std::uint64_t before = accesses_retired(pmu);
    for (auto _ : state)
        load.step();
    report_access_rate(state, accesses_retired(pmu) - before);
}
BENCHMARK(BM_WorkloadStreaming)->ArgName("anvil")->Arg(0)->Arg(1);

/** Mixed benign multi-program load (the paper's heavy-load trio). */
void
BM_WorkloadMixed(benchmark::State &state)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    auto anvil = maybe_attach_anvil(machine, pmu, state.range(0));
    workload::Workload mcf(machine, workload::spec_profile("mcf"));
    workload::Workload libq(machine, workload::spec_profile("libquantum"));
    workload::Workload omnet(machine, workload::spec_profile("omnetpp"));
    const std::uint64_t before = accesses_retired(pmu);
    for (auto _ : state) {
        mcf.step();
        libq.step();
        omnet.step();
    }
    report_access_rate(state, accesses_retired(pmu) - before);
}
BENCHMARK(BM_WorkloadMixed)->ArgName("anvil")->Arg(0)->Arg(1);

/**
 * Collects per-benchmark results and writes the `anvil-bench-v1` JSON
 * report: one entry per benchmark with the simulated-access rate. The
 * schema is deliberately tiny and stable so the committed baseline stays
 * diffable and the CI comparison script stays trivial.
 */
class AnvilJsonReporter : public benchmark::ConsoleReporter
{
  public:
    explicit AnvilJsonReporter(std::string path) : path_(std::move(path)) {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            Entry entry;
            entry.name = run.benchmark_name();
            entry.iterations = run.iterations;
            auto it = run.counters.find("sim_accesses_per_sec");
            entry.rate = it != run.counters.end() ? it->second.value : 0.0;
            entries_.push_back(std::move(entry));
        }
        benchmark::ConsoleReporter::ReportRuns(runs);
    }

    void
    Finalize() override
    {
        benchmark::ConsoleReporter::Finalize();
        std::ofstream out(path_);
        out << "{\n  \"schema\": \"anvil-bench-v1\",\n"
            << "  \"benchmarks\": [\n";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const Entry &e = entries_[i];
            out << "    {\"name\": \"" << e.name << "\", \"iterations\": "
                << e.iterations << ", \"sim_accesses_per_sec\": "
                << std::setprecision(6) << std::scientific << e.rate << "}"
                << (i + 1 < entries_.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
    }

  private:
    struct Entry {
        std::string name;
        std::int64_t iterations = 0;
        double rate = 0.0;
    };

    std::string path_;
    std::vector<Entry> entries_;
};

}  // namespace

int
main(int argc, char **argv)
{
    // Extract our --anvil-json flag before google-benchmark sees argv.
    std::string json_path;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        constexpr const char kFlag[] = "--anvil-json=";
        if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0)
            json_path = argv[i] + sizeof(kFlag) - 1;
        else
            args.push_back(argv[i]);
    }
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
        return 1;

    if (json_path.empty()) {
        benchmark::RunSpecifiedBenchmarks();
    } else {
        AnvilJsonReporter reporter(json_path);
        benchmark::RunSpecifiedBenchmarks(&reporter);
    }
    return 0;
}
