/**
 * @file
 * Reproduces **Table 5** — "Rate of False Positive Refreshes for
 * ANVIL-Heavy and ANVIL-Light" on the Figure-4 benchmark subset.
 *
 * The experiment is declared in the scenario catalog
 * (src/scenario/catalog.cc, sweep "table5_fp_sensitivity"); the ten
 * (benchmark, config) cells run as one parallel sweep (see
 * runner/options.hh for the shared CLI).
 *
 * Paper values (refreshes/sec, light / heavy): bzip2 1.61 / 1.09,
 * gcc 7.12 / 1.88, gobmk 0.28 / 0.84, libquantum 0.13 / 0.08,
 * perlbench 0.06 / 0.00. Both configurations show more false positives
 * than ANVIL-baseline but remain innocuous.
 */
#include <iostream>

#include "common/table.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

int
main(int argc, char **argv) try
{
    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv,
        "  positional: simulated seconds per cell (default 3.0)");
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("table5_fp_sensitivity").make(cli);
    const double run_sec = cli.positional_double(0, 3.0);

    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    const struct {
        const char *name;
        double paper_light;
        double paper_heavy;
    } rows[] = {
        {"bzip2", 1.61, 1.09},      {"gcc", 7.12, 1.88},
        {"gobmk", 0.28, 0.84},      {"libquantum", 0.13, 0.08},
        {"perlbench", 0.06, 0.00},
    };
    TextTable table5("Table 5: False positive refreshes/sec under "
                     "ANVIL-light and ANVIL-heavy (" +
                     TextTable::fmt(run_sec, 1) + " s per cell)");
    table5.set_header({"Benchmark", "ANVIL-light", "ANVIL-heavy",
                       "Paper (light / heavy)"});
    for (const auto &row : rows) {
        const double light =
            sink.scenario(std::string(row.name) + "/light")
                .value_mean("fp_per_sec");
        const double heavy =
            sink.scenario(std::string(row.name) + "/heavy")
                .value_mean("fp_per_sec");
        table5.add_row({row.name, TextTable::fmt(light, 2),
                        TextTable::fmt(heavy, 2),
                        TextTable::fmt(row.paper_light, 2) + " / " +
                            TextTable::fmt(row.paper_heavy, 2)});
    }
    table5.print(std::cout);
    return runner::finish_sweep(run, cli.sweep);
}
catch (const Error &e) {
    // Config-level faults (spec validation, a --resume journal from a
    // different sweep); per-trial failures become outcomes instead.
    std::cerr << "bench: " << e.what() << "\n";
    return runner::kExitUsage;
}
