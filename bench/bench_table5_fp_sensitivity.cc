/**
 * @file
 * Reproduces **Table 5** — "Rate of False Positive Refreshes for
 * ANVIL-Heavy and ANVIL-Light" on the Figure-4 benchmark subset.
 *
 * The ten (benchmark, config) cells run as one parallel sweep (see
 * runner/options.hh for the shared CLI).
 *
 * Paper values (refreshes/sec, light / heavy): bzip2 1.61 / 1.09,
 * gcc 7.12 / 1.88, gobmk 0.28 / 0.84, libquantum 0.13 / 0.08,
 * perlbench 0.06 / 0.00. Both configurations show more false positives
 * than ANVIL-baseline but remain innocuous.
 */
#include <iostream>

#include "harness.hh"
#include "runner/options.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

/**
 * FP rate via rate-boosted importance sampling (see
 * bench_table4_false_positives.cc): thrash-phase arrivals are boosted to
 * an observable rate and the measurement divided by the boost.
 */
runner::TrialResult
false_positive_trial(const std::string &name,
                     const detector::AnvilConfig &config, Tick duration,
                     const runner::TrialContext &ctx)
{
    mem::SystemConfig machine_config;
    machine_config.vm_seed = ctx.seed_for("vm");
    mem::MemorySystem machine(machine_config);
    pmu::Pmu pmu(machine);
    detector::Anvil anvil(machine, pmu, config);
    anvil.set_ground_truth([] { return false; });
    anvil.start();

    workload::SpecProfile profile = workload::spec_profile(name);
    profile.seed = ctx.seed_for("workload");
    const double boost = boost_thrash_rate(profile);
    workload::Workload load(machine, profile);
    const Tick start = machine.now();
    load.run_for(duration);

    runner::TrialResult r;
    r.set_value("fp_per_sec",
                static_cast<double>(
                    anvil.stats().false_positive_refreshes) /
                    to_sec(machine.now() - start) / boost);
    r.set_counter("false_positive_refreshes",
                  anvil.stats().false_positive_refreshes);
    r.set_anvil(anvil.stats());
    return r;
}

std::string
cell_name(const char *benchmark, const char *config)
{
    return std::string(benchmark) + "/" + config;
}

}  // namespace

int
main(int argc, char **argv)
{
    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv,
        "  positional: simulated seconds per cell (default 3.0)");
    cli.sweep.name = "table5_fp_sensitivity";
    const double run_sec = cli.positional_double(0, 3.0);
    const std::uint64_t trials = cli.trials_or(1);

    struct Row {
        const char *name;
        double paper_light;
        double paper_heavy;
    };
    const Row rows[] = {
        {"bzip2", 1.61, 1.09},      {"gcc", 7.12, 1.88},
        {"gobmk", 0.28, 0.84},      {"libquantum", 0.13, 0.08},
        {"perlbench", 0.06, 0.00},
    };
    const struct {
        const char *label;
        detector::AnvilConfig config;
    } configs[] = {
        {"light", detector::AnvilConfig::light()},
        {"heavy", detector::AnvilConfig::heavy()},
    };

    runner::Sweep sweep(cli.sweep);
    for (const Row &row : rows) {
        for (const auto &c : configs) {
            const std::string name = row.name;
            const detector::AnvilConfig config = c.config;
            sweep.add_scenario(
                cell_name(row.name, c.label), trials,
                [name, config, run_sec](const runner::TrialContext &ctx) {
                    return false_positive_trial(name, config,
                                                seconds(run_sec), ctx);
                });
        }
    }
    runner::ResultSink sink = sweep.run();

    TextTable table5("Table 5: False positive refreshes/sec under "
                     "ANVIL-light and ANVIL-heavy (" +
                     TextTable::fmt(run_sec, 1) + " s per cell)");
    table5.set_header({"Benchmark", "ANVIL-light", "ANVIL-heavy",
                       "Paper (light / heavy)"});
    for (const Row &row : rows) {
        const double light =
            sink.scenario(cell_name(row.name, "light"))
                .value_mean("fp_per_sec");
        const double heavy =
            sink.scenario(cell_name(row.name, "heavy"))
                .value_mean("fp_per_sec");
        table5.add_row({row.name, TextTable::fmt(light, 2),
                        TextTable::fmt(heavy, 2),
                        TextTable::fmt(row.paper_light, 2) + " / " +
                            TextTable::fmt(row.paper_heavy, 2)});
    }
    table5.print(std::cout);
    return runner::write_json_output(sink, cli.sweep) ? 0 : 1;
}
