/**
 * @file
 * Reproduces **Table 5** — "Rate of False Positive Refreshes for
 * ANVIL-Heavy and ANVIL-Light" on the Figure-4 benchmark subset.
 *
 * Paper values (refreshes/sec, light / heavy): bzip2 1.61 / 1.09,
 * gcc 7.12 / 1.88, gobmk 0.28 / 0.84, libquantum 0.13 / 0.08,
 * perlbench 0.06 / 0.00. Both configurations show more false positives
 * than ANVIL-baseline but remain innocuous.
 */
#include <iostream>

#include "harness.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

/**
 * FP rate via rate-boosted importance sampling (see
 * bench_table4_false_positives.cc): thrash-phase arrivals are boosted to
 * an observable rate and the measurement divided by the boost.
 */
double
false_positive_rate(const std::string &name,
                    const detector::AnvilConfig &config, Tick duration)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    detector::Anvil anvil(machine, pmu, config);
    anvil.set_ground_truth([] { return false; });
    anvil.start();
    workload::SpecProfile profile = workload::spec_profile(name);
    const double boost = boost_thrash_rate(profile);
    workload::Workload load(machine, profile);
    const Tick start = machine.now();
    load.run_for(duration);
    return static_cast<double>(anvil.stats().false_positive_refreshes) /
           to_sec(machine.now() - start) / boost;
}

}  // namespace

int
main(int argc, char **argv)
{
    const double run_sec = argc > 1 ? std::atof(argv[1]) : 3.0;

    struct Row {
        const char *name;
        double paper_light;
        double paper_heavy;
    };
    const Row rows[] = {
        {"bzip2", 1.61, 1.09},      {"gcc", 7.12, 1.88},
        {"gobmk", 0.28, 0.84},      {"libquantum", 0.13, 0.08},
        {"perlbench", 0.06, 0.00},
    };

    TextTable table5("Table 5: False positive refreshes/sec under "
                     "ANVIL-light and ANVIL-heavy (" +
                     TextTable::fmt(run_sec, 1) + " s per cell)");
    table5.set_header({"Benchmark", "ANVIL-light", "ANVIL-heavy",
                       "Paper (light / heavy)"});
    for (const Row &row : rows) {
        const double light = false_positive_rate(
            row.name, detector::AnvilConfig::light(), seconds(run_sec));
        const double heavy = false_positive_rate(
            row.name, detector::AnvilConfig::heavy(), seconds(run_sec));
        table5.add_row({row.name, TextTable::fmt(light, 2),
                        TextTable::fmt(heavy, 2),
                        TextTable::fmt(row.paper_light, 2) + " / " +
                            TextTable::fmt(row.paper_heavy, 2)});
    }
    table5.print(std::cout);
    return 0;
}
