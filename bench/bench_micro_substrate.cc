/**
 * @file
 * Substrate microbenchmarks (google-benchmark): host-side throughput of
 * the simulator's hot paths. These are engineering benchmarks for the
 * simulator itself, not paper results — they bound how much simulated
 * time the paper-reproduction harnesses can afford.
 */
#include <benchmark/benchmark.h>

#include "cache/hierarchy.hh"
#include "dram/dram_system.hh"
#include "scenario/testbed.hh"
#include "sim/event_queue.hh"
#include "workload/workload.hh"

using namespace anvil;
using anvil::scenario::Testbed;

namespace {

void
BM_EventQueueScheduleFire(benchmark::State &state)
{
    sim::EventQueue q;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        q.schedule_in(10, [&] { ++fired; });
        q.elapse(10);
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleFire);

void
BM_CacheHierarchyL1Hit(benchmark::State &state)
{
    cache::CacheHierarchy h{cache::HierarchyConfig{}};
    h.access(0x1000, AccessType::kLoad);
    for (auto _ : state)
        benchmark::DoNotOptimize(h.access(0x1000, AccessType::kLoad));
}
BENCHMARK(BM_CacheHierarchyL1Hit);

void
BM_CacheHierarchyLlcMissStream(benchmark::State &state)
{
    cache::CacheHierarchy h{cache::HierarchyConfig{}};
    Addr pa = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.access(pa, AccessType::kLoad));
        pa += cache::kLineBytes;
        pa &= (1ULL << 30) - 1;
    }
}
BENCHMARK(BM_CacheHierarchyLlcMissStream);

void
BM_DramAccessRowConflict(benchmark::State &state)
{
    dram::DramSystem dram{dram::DramConfig{}};
    Tick t = 0;
    bool flip = false;
    for (auto _ : state) {
        // Alternate two rows of one bank: worst-case activation path.
        const Addr pa = flip ? (1ULL << 20) : 0;
        flip = !flip;
        t += dram.access(pa, t).latency;
    }
    benchmark::DoNotOptimize(t);
}
BENCHMARK(BM_DramAccessRowConflict);

void
BM_MemorySystemFullAccessPath(benchmark::State &state)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    mem::AddressSpace &proc = machine.create_process();
    const Addr base = proc.mmap(16ULL << 20);
    Addr va = base;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            machine.access(proc.pid(), va, AccessType::kLoad));
        va += cache::kLineBytes;
        if (va >= base + (16ULL << 20))
            va = base;
    }
}
BENCHMARK(BM_MemorySystemFullAccessPath);

void
BM_WorkloadStep(benchmark::State &state)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    workload::Workload load(machine, workload::spec_profile("gcc"));
    for (auto _ : state)
        load.step();
}
BENCHMARK(BM_WorkloadStep);

void
BM_HammerIterationClflush(benchmark::State &state)
{
    Testbed bed;
    const auto target = bed.weakest_double_sided();
    attack::ClflushDoubleSided hammer(bed.machine, bed.attacker->pid(),
                                      *target);
    for (auto _ : state)
        hammer.step();
}
BENCHMARK(BM_HammerIterationClflush);

void
BM_HammerIterationClflushFree(benchmark::State &state)
{
    Testbed bed;
    const auto target = bed.weakest_double_sided(true);
    attack::ClflushFreeDoubleSided hammer(bed.machine, bed.attacker->pid(),
                                          *target, bed.layout);
    for (auto _ : state)
        hammer.step();
}
BENCHMARK(BM_HammerIterationClflushFree);

void
BM_EvictionSetConstruction(benchmark::State &state)
{
    Testbed bed;
    const auto targets = bed.layout.find_double_sided_targets(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bed.layout.build_eviction_set(targets[0].low_aggressor_va, 12));
    }
}
BENCHMARK(BM_EvictionSetConstruction);

void
BM_PagemapTranslate(benchmark::State &state)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    mem::AddressSpace &proc = machine.create_process();
    const Addr base = proc.mmap(16ULL << 20);
    Addr va = base;
    for (auto _ : state) {
        benchmark::DoNotOptimize(proc.translate(va));
        va += 4096;
        if (va >= base + (16ULL << 20))
            va = base;
    }
}
BENCHMARK(BM_PagemapTranslate);

}  // namespace

BENCHMARK_MAIN();
