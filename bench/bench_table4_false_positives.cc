/**
 * @file
 * Reproduces **Table 4** — "Rate of False Positive Refreshes": the rate
 * of superfluous selective refreshes per second for the twelve SPEC2006
 * integer benchmarks running alone under ANVIL-baseline.
 *
 * Paper values (refreshes/sec): astar 0.10, bzip2 1.05, gcc 0.71,
 * gobmk 0.19, h264ref 0.00, hmmer 0.00, libquantum 0.06, mcf 0.01,
 * omnetpp 0.02, perlbench 0.00, sjeng 0.00, xalancbmk 0.05.
 */
#include <iostream>

#include "harness.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

/**
 * Measures the false-positive refresh rate with rate-boosted importance
 * sampling: the benchmarks' conflict-thrash phases are Poisson arrivals
 * at tenths-of-a-hertz, far too rare to observe in a few simulated
 * seconds, and each phase contributes independently to the FP count — so
 * the phase rate is boosted to ~@p boosted_rate arrivals/s and the
 * measured rate divided by the boost factor.
 */
double
false_positive_rate(const std::string &name, Tick duration)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.set_ground_truth([] { return false; });
    anvil.start();

    workload::SpecProfile profile = workload::spec_profile(name);
    const double boost = boost_thrash_rate(profile);
    workload::Workload load(machine, profile);
    const Tick start = machine.now();
    load.run_for(duration);
    const double seconds = to_sec(machine.now() - start);
    return static_cast<double>(anvil.stats().false_positive_refreshes) /
           seconds / boost;
}

}  // namespace

int
main(int argc, char **argv)
{
    // Longer runs give smoother rates; default is sized for a laptop.
    const double run_sec = argc > 1 ? std::atof(argv[1]) : 3.0;

    struct Row {
        const char *name;
        double paper;
    };
    const Row rows[] = {
        {"astar", 0.10},     {"bzip2", 1.05},      {"gcc", 0.71},
        {"gobmk", 0.19},     {"h264ref", 0.00},    {"hmmer", 0.00},
        {"libquantum", 0.06}, {"mcf", 0.01},       {"omnetpp", 0.02},
        {"perlbench", 0.00}, {"sjeng", 0.00},      {"xalancbmk", 0.05},
    };

    TextTable table4("Table 4: Rate of False Positive Refreshes "
                     "(ANVIL-baseline, " +
                     TextTable::fmt(run_sec, 1) +
                     " s per benchmark, rate-boosted sampling)");
    table4.set_header({"Benchmark", "Refreshes/sec", "Paper"});
    for (const Row &row : rows) {
        const double rate = false_positive_rate(row.name,
                                                seconds(run_sec));
        table4.add_row({row.name, TextTable::fmt(rate, 2),
                        TextTable::fmt(row.paper, 2)});
    }
    table4.print(std::cout);
    return 0;
}
