/**
 * @file
 * Reproduces **Table 4** — "Rate of False Positive Refreshes": the rate
 * of superfluous selective refreshes per second for the twelve SPEC2006
 * integer benchmarks running alone under ANVIL-baseline.
 *
 * The experiment is declared in the scenario catalog
 * (src/scenario/catalog.cc, sweep "table4_false_positives"); the twelve
 * benchmarks run as one parallel sweep (runner/options.hh documents the
 * shared CLI) with rate-boosted importance sampling of the rare
 * conflict-thrash phases. The historical positional argument — simulated
 * seconds per benchmark — is kept.
 *
 * Paper values (refreshes/sec): astar 0.10, bzip2 1.05, gcc 0.71,
 * gobmk 0.19, h264ref 0.00, hmmer 0.00, libquantum 0.06, mcf 0.01,
 * omnetpp 0.02, perlbench 0.00, sjeng 0.00, xalancbmk 0.05.
 */
#include <iostream>

#include "common/table.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

int
main(int argc, char **argv) try
{
    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv, "  positional: simulated seconds per benchmark "
                    "(default 3.0)");
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("table4_false_positives").make(cli);
    // Longer runs give smoother rates; default is sized for a laptop.
    const double run_sec = cli.positional_double(0, 3.0);

    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    const struct {
        const char *name;
        double paper;
    } rows[] = {
        {"astar", 0.10},     {"bzip2", 1.05},      {"gcc", 0.71},
        {"gobmk", 0.19},     {"h264ref", 0.00},    {"hmmer", 0.00},
        {"libquantum", 0.06}, {"mcf", 0.01},       {"omnetpp", 0.02},
        {"perlbench", 0.00}, {"sjeng", 0.00},      {"xalancbmk", 0.05},
    };
    TextTable table4("Table 4: Rate of False Positive Refreshes "
                     "(ANVIL-baseline, " +
                     TextTable::fmt(run_sec, 1) +
                     " s per benchmark, rate-boosted sampling)");
    table4.set_header({"Benchmark", "Refreshes/sec", "Paper"});
    for (const auto &row : rows) {
        const double rate = sink.scenario(row.name).value_mean("fp_per_sec");
        table4.add_row({row.name, TextTable::fmt(rate, 2),
                        TextTable::fmt(row.paper, 2)});
    }
    table4.print(std::cout);
    return runner::finish_sweep(run, cli.sweep);
}
catch (const Error &e) {
    // Config-level faults (spec validation, a --resume journal from a
    // different sweep); per-trial failures become outcomes instead.
    std::cerr << "bench: " << e.what() << "\n";
    return runner::kExitUsage;
}
