/**
 * @file
 * Reproduces **Table 4** — "Rate of False Positive Refreshes": the rate
 * of superfluous selective refreshes per second for the twelve SPEC2006
 * integer benchmarks running alone under ANVIL-baseline.
 *
 * The twelve benchmarks run as one parallel sweep (runner/options.hh
 * documents the shared CLI); the historical positional argument —
 * simulated seconds per benchmark — is kept.
 *
 * Paper values (refreshes/sec): astar 0.10, bzip2 1.05, gcc 0.71,
 * gobmk 0.19, h264ref 0.00, hmmer 0.00, libquantum 0.06, mcf 0.01,
 * omnetpp 0.02, perlbench 0.00, sjeng 0.00, xalancbmk 0.05.
 */
#include <iostream>

#include "harness.hh"
#include "runner/options.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

/**
 * Measures the false-positive refresh rate with rate-boosted importance
 * sampling: the benchmarks' conflict-thrash phases are Poisson arrivals
 * at tenths-of-a-hertz, far too rare to observe in a few simulated
 * seconds, and each phase contributes independently to the FP count — so
 * the phase rate is boosted and the measured rate divided by the boost.
 */
runner::TrialResult
false_positive_trial(const std::string &name, Tick duration,
                     const runner::TrialContext &ctx)
{
    mem::SystemConfig config;
    config.vm_seed = ctx.seed_for("vm");
    mem::MemorySystem machine(config);
    pmu::Pmu pmu(machine);
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.set_ground_truth([] { return false; });
    anvil.start();

    workload::SpecProfile profile = workload::spec_profile(name);
    profile.seed = ctx.seed_for("workload");
    const double boost = boost_thrash_rate(profile);
    workload::Workload load(machine, profile);
    const Tick start = machine.now();
    load.run_for(duration);
    const double seconds = to_sec(machine.now() - start);

    runner::TrialResult r;
    r.set_value("fp_per_sec",
                static_cast<double>(
                    anvil.stats().false_positive_refreshes) /
                    seconds / boost);
    r.set_value("boost", boost);
    r.set_counter("false_positive_refreshes",
                  anvil.stats().false_positive_refreshes);
    r.set_anvil(anvil.stats());
    r.set_dram(machine.dram().stats());
    return r;
}

}  // namespace

int
main(int argc, char **argv)
{
    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv, "  positional: simulated seconds per benchmark "
                    "(default 3.0)");
    cli.sweep.name = "table4_false_positives";
    // Longer runs give smoother rates; default is sized for a laptop.
    const double run_sec = cli.positional_double(0, 3.0);
    const std::uint64_t trials = cli.trials_or(1);

    struct Row {
        const char *name;
        double paper;
    };
    const Row rows[] = {
        {"astar", 0.10},     {"bzip2", 1.05},      {"gcc", 0.71},
        {"gobmk", 0.19},     {"h264ref", 0.00},    {"hmmer", 0.00},
        {"libquantum", 0.06}, {"mcf", 0.01},       {"omnetpp", 0.02},
        {"perlbench", 0.00}, {"sjeng", 0.00},      {"xalancbmk", 0.05},
    };

    runner::Sweep sweep(cli.sweep);
    for (const Row &row : rows) {
        const std::string name = row.name;
        sweep.add_scenario(
            name, trials,
            [name, run_sec](const runner::TrialContext &ctx) {
                return false_positive_trial(name, seconds(run_sec), ctx);
            });
    }
    runner::ResultSink sink = sweep.run();

    TextTable table4("Table 4: Rate of False Positive Refreshes "
                     "(ANVIL-baseline, " +
                     TextTable::fmt(run_sec, 1) +
                     " s per benchmark, rate-boosted sampling)");
    table4.set_header({"Benchmark", "Refreshes/sec", "Paper"});
    for (const Row &row : rows) {
        const double rate = sink.scenario(row.name).value_mean("fp_per_sec");
        table4.add_row({row.name, TextTable::fmt(rate, 2),
                        TextTable::fmt(row.paper, 2)});
    }
    table4.print(std::cout);
    return runner::write_json_output(sink, cli.sweep) ? 0 : 1;
}
