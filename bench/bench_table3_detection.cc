/**
 * @file
 * Reproduces **Table 2** (detector parameters) and **Table 3** —
 * "Rowhammer Detection Result for Rowhammering Programs": average time to
 * detect, selective refreshes per 64 ms, and total bit flips, for the
 * CLFLUSH and CLFLUSH-free attacks under light and heavy system load.
 *
 * Paper values:
 *   CLFLUSH      heavy load   12.8 ms   12.35 refreshes/64 ms   0 flips
 *   CLFLUSH      light load   12.3 ms   10.30 refreshes/64 ms   0 flips
 *   CLFLUSH-free heavy load   35.3 ms    4.53 refreshes/64 ms   0 flips
 *   CLFLUSH-free light load   22.85 ms   5.10 refreshes/64 ms   0 flips
 */
#include <iostream>

#include "harness.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

struct DetectionResult {
    double avg_detect_ms = 0.0;
    double refreshes_per_64ms = 0.0;
    std::uint64_t flips = 0;
    std::uint64_t detections = 0;
};

DetectionResult
run_scenario(bool clflush_free, bool heavy_load, int trials)
{
    DetectionResult out;
    double detect_sum = 0.0;
    int detect_count = 0;
    std::uint64_t total_refreshes = 0;
    Tick total_attack_time = 0;

    for (int trial = 0; trial < trials; ++trial) {
        Testbed bed;
        // Per-trial layout variation.
        bed.machine.advance(us(137) * (trial + 1));

        // Background load (the paper runs mcf + libquantum + omnetpp).
        std::vector<std::unique_ptr<workload::Workload>> background;
        if (heavy_load) {
            for (const char *name : {"mcf", "libquantum", "omnetpp"}) {
                background.push_back(std::make_unique<workload::Workload>(
                    bed.machine, workload::spec_profile(name)));
            }
        }

        detector::Anvil anvil(bed.machine, bed.pmu,
                              detector::AnvilConfig::baseline());
        anvil.set_ground_truth([] { return true; });
        anvil.start();

        // Let the detector free-run before the attack begins so the
        // attack starts at an arbitrary window phase.
        bed.machine.advance(ms(1) + us(731) * trial);

        std::unique_ptr<attack::Hammer> hammer;
        if (clflush_free) {
            const auto target = bed.weakest_double_sided(true);
            if (!target)
                continue;
            hammer = std::make_unique<attack::ClflushFreeDoubleSided>(
                bed.machine, bed.attacker->pid(), *target, bed.layout);
        } else {
            const auto target = bed.weakest_double_sided();
            if (!target)
                continue;
            hammer = std::make_unique<attack::ClflushDoubleSided>(
                bed.machine, bed.attacker->pid(), *target);
        }

        const Tick attack_start = bed.machine.now();
        workload::Runner runner(bed.machine);
        runner.add([&] { hammer->step(); });
        for (auto &load : background)
            runner.add([&] { load->step(); });
        runner.run_for(ms(128));  // two refresh periods of attacking

        out.flips += bed.machine.dram().flips().size();
        out.detections += anvil.stats().detections;
        total_refreshes += anvil.stats().selective_refreshes;
        total_attack_time += bed.machine.now() - attack_start;
        if (!anvil.detections().empty()) {
            detect_sum +=
                to_ms(anvil.detections().front().time - attack_start);
            ++detect_count;
        }
    }

    out.avg_detect_ms = detect_count > 0 ? detect_sum / detect_count : -1;
    out.refreshes_per_64ms =
        static_cast<double>(total_refreshes) /
        (to_ms(total_attack_time) / 64.0);
    return out;
}

}  // namespace

int
main()
{
    const detector::AnvilConfig config = detector::AnvilConfig::baseline();
    TextTable params("Table 2: Rowhammer Detector Parameters");
    params.set_header({"Parameter", "Value", "Paper"});
    params.add_row({"LLC_MISS_THRESHOLD",
                    TextTable::fmt_count(config.llc_miss_threshold),
                    "20K"});
    params.add_row({"Miss Count Duration (tc)",
                    TextTable::fmt(to_ms(config.tc), 0) + " ms", "6 ms"});
    params.add_row({"Sampling Duration (ts)",
                    TextTable::fmt(to_ms(config.ts), 0) + " ms", "6 ms"});
    params.add_row({"Sampling rate",
                    TextTable::fmt(config.samples_per_sec, 0) + "/s",
                    "5000/s (~30 per 6 ms)"});
    params.print(std::cout);

    TextTable table3("Table 3: Rowhammer Detection Results");
    table3.set_header({"Benchmark", "Avg Time to Detect",
                       "Refreshes per 64 ms", "Total Bit Flips", "Paper"});
    struct Scenario {
        const char *label;
        bool clflush_free;
        bool heavy;
        const char *paper;
    };
    const Scenario scenarios[] = {
        {"CLFLUSH (Heavy Load)", false, true, "12.8 ms / 12.35 / 0"},
        {"CLFLUSH (Light Load)", false, false, "12.3 ms / 10.3 / 0"},
        {"CLFLUSH-free (Heavy Load)", true, true, "35.3 ms / 4.53 / 0"},
        {"CLFLUSH-free (Light Load)", true, false, "22.85 ms / 5.10 / 0"},
    };
    for (const Scenario &s : scenarios) {
        const DetectionResult r = run_scenario(s.clflush_free, s.heavy, 6);
        table3.add_row({s.label, TextTable::fmt(r.avg_detect_ms, 1) + " ms",
                        TextTable::fmt(r.refreshes_per_64ms, 2),
                        TextTable::fmt_count(r.flips), s.paper});
    }
    table3.print(std::cout);
    return 0;
}
