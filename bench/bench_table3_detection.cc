/**
 * @file
 * Reproduces **Table 2** (detector parameters) and **Table 3** —
 * "Rowhammer Detection Result for Rowhammering Programs": average time to
 * detect, selective refreshes per 64 ms, and total bit flips, for the
 * CLFLUSH and CLFLUSH-free attacks under light and heavy system load.
 *
 * The experiment itself is declared in the scenario catalog
 * (src/scenario/catalog.cc, sweep "table3_detection"); this binary only
 * renders the paper's tables. Trials run on the parallel experiment
 * runner (see runner/options.hh for the shared CLI): every
 * (scenario, trial) is an isolated machine with seeds derived from the
 * master seed, so `--jobs 8` produces byte-identical aggregates to
 * `--jobs 1`.
 *
 * Paper values:
 *   CLFLUSH      heavy load   12.8 ms   12.35 refreshes/64 ms   0 flips
 *   CLFLUSH      light load   12.3 ms   10.30 refreshes/64 ms   0 flips
 *   CLFLUSH-free heavy load   35.3 ms    4.53 refreshes/64 ms   0 flips
 *   CLFLUSH-free light load   22.85 ms   5.10 refreshes/64 ms   0 flips
 */
#include <iostream>

#include "common/table.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

int
main(int argc, char **argv) try
{
    runner::CliOptions cli = runner::CliOptions::parse(argc, argv);
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("table3_detection").make(cli);

    const detector::AnvilConfig config = detector::AnvilConfig::baseline();
    TextTable params("Table 2: Rowhammer Detector Parameters");
    params.set_header({"Parameter", "Value", "Paper"});
    params.add_row({"LLC_MISS_THRESHOLD",
                    TextTable::fmt_count(config.llc_miss_threshold),
                    "20K"});
    params.add_row({"Miss Count Duration (tc)",
                    TextTable::fmt(to_ms(config.tc), 0) + " ms", "6 ms"});
    params.add_row({"Sampling Duration (ts)",
                    TextTable::fmt(to_ms(config.ts), 0) + " ms", "6 ms"});
    params.add_row({"Sampling rate",
                    TextTable::fmt(config.samples_per_sec, 0) + "/s",
                    "5000/s (~30 per 6 ms)"});
    params.print(std::cout);

    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    const struct {
        const char *label;
        const char *paper;
    } rows[] = {
        {"CLFLUSH (Heavy Load)", "12.8 ms / 12.35 / 0"},
        {"CLFLUSH (Light Load)", "12.3 ms / 10.3 / 0"},
        {"CLFLUSH-free (Heavy Load)", "35.3 ms / 4.53 / 0"},
        {"CLFLUSH-free (Light Load)", "22.85 ms / 5.10 / 0"},
    };
    TextTable table3("Table 3: Rowhammer Detection Results");
    table3.set_header({"Benchmark", "Avg Time to Detect",
                       "Refreshes per 64 ms", "Total Bit Flips", "Paper"});
    for (const auto &row : rows) {
        const runner::ScenarioAggregate &agg = sink.scenario(row.label);
        const double avg_detect_ms = agg.value_mean("detect_ms", -1.0);
        const double attack_ms_total =
            agg.value_stat("attack_ms") != nullptr
                ? agg.value_stat("attack_ms")->sum()
                : 0.0;
        const std::uint64_t refreshes =
            agg.counter_sum("selective_refreshes");
        const double per_64ms =
            attack_ms_total > 0.0
                ? static_cast<double>(refreshes) / (attack_ms_total / 64.0)
                : 0.0;
        table3.add_row({row.label,
                        TextTable::fmt(avg_detect_ms, 1) + " ms",
                        TextTable::fmt(per_64ms, 2),
                        TextTable::fmt_count(agg.counter_sum("flips")),
                        row.paper});
    }
    table3.print(std::cout);
    return runner::finish_sweep(run, cli.sweep);
}
catch (const Error &e) {
    // Config-level faults (spec validation, a --resume journal from a
    // different sweep); per-trial failures become outcomes instead.
    std::cerr << "bench: " << e.what() << "\n";
    return runner::kExitUsage;
}
