/**
 * @file
 * Reproduces **Table 2** (detector parameters) and **Table 3** —
 * "Rowhammer Detection Result for Rowhammering Programs": average time to
 * detect, selective refreshes per 64 ms, and total bit flips, for the
 * CLFLUSH and CLFLUSH-free attacks under light and heavy system load.
 *
 * Trials run on the parallel experiment runner (see runner/options.hh
 * for the shared CLI): every (scenario, trial) is an isolated machine
 * with seeds derived from the master seed, so `--jobs 8` produces
 * byte-identical aggregates to `--jobs 1`.
 *
 * Paper values:
 *   CLFLUSH      heavy load   12.8 ms   12.35 refreshes/64 ms   0 flips
 *   CLFLUSH      light load   12.3 ms   10.30 refreshes/64 ms   0 flips
 *   CLFLUSH-free heavy load   35.3 ms    4.53 refreshes/64 ms   0 flips
 *   CLFLUSH-free light load   22.85 ms   5.10 refreshes/64 ms   0 flips
 */
#include <iostream>

#include "harness.hh"
#include "runner/options.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

runner::TrialResult
detection_trial(bool clflush_free, bool heavy_load,
                const runner::TrialContext &ctx)
{
    mem::SystemConfig config;
    config.vm_seed = ctx.seed_for("vm");
    Testbed bed(config);
    // Per-trial layout / refresh-phase variation.
    bed.machine.advance(us(137) + ctx.seed_for("phase") % us(6000));

    // Background load (the paper runs mcf + libquantum + omnetpp).
    std::vector<std::unique_ptr<workload::Workload>> background;
    if (heavy_load) {
        for (const char *name : {"mcf", "libquantum", "omnetpp"}) {
            workload::SpecProfile profile = workload::spec_profile(name);
            profile.seed = ctx.seed_for(name);
            background.push_back(std::make_unique<workload::Workload>(
                bed.machine, profile));
        }
    }

    detector::Anvil anvil(bed.machine, bed.pmu,
                          detector::AnvilConfig::baseline());
    anvil.set_ground_truth([] { return true; });
    anvil.start();

    // Let the detector free-run before the attack begins so the attack
    // starts at an arbitrary (seed-chosen) window phase.
    bed.machine.advance(ms(1) + ctx.seed_for("attack-phase") % us(4000));

    std::unique_ptr<attack::Hammer> hammer;
    if (clflush_free) {
        const auto target = bed.weakest_double_sided(true);
        if (!target)
            throw std::runtime_error("no slice-compatible target");
        hammer = std::make_unique<attack::ClflushFreeDoubleSided>(
            bed.machine, bed.attacker->pid(), *target, bed.layout);
    } else {
        const auto target = bed.weakest_double_sided();
        if (!target)
            throw std::runtime_error("no double-sided target");
        hammer = std::make_unique<attack::ClflushDoubleSided>(
            bed.machine, bed.attacker->pid(), *target);
    }

    const Tick attack_start = bed.machine.now();
    workload::Runner loads(bed.machine);
    loads.add([&] { hammer->step(); });
    for (auto &load : background)
        loads.add([&] { load->step(); });
    loads.run_for(ms(128));  // two refresh periods of attacking

    runner::TrialResult r;
    r.set_counter("flips", bed.machine.dram().flips().size());
    r.set_counter("detections", anvil.stats().detections);
    r.set_counter("selective_refreshes",
                  anvil.stats().selective_refreshes);
    r.set_value("attack_ms", to_ms(bed.machine.now() - attack_start));
    if (!anvil.detections().empty()) {
        r.set_value("detect_ms",
                    to_ms(anvil.detections().front().time - attack_start));
    }
    r.set_anvil(anvil.stats());
    r.set_dram(bed.machine.dram().stats());
    return r;
}

}  // namespace

int
main(int argc, char **argv)
{
    runner::CliOptions cli = runner::CliOptions::parse(argc, argv);
    cli.sweep.name = "table3_detection";
    const std::uint64_t trials = cli.trials_or(6);

    const detector::AnvilConfig config = detector::AnvilConfig::baseline();
    TextTable params("Table 2: Rowhammer Detector Parameters");
    params.set_header({"Parameter", "Value", "Paper"});
    params.add_row({"LLC_MISS_THRESHOLD",
                    TextTable::fmt_count(config.llc_miss_threshold),
                    "20K"});
    params.add_row({"Miss Count Duration (tc)",
                    TextTable::fmt(to_ms(config.tc), 0) + " ms", "6 ms"});
    params.add_row({"Sampling Duration (ts)",
                    TextTable::fmt(to_ms(config.ts), 0) + " ms", "6 ms"});
    params.add_row({"Sampling rate",
                    TextTable::fmt(config.samples_per_sec, 0) + "/s",
                    "5000/s (~30 per 6 ms)"});
    params.print(std::cout);

    struct Scenario {
        const char *label;
        bool clflush_free;
        bool heavy;
        const char *paper;
    };
    const Scenario scenarios[] = {
        {"CLFLUSH (Heavy Load)", false, true, "12.8 ms / 12.35 / 0"},
        {"CLFLUSH (Light Load)", false, false, "12.3 ms / 10.3 / 0"},
        {"CLFLUSH-free (Heavy Load)", true, true, "35.3 ms / 4.53 / 0"},
        {"CLFLUSH-free (Light Load)", true, false, "22.85 ms / 5.10 / 0"},
    };

    runner::Sweep sweep(cli.sweep);
    for (const Scenario &s : scenarios) {
        sweep.add_scenario(
            s.label, trials,
            [s](const runner::TrialContext &ctx) {
                return detection_trial(s.clflush_free, s.heavy, ctx);
            });
    }
    runner::ResultSink sink = sweep.run();

    TextTable table3("Table 3: Rowhammer Detection Results");
    table3.set_header({"Benchmark", "Avg Time to Detect",
                       "Refreshes per 64 ms", "Total Bit Flips", "Paper"});
    for (const Scenario &s : scenarios) {
        const runner::ScenarioAggregate &agg = sink.scenario(s.label);
        const double avg_detect_ms = agg.value_mean("detect_ms", -1.0);
        const double attack_ms_total =
            agg.value_stat("attack_ms") != nullptr
                ? agg.value_stat("attack_ms")->sum()
                : 0.0;
        const std::uint64_t refreshes =
            agg.counter_sum("selective_refreshes");
        const double per_64ms =
            attack_ms_total > 0.0
                ? static_cast<double>(refreshes) / (attack_ms_total / 64.0)
                : 0.0;
        sink.set_derived(s.label, "avg_detect_ms", avg_detect_ms);
        sink.set_derived(s.label, "refreshes_per_64ms", per_64ms);
        table3.add_row({s.label,
                        TextTable::fmt(avg_detect_ms, 1) + " ms",
                        TextTable::fmt(per_64ms, 2),
                        TextTable::fmt_count(agg.counter_sum("flips")),
                        s.paper});
    }
    table3.print(std::cout);
    return runner::write_json_output(sink, cli.sweep) ? 0 : 1;
}
