/**
 * @file
 * Reproduces **Figure 3** — "ANVIL's Impact on Non-Malicious Programs":
 * execution time of the SPEC2006 integer benchmarks under (a) ANVIL and
 * (b) a doubled DRAM refresh rate, normalized to an unprotected system at
 * the standard 64 ms refresh period.
 *
 * Paper: ANVIL peak overhead 3.18 %, average 1.17 %; doubling the refresh
 * rate costs slightly less on average but hurts memory-intensive
 * workloads (mcf-class) the most while providing far weaker protection.
 */
#include <iostream>

#include "harness.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

/** Simulated time to execute a fixed number of operations. */
Tick
run_fixed_work(const std::string &name, bool with_anvil,
               Tick refresh_period, std::uint64_t ops)
{
    mem::SystemConfig config;
    config.dram.refresh_period = refresh_period;
    mem::MemorySystem machine(config);
    pmu::Pmu pmu(machine);
    std::unique_ptr<detector::Anvil> anvil;
    if (with_anvil) {
        anvil = std::make_unique<detector::Anvil>(
            machine, pmu, detector::AnvilConfig::baseline());
        anvil->start();
    }
    workload::Workload load(machine, workload::spec_profile(name));
    const Tick start = machine.now();
    load.run_ops(ops);
    return machine.now() - start;
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000000ULL;

    TextTable fig3("Figure 3: Normalized execution time (baseline = "
                   "unprotected, 64 ms refresh; " +
                   TextTable::fmt_count(ops) + " ops/benchmark)");
    fig3.set_header({"Benchmark", "ANVIL", "Double Refresh",
                     "Paper (ANVIL peak 1.032, avg 1.0117)"});

    double anvil_sum = 0.0, anvil_peak = 0.0;
    double refresh_sum = 0.0;
    int count = 0;
    for (const auto &profile : workload::spec2006_int()) {
        const Tick base = run_fixed_work(profile.name, false, ms(64), ops);
        const Tick with_anvil =
            run_fixed_work(profile.name, true, ms(64), ops);
        const Tick with_double =
            run_fixed_work(profile.name, false, ms(32), ops);
        const double anvil_norm = static_cast<double>(with_anvil) /
                                  static_cast<double>(base);
        const double refresh_norm = static_cast<double>(with_double) /
                                    static_cast<double>(base);
        fig3.add_row({profile.name, TextTable::fmt(anvil_norm, 4),
                      TextTable::fmt(refresh_norm, 4), ""});
        anvil_sum += anvil_norm;
        refresh_sum += refresh_norm;
        anvil_peak = std::max(anvil_peak, anvil_norm);
        ++count;
    }
    fig3.add_row({"average", TextTable::fmt(anvil_sum / count, 4),
                  TextTable::fmt(refresh_sum / count, 4),
                  "ANVIL avg 1.0117"});
    fig3.add_row({"peak (ANVIL)", TextTable::fmt(anvil_peak, 4), "",
                  "ANVIL peak 1.0318"});
    fig3.print(std::cout);
    return 0;
}
