/**
 * @file
 * Reproduces **Figure 3** — "ANVIL's Impact on Non-Malicious Programs":
 * execution time of the SPEC2006 integer benchmarks under (a) ANVIL and
 * (b) a doubled DRAM refresh rate, normalized to an unprotected system at
 * the standard 64 ms refresh period.
 *
 * The experiment is declared in the scenario catalog
 * (src/scenario/catalog.cc, sweep "fig3_overhead") and runs as one
 * parallel sweep (see runner/options.hh for the shared CLI).
 *
 * Paper: ANVIL peak overhead 3.18 %, average 1.17 %; doubling the refresh
 * rate costs slightly less on average but hurts memory-intensive
 * workloads (mcf-class) the most while providing far weaker protection.
 */
#include <algorithm>
#include <iostream>

#include "common/table.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"
#include "workload/profile.hh"

using namespace anvil;

int
main(int argc, char **argv) try
{
    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv, "  positional: ops per benchmark (default 4000000)");
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("fig3_overhead").make(cli);
    const std::uint64_t ops = static_cast<std::uint64_t>(
        cli.positional_double(0, 4000000.0));

    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    TextTable fig3("Figure 3: Normalized execution time (baseline = "
                   "unprotected, 64 ms refresh; " +
                   TextTable::fmt_count(ops) + " ops/benchmark)");
    fig3.set_header({"Benchmark", "ANVIL", "Double Refresh",
                     "Paper (ANVIL peak 1.032, avg 1.0117)"});

    double anvil_sum = 0.0, anvil_peak = 0.0;
    double refresh_sum = 0.0;
    int count = 0;
    for (const auto &profile : workload::spec2006_int()) {
        const double base =
            sink.scenario(profile.name + "/base").value_mean("run_ms");
        const double with_anvil =
            sink.scenario(profile.name + "/anvil").value_mean("run_ms");
        const double with_double =
            sink.scenario(profile.name + "/double-refresh")
                .value_mean("run_ms");
        const double anvil_norm = base > 0.0 ? with_anvil / base : 0.0;
        const double refresh_norm = base > 0.0 ? with_double / base : 0.0;
        fig3.add_row({profile.name, TextTable::fmt(anvil_norm, 4),
                      TextTable::fmt(refresh_norm, 4), ""});
        anvil_sum += anvil_norm;
        refresh_sum += refresh_norm;
        anvil_peak = std::max(anvil_peak, anvil_norm);
        ++count;
    }
    fig3.add_row({"average", TextTable::fmt(anvil_sum / count, 4),
                  TextTable::fmt(refresh_sum / count, 4),
                  "ANVIL avg 1.0117"});
    fig3.add_row({"peak (ANVIL)", TextTable::fmt(anvil_peak, 4), "",
                  "ANVIL peak 1.0318"});
    fig3.print(std::cout);
    return runner::finish_sweep(run, cli.sweep);
}
catch (const Error &e) {
    // Config-level faults (spec validation, a --resume journal from a
    // different sweep); per-trial failures become outcomes instead.
    std::cerr << "bench: " << e.what() << "\n";
    return runner::kExitUsage;
}
