/**
 * @file
 * Reproduces the **Figure 1b / Section 2.2 cost model** of the
 * CLFLUSH-free access pattern: per-iteration cache behaviour (hits,
 * misses), the per-iteration cycle cost, and the resulting hammer
 * throughput per 64 ms refresh interval.
 *
 * The experiment is declared in the scenario catalog
 * (src/scenario/catalog.cc, sweep "fig1_pattern").
 *
 * Paper estimate: (29 x 20) + (2 x 150) = 880 cycles ~ 338 ns per
 * iteration at 2.6 GHz, allowing "up to 190K double-sided hammers with-in
 * a 64ms refresh period"; the test module needed only 110 K per side.
 * Also demonstrates the replacement-policy ablation: the same pattern's
 * miss behaviour under other LLC replacement policies.
 */
#include <iostream>

#include "cache/replacement.hh"
#include "common/table.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

int
main(int argc, char **argv) try
{
    runner::CliOptions cli = runner::CliOptions::parse(argc, argv);
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("fig1_pattern").make(cli);
    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    const runner::ScenarioAggregate &bitplru =
        sink.scenario("pattern/bitplru");

    TextTable cost("Figure 1b / Section 2.2: CLFLUSH-free eviction "
                   "pattern cost model (Bit-PLRU LLC)");
    cost.set_header({"Metric", "Measured", "Paper"});
    cost.add_row({"LLC accesses / iteration",
                  TextTable::fmt(bitplru.value_mean("accesses_per_iter"),
                                 1),
                  "~20-26 (13-address eviction sets)"});
    cost.add_row({"LLC misses / iteration (both aggressors)",
                  TextTable::fmt(bitplru.value_mean("misses_per_iter"), 2),
                  "2"});
    cost.add_row({"cycles / iteration",
                  TextTable::fmt(bitplru.value_mean("cycles_per_iter"), 0),
                  "880 (estimate)"});
    cost.add_row({"ns / iteration",
                  TextTable::fmt(bitplru.value_mean("ns_per_iter"), 0),
                  "338 (estimate) - 409 (measured)"});
    cost.add_row({"double-sided hammers per 64 ms",
                  TextTable::fmt_count(static_cast<std::uint64_t>(
                      bitplru.value_mean("hammers_per_refresh"))),
                  "up to 190,000"});
    cost.add_row({"aggressor share of DRAM activations",
                  TextTable::fmt(
                      100.0 * bitplru.value_mean("aggressor_act_share"),
                      1) + " %",
                  "high (precise misses are critical)"});
    cost.print(std::cout);

    TextTable ablation(
        "Ablation: the same pattern vs. other LLC replacement policies");
    ablation.set_header({"LLC policy", "misses/iter", "ns/iter",
                         "hammers / 64 ms", "attack viable (>110K)?"});
    for (const cache::ReplPolicy policy :
         {cache::ReplPolicy::kBitPlru, cache::ReplPolicy::kLru,
          cache::ReplPolicy::kNru, cache::ReplPolicy::kTreePlru,
          cache::ReplPolicy::kSrrip, cache::ReplPolicy::kRandom}) {
        const runner::ScenarioAggregate &agg = sink.scenario(
            std::string("pattern/") + cache::to_string(policy));
        const double hammers = agg.value_mean("hammers_per_refresh");
        ablation.add_row(
            {cache::to_string(policy),
             TextTable::fmt(agg.value_mean("misses_per_iter"), 2),
             TextTable::fmt(agg.value_mean("ns_per_iter"), 0),
             TextTable::fmt_count(static_cast<std::uint64_t>(hammers)),
             hammers > 110000 ? "yes" : "no"});
    }
    ablation.print(std::cout);
    return runner::finish_sweep(run, cli.sweep);
}
catch (const Error &e) {
    // Config-level faults (spec validation, a --resume journal from a
    // different sweep); per-trial failures become outcomes instead.
    std::cerr << "bench: " << e.what() << "\n";
    return runner::kExitUsage;
}
