/**
 * @file
 * Reproduces the **Figure 1b / Section 2.2 cost model** of the
 * CLFLUSH-free access pattern: per-iteration cache behaviour (hits,
 * misses), the per-iteration cycle cost, and the resulting hammer
 * throughput per 64 ms refresh interval.
 *
 * Paper estimate: (29 x 20) + (2 x 150) = 880 cycles ~ 338 ns per
 * iteration at 2.6 GHz, allowing "up to 190K double-sided hammers with-in
 * a 64ms refresh period"; the test module needed only 110 K per side.
 * Also demonstrates the replacement-policy ablation: the same pattern's
 * miss behaviour under other LLC replacement policies.
 */
#include <iostream>

#include "harness.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

struct PatternResult {
    double misses_per_iteration = 0.0;
    double accesses_per_iteration = 0.0;
    double ns_per_iteration = 0.0;
    double cycles_per_iteration = 0.0;
    double hammers_per_refresh = 0.0;
    double aggressor_activation_share = 0.0;
};

PatternResult
measure_pattern(cache::ReplPolicy llc_policy)
{
    mem::SystemConfig config;
    config.cache.llc_policy = llc_policy;
    Testbed bed(config);

    const auto target = bed.weakest_double_sided(true);
    if (!target)
        throw std::runtime_error("no slice-compatible target");
    attack::ClflushFreeDoubleSided hammer(bed.machine, bed.attacker->pid(),
                                          *target, bed.layout);

    for (int i = 0; i < 8; ++i)
        hammer.step();  // reach steady state

    const auto llc_before = bed.machine.hierarchy().llc_stats();
    const std::uint64_t acts_before =
        bed.machine.dram().bank(target->flat_bank).activations();
    const std::uint64_t dram_before = bed.machine.dram().stats().accesses;
    const Tick t0 = bed.machine.now();
    const int iterations = 20000;
    for (int i = 0; i < iterations; ++i)
        hammer.step();
    const auto llc_after = bed.machine.hierarchy().llc_stats();

    PatternResult r;
    r.misses_per_iteration =
        static_cast<double>(llc_after.misses - llc_before.misses) /
        iterations;
    r.accesses_per_iteration =
        static_cast<double>(llc_after.accesses - llc_before.accesses) /
        iterations;
    r.ns_per_iteration = to_ns(bed.machine.now() - t0) / iterations;
    r.cycles_per_iteration =
        r.ns_per_iteration * bed.machine.core().freq_ghz();
    r.hammers_per_refresh = 64e6 / r.ns_per_iteration;
    const double aggressor_acts = static_cast<double>(
        bed.machine.dram().bank(target->flat_bank).activations() -
        acts_before);
    const double dram_accesses = static_cast<double>(
        bed.machine.dram().stats().accesses - dram_before);
    r.aggressor_activation_share =
        dram_accesses > 0 ? aggressor_acts / dram_accesses : 0.0;
    return r;
}

}  // namespace

int
main()
{
    const PatternResult bitplru =
        measure_pattern(cache::ReplPolicy::kBitPlru);

    TextTable cost("Figure 1b / Section 2.2: CLFLUSH-free eviction "
                   "pattern cost model (Bit-PLRU LLC)");
    cost.set_header({"Metric", "Measured", "Paper"});
    cost.add_row({"LLC accesses / iteration",
                  TextTable::fmt(bitplru.accesses_per_iteration, 1),
                  "~20-26 (13-address eviction sets)"});
    cost.add_row({"LLC misses / iteration (both aggressors)",
                  TextTable::fmt(bitplru.misses_per_iteration, 2), "2"});
    cost.add_row({"cycles / iteration",
                  TextTable::fmt(bitplru.cycles_per_iteration, 0),
                  "880 (estimate)"});
    cost.add_row({"ns / iteration",
                  TextTable::fmt(bitplru.ns_per_iteration, 0),
                  "338 (estimate) - 409 (measured)"});
    cost.add_row({"double-sided hammers per 64 ms",
                  TextTable::fmt_count(static_cast<std::uint64_t>(
                      bitplru.hammers_per_refresh)),
                  "up to 190,000"});
    cost.add_row({"aggressor share of DRAM activations",
                  TextTable::fmt(100.0 * bitplru.aggressor_activation_share,
                                 1) + " %",
                  "high (precise misses are critical)"});
    cost.print(std::cout);

    TextTable ablation(
        "Ablation: the same pattern vs. other LLC replacement policies");
    ablation.set_header({"LLC policy", "misses/iter", "ns/iter",
                         "hammers / 64 ms", "attack viable (>110K)?"});
    for (const cache::ReplPolicy policy :
         {cache::ReplPolicy::kBitPlru, cache::ReplPolicy::kLru,
          cache::ReplPolicy::kNru, cache::ReplPolicy::kTreePlru,
          cache::ReplPolicy::kSrrip, cache::ReplPolicy::kRandom}) {
        const PatternResult r = measure_pattern(policy);
        ablation.add_row(
            {cache::to_string(policy),
             TextTable::fmt(r.misses_per_iteration, 2),
             TextTable::fmt(r.ns_per_iteration, 0),
             TextTable::fmt_count(
                 static_cast<std::uint64_t>(r.hammers_per_refresh)),
             r.hammers_per_refresh > 110000 ? "yes" : "no"});
    }
    ablation.print(std::cout);
    return 0;
}
