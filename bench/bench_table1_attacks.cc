/**
 * @file
 * Reproduces **Table 1** — "Rowhammer Attack Characteristics": the
 * minimum number of DRAM row accesses and the time to first bit flip for
 * single-sided CLFLUSH, double-sided CLFLUSH, and double-sided
 * CLFLUSH-free hammering — plus the Section 2.1 refresh-rate study
 * (32 ms and 16 ms refresh periods).
 *
 * The experiment is declared in the scenario catalog
 * (src/scenario/catalog.cc, sweep "table1_attacks").
 *
 * Paper values (DDR3, Sandy Bridge i5-2540M):
 *   single-sided  CLFLUSH   400 K accesses   58 ms
 *   double-sided  CLFLUSH   220 K accesses   15 ms
 *   double-sided  no-CLFLUSH 220 K accesses  45 ms
 * and: double-sided CLFLUSH still flips under a 32 ms (and even 16 ms)
 * refresh period; the other two do not beat 32 ms.
 */
#include <iostream>

#include "common/table.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

namespace {

struct AttackRow {
    bool flipped = false;
    std::uint64_t accesses = 0;
    double flip_ms = 0.0;
};

AttackRow
cell_result(runner::ResultSink &sink, const std::string &cell)
{
    const runner::ScenarioAggregate &agg = sink.scenario(cell);
    AttackRow row;
    row.flipped = agg.counter_sum("flipped") != 0;
    row.accesses = agg.counter_sum("aggressor_accesses");
    row.flip_ms = agg.value_mean("flip_ms");
    return row;
}

}  // namespace

int
main(int argc, char **argv) try
{
    runner::CliOptions cli = runner::CliOptions::parse(argc, argv);
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("table1_attacks").make(cli);
    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    TextTable table1(
        "Table 1: Rowhammer Attack Characteristics (64 ms refresh)");
    table1.set_header({"Hammer Technique", "Min DRAM Row Accesses",
                       "Time to First Bit Flip", "Paper"});
    const struct {
        const char *cell;
        const char *label;
        const char *paper;
    } specs[] = {
        {"single-sided/64ms", "Single-Sided with CLFLUSH", "400K / 58 ms"},
        {"double-sided/64ms", "Double-Sided with CLFLUSH", "220K / 15 ms"},
        {"clflush-free/64ms", "Double-Sided without CLFLUSH",
         "220K / 45 ms"},
    };
    for (const auto &s : specs) {
        const AttackRow row = cell_result(sink, s.cell);
        table1.add_row({s.label,
                        row.flipped ? TextTable::fmt_count(row.accesses)
                                    : "no flip",
                        row.flipped ? TextTable::fmt(row.flip_ms, 1) + " ms"
                                    : "-",
                        s.paper});
    }
    table1.print(std::cout);

    TextTable refresh(
        "Section 2.1 / 5.2.1: attacks vs. increased refresh rates");
    refresh.set_header({"Hammer Technique", "Refresh Period", "Outcome",
                        "Paper"});
    const struct {
        const char *cell;
        const char *label;
        double period_ms;
        const char *paper;
    } sweeps[] = {
        {"double-sided/32ms", "Double-Sided with CLFLUSH", 32.0,
         "flips (15 ms < 32 ms)"},
        {"double-sided/16ms", "Double-Sided with CLFLUSH", 16.0,
         "flips (Section 5.2.1)"},
        {"single-sided/32ms", "Single-Sided with CLFLUSH", 32.0,
         "defeated"},
        {"clflush-free/32ms", "Double-Sided without CLFLUSH", 32.0,
         "defeated (45 ms > 32 ms)"},
    };
    for (const auto &s : sweeps) {
        const AttackRow row = cell_result(sink, s.cell);
        refresh.add_row({s.label,
                         TextTable::fmt(s.period_ms, 0) + " ms",
                         row.flipped ? "FLIPPED at " +
                                           TextTable::fmt(row.flip_ms, 1) +
                                           " ms"
                                     : "no flip",
                         s.paper});
    }
    refresh.print(std::cout);
    return runner::finish_sweep(run, cli.sweep);
}
catch (const Error &e) {
    // Config-level faults (spec validation, a --resume journal from a
    // different sweep); per-trial failures become outcomes instead.
    std::cerr << "bench: " << e.what() << "\n";
    return runner::kExitUsage;
}
