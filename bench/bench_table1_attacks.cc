/**
 * @file
 * Reproduces **Table 1** — "Rowhammer Attack Characteristics": the
 * minimum number of DRAM row accesses and the time to first bit flip for
 * single-sided CLFLUSH, double-sided CLFLUSH, and double-sided
 * CLFLUSH-free hammering — plus the Section 2.1 refresh-rate study
 * (32 ms and 16 ms refresh periods).
 *
 * Paper values (DDR3, Sandy Bridge i5-2540M):
 *   single-sided  CLFLUSH   400 K accesses   58 ms
 *   double-sided  CLFLUSH   220 K accesses   15 ms
 *   double-sided  no-CLFLUSH 220 K accesses  45 ms
 * and: double-sided CLFLUSH still flips under a 32 ms (and even 16 ms)
 * refresh period; the other two do not beat 32 ms.
 */
#include <iostream>

#include "harness.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

struct AttackRow {
    std::string technique;
    bool flipped = false;
    std::uint64_t accesses = 0;
    double flip_ms = 0.0;
};

AttackRow
run_attack(const std::string &technique, Tick refresh_period)
{
    mem::SystemConfig config;
    config.dram.refresh_period = refresh_period;
    Testbed bed(config);

    std::unique_ptr<attack::Hammer> hammer;
    std::uint32_t victim_row = 0;
    if (technique == "single-sided") {
        const auto target = bed.weakest_single_sided();
        if (!target)
            throw std::runtime_error("no single-sided target");
        victim_row = target->aggressor_row + 1;
        hammer = std::make_unique<attack::ClflushSingleSided>(
            bed.machine, bed.attacker->pid(), *target);
    } else if (technique == "double-sided") {
        const auto target = bed.weakest_double_sided();
        if (!target)
            throw std::runtime_error("no double-sided target");
        victim_row = target->victim_row;
        hammer = std::make_unique<attack::ClflushDoubleSided>(
            bed.machine, bed.attacker->pid(), *target);
    } else {  // clflush-free
        const auto target = bed.weakest_double_sided(
            /*require_slice_compatible=*/true);
        if (!target)
            throw std::runtime_error("no slice-compatible target");
        victim_row = target->victim_row;
        hammer = std::make_unique<attack::ClflushFreeDoubleSided>(
            bed.machine, bed.attacker->pid(), *target, bed.layout);
    }

    // Phase-align so the trial measures pure hammering time within one
    // clean refresh window of the victim (the paper's modules were
    // characterized the same way: minimum accesses / time to flip).
    bed.align_to_refresh(victim_row);
    const attack::HammerResult result =
        hammer->run(refresh_period + ms(16));

    AttackRow row;
    row.technique = technique;
    row.flipped = result.flipped;
    row.accesses = result.aggressor_accesses;
    row.flip_ms = to_ms(result.duration);
    return row;
}

}  // namespace

int
main()
{
    TextTable table1(
        "Table 1: Rowhammer Attack Characteristics (64 ms refresh)");
    table1.set_header({"Hammer Technique", "Min DRAM Row Accesses",
                       "Time to First Bit Flip", "Paper"});
    struct Spec {
        const char *technique;
        const char *label;
        const char *paper;
    };
    const Spec specs[] = {
        {"single-sided", "Single-Sided with CLFLUSH", "400K / 58 ms"},
        {"double-sided", "Double-Sided with CLFLUSH", "220K / 15 ms"},
        {"clflush-free", "Double-Sided without CLFLUSH", "220K / 45 ms"},
    };
    for (const Spec &spec : specs) {
        const AttackRow row = run_attack(spec.technique, ms(64));
        table1.add_row({spec.label,
                        row.flipped ? TextTable::fmt_count(row.accesses)
                                    : "no flip",
                        row.flipped ? TextTable::fmt(row.flip_ms, 1) + " ms"
                                    : "-",
                        spec.paper});
    }
    table1.print(std::cout);

    TextTable refresh(
        "Section 2.1 / 5.2.1: attacks vs. increased refresh rates");
    refresh.set_header({"Hammer Technique", "Refresh Period", "Outcome",
                        "Paper"});
    struct Sweep {
        const char *technique;
        const char *label;
        double period_ms;
        const char *paper;
    };
    const Sweep sweeps[] = {
        {"double-sided", "Double-Sided with CLFLUSH", 32.0,
         "flips (15 ms < 32 ms)"},
        {"double-sided", "Double-Sided with CLFLUSH", 16.0,
         "flips (Section 5.2.1)"},
        {"single-sided", "Single-Sided with CLFLUSH", 32.0, "defeated"},
        {"clflush-free", "Double-Sided without CLFLUSH", 32.0,
         "defeated (45 ms > 32 ms)"},
    };
    for (const Sweep &sweep : sweeps) {
        const AttackRow row = run_attack(sweep.technique,
                                         ms(sweep.period_ms));
        refresh.add_row({sweep.label,
                         TextTable::fmt(sweep.period_ms, 0) + " ms",
                         row.flipped ? "FLIPPED at " +
                                           TextTable::fmt(row.flip_ms, 1) +
                                           " ms"
                                     : "no flip",
                         sweep.paper});
    }
    refresh.print(std::cout);
    return 0;
}
