/**
 * @file
 * Reproduces **Figure 4** — "Sensitivity of Execution Overheads to
 * Potential Future Rowhammer Attacks": normalized execution time of
 * bzip2, gcc, gobmk, libquantum, and perlbench under ANVIL-baseline,
 * ANVIL-light (threshold halved to 10 K, for attacks spread thinly over a
 * refresh period), and ANVIL-heavy (tc = ts = 2 ms, for attacks twice as
 * fast) — plus the **Section 4.5** detection scenarios on a future module
 * that flips at 110 K row accesses.
 *
 * All 24 cells (5 benchmarks x 4 detector settings, plus 4 future-attack
 * scenarios) run as one parallel sweep (see runner/options.hh for the
 * shared CLI); normalization is computed from the aggregated run times.
 */
#include <iostream>

#include "harness.hh"
#include "runner/options.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

runner::TrialResult
fixed_work_trial(const std::string &name,
                 const detector::AnvilConfig *config, std::uint64_t ops,
                 const runner::TrialContext &ctx)
{
    mem::SystemConfig machine_config;
    machine_config.vm_seed = ctx.seed_for("vm");
    mem::MemorySystem machine(machine_config);
    pmu::Pmu pmu(machine);
    std::unique_ptr<detector::Anvil> anvil;
    if (config != nullptr) {
        anvil = std::make_unique<detector::Anvil>(machine, pmu, *config);
        anvil->start();
    }
    workload::SpecProfile profile = workload::spec_profile(name);
    profile.seed = ctx.seed_for("workload");
    workload::Workload load(machine, profile);
    const Tick start = machine.now();
    load.run_ops(ops);

    runner::TrialResult r;
    r.set_value("run_ms", to_ms(machine.now() - start));
    r.set_counter("ops", ops);
    if (anvil)
        r.set_anvil(anvil->stats());
    r.set_dram(machine.dram().stats());
    return r;
}

/** Section 4.5 scenario: does the config stop the future attack? */
runner::TrialResult
future_attack_trial(const detector::AnvilConfig &config, bool spread_out,
                    const runner::TrialContext &ctx)
{
    // "a future scenario where bit flips can occur with 110K DRAM row
    // accesses (i.e., half the number of accesses that produced flips on
    // our experiments)"
    mem::SystemConfig machine_config;
    machine_config.dram.flip_threshold = 200000;  // 55 K per side
    machine_config.vm_seed = ctx.seed_for("vm");
    Testbed bed(machine_config);

    detector::Anvil anvil(bed.machine, bed.pmu, config);
    anvil.start();
    const auto target = bed.weakest_double_sided();
    if (!target)
        throw std::runtime_error("no target");
    attack::ClflushDoubleSided hammer(bed.machine, bed.attacker->pid(),
                                      *target);

    const Tick deadline = bed.machine.now() + ms(200);
    while (bed.machine.now() < deadline &&
           bed.machine.dram().flips().empty()) {
        hammer.step();
        if (spread_out) {
            // Spread ~110 K total accesses across a whole refresh period:
            // rate just above 10 K misses / 6 ms but below 20 K.
            bed.machine.advance(ns(700));
        }
    }

    runner::TrialResult r;
    r.set_counter("flips", bed.machine.dram().flips().size());
    r.set_counter("detections", anvil.stats().detections);
    r.set_anvil(anvil.stats());
    return r;
}

std::string
cell_name(const std::string &benchmark, const char *config)
{
    return benchmark + "/" + config;
}

}  // namespace

int
main(int argc, char **argv)
{
    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv, "  positional: ops per benchmark (default 4000000)");
    cli.sweep.name = "fig4_sensitivity";
    const std::uint64_t ops = static_cast<std::uint64_t>(
        cli.positional_double(0, 4000000.0));
    const std::uint64_t trials = cli.trials_or(1);

    const detector::AnvilConfig baseline =
        detector::AnvilConfig::baseline();
    const detector::AnvilConfig light = detector::AnvilConfig::light();
    const detector::AnvilConfig heavy = detector::AnvilConfig::heavy();

    const char *benchmarks[] = {"bzip2", "gcc", "gobmk", "libquantum",
                                "perlbench"};
    const struct {
        const char *label;
        const detector::AnvilConfig *config;  // nullptr = unprotected
    } settings[] = {
        {"none", nullptr},
        {"baseline", &baseline},
        {"light", &light},
        {"heavy", &heavy},
    };

    runner::Sweep sweep(cli.sweep);
    for (const char *name : benchmarks) {
        for (const auto &s : settings) {
            const std::string benchmark = name;
            const detector::AnvilConfig *config = s.config;
            sweep.add_scenario(
                cell_name(benchmark, s.label), trials,
                [benchmark, config, ops](const runner::TrialContext &ctx) {
                    return fixed_work_trial(benchmark, config, ops, ctx);
                });
        }
    }

    struct Case {
        const char *scenario;
        const char *attack;
        bool spread;
        const detector::AnvilConfig *config;
        const char *paper;
    };
    const Case cases[] = {
        {"future/fast/heavy", "fast (full speed, flips in ~7 ms)", false,
         &heavy, "caught by ANVIL-heavy"},
        {"future/fast/baseline", "fast (full speed, flips in ~7 ms)",
         false, &baseline, "needs smaller windows"},
        {"future/spread/light", "spread out (just over 10K misses/6 ms)",
         true, &light, "caught by ANVIL-light"},
        {"future/spread/baseline",
         "spread out (just over 10K misses/6 ms)", true, &baseline,
         "evades the 20K threshold"},
    };
    for (const Case &c : cases) {
        const detector::AnvilConfig *config = c.config;
        const bool spread = c.spread;
        sweep.add_scenario(
            c.scenario, 1,
            [config, spread](const runner::TrialContext &ctx) {
                return future_attack_trial(*config, spread, ctx);
            });
    }

    runner::ResultSink sink = sweep.run();

    TextTable fig4("Figure 4: Normalized execution time under "
                   "ANVIL-baseline / -light / -heavy (" +
                   TextTable::fmt_count(ops) + " ops/benchmark)");
    fig4.set_header({"Benchmark", "ANVIL-baseline", "ANVIL-light",
                     "ANVIL-heavy",
                     "Paper: heavy costs most (up to ~1.08)"});
    for (const char *name : benchmarks) {
        const double base =
            sink.scenario(cell_name(name, "none")).value_mean("run_ms");
        const auto norm = [&](const char *label) {
            const double t =
                sink.scenario(cell_name(name, label)).value_mean("run_ms");
            const double n = base > 0.0 ? t / base : 0.0;
            sink.set_derived(cell_name(name, label), "normalized", n);
            return n;
        };
        fig4.add_row({name, TextTable::fmt(norm("baseline"), 4),
                      TextTable::fmt(norm("light"), 4),
                      TextTable::fmt(norm("heavy"), 4), ""});
    }
    fig4.print(std::cout);

    TextTable scenarios("Section 4.5: future-attack scenarios (module "
                        "flips at 110K accesses)");
    scenarios.set_header({"Attack", "Config", "Bit flips", "Detections",
                          "Paper"});
    for (const Case &c : cases) {
        const runner::ScenarioAggregate &agg = sink.scenario(c.scenario);
        const std::uint64_t flips = agg.counter_sum("flips");
        scenarios.add_row({c.attack, c.config->name,
                           flips != 0 ? "FLIPPED" : "0",
                           TextTable::fmt_count(
                               agg.counter_sum("detections")),
                           c.paper});
    }
    scenarios.print(std::cout);
    return runner::write_json_output(sink, cli.sweep) ? 0 : 1;
}
