/**
 * @file
 * Reproduces **Figure 4** — "Sensitivity of Execution Overheads to
 * Potential Future Rowhammer Attacks": normalized execution time of
 * bzip2, gcc, gobmk, libquantum, and perlbench under ANVIL-baseline,
 * ANVIL-light (threshold halved to 10 K, for attacks spread thinly over a
 * refresh period), and ANVIL-heavy (tc = ts = 2 ms, for attacks twice as
 * fast) — plus the **Section 4.5** detection scenarios on a future module
 * that flips at 110 K row accesses.
 */
#include <iostream>

#include "harness.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

Tick
run_fixed_work(const std::string &name,
               const detector::AnvilConfig *config, std::uint64_t ops)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    std::unique_ptr<detector::Anvil> anvil;
    if (config != nullptr) {
        anvil = std::make_unique<detector::Anvil>(machine, pmu, *config);
        anvil->start();
    }
    workload::Workload load(machine, workload::spec_profile(name));
    const Tick start = machine.now();
    load.run_ops(ops);
    return machine.now() - start;
}

/** Section 4.5 scenario: does the config stop the future attack? */
struct ScenarioResult {
    bool flipped = false;
    std::uint64_t detections = 0;
};

ScenarioResult
future_attack(const detector::AnvilConfig &config, bool spread_out)
{
    // "a future scenario where bit flips can occur with 110K DRAM row
    // accesses (i.e., half the number of accesses that produced flips on
    // our experiments)"
    mem::SystemConfig machine_config;
    machine_config.dram.flip_threshold = 200000;  // 55 K per side
    Testbed bed(machine_config);

    detector::Anvil anvil(bed.machine, bed.pmu, config);
    anvil.start();
    const auto target = bed.weakest_double_sided();
    if (!target)
        throw std::runtime_error("no target");
    attack::ClflushDoubleSided hammer(bed.machine, bed.attacker->pid(),
                                      *target);

    const Tick deadline = bed.machine.now() + ms(200);
    while (bed.machine.now() < deadline &&
           bed.machine.dram().flips().empty()) {
        hammer.step();
        if (spread_out) {
            // Spread ~110 K total accesses across a whole refresh period:
            // rate just above 10 K misses / 6 ms but below 20 K.
            bed.machine.advance(ns(700));
        }
    }
    return ScenarioResult{!bed.machine.dram().flips().empty(),
                          anvil.stats().detections};
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000000ULL;

    const detector::AnvilConfig baseline =
        detector::AnvilConfig::baseline();
    const detector::AnvilConfig light = detector::AnvilConfig::light();
    const detector::AnvilConfig heavy = detector::AnvilConfig::heavy();

    TextTable fig4("Figure 4: Normalized execution time under "
                   "ANVIL-baseline / -light / -heavy (" +
                   TextTable::fmt_count(ops) + " ops/benchmark)");
    fig4.set_header({"Benchmark", "ANVIL-baseline", "ANVIL-light",
                     "ANVIL-heavy",
                     "Paper: heavy costs most (up to ~1.08)"});
    for (const char *name :
         {"bzip2", "gcc", "gobmk", "libquantum", "perlbench"}) {
        const Tick base = run_fixed_work(name, nullptr, ops);
        const auto norm = [&](const detector::AnvilConfig &config) {
            return static_cast<double>(run_fixed_work(name, &config, ops)) /
                   static_cast<double>(base);
        };
        fig4.add_row({name, TextTable::fmt(norm(baseline), 4),
                      TextTable::fmt(norm(light), 4),
                      TextTable::fmt(norm(heavy), 4), ""});
    }
    fig4.print(std::cout);

    TextTable scenarios("Section 4.5: future-attack scenarios (module "
                        "flips at 110K accesses)");
    scenarios.set_header({"Attack", "Config", "Bit flips", "Detections",
                          "Paper"});
    struct Case {
        const char *attack;
        bool spread;
        const detector::AnvilConfig *config;
        const char *paper;
    };
    const Case cases[] = {
        {"fast (full speed, flips in ~7 ms)", false, &heavy,
         "caught by ANVIL-heavy"},
        {"fast (full speed, flips in ~7 ms)", false, &baseline,
         "needs smaller windows"},
        {"spread out (just over 10K misses/6 ms)", true, &light,
         "caught by ANVIL-light"},
        {"spread out (just over 10K misses/6 ms)", true, &baseline,
         "evades the 20K threshold"},
    };
    for (const Case &c : cases) {
        const ScenarioResult r = future_attack(*c.config, c.spread);
        scenarios.add_row({c.attack, c.config->name,
                           r.flipped ? "FLIPPED" : "0",
                           TextTable::fmt_count(r.detections), c.paper});
    }
    scenarios.print(std::cout);
    return 0;
}
