/**
 * @file
 * Reproduces **Figure 4** — "Sensitivity of Execution Overheads to
 * Potential Future Rowhammer Attacks": normalized execution time of
 * bzip2, gcc, gobmk, libquantum, and perlbench under ANVIL-baseline,
 * ANVIL-light (threshold halved to 10 K, for attacks spread thinly over a
 * refresh period), and ANVIL-heavy (tc = ts = 2 ms, for attacks twice as
 * fast) — plus the **Section 4.5** detection scenarios on a future module
 * that flips at 110 K row accesses.
 *
 * The experiment is declared in the scenario catalog
 * (src/scenario/catalog.cc, sweep "fig4_sensitivity"). All 24 cells
 * (5 benchmarks x 4 detector settings, plus 4 future-attack scenarios)
 * run as one parallel sweep (see runner/options.hh for the shared CLI);
 * normalization is computed from the aggregated run times.
 */
#include <iostream>

#include "common/table.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

int
main(int argc, char **argv) try
{
    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv, "  positional: ops per benchmark (default 4000000)");
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("fig4_sensitivity").make(cli);
    const std::uint64_t ops = static_cast<std::uint64_t>(
        cli.positional_double(0, 4000000.0));

    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    const char *benchmarks[] = {"bzip2", "gcc", "gobmk", "libquantum",
                                "perlbench"};
    TextTable fig4("Figure 4: Normalized execution time under "
                   "ANVIL-baseline / -light / -heavy (" +
                   TextTable::fmt_count(ops) + " ops/benchmark)");
    fig4.set_header({"Benchmark", "ANVIL-baseline", "ANVIL-light",
                     "ANVIL-heavy",
                     "Paper: heavy costs most (up to ~1.08)"});
    for (const char *name : benchmarks) {
        const std::string benchmark = name;
        const double base =
            sink.scenario(benchmark + "/none").value_mean("run_ms");
        const auto norm = [&](const char *label) {
            const double t = sink.scenario(benchmark + "/" + label)
                                 .value_mean("run_ms");
            return base > 0.0 ? t / base : 0.0;
        };
        fig4.add_row({name, TextTable::fmt(norm("baseline"), 4),
                      TextTable::fmt(norm("light"), 4),
                      TextTable::fmt(norm("heavy"), 4), ""});
    }
    fig4.print(std::cout);

    const struct {
        const char *scenario;
        const char *attack;
        const char *config;
        const char *paper;
    } cases[] = {
        {"future/fast/heavy", "fast (full speed, flips in ~7 ms)",
         "ANVIL-heavy", "caught by ANVIL-heavy"},
        {"future/fast/baseline", "fast (full speed, flips in ~7 ms)",
         "ANVIL-baseline", "needs smaller windows"},
        {"future/spread/light", "spread out (just over 10K misses/6 ms)",
         "ANVIL-light", "caught by ANVIL-light"},
        {"future/spread/baseline",
         "spread out (just over 10K misses/6 ms)", "ANVIL-baseline",
         "evades the 20K threshold"},
    };
    TextTable scenarios("Section 4.5: future-attack scenarios (module "
                        "flips at 110K accesses)");
    scenarios.set_header({"Attack", "Config", "Bit flips", "Detections",
                          "Paper"});
    for (const auto &c : cases) {
        const runner::ScenarioAggregate &agg = sink.scenario(c.scenario);
        const std::uint64_t flips = agg.counter_sum("flips");
        scenarios.add_row({c.attack, c.config,
                           flips != 0 ? "FLIPPED" : "0",
                           TextTable::fmt_count(
                               agg.counter_sum("detections")),
                           c.paper});
    }
    scenarios.print(std::cout);
    return runner::finish_sweep(run, cli.sweep);
}
catch (const Error &e) {
    // Config-level faults (spec validation, a --resume journal from a
    // different sweep); per-trial failures become outcomes instead.
    std::cerr << "bench: " << e.what() << "\n";
    return runner::kExitUsage;
}
