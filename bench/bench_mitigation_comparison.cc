/**
 * @file
 * Mitigation-landscape ablation (paper Sections 1.2, 2.1, 5.2): pits
 * every rowhammer defense discussed in the paper against the same
 * attacks and the same benign workload:
 *
 *   none            — unprotected 64 ms-refresh machine;
 *   double refresh  — the deployed BIOS mitigation (32 ms);
 *   no CLFLUSH      — the NaCl-style mitigation (instruction removed);
 *   PARA            — probabilistic adjacent row activation (hardware);
 *   TRR             — counter-based targeted row refresh (hardware);
 *   ANVIL           — the paper's software detector.
 *
 * The runnable cells are declared in the scenario catalog
 * (src/scenario/catalog.cc, sweep "mitigation_comparison"); the
 * CLFLUSH-ban rows are definitional (the instruction simply does not
 * exist in the binary) and rendered directly.
 *
 * The table shows which defenses stop which attacks, and what each one
 * costs a benign memory-intensive workload. The paper's argument is the
 * last column: only ANVIL both stops everything and deploys on existing
 * hardware.
 */
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

int
main(int argc, char **argv) try
{
    runner::CliOptions cli = runner::CliOptions::parse(argc, argv);
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("mitigation_comparison").make(cli);
    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    const double benign_base =
        sink.scenario("benign/unprotected").value_mean("run_ms");
    const auto slowdown = [&](const char *cell) {
        const double t =
            sink.scenario(std::string("benign/") + cell)
                .value_mean("run_ms");
        return benign_base > 0.0 ? t / benign_base : 0.0;
    };

    TextTable table("Mitigation comparison: which defenses stop which "
                    "attacks, and at what cost");
    table.set_header({"Defense", "1-sided CLFLUSH", "2-sided CLFLUSH",
                      "2-sided CLFLUSH-free", "mcf slowdown",
                      "deployable on existing HW?"});
    const struct {
        const char *display;
        const char *cell;   ///< nullptr = the definitional CLFLUSH ban
        const char *benign; ///< benign-slowdown cell
        bool hardware;
    } defenses[] = {
        {"none (64 ms refresh)", "none", "unprotected", false},
        {"double refresh (32 ms)", "double-refresh", "double-refresh",
         false},
        {"CLFLUSH disallowed", nullptr, nullptr, false},
        {"PARA (hardware)", "para", "para", true},
        {"TRR (hardware)", "trr", "trr", true},
        {"ANVIL (software)", "anvil", "anvil", false},
    };
    for (const auto &defense : defenses) {
        std::vector<std::string> row{defense.display};
        for (const char *attack :
             {"single-sided", "double-sided", "clflush-free"}) {
            bool lands;
            if (defense.cell == nullptr) {
                // Removing the instruction stops CLFLUSH attacks by
                // construction and is bypassed by construction by the
                // CLFLUSH-free attack.
                lands = std::string(attack) == "clflush-free";
            } else {
                lands = sink.scenario(std::string(defense.cell) + "/" +
                                      attack)
                            .counter_sum("flipped") != 0;
            }
            row.push_back(lands ? "FLIPPED" : "stopped");
        }
        row.push_back(TextTable::fmt(
            defense.benign == nullptr ? 1.0 : slowdown(defense.benign),
            4));
        row.push_back(defense.hardware ? "no (new silicon)" : "yes");
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nPaper's claims: double refresh loses to the 15 ms "
                 "double-sided attack; the CLFLUSH ban loses to the "
                 "eviction-based attack; hardware TRR/PARA work but do "
                 "not exist in deployed DRAM; ANVIL stops all three on "
                 "stock hardware for ~1-3 % overhead.\n";
    return runner::finish_sweep(run, cli.sweep);
}
catch (const Error &e) {
    // Config-level faults (spec validation, a --resume journal from a
    // different sweep); per-trial failures become outcomes instead.
    std::cerr << "bench: " << e.what() << "\n";
    return runner::kExitUsage;
}
