/**
 * @file
 * Mitigation-landscape ablation (paper Sections 1.2, 2.1, 5.2): pits
 * every rowhammer defense discussed in the paper against the same
 * attacks and the same benign workload:
 *
 *   none            — unprotected 64 ms-refresh machine;
 *   double refresh  — the deployed BIOS mitigation (32 ms);
 *   no CLFLUSH      — the NaCl-style mitigation (instruction removed);
 *   PARA            — probabilistic adjacent row activation (hardware);
 *   TRR             — counter-based targeted row refresh (hardware);
 *   ANVIL           — the paper's software detector.
 *
 * The runnable cells are declared in the scenario catalog
 * (src/scenario/catalog.cc, sweep "mitigation_comparison"); the
 * CLFLUSH-ban rows are definitional (the instruction simply does not
 * exist in the binary) and rendered directly.
 *
 * The table shows which defenses stop which attacks, and what each one
 * costs a benign memory-intensive workload. The paper's argument is the
 * last column: only ANVIL both stops everything and deploys on existing
 * hardware.
 */
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

namespace {

/**
 * `bench_mitigation_comparison matrix`: renders the tracker-zoo
 * mitigation_matrix sweep — miss rate of every registered tracker
 * against every attack kind (on the next-generation module), plus the
 * refresh-storm slowdown each tracker inflicts under tracker-thrash.
 */
int
run_matrix(runner::CliOptions &cli)
{
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("mitigation_matrix").make(cli);
    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    const char *trackers[] = {"none",         "para",
                              "trr",          "ctrr-sampled",
                              "ctrr-evict",   "ctrr-radius2",
                              "rvc",          "dapper"};
    const char *attacks[] = {"single-sided", "double-sided",
                             "clflush-free", "half-double"};

    TextTable table("Mitigation matrix: per-tracker miss rate by attack "
                    "kind (next-gen module), thrash slowdown, and "
                    "refresh volume under thrash");
    table.set_header({"Tracker", "1-sided", "2-sided", "CLFLUSH-free",
                      "half-double", "thrash slowdown",
                      "refreshes/64ms (thrash)"});
    const auto derived = [&](const std::string &cell, const char *name) {
        const auto &agg = sink.scenario(cell);
        const double trials = static_cast<double>(agg.trials());
        if (std::string(name) == "miss_rate") {
            return trials > 0.0
                       ? static_cast<double>(agg.counter_sum("flipped")) /
                             trials
                       : 0.0;
        }
        return 0.0;
    };
    const double thrash_base =
        sink.scenario("none/thrash").value_mean("run_ms");
    for (const char *tracker : trackers) {
        std::vector<std::string> row{tracker};
        for (const char *attack : attacks) {
            row.push_back(TextTable::fmt(
                derived(std::string(tracker) + "/" + attack, "miss_rate"),
                2));
        }
        const std::string thrash_cell = std::string(tracker) + "/thrash";
        const auto &agg = sink.scenario(thrash_cell);
        const double t = agg.value_mean("run_ms");
        row.push_back(TextTable::fmt(
            thrash_base > 0.0 ? t / thrash_base : 0.0, 4));
        const auto *run_stat = agg.value_stat("run_ms");
        const double run_ms_total =
            run_stat != nullptr ? run_stat->sum() : 0.0;
        row.push_back(TextTable::fmt(
            run_ms_total > 0.0
                ? static_cast<double>(
                      agg.counter_sum("mitigation_refreshes")) /
                      (run_ms_total / 64.0)
                : 0.0,
            1));
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nmiss rate = fraction of trials where the attack "
                 "still flipped a bit; thrash slowdown = mcf run time "
                 "under tracker-thrash, normalized to the untracked "
                 "machine.\n";
    return runner::finish_sweep(run, cli.sweep);
}

}  // namespace

int
main(int argc, char **argv) try
{
    runner::CliOptions cli = runner::CliOptions::parse(argc, argv);
    if (!cli.positional.empty() && cli.positional.front() == "matrix") {
        cli.positional.erase(cli.positional.begin());
        return run_matrix(cli);
    }
    const scenario::SweepSpec spec =
        scenario::paper_registry().at("mitigation_comparison").make(cli);
    runner::install_signal_handlers();
    runner::SweepRun run = scenario::run_sweep(spec, cli);
    runner::ResultSink &sink = run.sink;

    const double benign_base =
        sink.scenario("benign/unprotected").value_mean("run_ms");
    const auto slowdown = [&](const char *cell) {
        const double t =
            sink.scenario(std::string("benign/") + cell)
                .value_mean("run_ms");
        return benign_base > 0.0 ? t / benign_base : 0.0;
    };

    TextTable table("Mitigation comparison: which defenses stop which "
                    "attacks, and at what cost");
    table.set_header({"Defense", "1-sided CLFLUSH", "2-sided CLFLUSH",
                      "2-sided CLFLUSH-free", "mcf slowdown",
                      "deployable on existing HW?"});
    const struct {
        const char *display;
        const char *cell;   ///< nullptr = the definitional CLFLUSH ban
        const char *benign; ///< benign-slowdown cell
        bool hardware;
    } defenses[] = {
        {"none (64 ms refresh)", "none", "unprotected", false},
        {"double refresh (32 ms)", "double-refresh", "double-refresh",
         false},
        {"CLFLUSH disallowed", nullptr, nullptr, false},
        {"PARA (hardware)", "para", "para", true},
        {"TRR (hardware)", "trr", "trr", true},
        {"ANVIL (software)", "anvil", "anvil", false},
    };
    for (const auto &defense : defenses) {
        std::vector<std::string> row{defense.display};
        for (const char *attack :
             {"single-sided", "double-sided", "clflush-free"}) {
            bool lands;
            if (defense.cell == nullptr) {
                // Removing the instruction stops CLFLUSH attacks by
                // construction and is bypassed by construction by the
                // CLFLUSH-free attack.
                lands = std::string(attack) == "clflush-free";
            } else {
                lands = sink.scenario(std::string(defense.cell) + "/" +
                                      attack)
                            .counter_sum("flipped") != 0;
            }
            row.push_back(lands ? "FLIPPED" : "stopped");
        }
        row.push_back(TextTable::fmt(
            defense.benign == nullptr ? 1.0 : slowdown(defense.benign),
            4));
        row.push_back(defense.hardware ? "no (new silicon)" : "yes");
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nPaper's claims: double refresh loses to the 15 ms "
                 "double-sided attack; the CLFLUSH ban loses to the "
                 "eviction-based attack; hardware TRR/PARA work but do "
                 "not exist in deployed DRAM; ANVIL stops all three on "
                 "stock hardware for ~1-3 % overhead.\n";
    return runner::finish_sweep(run, cli.sweep);
}
catch (const Error &e) {
    // Config-level faults (spec validation, a --resume journal from a
    // different sweep); per-trial failures become outcomes instead.
    std::cerr << "bench: " << e.what() << "\n";
    return runner::kExitUsage;
}
