/**
 * @file
 * Mitigation-landscape ablation (paper Sections 1.2, 2.1, 5.2): pits
 * every rowhammer defense discussed in the paper against the same
 * attacks and the same benign workload:
 *
 *   none            — unprotected 64 ms-refresh machine;
 *   double refresh  — the deployed BIOS mitigation (32 ms);
 *   no CLFLUSH      — the NaCl-style mitigation (instruction removed);
 *   PARA            — probabilistic adjacent row activation (hardware);
 *   TRR             — counter-based targeted row refresh (hardware);
 *   ANVIL           — the paper's software detector.
 *
 * The table shows which defenses stop which attacks, and what each one
 * costs a benign memory-intensive workload. The paper's argument is the
 * last column: only ANVIL both stops everything and deploys on existing
 * hardware.
 */
#include <iostream>

#include "harness.hh"
#include "mitigations/hardware.hh"

using namespace anvil;
using namespace anvil::bench;

namespace {

enum class Defense { kNone, kDoubleRefresh, kNoClflush, kPara, kTrr,
                     kAnvil };

const char *
name_of(Defense defense)
{
    switch (defense) {
      case Defense::kNone: return "none (64 ms refresh)";
      case Defense::kDoubleRefresh: return "double refresh (32 ms)";
      case Defense::kNoClflush: return "CLFLUSH disallowed";
      case Defense::kPara: return "PARA (hardware)";
      case Defense::kTrr: return "TRR (hardware)";
      case Defense::kAnvil: return "ANVIL (software)";
    }
    return "?";
}

/** Runs one attack against one defense; true if any bit flipped. */
bool
attack_lands(Defense defense, const std::string &attack)
{
    // The CLFLUSH-restriction defense stops CLFLUSH attacks by
    // construction (the binary cannot contain the instruction) — and is
    // bypassed by construction by the CLFLUSH-free attack.
    if (defense == Defense::kNoClflush)
        return attack == "clflush-free";

    mem::SystemConfig config;
    if (defense == Defense::kDoubleRefresh)
        config.dram.refresh_period = ms(32);
    Testbed bed(config);

    std::unique_ptr<mitigations::Para> para;
    std::unique_ptr<mitigations::Trr> trr;
    std::unique_ptr<detector::Anvil> anvil;
    if (defense == Defense::kPara)
        para = std::make_unique<mitigations::Para>(bed.machine.dram());
    if (defense == Defense::kTrr)
        trr = std::make_unique<mitigations::Trr>(bed.machine.dram());
    if (defense == Defense::kAnvil) {
        anvil = std::make_unique<detector::Anvil>(
            bed.machine, bed.pmu, detector::AnvilConfig::baseline());
        anvil->start();
    }

    std::unique_ptr<attack::Hammer> hammer;
    std::uint32_t victim_row = 0;
    if (attack == "single-sided") {
        const auto target = bed.weakest_single_sided();
        if (!target)
            return false;
        victim_row = target->aggressor_row + 1;
        hammer = std::make_unique<attack::ClflushSingleSided>(
            bed.machine, bed.attacker->pid(), *target);
    } else if (attack == "double-sided") {
        const auto target = bed.weakest_double_sided();
        if (!target)
            return false;
        victim_row = target->victim_row;
        hammer = std::make_unique<attack::ClflushDoubleSided>(
            bed.machine, bed.attacker->pid(), *target);
    } else {
        const auto target = bed.weakest_double_sided(true);
        if (!target)
            return false;
        victim_row = target->victim_row;
        hammer = std::make_unique<attack::ClflushFreeDoubleSided>(
            bed.machine, bed.attacker->pid(), *target, bed.layout);
    }
    bed.align_to_refresh(victim_row);
    return hammer->run(config.dram.refresh_period + ms(16)).flipped;
}

/** Benign (mcf) slowdown under the defense, vs the unprotected machine. */
double
benign_slowdown(Defense defense)
{
    if (defense == Defense::kNoClflush)
        return 1.0;  // removing an instruction costs benign code nothing

    auto run = [&](bool protect) {
        mem::SystemConfig config;
        if (protect && defense == Defense::kDoubleRefresh)
            config.dram.refresh_period = ms(32);
        mem::MemorySystem machine(config);
        pmu::Pmu pmu(machine);
        std::unique_ptr<mitigations::Para> para;
        std::unique_ptr<mitigations::Trr> trr;
        std::unique_ptr<detector::Anvil> anvil;
        if (protect && defense == Defense::kPara)
            para = std::make_unique<mitigations::Para>(machine.dram());
        if (protect && defense == Defense::kTrr)
            trr = std::make_unique<mitigations::Trr>(machine.dram());
        if (protect && defense == Defense::kAnvil) {
            anvil = std::make_unique<detector::Anvil>(
                machine, pmu, detector::AnvilConfig::baseline());
            anvil->start();
        }
        workload::Workload load(machine, workload::spec_profile("mcf"));
        const Tick start = machine.now();
        load.run_ops(1500000);
        return machine.now() - start;
    };
    return static_cast<double>(run(true)) /
           static_cast<double>(run(false));
}

}  // namespace

int
main()
{
    TextTable table("Mitigation comparison: which defenses stop which "
                    "attacks, and at what cost");
    table.set_header({"Defense", "1-sided CLFLUSH", "2-sided CLFLUSH",
                      "2-sided CLFLUSH-free", "mcf slowdown",
                      "deployable on existing HW?"});
    const Defense defenses[] = {Defense::kNone, Defense::kDoubleRefresh,
                                Defense::kNoClflush, Defense::kPara,
                                Defense::kTrr, Defense::kAnvil};
    for (const Defense defense : defenses) {
        std::vector<std::string> row{name_of(defense)};
        for (const char *attack :
             {"single-sided", "double-sided", "clflush-free"}) {
            row.push_back(attack_lands(defense, attack) ? "FLIPPED"
                                                        : "stopped");
        }
        row.push_back(TextTable::fmt(benign_slowdown(defense), 4));
        const bool hardware = defense == Defense::kPara ||
                              defense == Defense::kTrr;
        row.push_back(hardware ? "no (new silicon)" : "yes");
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nPaper's claims: double refresh loses to the 15 ms "
                 "double-sided attack; the CLFLUSH ban loses to the "
                 "eviction-based attack; hardware TRR/PARA work but do "
                 "not exist in deployed DRAM; ANVIL stops all three on "
                 "stock hardware for ~1-3 % overhead.\n";
    return 0;
}
