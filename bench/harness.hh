/**
 * @file
 * Shared experiment apparatus for the paper-reproduction benchmarks: a
 * machine + attacker bundle, weakest-victim target selection, and
 * refresh-phase alignment, so each bench binary reads like its table.
 */
#ifndef ANVIL_BENCH_HARNESS_HH
#define ANVIL_BENCH_HARNESS_HH

#include <algorithm>
#include <memory>
#include <optional>
#include <string>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "workload/workload.hh"

namespace anvil::bench {

/** A machine with one attacker process that has scanned a 64 MB buffer. */
class Testbed
{
  public:
    static constexpr std::uint64_t kBufferBytes = 64ULL << 20;

    explicit Testbed(mem::SystemConfig config = mem::SystemConfig{})
        : machine(config),
          pmu(machine),
          attacker(&machine.create_process()),
          buffer(attacker->mmap(kBufferBytes)),
          layout(*attacker, machine.dram().address_map(),
                 machine.hierarchy())
    {
        layout.scan(buffer, kBufferBytes);
    }

    /** Advances the clock to just after @p victim_row's next refresh. */
    void
    align_to_refresh(std::uint32_t victim_row)
    {
        const auto &schedule = machine.dram().refresh_schedule();
        machine.advance(schedule.next_refresh(victim_row, machine.now()) +
                        10 - machine.now());
    }

    /** True if @p victim has the module's minimum flip threshold. */
    bool
    is_weakest(std::uint32_t flat_bank, std::uint32_t victim_row) const
    {
        return machine.dram().disturbance(flat_bank).threshold_of(
                   victim_row) == machine.dram().config().flip_threshold;
    }

    /** First double-sided target whose victim is maximally sensitive. */
    std::optional<attack::DoubleSidedTarget>
    weakest_double_sided(bool require_slice_compatible = false)
    {
        for (const auto &t : layout.find_double_sided_targets(1024)) {
            if (!is_weakest(t.flat_bank, t.victim_row))
                continue;
            if (require_slice_compatible &&
                !attack::ClflushFreeDoubleSided::slice_compatible(
                    machine, attacker->pid(), t)) {
                continue;
            }
            return t;
        }
        return std::nullopt;
    }

    /** First single-sided target with a maximally sensitive victim. */
    std::optional<attack::SingleSidedTarget>
    weakest_single_sided()
    {
        for (const auto &t : layout.find_single_sided_targets(1024, 64)) {
            if (is_weakest(t.flat_bank, t.aggressor_row + 1))
                return t;
        }
        return std::nullopt;
    }

    mem::MemorySystem machine;
    pmu::Pmu pmu;
    mem::AddressSpace *attacker;
    Addr buffer;
    attack::MemoryLayout layout;
};

/**
 * Rate-boosted importance sampling for false-positive measurements.
 *
 * Benchmarks' conflict-thrash phases arrive as a Poisson process at
 * tenths of a hertz, with per-phase type fractions — far too rare to
 * observe in a few simulated seconds. Since each phase contributes
 * independently to the false-positive count, boosting the arrival rate
 * and dividing the measured rate by the boost is an unbiased estimator.
 * The boost targets the *rarest* phase component (e.g. gcc's occasional
 * bursts among its many weak phases) and is capped so phases stay
 * non-overlapping.
 *
 * @return the boost factor applied (divide measured rates by it).
 */
inline double
boost_thrash_rate(workload::SpecProfile &profile,
                  double target_component_rate = 1.5,
                  double max_total_rate = 12.0)
{
    const double rate = profile.thrash_phases_per_sec;
    if (rate <= 0.0)
        return 1.0;
    double min_fraction = 1.0;
    const double weak_fraction = 1.0 - profile.thrash_burst_fraction -
                                 profile.thrash_strong_fraction;
    for (const double f : {profile.thrash_burst_fraction,
                           profile.thrash_strong_fraction,
                           weak_fraction}) {
        if (f > 1e-9)
            min_fraction = std::min(min_fraction, f);
    }
    double boost = target_component_rate / (rate * min_fraction);
    boost = std::max(1.0, std::min(boost, max_total_rate / rate));
    profile.thrash_phases_per_sec = rate * boost;
    return boost;
}

}  // namespace anvil::bench

#endif  // ANVIL_BENCH_HARNESS_HH
