/**
 * @file
 * Edge-case and state-machine tests that go beyond the per-module happy
 * paths: detector stage transitions under adversarial timing, inclusive
 * back-invalidation specifics, eviction-set failure modes, disturbance
 * boundary rows, and sampling-mode selection.
 */
#include <gtest/gtest.h>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "cache/hierarchy.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "mitigations/hardware.hh"
#include "pmu/pmu.hh"
#include "workload/workload.hh"

namespace anvil {
namespace {

// ---------------------------------------------------------------------------
// Detector state machine corners
// ---------------------------------------------------------------------------

class DetectorDetail : public ::testing::Test
{
  protected:
    DetectorDetail()
        : machine(mem::SystemConfig{}),
          pmu(machine),
          proc(&machine.create_process()),
          arena(proc->mmap(32ULL << 20))
    {
    }

    /** Issues @p n LLC-missing loads (streaming). */
    void
    misses(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            stream += cache::kLineBytes;
            if (stream >= (32ULL << 20))
                stream = 0;
            machine.access(proc->pid(), arena + stream, AccessType::kLoad);
        }
    }

    mem::MemorySystem machine;
    pmu::Pmu pmu;
    mem::AddressSpace *proc;
    Addr arena;
    std::uint64_t stream = 0;
};

TEST_F(DetectorDetail, Stage1EscalatesOnlyWhenThresholdBeatsTimer)
{
    detector::AnvilConfig config = detector::AnvilConfig::baseline();
    detector::Anvil anvil(machine, pmu, config);
    anvil.start();

    // 19 999 misses in under 6 ms: below threshold — no escalation.
    misses(config.llc_miss_threshold - 1);
    machine.advance(ms(6));
    EXPECT_EQ(anvil.stats().stage1_triggers, 0u);

    // One more burst that crosses it inside one window.
    misses(config.llc_miss_threshold + 10);
    EXPECT_EQ(anvil.stats().stage1_triggers, 1u);
}

TEST_F(DetectorDetail, SlowTrickleNeverEscalates)
{
    // The same total misses spread across many windows never trigger:
    // the counter re-arms each window.
    detector::AnvilConfig config = detector::AnvilConfig::baseline();
    detector::Anvil anvil(machine, pmu, config);
    anvil.start();
    for (int window = 0; window < 20; ++window) {
        misses(config.llc_miss_threshold / 2);
        machine.advance(ms(6));
    }
    EXPECT_EQ(anvil.stats().stage1_triggers, 0u);
    EXPECT_GE(anvil.stats().stage1_windows, 20u);
}

TEST_F(DetectorDetail, StopInsideStage2CancelsSampling)
{
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.start();
    misses(25000);  // escalate into Stage 2
    EXPECT_EQ(anvil.stats().stage1_triggers, 1u);
    anvil.stop();
    EXPECT_FALSE(pmu.sampling_enabled());
    // No stage-2 completion events fire later.
    const auto windows = anvil.stats().stage2_windows;
    machine.advance(ms(50));
    EXPECT_EQ(anvil.stats().stage2_windows, windows);
}

TEST_F(DetectorDetail, RestartAfterStopResumesCleanly)
{
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.start();
    misses(25000);
    anvil.stop();
    anvil.start();
    misses(25000);
    machine.advance(ms(10));
    EXPECT_GE(anvil.stats().stage1_triggers, 2u);
}

TEST_F(DetectorDetail, SamplesBothWhenLoadsAndStoresMix)
{
    // 50/50 load/store misses => both samplers enabled (between the 10 %
    // and 90 % cutoffs), and the sample stream contains both kinds.
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.start();
    bool store = false;
    for (int i = 0; i < 50000; ++i) {
        stream += cache::kLineBytes;
        machine.access(proc->pid(), arena + stream,
                       store ? AccessType::kStore : AccessType::kLoad);
        store = !store;
    }
    EXPECT_GE(anvil.stats().stage2_windows, 1u);
}

TEST_F(DetectorDetail, OverheadScalesWithStage2Activity)
{
    // A quiet machine charges only Stage-1 bookkeeping; a saturating one
    // charges sampling + analysis every cycle.
    detector::Anvil quiet_anvil(machine, pmu,
                                detector::AnvilConfig::baseline());
    quiet_anvil.start();
    machine.advance(ms(120));
    const Tick quiet = quiet_anvil.stats().overhead;
    quiet_anvil.stop();

    detector::Anvil busy_anvil(machine, pmu,
                               detector::AnvilConfig::baseline());
    busy_anvil.start();
    const Tick deadline = machine.now() + ms(120);
    while (machine.now() < deadline)
        misses(1000);
    EXPECT_GT(busy_anvil.stats().overhead, 5 * quiet);
}

// ---------------------------------------------------------------------------
// Inclusive hierarchy specifics
// ---------------------------------------------------------------------------

TEST(HierarchyDetail, LlcEvictionBackInvalidatesCoreCaches)
{
    cache::HierarchyConfig config;
    config.l1_sets = 8;
    config.l2_sets = 32;
    config.llc_slices = 1;
    config.llc_sets_per_slice = 16;
    config.llc_ways = 2;  // tiny LLC so evictions are easy to force
    cache::CacheHierarchy h(config);

    const Addr a = 0x10000;
    h.access(a, AccessType::kLoad);
    ASSERT_TRUE(h.l1().contains(a));

    // Fill a's LLC set with conflicting lines until a is evicted.
    const std::uint32_t target_set = h.llc_set(a);
    Addr conflict = 0x200000;
    int filled = 0;
    while (filled < 4) {
        if (h.llc_set(conflict) == target_set) {
            h.access(conflict, AccessType::kLoad);
            ++filled;
        }
        conflict += cache::kLineBytes;
    }
    EXPECT_FALSE(h.llc(0).contains(a));
    // Inclusion: the back-invalidation removed it from L1/L2 too.
    EXPECT_FALSE(h.l1().contains(a));
    EXPECT_FALSE(h.l2().contains(a));
}

TEST(HierarchyDetail, NonInclusiveLlcLeavesCoreCachesAlone)
{
    cache::HierarchyConfig config;
    config.l1_sets = 8;
    config.l2_sets = 32;
    config.llc_slices = 1;
    config.llc_sets_per_slice = 16;
    config.llc_ways = 2;
    config.llc_inclusive = false;
    cache::CacheHierarchy h(config);

    const Addr a = 0x10000;
    h.access(a, AccessType::kLoad);
    const std::uint32_t target_set = h.llc_set(a);
    Addr conflict = 0x200000;
    int filled = 0;
    while (filled < 4) {
        if (h.llc_set(conflict) == target_set) {
            h.access(conflict, AccessType::kLoad);
            ++filled;
        }
        conflict += cache::kLineBytes;
    }
    EXPECT_FALSE(h.llc(0).contains(a));
    EXPECT_TRUE(h.l1().contains(a));  // still resident: no inclusion
}

// ---------------------------------------------------------------------------
// Disturbance boundary rows
// ---------------------------------------------------------------------------

TEST(DisturbanceDetail, EdgeRowsHaveOneNeighborOnly)
{
    dram::DramConfig config;
    config.ranks_per_channel = 1;
    config.banks_per_rank = 1;
    config.rows_per_bank = 64;
    config.refresh_slots = 64;
    config.variation_spread = 0.0;
    dram::RefreshSchedule schedule(config);
    std::vector<dram::FlipEvent> flips;
    dram::DisturbanceModel model(config, 0, schedule, flips);

    Tick t = 1;
    for (std::uint64_t i = 0; i <= config.flip_threshold; ++i)
        model.on_activate(0, t++);  // row 0: only row 1 exists below it
    ASSERT_EQ(flips.size(), 1u);
    EXPECT_EQ(flips[0].row, 1u);

    flips.clear();
    for (std::uint64_t i = 0; i <= config.flip_threshold; ++i)
        model.on_activate(63, t++);  // last row: only row 62
    ASSERT_EQ(flips.size(), 1u);
    EXPECT_EQ(flips[0].row, 62u);
}

// ---------------------------------------------------------------------------
// Attack library failure modes
// ---------------------------------------------------------------------------

TEST(AttackDetail, EvictionSetFailsCleanlyOnTinyBuffers)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    mem::AddressSpace &proc = machine.create_process();
    const Addr tiny = proc.mmap(16 * 4096);  // far too small
    attack::MemoryLayout layout(proc, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(tiny, 16 * 4096);
    EXPECT_THROW(layout.build_eviction_set(tiny, 12), std::runtime_error);
}

TEST(AttackDetail, NoTargetsInTinyScatteredBuffer)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    mem::AddressSpace &proc = machine.create_process();
    // Below the THP threshold: pages scatter, no adjacent-row pairs.
    const Addr tiny = proc.mmap(64 * 4096);
    attack::MemoryLayout layout(proc, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(tiny, 64 * 4096);
    EXPECT_TRUE(layout.find_double_sided_targets(8).empty());
}

TEST(AttackDetail, HammerRespectsDeadlineWithoutFlipping)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    mem::AddressSpace &proc = machine.create_process();
    const Addr buffer = proc.mmap(64ULL << 20);
    attack::MemoryLayout layout(proc, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, 64ULL << 20);
    const auto targets = layout.find_single_sided_targets(4, 64);
    ASSERT_FALSE(targets.empty());
    attack::ClflushSingleSided hammer(machine, proc.pid(),
                                      targets.front());
    // 5 ms is nowhere near enough for a single-sided flip.
    const auto result = hammer.run(ms(5));
    EXPECT_FALSE(result.flipped);
    EXPECT_NEAR(to_ms(result.duration), 5.0, 0.2);
    EXPECT_GT(result.iterations, 10000u);
}

// ---------------------------------------------------------------------------
// ANVIL + hardware mitigation composition
// ---------------------------------------------------------------------------

TEST(Composition, AnvilAndTrrCoexist)
{
    // Defense in depth: a machine with both TRR and ANVIL still stops the
    // attack and neither interferes with the other.
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    mitigations::Trr trr(machine.dram(), 32000);
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.start();

    mem::AddressSpace &attacker = machine.create_process();
    const Addr buffer = attacker.mmap(64ULL << 20);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, 64ULL << 20);
    const auto targets = layout.find_double_sided_targets(4);
    ASSERT_FALSE(targets.empty());
    attack::ClflushDoubleSided hammer(machine, attacker.pid(),
                                      targets.front());
    EXPECT_FALSE(hammer.run(ms(128)).flipped);
    EXPECT_TRUE(machine.dram().flips().empty());
}

}  // namespace
}  // namespace anvil
