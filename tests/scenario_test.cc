/**
 * @file
 * Tests of the declarative scenario layer (src/scenario): registry
 * naming, builder determinism, ground-truth scoping of the detection
 * oracle, and byte-exact golden-JSON equivalence of a migrated sweep.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/error.hh"
#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"
#include "scenario/spec.hh"
#include "scenario/validate.hh"

using namespace anvil;

namespace {

scenario::SweepFactory
dummy_factory(const std::string &name)
{
    return {name, "test factory", "",
            [](const runner::CliOptions &) {
                return scenario::SweepSpec{};
            }};
}

TEST(ScenarioRegistry, LookupFindsRegisteredFactories)
{
    scenario::ScenarioRegistry registry;
    registry.add(dummy_factory("alpha"));
    registry.add(dummy_factory("beta"));

    ASSERT_NE(registry.find("alpha"), nullptr);
    EXPECT_EQ(registry.find("alpha")->name, "alpha");
    EXPECT_EQ(registry.find("missing"), nullptr);
    EXPECT_EQ(registry.at("beta").name, "beta");
    EXPECT_THROW(registry.at("missing"), std::out_of_range);
}

TEST(ScenarioRegistry, RejectsDuplicateNames)
{
    scenario::ScenarioRegistry registry;
    registry.add(dummy_factory("alpha"));
    EXPECT_THROW(registry.add(dummy_factory("alpha")),
                 std::invalid_argument);
}

TEST(ScenarioRegistry, PaperRegistryListsEveryTableAndFigure)
{
    const scenario::ScenarioRegistry &registry =
        scenario::paper_registry();
    for (const char *name :
         {"table1_attacks", "fig1_pattern", "table3_detection",
          "table4_false_positives", "table5_fp_sensitivity",
          "fig3_overhead", "fig4_sensitivity", "mitigation_comparison",
          "mitigation_matrix"}) {
        EXPECT_NE(registry.find(name), nullptr) << name;
    }
}

/** A small attack-under-detector scenario shared by the builder tests. */
scenario::ScenarioSpec
detection_spec()
{
    scenario::ScenarioSpec spec;
    spec.name = "test-detection";
    spec.detector = detector::AnvilConfig::baseline();
    spec.pre_attack = {ms(1), 0, ""};
    spec.attacks = {{scenario::AttackKind::kClflushDoubleSided}};
    spec.run.mode = scenario::RunMode::kInterleaveFor;
    spec.run.duration = ms(24);
    spec.outputs = {scenario::Output::kDetections, scenario::Output::kFlips};
    return spec;
}

runner::TrialContext
context_for(const scenario::ScenarioSpec &spec, std::uint64_t trial)
{
    runner::TrialSpec ts;
    ts.scenario = spec.name;
    ts.trial = trial;
    ts.seed = runner::trial_seed(0x5eedULL, spec.name, trial);
    return runner::TrialContext(ts);
}

TEST(ScenarioBuilder, SameSpecAndSeedIsDeterministic)
{
    const scenario::ScenarioSpec spec = detection_spec();

    detector::AnvilStats stats[2];
    std::vector<Tick> detection_times[2];
    for (int rep = 0; rep < 2; ++rep) {
        scenario::ScenarioBuilder builder(spec, context_for(spec, 0));
        scenario::Execution &exec = builder.build();
        builder.run();
        ASSERT_NE(exec.anvil(), nullptr);
        stats[rep] = exec.anvil()->stats();
        for (const auto &d : exec.anvil()->detections())
            detection_times[rep].push_back(d.time);
    }

    EXPECT_EQ(stats[0].stage1_windows, stats[1].stage1_windows);
    EXPECT_EQ(stats[0].stage1_triggers, stats[1].stage1_triggers);
    EXPECT_EQ(stats[0].stage2_windows, stats[1].stage2_windows);
    EXPECT_EQ(stats[0].detections, stats[1].detections);
    EXPECT_EQ(stats[0].selective_refreshes, stats[1].selective_refreshes);
    EXPECT_EQ(stats[0].false_positive_detections,
              stats[1].false_positive_detections);
    EXPECT_EQ(stats[0].overhead, stats[1].overhead);
    EXPECT_EQ(detection_times[0], detection_times[1]);
    EXPECT_GT(stats[0].detections, 0u);
}

/**
 * Ground-truth scoping regression (the pre-refactor table3 oracle
 * returned true unconditionally): a detection fired while the scenario's
 * attack is NOT in flight must count as a false positive, and the same
 * hammer's detections during the run phase must not.
 */
TEST(ScenarioBuilder, DetectionOutsideAttackWindowIsFalsePositive)
{
    const scenario::ScenarioSpec spec = detection_spec();
    scenario::ScenarioBuilder builder(spec, context_for(spec, 0));
    scenario::Execution &exec = builder.build();

    ASSERT_NE(exec.anvil(), nullptr);
    ASSERT_FALSE(exec.attack_active());
    ASSERT_EQ(exec.attacks().size(), 1u);

    // Drive the hammer before run(): an attack-class access pattern
    // outside the declared attack window.
    attack::Hammer &hammer = *exec.attacks()[0].hammer;
    const Tick deadline = exec.machine().now() + ms(30);
    while (exec.anvil()->stats().detections == 0 &&
           exec.machine().now() < deadline) {
        for (int i = 0; i < 512; ++i)
            hammer.step();
    }
    const detector::AnvilStats early = exec.anvil()->stats();
    ASSERT_GT(early.detections, 0u)
        << "hammering did not trigger the detector";
    EXPECT_EQ(early.false_positive_detections, early.detections)
        << "out-of-window detections must be labeled false positives";

    // The run phase marks the attack active; its detections are genuine.
    builder.run();
    const detector::AnvilStats after = exec.anvil()->stats();
    EXPECT_GT(after.detections, early.detections)
        << "the run phase should keep detecting the hammer";
    EXPECT_EQ(after.false_positive_detections,
              early.false_positive_detections)
        << "in-window detections must not be labeled false positives";
}

/**
 * Byte-exact equivalence gate for the migration: the table3 sweep run
 * through the scenario layer must reproduce the pre-refactor JSON
 * committed as tests/data/table3_golden.json (captured from the
 * hand-written bench at --trials 1 with the default master seed).
 * Parallelism must not matter, so the test runs on 2 jobs.
 */
TEST(ScenarioGolden, Table3MatchesPreRefactorJson)
{
    std::ifstream in(std::string(ANVIL_TEST_DATA_DIR) +
                     "/table3_golden.json");
    ASSERT_TRUE(in) << "missing tests/data/table3_golden.json";
    std::ostringstream golden;
    golden << in.rdbuf();

    runner::CliOptions cli;
    cli.trials = 1;
    cli.sweep.jobs = 2;
    scenario::SweepSpec spec =
        scenario::paper_registry().at("table3_detection").make(cli);
    runner::SweepRun run = scenario::run_sweep(spec, cli);

    std::ostringstream produced;
    run.sink.write_json(produced);
    EXPECT_EQ(produced.str(), golden.str());
}

/**
 * The tracker-zoo sweep is part of the parallel-determinism contract:
 * the emitted JSON must be byte-identical back-to-back and across job
 * counts (the mitigation RNG sub-stream is seeded per trial, never from
 * scheduling).
 */
TEST(ScenarioGolden, MitigationMatrixIsReproducibleAcrossJobs)
{
    const auto render = [](std::uint32_t jobs) {
        runner::CliOptions cli;
        cli.trials = 1;
        cli.sweep.jobs = jobs;
        scenario::SweepSpec spec =
            scenario::paper_registry().at("mitigation_matrix").make(cli);
        runner::SweepRun run = scenario::run_sweep(spec, cli);
        std::ostringstream out;
        run.sink.write_json(out);
        return out.str();
    };
    const std::string serial = render(1);
    EXPECT_EQ(serial, render(1));  // back-to-back
    EXPECT_EQ(serial, render(4));  // scheduling-invariant
}

// ---------------------------------------------------------------------------
// Spec validation
// ---------------------------------------------------------------------------

/** EXPECT that validate(spec) throws and the message mentions @p token. */
void
expect_invalid(const scenario::ScenarioSpec &spec, const char *token)
{
    try {
        scenario::validate(spec);
        FAIL() << "validate() accepted a spec that should fail (" << token
               << ")";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find(token), std::string::npos)
            << "actual message: " << e.what();
        EXPECT_NE(std::string(e.what()).find(spec.name), std::string::npos)
            << "message must name the offending scenario: " << e.what();
    }
}

TEST(Validate, AcceptsEveryCatalogSweep)
{
    runner::CliOptions cli;
    for (const scenario::SweepFactory &factory :
         scenario::paper_registry().all()) {
        EXPECT_NO_THROW(scenario::validate(factory.make(cli)))
            << factory.name;
    }
}

TEST(Validate, RejectsNonPowerOfTwoCacheSets)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.system.cache.llc_sets_per_slice = 1000;
    expect_invalid(spec, "llc_sets_per_slice");
}

TEST(Validate, RejectsZeroRowDram)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.system.dram.rows_per_bank = 0;
    expect_invalid(spec, "rows_per_bank");
}

TEST(Validate, RejectsHammerModeWithoutAttack)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.attacks.clear();
    spec.run.mode = scenario::RunMode::kHammerToFirstFlip;
    spec.outputs.clear();
    expect_invalid(spec, "no attacks");
}

TEST(Validate, RejectsUnknownWorkloadProfileWithKnownNames)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.workloads.push_back({"mfc", "", false});  // typo of "mcf"
    try {
        scenario::validate(spec);
        FAIL() << "unknown profile accepted";
    } catch (const Error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("mfc"), std::string::npos) << what;
        EXPECT_NE(what.find("mcf"), std::string::npos)
            << "message must list the known profiles: " << what;
    }
}

TEST(Validate, RejectsUnknownMitigationTrackerWithKnownNames)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.mitigation = "trrr";  // typo of "trr"
    try {
        scenario::validate(spec);
        FAIL() << "unknown tracker accepted";
    } catch (const Error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("trrr"), std::string::npos) << what;
        EXPECT_NE(what.find("rvc"), std::string::npos)
            << "message must list the registered trackers: " << what;
    }
}

TEST(Validate, RejectsInterleaveUntilOpsWithoutWorkloads)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.run.mode = scenario::RunMode::kInterleaveUntilOps;
    spec.run.ops = 1000;
    expect_invalid(spec, "workload");
}

TEST(Validate, RejectsInterleaveUntilOpsWithZeroQuota)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.run.mode = scenario::RunMode::kInterleaveUntilOps;
    spec.run.ops = 0;
    spec.workloads.push_back({"mcf", "", false});
    expect_invalid(spec, "run.ops");
}

TEST(Validate, RejectsMitigationOutputsWithoutTracker)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.outputs.push_back(scenario::Output::kMitigationRefreshes);
    expect_invalid(spec, "mitigation");
}

TEST(Validate, RejectsDetectorOutputsOnUnprotectedScenario)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.detector.reset();
    expect_invalid(spec, "detector");
}

TEST(Validate, RejectsEmptyAndDuplicateSweeps)
{
    scenario::SweepSpec sweep;
    sweep.name = "test-sweep";
    EXPECT_THROW(scenario::validate(sweep), Error);  // no cells

    sweep.cells = {detection_spec(), detection_spec()};
    try {
        scenario::validate(sweep);
        FAIL() << "duplicate cell names accepted";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Validate, BuilderRefusesToBuildAnInvalidSpec)
{
    scenario::ScenarioSpec spec = detection_spec();
    spec.system.cache.l1_sets = 63;
    scenario::ScenarioBuilder builder(spec, context_for(spec, 0));
    EXPECT_THROW(builder.build(), Error);
}

}  // namespace
