/**
 * @file
 * Tests for the ANVIL detector: configuration presets, the two-stage
 * state machine, detection of all three attacks (with zero bit flips),
 * bank-locality false-positive filtering, selective-refresh rates, and
 * overhead accounting.
 */
#include <gtest/gtest.h>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "workload/workload.hh"

namespace anvil::detector {
namespace {

TEST(AnvilConfig, PresetsMatchThePaper)
{
    const AnvilConfig baseline = AnvilConfig::baseline();
    EXPECT_EQ(baseline.tc, ms(6));
    EXPECT_EQ(baseline.ts, ms(6));
    EXPECT_EQ(baseline.llc_miss_threshold, 20000u);
    EXPECT_DOUBLE_EQ(baseline.samples_per_sec, 5000.0);

    const AnvilConfig light = AnvilConfig::light();
    EXPECT_EQ(light.tc, ms(6));
    EXPECT_EQ(light.llc_miss_threshold, 10000u);

    const AnvilConfig heavy = AnvilConfig::heavy();
    EXPECT_EQ(heavy.tc, ms(2));
    EXPECT_EQ(heavy.ts, ms(2));
    EXPECT_EQ(heavy.llc_miss_threshold, 20000u);
}

TEST(AnvilConfig, ThresholdDerivationFromTable1)
{
    // 220 K accesses per 64 ms scale to ~20.6 K per 6 ms; the paper
    // rounds to 20 K (Section 4.2).
    const double per_window = 220000.0 * 6.0 / 64.0;
    EXPECT_NEAR(per_window, 20625.0, 1.0);
    EXPECT_LE(AnvilConfig::baseline().llc_miss_threshold, per_window);
}

/** Machine + PMU + attacker process, shared by the detector tests. */
class AnvilTest : public ::testing::Test
{
  protected:
    AnvilTest()
    {
        machine_ = std::make_unique<mem::MemorySystem>(mem::SystemConfig{});
        pmu_ = std::make_unique<pmu::Pmu>(*machine_);
        attacker_ = &machine_->create_process();
        buffer_ = attacker_->mmap(kBufferBytes);
        layout_ = std::make_unique<attack::MemoryLayout>(
            *attacker_, machine_->dram().address_map(),
            machine_->hierarchy());
        layout_->scan(buffer_, kBufferBytes);
    }

    attack::DoubleSidedTarget
    first_target()
    {
        const auto targets = layout_->find_double_sided_targets(4);
        EXPECT_FALSE(targets.empty());
        return targets.front();
    }

    static constexpr std::uint64_t kBufferBytes = 64ULL << 20;
    std::unique_ptr<mem::MemorySystem> machine_;
    std::unique_ptr<pmu::Pmu> pmu_;
    mem::AddressSpace *attacker_ = nullptr;
    Addr buffer_ = 0;
    std::unique_ptr<attack::MemoryLayout> layout_;
};

TEST_F(AnvilTest, IdleSystemNeverEscalates)
{
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.start();
    machine_->advance(ms(100));
    anvil.stop();
    const AnvilStats &stats = anvil.stats();
    EXPECT_GT(stats.stage1_windows, 10u);
    EXPECT_EQ(stats.stage1_triggers, 0u);
    EXPECT_EQ(stats.detections, 0u);
    EXPECT_EQ(stats.selective_refreshes, 0u);
}

TEST_F(AnvilTest, StartStopIdempotent)
{
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.start();
    anvil.start();
    EXPECT_TRUE(anvil.running());
    anvil.stop();
    anvil.stop();
    EXPECT_FALSE(anvil.running());
    // Clock can still advance without detector events.
    const auto windows = anvil.stats().stage1_windows;
    machine_->advance(ms(50));
    EXPECT_EQ(anvil.stats().stage1_windows, windows);
}

TEST_F(AnvilTest, DetectsClflushAttackWithinOneRefreshPeriod)
{
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.set_ground_truth([] { return true; });
    anvil.start();

    attack::ClflushDoubleSided hammer(*machine_, attacker_->pid(),
                                      first_target());
    const Tick attack_start = machine_->now();
    const attack::HammerResult result = hammer.run(ms(64));

    EXPECT_FALSE(result.flipped);
    EXPECT_TRUE(machine_->dram().flips().empty());
    ASSERT_GE(anvil.stats().detections, 1u);
    const Tick detect_latency =
        anvil.detections().front().time - attack_start;
    // Paper Table 3: ~12.3-12.8 ms average under this configuration.
    EXPECT_LT(to_ms(detect_latency), 20.0);
    EXPECT_EQ(anvil.stats().false_positive_detections, 0u);
}

TEST_F(AnvilTest, DetectionIdentifiesTheTrueAggressorRows)
{
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.start();
    const auto target = first_target();
    attack::ClflushDoubleSided hammer(*machine_, attacker_->pid(), target);
    hammer.run(ms(40));
    ASSERT_FALSE(anvil.detections().empty());

    const Detection &d = anvil.detections().front();
    std::set<std::uint32_t> rows;
    for (const Aggressor &a : d.aggressors) {
        EXPECT_EQ(a.flat_bank, target.flat_bank);
        rows.insert(a.row);
    }
    EXPECT_TRUE(rows.count(target.victim_row - 1));
    EXPECT_TRUE(rows.count(target.victim_row + 1));
    EXPECT_GT(d.refreshes_performed, 0u);
}

TEST_F(AnvilTest, StopsClflushFreeAttack)
{
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.set_ground_truth([] { return true; });
    anvil.start();

    const auto targets = layout_->find_double_sided_targets(256);
    std::optional<attack::DoubleSidedTarget> chosen;
    for (const auto &t : targets) {
        if (attack::ClflushFreeDoubleSided::slice_compatible(
                *machine_, attacker_->pid(), t)) {
            chosen = t;
            break;
        }
    }
    ASSERT_TRUE(chosen.has_value());
    attack::ClflushFreeDoubleSided hammer(*machine_, attacker_->pid(),
                                          *chosen, *layout_);
    const attack::HammerResult result = hammer.run(ms(128));
    EXPECT_FALSE(result.flipped);
    EXPECT_TRUE(machine_->dram().flips().empty());
    EXPECT_GE(anvil.stats().detections, 1u);
}

TEST_F(AnvilTest, StopsStoreBasedAttackViaPreciseStoreSampling)
{
    // A store-only hammer produces zero qualifying loads; detection must
    // come through the Precise Store facility ("if load operations
    // account for less than 10% of all misses, only stores are sampled",
    // Section 3.3).
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.start();
    attack::ClflushDoubleSided hammer(*machine_, attacker_->pid(),
                                      first_target(), AccessType::kStore);
    const attack::HammerResult result = hammer.run(ms(128));
    EXPECT_FALSE(result.flipped);
    EXPECT_TRUE(machine_->dram().flips().empty());
    EXPECT_GE(anvil.stats().detections, 1u);
    // And the stores really were the miss stream.
    EXPECT_GT(pmu_->counter(pmu::Event::kLlcStoreMisses).value(),
              pmu_->counter(pmu::Event::kLlcLoadMisses).value());
}

TEST_F(AnvilTest, StopsSingleSidedAttack)
{
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.start();
    const auto targets = layout_->find_single_sided_targets(4, 64);
    ASSERT_FALSE(targets.empty());
    attack::ClflushSingleSided hammer(*machine_, attacker_->pid(),
                                      targets.front());
    const attack::HammerResult result = hammer.run(ms(128));
    EXPECT_FALSE(result.flipped);
    EXPECT_GE(anvil.stats().detections, 1u);
}

TEST_F(AnvilTest, SelectiveRefreshRateIsBoundedWhileUnderAttack)
{
    // Table 3: ~5-13 refreshes per 64 ms — and crucially far below any
    // rate that could itself hammer (the selective read rate must stay
    // orders of magnitude below 110 K per 64 ms).
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.start();
    attack::ClflushDoubleSided hammer(*machine_, attacker_->pid(),
                                      first_target());
    const Tick start = machine_->now();
    hammer.run(ms(256));
    const double periods = to_ms(machine_->now() - start) / 64.0;
    const double refreshes_per_period =
        static_cast<double>(anvil.stats().selective_refreshes) / periods;
    EXPECT_GT(refreshes_per_period, 1.0);
    EXPECT_LT(refreshes_per_period, 64.0);
}

TEST_F(AnvilTest, VictimWindowsNeverApproachThresholdUnderProtection)
{
    // Stronger-than-zero-flips property: with ANVIL active, the victim's
    // accumulated disturbance stays well below the flip threshold.
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.start();
    const auto target = first_target();
    attack::ClflushDoubleSided hammer(*machine_, attacker_->pid(), target);
    hammer.run(ms(200));
    const auto &model = machine_->dram().disturbance(target.flat_bank);
    const double disturbance =
        model.disturbance_of(target.victim_row, machine_->now());
    EXPECT_LT(disturbance,
              0.8 * static_cast<double>(
                        model.threshold_of(target.victim_row)));
}

TEST_F(AnvilTest, BankLocalityFilterSuppressesSingleRowMissStorms)
{
    // Paper Section 3.1: hammering needs at least two rows in one bank
    // (the row buffer absorbs single-row traffic), so single-row miss
    // storms with scattered other misses must not be flagged. Model: a
    // benign flush+reload-style self-profiler (one hot line flushed and
    // re-read) interleaved with a streaming scan.
    auto run = [](std::uint32_t min_bank_samples) {
        mem::MemorySystem machine{mem::SystemConfig{}};
        pmu::Pmu pmu(machine);
        AnvilConfig config = AnvilConfig::baseline();
        config.min_bank_samples = min_bank_samples;
        Anvil anvil(machine, pmu, config);
        anvil.set_ground_truth([] { return false; });
        anvil.start();

        mem::AddressSpace &proc = machine.create_process();
        const std::uint64_t arena_bytes = 32ULL << 20;
        const Addr arena = proc.mmap(arena_bytes);
        const Addr hot = arena;  // the profiled line
        Addr stream = arena;
        const Tick deadline = machine.now() + ms(200);
        while (machine.now() < deadline) {
            machine.access(proc.pid(), hot, AccessType::kLoad);
            machine.clflush(proc.pid(), hot);
            stream += cache::kLineBytes;
            if (stream >= arena + arena_bytes)
                stream = arena;
            machine.access(proc.pid(), stream, AccessType::kLoad);
        }
        EXPECT_TRUE(machine.dram().flips().empty());
        return anvil.stats().false_positive_detections;
    };

    // The filter is statistical (scattered misses occasionally cluster in
    // the hot row's bank), so allow a stray detection; without the filter
    // nearly every window false-positives.
    const auto with_filter = run(AnvilConfig::baseline().min_bank_samples);
    const auto without_filter = run(0);
    EXPECT_LE(with_filter, 2u);
    EXPECT_GT(without_filter, 5 * (with_filter + 1));
}

TEST_F(AnvilTest, TwoStageGateIsTheCheapPath)
{
    // The ablation behind Section 3.1's design: without the Stage-1
    // miss-rate gate the detector samples continuously, costing a
    // low-miss workload far more — and it must still stop attacks.
    auto overhead_on_quiet_workload = [](bool two_stage) {
        mem::MemorySystem machine{mem::SystemConfig{}};
        pmu::Pmu pmu(machine);
        AnvilConfig config = AnvilConfig::baseline();
        config.two_stage = two_stage;
        Anvil anvil(machine, pmu, config);
        anvil.start();
        workload::Workload load(machine, workload::spec_profile("sjeng"));
        load.run_ops(300000);
        return anvil.stats().overhead;
    };
    const Tick gated = overhead_on_quiet_workload(true);
    const Tick always_on = overhead_on_quiet_workload(false);
    EXPECT_GT(always_on, 5 * gated);

    // Single-stage still protects (it is strictly more watchful).
    AnvilConfig config = AnvilConfig::baseline();
    config.two_stage = false;
    Anvil anvil(*machine_, *pmu_, config);
    anvil.start();
    attack::ClflushDoubleSided hammer(*machine_, attacker_->pid(),
                                      first_target());
    EXPECT_FALSE(hammer.run(ms(96)).flipped);
    EXPECT_GE(anvil.stats().detections, 1u);
}

TEST_F(AnvilTest, OverheadIsChargedToTheCore)
{
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.start();
    attack::ClflushDoubleSided hammer(*machine_, attacker_->pid(),
                                      first_target());
    hammer.run(ms(64));
    EXPECT_GT(anvil.stats().overhead, 0u);
    // Overhead is a small fraction of the run, not a stall storm.
    EXPECT_LT(to_ms(anvil.stats().overhead), 10.0);
}

TEST_F(AnvilTest, ResetStatsClearsEverything)
{
    Anvil anvil(*machine_, *pmu_, AnvilConfig::baseline());
    anvil.start();
    attack::ClflushDoubleSided hammer(*machine_, attacker_->pid(),
                                      first_target());
    hammer.run(ms(40));
    ASSERT_GT(anvil.stats().detections, 0u);
    anvil.reset_stats();
    EXPECT_EQ(anvil.stats().detections, 0u);
    EXPECT_TRUE(anvil.detections().empty());
}

TEST_F(AnvilTest, HeavyConfigDetectsFasterAttacks)
{
    // Section 4.5 scenario 1: a future module flipping at half the
    // accesses (so the attack completes in ~7 ms) evades nothing if the
    // windows shrink to 2 ms.
    mem::SystemConfig config;
    config.dram.flip_threshold = 200000;  // ~55 K per side double-sided
    mem::MemorySystem machine(config);
    pmu::Pmu pmu(machine);
    mem::AddressSpace &attacker = machine.create_process();
    const Addr buffer = attacker.mmap(kBufferBytes);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, kBufferBytes);

    Anvil anvil(machine, pmu, AnvilConfig::heavy());
    anvil.start();
    const auto targets = layout.find_double_sided_targets(4);
    ASSERT_FALSE(targets.empty());
    attack::ClflushDoubleSided hammer(machine, attacker.pid(),
                                      targets.front());
    const attack::HammerResult result = hammer.run(ms(128));
    EXPECT_FALSE(result.flipped);
    EXPECT_GE(anvil.stats().detections, 1u);
}

TEST_F(AnvilTest, LightConfigDetectsSpreadOutAttacks)
{
    // Section 4.5 scenario 2: 110 K accesses spread across a whole 64 ms
    // period stay under the 20 K/6 ms baseline threshold but not under
    // ANVIL-light's 10 K. Emulate by throttling the hammer.
    mem::SystemConfig config;
    config.dram.flip_threshold = 200000;  // flips at ~55 K per side
    mem::MemorySystem machine(config);
    pmu::Pmu pmu(machine);
    mem::AddressSpace &attacker = machine.create_process();
    const Addr buffer = attacker.mmap(kBufferBytes);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, kBufferBytes);

    Anvil anvil(machine, pmu, AnvilConfig::light());
    anvil.start();
    const auto targets = layout.find_double_sided_targets(4);
    ASSERT_FALSE(targets.empty());
    attack::ClflushDoubleSided hammer(machine, attacker.pid(),
                                      targets.front());

    // ~2.3 K misses/ms: under 20 K/6 ms, over 10 K/6 ms.
    const Tick deadline = machine.now() + ms(200);
    while (machine.now() < deadline &&
           machine.dram().flips().empty()) {
        hammer.step();
        machine.advance(ns(700));
    }
    EXPECT_TRUE(machine.dram().flips().empty());
    EXPECT_GE(anvil.stats().detections, 1u);
}

}  // namespace
}  // namespace anvil::detector
