/**
 * @file
 * End-to-end integration tests: the full Table-3 scenario (attack under
 * light/heavy load with ANVIL), false-positive behaviour on benign
 * workloads (Table 4), and the slowdown methodology of Figure 3 — at
 * reduced durations suitable for CI.
 */
#include <gtest/gtest.h>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "workload/workload.hh"

namespace anvil {
namespace {

TEST(Integration, Table3HeavyLoadScenario)
{
    // CLFLUSH attack + mcf + libquantum + omnetpp, all under ANVIL:
    // detection still lands within a refresh period and no bits flip.
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);

    mem::AddressSpace &attacker = machine.create_process();
    const std::uint64_t buffer_bytes = 64ULL << 20;
    const Addr buffer = attacker.mmap(buffer_bytes);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, buffer_bytes);
    const auto targets = layout.find_double_sided_targets(4);
    ASSERT_FALSE(targets.empty());

    workload::Workload mcf(machine, workload::spec_profile("mcf"));
    workload::Workload libq(machine, workload::spec_profile("libquantum"));
    workload::Workload omnet(machine, workload::spec_profile("omnetpp"));

    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    bool attack_running = false;
    anvil.set_ground_truth([&] { return attack_running; });
    anvil.start();

    attack::ClflushDoubleSided hammer(machine, attacker.pid(),
                                      targets.front());

    attack_running = true;
    const Tick start = machine.now();
    workload::Runner runner(machine);
    runner.add([&] { hammer.step(); });
    runner.add([&] { mcf.step(); });
    runner.add([&] { libq.step(); });
    runner.add([&] { omnet.step(); });
    runner.run_for(ms(128));
    attack_running = false;

    EXPECT_TRUE(machine.dram().flips().empty()) << "bit flip under ANVIL";
    ASSERT_GE(anvil.stats().detections, 1u);
    const Tick latency = anvil.detections().front().time - start;
    // Paper: 12.8 ms average under heavy load; allow generous slack for
    // the interleaved-load timing model.
    EXPECT_LT(to_ms(latency), 40.0);
}

TEST(Integration, UnprotectedHeavyLoadStillFlips)
{
    // Control for the scenario above: without ANVIL the same mix flips.
    mem::MemorySystem machine{mem::SystemConfig{}};
    mem::AddressSpace &attacker = machine.create_process();
    const std::uint64_t buffer_bytes = 64ULL << 20;
    const Addr buffer = attacker.mmap(buffer_bytes);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, buffer_bytes);

    // Find a weakest-threshold target so the control flips quickly.
    std::optional<attack::DoubleSidedTarget> chosen;
    for (const auto &t : layout.find_double_sided_targets(64)) {
        if (machine.dram().disturbance(t.flat_bank).threshold_of(
                t.victim_row) == machine.dram().config().flip_threshold) {
            chosen = t;
            break;
        }
    }
    ASSERT_TRUE(chosen.has_value());

    workload::Workload mcf(machine, workload::spec_profile("mcf"));
    attack::ClflushDoubleSided hammer(machine, attacker.pid(), *chosen);
    workload::Runner runner(machine);
    runner.add([&] { hammer.step(); });
    runner.add([&] { mcf.step(); });
    runner.run_for(ms(160));
    EXPECT_FALSE(machine.dram().flips().empty());
}

TEST(Integration, BenignLowMissWorkloadProducesNoRefreshes)
{
    // Table 4: h264ref/hmmer-class workloads see zero superfluous
    // refreshes.
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.set_ground_truth([] { return false; });
    anvil.start();
    workload::Workload load(machine, workload::spec_profile("h264ref"));
    load.run_for(ms(200));
    EXPECT_EQ(anvil.stats().false_positive_refreshes, 0u);
}

TEST(Integration, MemoryIntensiveStreamingIsNotFlagged)
{
    // libquantum's streaming crosses Stage 1 constantly but has no row
    // locality: Stage 2 must reject it (low false positives, Table 4).
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.set_ground_truth([] { return false; });
    anvil.start();
    workload::SpecProfile profile = workload::spec_profile("libquantum");
    profile.thrash_phases_per_sec = 0.0;  // isolate the streaming part
    workload::Workload load(machine, profile);
    load.run_for(ms(200));
    EXPECT_GT(anvil.stats().stage1_triggers, 5u);
    EXPECT_EQ(anvil.stats().false_positive_refreshes, 0u);
}

TEST(Integration, SlowdownMethodologyFixedWork)
{
    // Figure 3 methodology at miniature scale: run a fixed op count with
    // and without ANVIL; the ratio must be close to 1 for a low-miss
    // benchmark and bounded for a high-miss one.
    auto run_time = [](const char *name, bool with_anvil) {
        mem::MemorySystem machine{mem::SystemConfig{}};
        pmu::Pmu pmu(machine);
        std::unique_ptr<detector::Anvil> anvil;
        if (with_anvil) {
            anvil = std::make_unique<detector::Anvil>(
                machine, pmu, detector::AnvilConfig::baseline());
            anvil->start();
        }
        workload::Workload load(machine, workload::spec_profile(name));
        const Tick start = machine.now();
        load.run_ops(400000);
        return machine.now() - start;
    };

    const double sjeng_slowdown =
        static_cast<double>(run_time("sjeng", true)) /
        static_cast<double>(run_time("sjeng", false));
    EXPECT_GT(sjeng_slowdown, 0.99);
    EXPECT_LT(sjeng_slowdown, 1.02);

    const double mcf_slowdown =
        static_cast<double>(run_time("mcf", true)) /
        static_cast<double>(run_time("mcf", false));
    EXPECT_GT(mcf_slowdown, 1.0);
    EXPECT_LT(mcf_slowdown, 1.10);
}

TEST(Integration, DoubleRefreshSlowsMemoryIntensiveWorkloads)
{
    // Figure 3's comparison point: halving the refresh interval costs
    // memory-intensive workloads measurable time, without any detector.
    auto run_time = [](Tick refresh_period) {
        mem::SystemConfig config;
        config.dram.refresh_period = refresh_period;
        mem::MemorySystem machine(config);
        workload::Workload load(machine, workload::spec_profile("mcf"));
        const Tick start = machine.now();
        load.run_ops(400000);
        return machine.now() - start;
    };
    const double slowdown = static_cast<double>(run_time(ms(32))) /
                            static_cast<double>(run_time(ms(64)));
    EXPECT_GT(slowdown, 1.003);
    EXPECT_LT(slowdown, 1.10);
}

TEST(Integration, AttackAfterAnvilUnloadSucceedsAgain)
{
    // The protection is the module, not the simulator: unloading ANVIL
    // re-exposes the machine.
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    mem::AddressSpace &attacker = machine.create_process();
    const Addr buffer = attacker.mmap(64ULL << 20);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, 64ULL << 20);
    std::optional<attack::DoubleSidedTarget> chosen;
    for (const auto &t : layout.find_double_sided_targets(64)) {
        if (machine.dram().disturbance(t.flat_bank).threshold_of(
                t.victim_row) == machine.dram().config().flip_threshold) {
            chosen = t;
            break;
        }
    }
    ASSERT_TRUE(chosen.has_value());

    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.start();
    attack::ClflushDoubleSided hammer(machine, attacker.pid(), *chosen);
    EXPECT_FALSE(hammer.run(ms(64)).flipped);

    anvil.stop();
    EXPECT_TRUE(hammer.run(ms(80)).flipped);
}

}  // namespace
}  // namespace anvil
