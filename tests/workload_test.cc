/**
 * @file
 * Tests for the synthetic SPEC2006 workload substrate: profile sanity,
 * miss-rate calibration groups, thrash-phase machinery, determinism, and
 * the multi-program runner.
 */
#include <gtest/gtest.h>

#include "common/units.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "workload/profile.hh"
#include "workload/workload.hh"

namespace anvil::workload {
namespace {

mem::SystemConfig
machine_config()
{
    return mem::SystemConfig{};
}

/** Runs @p name alone for @p duration; returns LLC misses per 6 ms. */
double
misses_per_window(const std::string &name, Tick duration)
{
    mem::MemorySystem machine(machine_config());
    pmu::Pmu pmu(machine);
    Workload load(machine, spec_profile(name));
    const Tick start = machine.now();
    load.run_for(duration);
    const double windows = to_ms(machine.now() - start) / 6.0;
    return static_cast<double>(
               pmu.counter(pmu::Event::kLlcMisses).value()) /
           windows;
}

TEST(SpecProfiles, AllTwelveBenchmarksPresent)
{
    const auto &profiles = spec2006_int();
    EXPECT_EQ(profiles.size(), 12u);
    for (const char *name :
         {"astar", "bzip2", "gcc", "gobmk", "h264ref", "hmmer",
          "libquantum", "mcf", "omnetpp", "perlbench", "sjeng",
          "xalancbmk"}) {
        EXPECT_NO_THROW(spec_profile(name));
    }
    EXPECT_THROW(spec_profile("povray"), std::out_of_range);
}

TEST(SpecProfiles, MemoryIntensiveGroupCrossesStage1Threshold)
{
    // Section 4.3: libquantum, omnetpp, mcf, xalancbmk cross the 20 K /
    // 6 ms threshold 95-99 % of the time.
    for (const char *name : {"libquantum", "mcf", "omnetpp", "xalancbmk"}) {
        EXPECT_GT(misses_per_window(name, ms(30)), 20000.0)
            << name << " should be memory intensive";
    }
}

TEST(SpecProfiles, CacheResidentGroupStaysUnderThreshold)
{
    // h264ref, gobmk, sjeng, hmmer cross the threshold < 10 % of windows.
    for (const char *name : {"h264ref", "gobmk", "sjeng", "hmmer"}) {
        EXPECT_LT(misses_per_window(name, ms(30)), 15000.0)
            << name << " should be cache resident";
    }
}

TEST(Workload, StepsAdvanceTimeAndCountOps)
{
    mem::MemorySystem machine(machine_config());
    Workload load(machine, spec_profile("sjeng"));
    const Tick before = machine.now();
    load.run_ops(1000);
    EXPECT_EQ(load.ops(), 1000u);
    EXPECT_GT(machine.now(), before);
}

TEST(Workload, DeterministicForFixedSeeds)
{
    auto run = [] {
        mem::MemorySystem machine(machine_config());
        Workload load(machine, spec_profile("gcc"));
        load.run_ops(20000);
        return machine.now();
    };
    EXPECT_EQ(run(), run());
}

TEST(Workload, DifferentSeedsDiverge)
{
    auto run = [](std::uint64_t seed) {
        mem::MemorySystem machine(machine_config());
        SpecProfile profile = spec_profile("gcc");
        profile.seed = seed;
        Workload load(machine, profile);
        load.run_ops(20000);
        return machine.now();
    };
    EXPECT_NE(run(1), run(2));
}

TEST(Workload, ThrashPhasesToggle)
{
    mem::MemorySystem machine(machine_config());
    SpecProfile profile = spec_profile("bzip2");
    profile.thrash_phases_per_sec = 500.0;  // force frequent phases
    profile.thrash_duration = ms(1.0);
    Workload load(machine, profile);

    bool saw_thrash = false;
    bool saw_normal = false;
    for (int i = 0; i < 2000000 && !(saw_thrash && saw_normal); ++i) {
        load.step();
        (load.in_thrash_phase() ? saw_thrash : saw_normal) = true;
    }
    EXPECT_TRUE(saw_thrash);
    EXPECT_TRUE(saw_normal);
}

TEST(Workload, ThrashPhaseConcentratesMissesOnFewRows)
{
    // During a strong thrash phase the two block lines miss repeatedly —
    // the row-locality signature ANVIL must distinguish from attacks.
    mem::MemorySystem machine(machine_config());
    pmu::Pmu pmu(machine);
    SpecProfile profile = spec_profile("bzip2");
    profile.thrash_phases_per_sec = 1000.0;
    profile.thrash_duration = ms(50.0);
    profile.thrash_burst_fraction = 0.0;
    profile.thrash_strong_fraction = 1.0;  // always full-speed ping-pong
    Workload load(machine, profile);

    // Get into the phase, then measure.
    while (!load.in_thrash_phase())
        load.step();
    const std::uint64_t before =
        pmu.counter(pmu::Event::kLlcMisses).value();
    const Tick t0 = machine.now();
    while (machine.now() - t0 < ms(6) && load.in_thrash_phase())
        load.step();
    const std::uint64_t misses =
        pmu.counter(pmu::Event::kLlcMisses).value() - before;
    // Full-speed ping-pong: well above the Stage-1 threshold.
    EXPECT_GT(misses, 20000u);
}

TEST(Workload, ZeroThrashProfilesNeverEnterPhases)
{
    mem::MemorySystem machine(machine_config());
    Workload load(machine, spec_profile("h264ref"));
    for (int i = 0; i < 100000; ++i) {
        load.step();
        ASSERT_FALSE(load.in_thrash_phase());
    }
}

TEST(Workload, BenignWorkloadsNeverFlipBits)
{
    // Property: no SPEC profile hammers hard enough to flip bits, even
    // with thrash phases — they are false-positive *sources*, not attacks.
    for (const char *name : {"bzip2", "libquantum", "mcf"}) {
        mem::MemorySystem machine(machine_config());
        Workload load(machine, spec_profile(name));
        load.run_for(ms(100));
        EXPECT_TRUE(machine.dram().flips().empty()) << name;
    }
}

TEST(Runner, InterleavesDriversOnOneClock)
{
    mem::MemorySystem machine(machine_config());
    Workload a(machine, spec_profile("sjeng"));
    Workload b(machine, spec_profile("hmmer"));
    Runner runner(machine);
    runner.add([&] { a.step(); });
    runner.add([&] { b.step(); });
    runner.run_for(ms(2));
    EXPECT_GT(a.ops(), 0u);
    EXPECT_GT(b.ops(), 0u);
    // Round-robin: neither driver starves.
    const double ratio = static_cast<double>(a.ops()) /
                         static_cast<double>(b.ops());
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Runner, RunUntilStopsAtDeadline)
{
    mem::MemorySystem machine(machine_config());
    Workload a(machine, spec_profile("sjeng"));
    Runner runner(machine);
    runner.add([&] { a.step(); });
    runner.run_until(ms(3));
    EXPECT_GE(machine.now(), ms(3));
    // Overshoot bounded by one step.
    EXPECT_LT(machine.now(), ms(3) + us(10));
}

}  // namespace
}  // namespace anvil::workload
