/**
 * @file
 * Unit and property tests for the cache subsystem: replacement policies
 * (with the Bit-PLRU behaviour the CLFLUSH-free attack exploits), the
 * set-associative tag store, and the inclusive sliced hierarchy.
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/replacement.hh"

namespace anvil::cache {
namespace {

Addr
line_addr(std::uint64_t n)
{
    return n * kLineBytes;
}

// ---------------------------------------------------------------------------
// Replacement policies
// ---------------------------------------------------------------------------

TEST(ReplPolicy, ParseAndToStringRoundTrip)
{
    for (ReplPolicy p :
         {ReplPolicy::kLru, ReplPolicy::kBitPlru, ReplPolicy::kNru,
          ReplPolicy::kTreePlru, ReplPolicy::kSrrip, ReplPolicy::kRandom}) {
        EXPECT_EQ(parse_policy(to_string(p)), p);
    }
    EXPECT_THROW(parse_policy("plru-ish"), std::invalid_argument);
}

TEST(LruPolicy, EvictsLeastRecentlyUsed)
{
    auto policy = make_set_policy(ReplPolicy::kLru, 4, nullptr);
    for (std::uint32_t w = 0; w < 4; ++w)
        policy->on_fill(w);
    // Touch 0 and 2; LRU is now 1.
    policy->on_access(0);
    policy->on_access(2);
    EXPECT_EQ(policy->victim(), 1u);
    policy->on_access(1);
    EXPECT_EQ(policy->victim(), 3u);
}

TEST(LruPolicy, InvalidatedWayBecomesVictim)
{
    auto policy = make_set_policy(ReplPolicy::kLru, 4, nullptr);
    for (std::uint32_t w = 0; w < 4; ++w)
        policy->on_fill(w);
    policy->on_invalidate(2);
    EXPECT_EQ(policy->victim(), 2u);
}

TEST(BitPlru, VictimIsLowestClearMruBit)
{
    auto policy = make_set_policy(ReplPolicy::kBitPlru, 4, nullptr);
    policy->on_fill(0);
    policy->on_fill(1);
    // MRU = {0, 1}; lowest clear is way 2.
    EXPECT_EQ(policy->victim(), 2u);
}

TEST(BitPlru, SettingLastMruBitClearsOthers)
{
    // Paper, Section 2.2: "When the last MRU bit is set, the other MRU
    // bits in the set are cleared."
    auto policy = make_set_policy(ReplPolicy::kBitPlru, 4, nullptr);
    for (std::uint32_t w = 0; w < 4; ++w)
        policy->on_fill(w);  // filling way 3 sets the last bit -> reset
    // Only way 3's bit survives; victim = way 0.
    EXPECT_EQ(policy->victim(), 0u);
    policy->on_access(0);
    EXPECT_EQ(policy->victim(), 1u);
}

TEST(NruPolicy, LazyClearOnExhaustion)
{
    auto policy = make_set_policy(ReplPolicy::kNru, 4, nullptr);
    for (std::uint32_t w = 0; w < 4; ++w)
        policy->on_fill(w);
    // All ref bits set: victim() clears all and picks way 0.
    EXPECT_EQ(policy->victim(), 0u);
}

TEST(TreePlru, TracksAccessPath)
{
    auto policy = make_set_policy(ReplPolicy::kTreePlru, 4, nullptr);
    for (std::uint32_t w = 0; w < 4; ++w)
        policy->on_fill(w);
    // Last fill was way 3 (right half); tree points left.
    const std::uint32_t victim = policy->victim();
    EXPECT_LT(victim, 2u);
    policy->on_access(victim);
    EXPECT_NE(policy->victim(), victim);
}

TEST(Srrip, HitPromotesToNearImminent)
{
    auto policy = make_set_policy(ReplPolicy::kSrrip, 4, nullptr);
    for (std::uint32_t w = 0; w < 4; ++w)
        policy->on_fill(w);
    policy->on_access(2);
    // Way 2 has RRPV 0; everyone else ages to 3 before eviction, so way
    // 2 is not the victim.
    EXPECT_NE(policy->victim(), 2u);
}

TEST(RandomPolicy, VictimsStayInRangeAndVary)
{
    Rng rng(9);
    auto policy = make_set_policy(ReplPolicy::kRandom, 8, &rng);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t v = policy->victim();
        EXPECT_LT(v, 8u);
        seen.insert(v);
    }
    EXPECT_GT(seen.size(), 4u);
}

/**
 * Property: with any deterministic policy, a hot line that is touched
 * between every fill is never evicted by a single conflicting fill.
 */
class PolicyPropertyTest : public ::testing::TestWithParam<ReplPolicy>
{
};

TEST_P(PolicyPropertyTest, TouchedLineSurvivesOneConflict)
{
    Rng rng(11);
    auto policy = make_set_policy(GetParam(), 8, &rng);
    if (GetParam() == ReplPolicy::kRandom)
        GTEST_SKIP() << "no recency guarantee for random replacement";
    for (std::uint32_t w = 0; w < 8; ++w)
        policy->on_fill(w);
    for (int round = 0; round < 50; ++round) {
        policy->on_access(5);
        const std::uint32_t victim = policy->victim();
        EXPECT_NE(victim, 5u) << "policy evicted the just-touched way";
        policy->on_fill(victim);
    }
}

TEST_P(PolicyPropertyTest, VictimAlwaysInRange)
{
    Rng rng(12);
    auto policy = make_set_policy(GetParam(), 12, &rng);
    for (std::uint32_t w = 0; w < 12; ++w)
        policy->on_fill(w);
    Rng driver(13);
    for (int i = 0; i < 500; ++i) {
        if (driver.next_bool(0.5))
            policy->on_access(
                static_cast<std::uint32_t>(driver.next_below(12)));
        const std::uint32_t victim = policy->victim();
        EXPECT_LT(victim, 12u);
        if (driver.next_bool(0.3))
            policy->on_fill(victim);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyPropertyTest,
    ::testing::Values(ReplPolicy::kLru, ReplPolicy::kBitPlru,
                      ReplPolicy::kNru, ReplPolicy::kTreePlru,
                      ReplPolicy::kSrrip, ReplPolicy::kRandom),
    [](const ::testing::TestParamInfo<ReplPolicy> &info) {
        return to_string(info.param);
    });

// ---------------------------------------------------------------------------
// The attack-relevant Bit-PLRU steady-state property
// ---------------------------------------------------------------------------

/**
 * The CLFLUSH-free attack's access pattern: two thrash lines alternate in
 * one way while 11 touch lines keep the other ways' MRU bits refreshed.
 * Property (on Bit-PLRU): in steady state both thrash lines miss on every
 * cycle and no touch line ever misses.
 */
TEST(BitPlruAttackPattern, TwoMissesPerIterationSteadyState)
{
    Cache cache("llc-set", 1, 12, ReplPolicy::kBitPlru, nullptr);
    const Addr a = line_addr(100);
    const Addr b = line_addr(200);
    std::vector<Addr> touches;
    for (std::uint64_t i = 0; i < 11; ++i)
        touches.push_back(line_addr(300 + i));

    auto run_cycle = [&](Addr lead) {
        int misses = 0;
        if (!cache.access(lead)) {
            cache.fill(lead);
            ++misses;
        }
        for (const Addr t : touches) {
            if (!cache.access(t)) {
                cache.fill(t);
                ++misses;
            }
        }
        return misses;
    };

    // Warm up two full iterations.
    for (int i = 0; i < 2; ++i) {
        run_cycle(a);
        run_cycle(b);
    }
    // Steady state: each half-cycle misses exactly once (the lead line).
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(run_cycle(a), 1) << "iteration " << i;
        EXPECT_EQ(run_cycle(b), 1) << "iteration " << i;
    }
}

/** The same pattern on true LRU also thrashes the pair (sanity check). */
TEST(BitPlruAttackPattern, PatternAlsoWorksOnTrueLru)
{
    Cache cache("llc-set", 1, 12, ReplPolicy::kLru, nullptr);
    const Addr a = line_addr(100);
    const Addr b = line_addr(200);
    std::vector<Addr> touches;
    for (std::uint64_t i = 0; i < 11; ++i)
        touches.push_back(line_addr(300 + i));

    auto touch_all = [&] {
        for (const Addr t : touches) {
            if (!cache.access(t))
                cache.fill(t);
        }
    };
    for (int i = 0; i < 3; ++i) {  // warmup
        if (!cache.access(a))
            cache.fill(a);
        touch_all();
        if (!cache.access(b))
            cache.fill(b);
        touch_all();
    }
    int a_misses = 0;
    for (int i = 0; i < 50; ++i) {
        if (!cache.access(a)) {
            cache.fill(a);
            ++a_misses;
        }
        touch_all();
        if (!cache.access(b))
            cache.fill(b);
        touch_all();
    }
    EXPECT_EQ(a_misses, 50);
}

// ---------------------------------------------------------------------------
// Cache tag store
// ---------------------------------------------------------------------------

TEST(Cache, HitAfterFillMissBefore)
{
    Cache cache("t", 16, 4, ReplPolicy::kLru, nullptr);
    const Addr pa = 0x1234;
    EXPECT_FALSE(cache.access(pa));
    cache.fill(pa);
    EXPECT_TRUE(cache.access(pa));
    // Same line, different byte.
    EXPECT_TRUE(cache.access(pa + 1));
    // Different line.
    EXPECT_FALSE(cache.access(pa + kLineBytes));
}

TEST(Cache, FillEvictsWhenSetFull)
{
    Cache cache("t", 1, 2, ReplPolicy::kLru, nullptr);
    EXPECT_EQ(cache.fill(line_addr(1)), std::nullopt);
    EXPECT_EQ(cache.fill(line_addr(2)), std::nullopt);
    const auto evicted = cache.fill(line_addr(3));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, line_addr(1));  // LRU
    EXPECT_FALSE(cache.contains(line_addr(1)));
    EXPECT_TRUE(cache.contains(line_addr(2)));
    EXPECT_TRUE(cache.contains(line_addr(3)));
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache cache("t", 16, 4, ReplPolicy::kLru, nullptr);
    cache.fill(0x5000);
    EXPECT_TRUE(cache.invalidate(0x5000));
    EXPECT_FALSE(cache.invalidate(0x5000));
    EXPECT_FALSE(cache.contains(0x5000));
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(Cache, SetIndexUsesLineBits)
{
    Cache cache("t", 16, 4, ReplPolicy::kLru, nullptr);
    EXPECT_EQ(cache.set_index(0), 0u);
    EXPECT_EQ(cache.set_index(kLineBytes), 1u);
    EXPECT_EQ(cache.set_index(16 * kLineBytes), 0u);  // wraps
}

TEST(Cache, StatsCount)
{
    Cache cache("t", 16, 4, ReplPolicy::kLru, nullptr);
    cache.access(0x100);  // miss
    cache.fill(0x100);
    cache.access(0x100);  // hit
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().fills, 1u);
    EXPECT_EQ(cache.size_bytes(), 16u * 4u * kLineBytes);
}

TEST(Cache, LinesInSetTelemetry)
{
    Cache cache("t", 4, 2, ReplPolicy::kLru, nullptr);
    cache.fill(line_addr(0));      // set 0
    cache.fill(line_addr(4));      // set 0 (wraps: 4 % 4 == 0)
    cache.fill(line_addr(1));      // set 1
    EXPECT_EQ(cache.lines_in_set(0).size(), 2u);
    EXPECT_EQ(cache.lines_in_set(1).size(), 1u);
    EXPECT_TRUE(cache.lines_in_set(2).empty());
}

// ---------------------------------------------------------------------------
// Hierarchy
// ---------------------------------------------------------------------------

HierarchyConfig
small_hierarchy()
{
    HierarchyConfig config;
    config.l1_sets = 8;
    config.l2_sets = 32;
    config.llc_slices = 2;
    config.llc_sets_per_slice = 128;
    return config;
}

TEST(Hierarchy, MissFillsAllLevels)
{
    CacheHierarchy h(small_hierarchy());
    const Addr pa = 0x100000;
    const auto first = h.access(pa, AccessType::kLoad);
    EXPECT_EQ(first.source, DataSource::kDram);
    EXPECT_TRUE(first.llc_miss);
    const auto second = h.access(pa, AccessType::kLoad);
    EXPECT_EQ(second.source, DataSource::kL1);
    EXPECT_EQ(second.latency, h.config().l1_latency);
    EXPECT_FALSE(second.llc_miss);
}

TEST(Hierarchy, LatenciesPerLevel)
{
    CacheHierarchy h(small_hierarchy());
    const Addr pa = 0x200000;
    EXPECT_EQ(h.access(pa, AccessType::kLoad).latency,
              h.config().llc_latency);  // miss pays LLC lookup (+DRAM)
    EXPECT_EQ(h.access(pa, AccessType::kLoad).latency,
              h.config().l1_latency);
}

TEST(Hierarchy, ClflushEvictsEverywhere)
{
    CacheHierarchy h(small_hierarchy());
    const Addr pa = 0x300000;
    h.access(pa, AccessType::kLoad);
    EXPECT_TRUE(h.present_anywhere(pa));
    EXPECT_EQ(h.clflush(pa), 3);
    EXPECT_FALSE(h.present_anywhere(pa));
    // Next access goes to DRAM again.
    EXPECT_TRUE(h.access(pa, AccessType::kLoad).llc_miss);
}

TEST(Hierarchy, SliceSelectionIsDeterministicAndBalanced)
{
    CacheHierarchy h(small_hierarchy());
    std::uint64_t counts[2] = {0, 0};
    for (Addr pa = 0; pa < (1 << 22); pa += 4096 + kLineBytes) {
        const std::uint32_t slice = h.llc_slice(pa);
        ASSERT_LT(slice, 2u);
        EXPECT_EQ(slice, h.llc_slice(pa));  // deterministic
        ++counts[slice];
    }
    const double balance = static_cast<double>(counts[0]) /
                           static_cast<double>(counts[0] + counts[1]);
    EXPECT_NEAR(balance, 0.5, 0.1);
}

TEST(Hierarchy, InclusionInvariantUnderConflictPressure)
{
    // Property: any line present in L1 or L2 is also present in the LLC.
    HierarchyConfig config = small_hierarchy();
    CacheHierarchy h(config);
    Rng rng(17);
    std::vector<Addr> pool;
    for (int i = 0; i < 2000; ++i)
        pool.push_back(rng.next_below(1 << 24) & ~(kLineBytes - 1));
    for (int i = 0; i < 20000; ++i) {
        const Addr pa = pool[rng.next_below(pool.size())];
        h.access(pa, rng.next_bool(0.3) ? AccessType::kStore
                                        : AccessType::kLoad);
    }
    // Sweep every L1/L2 set and check inclusion.
    for (std::uint32_t set = 0; set < config.l1_sets; ++set) {
        for (const Addr line : h.l1().lines_in_set(set)) {
            EXPECT_TRUE(h.llc(h.llc_slice(line)).contains(line))
                << "L1 line absent from LLC";
        }
    }
    for (std::uint32_t set = 0; set < config.l2_sets; ++set) {
        for (const Addr line : h.l2().lines_in_set(set)) {
            EXPECT_TRUE(h.llc(h.llc_slice(line)).contains(line))
                << "L2 line absent from LLC";
        }
    }
}

TEST(Hierarchy, LlcStatsAggregateSlices)
{
    CacheHierarchy h(small_hierarchy());
    for (Addr pa = 0; pa < (1 << 20); pa += 4096)
        h.access(pa, AccessType::kLoad);
    const CacheStats total = h.llc_stats();
    EXPECT_EQ(total.accesses,
              h.llc(0).stats().accesses + h.llc(1).stats().accesses);
    EXPECT_GT(total.misses, 0u);
    h.reset_stats();
    EXPECT_EQ(h.llc_stats().accesses, 0u);
    EXPECT_EQ(h.l1().stats().accesses, 0u);
}

TEST(Hierarchy, DefaultConfigMatchesSandyBridge)
{
    const HierarchyConfig config;
    EXPECT_EQ(config.llc_size_bytes(), 3ULL << 20);  // 3 MB LLC
    EXPECT_EQ(config.llc_ways, 12u);                 // 12-way
    EXPECT_EQ(config.llc_latency, 29u);              // 26-31 cycles
    EXPECT_EQ(config.llc_policy, ReplPolicy::kBitPlru);
}

}  // namespace
}  // namespace anvil::cache
