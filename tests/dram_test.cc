/**
 * @file
 * Unit tests for the DRAM subsystem: address mapping, refresh schedule,
 * the disturbance (rowhammer) model and its Table-1 calibration, row
 * buffers, and refresh stalls.
 */
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/units.hh"
#include "dram/address_map.hh"
#include "dram/config.hh"
#include "dram/disturbance.hh"
#include "dram/dram_system.hh"

namespace anvil::dram {
namespace {

DramConfig
small_config()
{
    DramConfig config;
    config.ranks_per_channel = 1;
    config.banks_per_rank = 4;
    config.rows_per_bank = 1024;
    config.refresh_slots = 1024;
    config.variation_spread = 0.0;  // uniform thresholds for unit tests
    return config;
}

TEST(DramConfig, DefaultGeometryIsThePapersModule)
{
    const DramConfig config;
    EXPECT_EQ(config.capacity_bytes(), 4ULL << 30);  // 4 GB DDR3
    EXPECT_EQ(config.total_banks(), 16u);
    EXPECT_EQ(config.t_refi(), ms(64) / 8192);  // 7.8125 us
    EXPECT_NEAR(to_us(config.t_refi()), 7.8, 0.05);
}

TEST(DramConfig, DoubleSidedAlphaCalibration)
{
    // 110K activations per side must reach exactly the 400K single-sided
    // threshold: 110K * (2 + alpha) == 400K.
    const DramConfig config;
    EXPECT_NEAR(110000.0 * (2.0 + config.double_sided_alpha), 400000.0,
                1.0);
}

TEST(AddressMap, RoundTripsEveryFieldExhaustively)
{
    const DramConfig config = small_config();
    const AddressMap map(config);
    // Property sweep over a structured sample of coordinates.
    for (std::uint32_t bank = 0; bank < config.banks_per_rank; ++bank) {
        for (std::uint32_t row = 0; row < config.rows_per_bank;
             row += 37) {
            for (std::uint32_t col = 0; col < config.row_bytes;
                 col += 1021) {
                DramCoord coord;
                coord.bank = bank;
                coord.row = row;
                coord.column = col;
                const Addr pa = map.encode(coord);
                EXPECT_EQ(map.decode(pa), coord);
            }
        }
    }
}

TEST(AddressMap, DecodeCoversWholeCapacityDensely)
{
    const DramConfig config = small_config();
    const AddressMap map(config);
    for (Addr pa = 0; pa < map.capacity(); pa += 4093) {
        const DramCoord coord = map.decode(pa);
        EXPECT_LT(coord.bank, config.banks_per_rank);
        EXPECT_LT(coord.row, config.rows_per_bank);
        EXPECT_LT(coord.column, config.row_bytes);
        EXPECT_EQ(map.encode(coord), pa);
    }
}

TEST(AddressMap, RowsAreContiguousBytes)
{
    const DramConfig config = small_config();
    const AddressMap map(config);
    // All addresses within one row_bytes-aligned block share a row.
    const DramCoord base = map.decode(0x123000);
    for (std::uint32_t off = 0; off < 64; ++off) {
        const DramCoord coord = map.decode(0x123000 + off);
        EXPECT_EQ(coord.row, base.row);
        EXPECT_EQ(coord.bank, base.bank);
    }
}

TEST(AddressMap, RowStrideSteppsRowByOne)
{
    const DramConfig config = small_config();
    const AddressMap map(config);
    const Addr pa = 0x40000;
    const DramCoord a = map.decode(pa);
    const DramCoord b = map.decode(pa + map.row_stride());
    EXPECT_EQ(b.row, a.row + 1);
    EXPECT_EQ(b.bank, a.bank);
    EXPECT_EQ(b.column, a.column);
}

TEST(AddressMap, FlatBankIsBijective)
{
    const DramConfig config;  // full 16-bank module
    const AddressMap map(config);
    std::set<std::uint32_t> seen;
    for (std::uint32_t rank = 0; rank < config.ranks_per_channel; ++rank) {
        for (std::uint32_t bank = 0; bank < config.banks_per_rank; ++bank) {
            DramCoord coord;
            coord.rank = rank;
            coord.bank = bank;
            seen.insert(map.flat_bank(coord));
        }
    }
    EXPECT_EQ(seen.size(), config.total_banks());
    EXPECT_EQ(*seen.rbegin(), config.total_banks() - 1);
}

TEST(RefreshSchedule, EveryRowRefreshedOncePerPeriod)
{
    const DramConfig config = small_config();
    const RefreshSchedule schedule(config);
    const Tick period = config.refresh_period;
    for (std::uint32_t row : {0u, 1u, 511u, 1023u}) {
        const Tick first = schedule.phase(row);
        EXPECT_LT(first, period);
        EXPECT_EQ(schedule.last_refresh(row, first), first);
        EXPECT_EQ(schedule.last_refresh(row, first + period - 1), first);
        EXPECT_EQ(schedule.last_refresh(row, first + period),
                  first + period);
    }
}

TEST(RefreshSchedule, BeforeFirstSweepRowsCountAsFresh)
{
    const DramConfig config = small_config();
    const RefreshSchedule schedule(config);
    // A late-phase row queried early was last "refreshed" at t=0.
    const std::uint32_t late_row = 1023;
    ASSERT_GT(schedule.phase(late_row), 0u);
    EXPECT_EQ(schedule.last_refresh(late_row, 1), 0u);
}

TEST(RefreshSchedule, NextRefreshIsStrictlyInFuture)
{
    const DramConfig config = small_config();
    const RefreshSchedule schedule(config);
    for (std::uint32_t row : {0u, 10u, 1000u}) {
        const Tick now = ms(10);
        const Tick next = schedule.next_refresh(row, now);
        EXPECT_GT(next, now);
        EXPECT_EQ(schedule.last_refresh(row, next), next);
    }
}

class DisturbanceTest : public ::testing::Test
{
  protected:
    DramConfig config_ = small_config();
    RefreshSchedule schedule_{config_};
    std::vector<FlipEvent> flips_;
    DisturbanceModel model_{config_, 0, schedule_, flips_};
};

TEST_F(DisturbanceTest, SingleSidedFlipsAtThreshold)
{
    const std::uint32_t aggressor = 100;
    const std::uint64_t threshold = model_.threshold_of(99);
    EXPECT_EQ(threshold, config_.flip_threshold);  // spread disabled
    // Hammer within a fraction of the refresh window so no refresh lands.
    const Tick start = schedule_.last_refresh(99, ms(1)) + 1;
    for (std::uint64_t i = 0; i < threshold; ++i) {
        model_.on_activate(aggressor, start + i);  // 1 tick apart
        // The aggressor's own activation also disturbs row 101; row 99
        // and row 101 accumulate identically.
    }
    ASSERT_GE(flips_.size(), 1u);
    // Exactly the two neighbours flip, each once.
    EXPECT_EQ(flips_.size(), 2u);
    EXPECT_EQ(flips_[0].row + flips_[1].row, 99u + 101u);
}

TEST_F(DisturbanceTest, NoFlipOneActivationShort)
{
    const std::uint32_t aggressor = 200;
    const Tick start = ms(1);
    for (std::uint64_t i = 0; i + 1 < config_.flip_threshold; ++i)
        model_.on_activate(aggressor, start + i);
    EXPECT_TRUE(flips_.empty());
}

TEST_F(DisturbanceTest, DoubleSidedFlipsSuperlinearly)
{
    // Alternate rows 299 and 301; victim 300 accumulates L + R + alpha *
    // min(L, R) and must flip at 110K per side (220K total).
    const Tick start = ms(1);
    std::uint64_t activations = 0;
    Tick t = start;
    while (flips_.empty() && activations < 150000) {
        model_.on_activate(299, t++);
        model_.on_activate(301, t++);
        ++activations;
    }
    ASSERT_FALSE(flips_.empty());
    EXPECT_EQ(flips_[0].row, 300u);
    EXPECT_NEAR(static_cast<double>(activations), 110000.0, 2.0);
}

TEST_F(DisturbanceTest, ActivationRefreshesTheAccessedRow)
{
    // Hammer row 400 halfway to the threshold, then touch victim 399
    // itself (restoring its charge); the remaining half must not flip it.
    const Tick start = ms(1);
    Tick t = start;
    const std::uint64_t half = config_.flip_threshold / 2 + 100;
    for (std::uint64_t i = 0; i < half; ++i)
        model_.on_activate(400, t++);
    model_.on_activate(399, t++);  // victim read => refreshed
    for (std::uint64_t i = 0; i < half; ++i)
        model_.on_activate(400, t++);
    for (const auto &flip : flips_)
        EXPECT_NE(flip.row, 399u);
}

TEST_F(DisturbanceTest, PeriodicRefreshResetsAccumulation)
{
    // Spread 1.5x threshold activations evenly over three refresh
    // periods: no single window accumulates enough to flip.
    const std::uint64_t total = config_.flip_threshold * 3 / 2;
    const Tick span = 3 * config_.refresh_period;
    for (std::uint64_t i = 0; i < total; ++i) {
        const Tick t = 1 + i * (span / total);
        model_.on_activate(500, t);
    }
    EXPECT_TRUE(flips_.empty());
}

TEST_F(DisturbanceTest, FlipRecordedOncePerWindow)
{
    const Tick start = ms(1);
    Tick t = start;
    for (std::uint64_t i = 0; i < config_.flip_threshold + 1000; ++i)
        model_.on_activate(600, t++);
    // 599 and 601 each flip exactly once despite continued hammering.
    EXPECT_EQ(flips_.size(), 2u);
}

TEST_F(DisturbanceTest, NeighborActivationTelemetry)
{
    const Tick start = ms(1);
    model_.on_activate(700, start);
    model_.on_activate(702, start + 1);
    const auto [left, right] = model_.neighbor_activations(701, start + 2);
    EXPECT_EQ(left, 1u);
    EXPECT_EQ(right, 1u);
    EXPECT_GT(model_.disturbance_of(701, start + 2), 2.0);  // alpha kicks in
}

TEST(DisturbanceSecondNeighbor, DistanceTwoAccumulatesAtConfiguredWeight)
{
    DramConfig config = small_config();
    config.second_neighbor_weight = 0.5;
    RefreshSchedule schedule{config};
    std::vector<FlipEvent> flips;
    DisturbanceModel model{config, 0, schedule, flips};
    Tick t = ms(1);
    for (int i = 0; i < 1000; ++i)
        model.on_activate(100, t++);
    EXPECT_DOUBLE_EQ(model.disturbance_of(101, t), 1000.0);
    EXPECT_DOUBLE_EQ(model.disturbance_of(102, t), 500.0);
    EXPECT_DOUBLE_EQ(model.disturbance_of(98, t), 500.0);
    EXPECT_DOUBLE_EQ(model.disturbance_of(103, t), 0.0);
}

TEST(DisturbanceSecondNeighbor, ClassicModuleHasNoDistanceTwoCoupling)
{
    // Regression guard for every pre-existing calibration result: the
    // default weight is zero, so distance-2 rows accumulate nothing and
    // the Table-1 single/double-sided numbers are untouched.
    const DramConfig config = small_config();
    ASSERT_EQ(config.second_neighbor_weight, 0.0);
    RefreshSchedule schedule{config};
    std::vector<FlipEvent> flips;
    DisturbanceModel model{config, 0, schedule, flips};
    Tick t = ms(1);
    for (int i = 0; i < 1000; ++i)
        model.on_activate(100, t++);
    EXPECT_DOUBLE_EQ(model.disturbance_of(102, t), 0.0);
    EXPECT_DOUBLE_EQ(model.disturbance_of(98, t), 0.0);
    EXPECT_DOUBLE_EQ(model.disturbance_of(101, t), 1000.0);
}

TEST(DisturbanceSecondNeighbor, HalfDoubleSandwichFlipsTheMiddleVictim)
{
    // The half-double access pattern at the disturbance-model level:
    // hammer the distance-2 pair (100, 104), keep the adjacent rows
    // (101, 103) charged with occasional touches. The sandwiched victim
    // 102 accumulates 2 * w2 per pair and flips; the kept-charged rows
    // never do.
    DramConfig config = small_config();
    config.second_neighbor_weight = 0.5;
    config.flip_threshold = 1000;  // keep the unit test fast
    RefreshSchedule schedule{config};
    std::vector<FlipEvent> flips;
    DisturbanceModel model{config, 0, schedule, flips};
    Tick t = ms(1);
    int pairs = 0;
    while (flips.empty() && pairs < 2000) {
        model.on_activate(100, t++);
        model.on_activate(104, t++);
        if (++pairs % 16 == 0) {
            model.on_activate(101, t++);
            model.on_activate(103, t++);
        }
    }
    ASSERT_FALSE(flips.empty());
    EXPECT_EQ(flips[0].row, 102u);
    // The victim needed roughly threshold / (2 * w2) pairs (the touches
    // of 101/103 chip in a little extra at distance 1).
    EXPECT_LT(pairs, 1000);
    EXPECT_GT(pairs, 500);
}

TEST(DisturbanceVariation, ThresholdsAreDeterministicAndSpread)
{
    DramConfig config = small_config();
    config.variation_spread = 2.0;
    RefreshSchedule schedule(config);
    std::vector<FlipEvent> flips;
    DisturbanceModel a(config, 0, schedule, flips);
    DisturbanceModel b(config, 0, schedule, flips);

    std::uint64_t min_threshold = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_threshold = 0;
    for (std::uint32_t row = 0; row < 1000; ++row) {
        EXPECT_EQ(a.threshold_of(row), b.threshold_of(row));
        min_threshold = std::min(min_threshold, a.threshold_of(row));
        max_threshold = std::max(max_threshold, a.threshold_of(row));
    }
    // One row in ten sits at the minimum; the weakest grade must appear.
    EXPECT_EQ(min_threshold, config.flip_threshold);
    EXPECT_GT(max_threshold, 2 * config.flip_threshold);
}

TEST(Bank, RowBufferHitsAndMisses)
{
    DramConfig config = small_config();
    RefreshSchedule schedule(config);
    std::vector<FlipEvent> flips;
    Bank bank(config, 0, schedule, flips);

    EXPECT_FALSE(bank.access(5, 1000));  // cold activate
    EXPECT_TRUE(bank.access(5, 1001));   // row-buffer hit
    EXPECT_FALSE(bank.access(6, 1002));  // conflict: re-activate
    EXPECT_FALSE(bank.access(5, 1003));
    EXPECT_EQ(bank.activations(), 3u);
}

TEST(Bank, RefreshCommandClosesRowBuffer)
{
    DramConfig config = small_config();
    RefreshSchedule schedule(config);
    std::vector<FlipEvent> flips;
    Bank bank(config, 0, schedule, flips);

    const Tick t_refi = config.t_refi();
    EXPECT_FALSE(bank.access(5, 10));
    // Crossing a REF boundary precharges: the same row misses again.
    EXPECT_FALSE(bank.access(5, t_refi + 10));
}

TEST(DramSystem, AccessLatencies)
{
    DramConfig config = small_config();
    DramSystem dram(config);
    // Choose a time clear of any REF window.
    const Tick t = config.t_rfc + us(1);
    const auto miss = dram.access(0x10000, t);
    EXPECT_FALSE(miss.row_hit);
    EXPECT_EQ(miss.latency, config.t_row_miss);
    const auto hit = dram.access(0x10040, t + miss.latency);
    EXPECT_TRUE(hit.row_hit);
    EXPECT_EQ(hit.latency, config.t_row_hit);
}

TEST(DramSystem, RefreshWindowStallsAccesses)
{
    DramConfig config = small_config();
    DramSystem dram(config);
    // An access arriving exactly at a REF command start waits out tRFC.
    const Tick ref_start = config.t_refi() * 3;
    const auto result = dram.access(0x20000, ref_start);
    EXPECT_EQ(result.latency, config.t_rfc + config.t_row_miss);
    EXPECT_EQ(dram.stats().refresh_stall, config.t_rfc);
}

TEST(DramSystem, RowToAddrRoundTrip)
{
    DramConfig config;  // full module
    DramSystem dram(config);
    for (std::uint32_t fb : {0u, 3u, 15u}) {
        for (std::uint32_t row : {0u, 77u, 32767u}) {
            const Addr pa = dram.row_to_addr(fb, row);
            const DramCoord coord = dram.address_map().decode(pa);
            EXPECT_EQ(coord.row, row);
            EXPECT_EQ(dram.address_map().flat_bank(coord), fb);
        }
    }
}

TEST(DramSystem, SelectiveRefreshProtectsVictim)
{
    DramConfig config = small_config();
    DramSystem dram(config);
    const AddressMap &map = dram.address_map();

    // Hammer rows 99 and 101 directly through the access path, with a
    // selective refresh of victim 100 at the halfway point.
    DramCoord low, high;
    low.row = 99;
    high.row = 101;
    const Addr a0 = map.encode(low);
    const Addr a1 = map.encode(high);

    Tick t = us(1);
    const std::uint64_t half = 70000;
    for (std::uint64_t i = 0; i < half; ++i) {
        t += dram.access(a0, t).latency;
        t += dram.access(a1, t).latency;
    }
    dram.refresh_row(0, 100, t);
    for (std::uint64_t i = 0; i < half; ++i) {
        t += dram.access(a0, t).latency;
        t += dram.access(a1, t).latency;
    }
    // 70K + 70K per side with a mid-point victim refresh: neither window
    // reaches 110K per side.
    for (const auto &flip : dram.flips())
        EXPECT_NE(flip.row, 100u);
    EXPECT_EQ(dram.stats().selective_refreshes, 1u);
}

TEST(DramSystem, UnprotectedHammerFlipsVictim)
{
    DramConfig config = small_config();
    DramSystem dram(config);
    const AddressMap &map = dram.address_map();
    DramCoord low, high;
    low.row = 99;
    high.row = 101;
    const Addr a0 = map.encode(low);
    const Addr a1 = map.encode(high);

    // The victim's first (partial) refresh window discards some early
    // accumulation, so allow up to two windows' worth of pairs.
    Tick t = us(1);
    for (std::uint64_t i = 0; i < 250000 && dram.flips().empty(); ++i) {
        t += dram.access(a0, t).latency;
        t += dram.access(a1, t).latency;
    }
    ASSERT_FALSE(dram.flips().empty());
    EXPECT_EQ(dram.flips()[0].row, 100u);
    // Time to flip at ~115.5 ns per pair should be ~13 ms — inside one
    // 64 ms refresh window.
    EXPECT_LT(dram.flips()[0].time, ms(64));
}

TEST(DramSystem, DoubledRefreshRateStopsSlowHammer)
{
    // At a 32 ms refresh period the same pacing that flips under 64 ms
    // fails if it needs more than 32 ms to accumulate.
    DramConfig config = small_config();
    config.refresh_period = ms(32);
    DramSystem dram(config);
    const AddressMap &map = dram.address_map();
    DramCoord low, high;
    low.row = 99;
    high.row = 101;
    const Addr a0 = map.encode(low);
    const Addr a1 = map.encode(high);

    // Pace one pair every 400 ns => 110K pairs needs 44 ms > 32 ms.
    Tick t = us(1);
    for (std::uint64_t i = 0; i < 250000; ++i) {
        dram.access(a0, t);
        dram.access(a1, t + ns(200));
        t += ns(400);
    }
    EXPECT_TRUE(dram.flips().empty());
}

}  // namespace
}  // namespace anvil::dram
