/**
 * @file
 * Unit tests for the simulated PMU: event counters, overflow interrupts,
 * and the PEBS load-latency / precise-store sampling facilities.
 */
#include <gtest/gtest.h>

#include "common/units.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"

namespace anvil::pmu {
namespace {

mem::SystemConfig
small_system()
{
    mem::SystemConfig c;
    c.dram.ranks_per_channel = 1;
    c.dram.banks_per_rank = 8;
    c.dram.rows_per_bank = 4096;
    return c;
}

class PmuTest : public ::testing::Test
{
  protected:
    PmuTest() : machine_(small_system()), pmu_(machine_)
    {
        proc_ = &machine_.create_process();
        arena_ = proc_->mmap(arena_bytes_);
    }

    /** Issues @p n accesses guaranteed to miss the LLC (streaming). */
    void
    stream_misses(std::uint64_t n, AccessType type = AccessType::kLoad)
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            stream_ += 64;
            if (stream_ >= arena_bytes_)
                stream_ = 0;
            machine_.access(proc_->pid(), arena_ + stream_, type);
        }
    }

    /** Issues @p n L1 hits on one line. */
    void
    hit_l1(std::uint64_t n)
    {
        machine_.access(proc_->pid(), arena_, AccessType::kLoad);
        for (std::uint64_t i = 0; i < n; ++i)
            machine_.access(proc_->pid(), arena_, AccessType::kLoad);
    }

    static constexpr std::uint64_t arena_bytes_ = 16ULL << 20;
    mem::MemorySystem machine_;
    Pmu pmu_;
    mem::AddressSpace *proc_ = nullptr;
    Addr arena_ = 0;
    std::uint64_t stream_ = 0;
};

TEST_F(PmuTest, LlcMissCounterCountsOnlyMisses)
{
    stream_misses(100);
    const std::uint64_t misses = pmu_.counter(Event::kLlcMisses).value();
    EXPECT_EQ(misses, 100u);
    hit_l1(50);
    // One cold miss from the first touch of the hit line at most.
    EXPECT_LE(pmu_.counter(Event::kLlcMisses).value(), misses + 1);
}

TEST_F(PmuTest, LoadAndStoreMissCountersSplit)
{
    stream_misses(60, AccessType::kLoad);
    stream_misses(40, AccessType::kStore);
    EXPECT_EQ(pmu_.counter(Event::kLlcLoadMisses).value(), 60u);
    EXPECT_EQ(pmu_.counter(Event::kLlcStoreMisses).value(), 40u);
    EXPECT_EQ(pmu_.counter(Event::kLlcMisses).value(), 100u);
}

TEST_F(PmuTest, RetirementCountersCountEverything)
{
    stream_misses(10, AccessType::kLoad);
    hit_l1(5);
    EXPECT_EQ(pmu_.counter(Event::kLoadsRetired).value(), 16u);
    stream_misses(3, AccessType::kStore);
    EXPECT_EQ(pmu_.counter(Event::kStoresRetired).value(), 3u);
}

TEST_F(PmuTest, OverflowInterruptFiresAtThreshold)
{
    std::uint64_t fired_at_count = 0;
    Tick fired_at_time = 0;
    pmu_.counter(Event::kLlcMisses).arm_overflow(50, [&] {
        fired_at_count = pmu_.counter(Event::kLlcMisses).value();
        fired_at_time = machine_.now();
    });
    stream_misses(100);
    EXPECT_EQ(fired_at_count, 50u);
    EXPECT_GT(fired_at_time, 0u);
    // Fires only once.
    EXPECT_FALSE(pmu_.counter(Event::kLlcMisses).armed());
}

TEST_F(PmuTest, ArmResetsCountAndDisarmCancels)
{
    stream_misses(30);
    bool fired = false;
    pmu_.counter(Event::kLlcMisses).arm_overflow(40, [&] { fired = true; });
    EXPECT_EQ(pmu_.counter(Event::kLlcMisses).value(), 0u);  // reset
    stream_misses(39);
    EXPECT_FALSE(fired);
    pmu_.counter(Event::kLlcMisses).disarm();
    stream_misses(10);
    EXPECT_FALSE(fired);
}

TEST_F(PmuTest, HandlerMayRearmItself)
{
    int fires = 0;
    std::function<void()> rearm = [&] {
        ++fires;
        if (fires < 3)
            pmu_.counter(Event::kLlcMisses).arm_overflow(10, rearm);
    };
    pmu_.counter(Event::kLlcMisses).arm_overflow(10, rearm);
    stream_misses(100);
    EXPECT_EQ(fires, 3);
}

TEST_F(PmuTest, SamplingRateMatchesConfiguredMeanPeriod)
{
    SampleConfig sc;
    sc.mean_period = us(200);  // 5000 samples/s
    sc.load_latency_threshold = 0;
    sc.sample_loads = true;
    pmu_.enable_sampling(sc);
    // Stream misses for ~6 ms of simulated time.
    const Tick start = machine_.now();
    while (machine_.now() - start < ms(6))
        stream_misses(100);
    const auto samples = pmu_.drain_samples();
    // Paper: ~30 samples per 6 ms window on average.
    EXPECT_GE(samples.size(), 18u);
    EXPECT_LE(samples.size(), 45u);
}

TEST_F(PmuTest, LoadLatencyThresholdFiltersCacheHits)
{
    SampleConfig sc;
    sc.mean_period = us(1);  // sample aggressively
    sc.load_latency_threshold =
        machine_.core().cycles_to_ticks(100);  // only DRAM-class loads
    sc.sample_loads = true;
    pmu_.enable_sampling(sc);
    hit_l1(5000);
    EXPECT_EQ(pmu_.drain_samples().size(), 0u);
    stream_misses(5000);
    const auto samples = pmu_.drain_samples();
    EXPECT_GT(samples.size(), 0u);
    for (const auto &s : samples) {
        EXPECT_EQ(s.source, DataSource::kDram);
        EXPECT_EQ(s.type, AccessType::kLoad);
        EXPECT_GE(s.latency, sc.load_latency_threshold);
        EXPECT_EQ(s.pid, proc_->pid());
    }
}

TEST_F(PmuTest, StoreSamplingCapturesStoreMisses)
{
    SampleConfig sc;
    sc.mean_period = us(1);
    sc.sample_loads = false;
    sc.sample_stores = true;
    pmu_.enable_sampling(sc);
    stream_misses(2000, AccessType::kLoad);
    EXPECT_EQ(pmu_.drain_samples().size(), 0u);  // loads not eligible
    stream_misses(2000, AccessType::kStore);
    const auto samples = pmu_.drain_samples();
    EXPECT_GT(samples.size(), 0u);
    for (const auto &s : samples)
        EXPECT_EQ(s.type, AccessType::kStore);
}

TEST_F(PmuTest, SampledVirtualAddressesAreReal)
{
    SampleConfig sc;
    sc.mean_period = us(5);
    sc.sample_loads = true;
    pmu_.enable_sampling(sc);
    stream_misses(5000);
    for (const auto &s : pmu_.drain_samples()) {
        EXPECT_GE(s.va, arena_);
        EXPECT_LT(s.va, arena_ + arena_bytes_);
        // The VA resolves through the process page table.
        EXPECT_NE(proc_->translate(s.va), kInvalidAddr);
    }
}

TEST_F(PmuTest, DisableSamplingStopsRecords)
{
    SampleConfig sc;
    sc.mean_period = us(1);
    sc.sample_loads = true;
    pmu_.enable_sampling(sc);
    stream_misses(1000);
    pmu_.disable_sampling();
    const std::size_t frozen = pmu_.pending_samples();
    stream_misses(1000);
    EXPECT_EQ(pmu_.pending_samples(), frozen);
    EXPECT_EQ(pmu_.drain_samples().size(), frozen);
    EXPECT_EQ(pmu_.pending_samples(), 0u);
}

TEST_F(PmuTest, PerPidMissAttributionSumsToTheCounter)
{
    mem::AddressSpace &other = machine_.create_process();
    const Addr arena2 = other.mmap(4ULL << 20);

    stream_misses(200);
    Addr off = 0;
    for (int i = 0; i < 150; ++i) {
        off += 64;
        machine_.access(other.pid(), arena2 + off, AccessType::kLoad);
    }
    hit_l1(50);  // hits attribute to nobody

    const std::uint64_t total = pmu_.counter(Event::kLlcMisses).value();
    EXPECT_GT(pmu_.llc_misses(proc_->pid()), 0u);
    EXPECT_GT(pmu_.llc_misses(other.pid()), 0u);
    std::uint64_t sum = 0;
    for (const std::uint64_t misses : pmu_.llc_misses_by_pid())
        sum += misses;
    EXPECT_EQ(sum, total);
    // A pid never observed reads zero, never throws.
    EXPECT_EQ(pmu_.llc_misses(42), 0u);
}

TEST_F(PmuTest, OverflowHandlerSeesTheTriggeringMissAttributed)
{
    // A Stage-1 PMI must be able to rank tenants including the very
    // miss that tripped the counter.
    std::uint64_t at_overflow = 0;
    pmu_.counter(Event::kLlcMisses)
        .arm_overflow(10, [&] {
            at_overflow = pmu_.llc_misses(proc_->pid());
        });
    stream_misses(20);
    EXPECT_EQ(at_overflow, 10u);
}

}  // namespace
}  // namespace anvil::pmu
