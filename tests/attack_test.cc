/**
 * @file
 * Tests for the attack library: pagemap scanning, target discovery,
 * eviction-set construction, and the three hammer kernels — including the
 * Table-1 calibration properties (accesses-to-flip and time-to-flip) and
 * the Section-2.1 refresh-rate results.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"

namespace anvil::attack {
namespace {

/** Full-size machine (the Table 1 platform); built once per suite. */
class AttackTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t kBufferBytes = 64ULL << 20;

    explicit AttackTest(Tick refresh_period = ms(64))
        : AttackTest(config_with_refresh(refresh_period))
    {
    }

    explicit AttackTest(const mem::SystemConfig &config)
    {
        machine_ = std::make_unique<mem::MemorySystem>(config);
        attacker_ = &machine_->create_process();
        buffer_ = attacker_->mmap(kBufferBytes);
        layout_ = std::make_unique<MemoryLayout>(
            *attacker_, machine_->dram().address_map(),
            machine_->hierarchy());
        layout_->scan(buffer_, kBufferBytes);
    }

    /**
     * Advances the clock to just after the victim row's next refresh so a
     * trial measures pure hammering time (the controlled-experiment
     * equivalent of the paper picking known-flippable modules).
     */
    void
    align_to_refresh(std::uint32_t victim_row)
    {
        const auto &schedule = machine_->dram().refresh_schedule();
        machine_->advance(
            schedule.next_refresh(victim_row, machine_->now()) + 10 -
            machine_->now());
    }

    /** First target whose victim row has the minimum flip threshold. */
    template <typename Targets>
    std::optional<typename Targets::value_type>
    weakest_target(const Targets &targets)
    {
        for (const auto &t : targets) {
            std::uint32_t row = 0;
            std::uint32_t bank = 0;
            if constexpr (std::is_same_v<typename Targets::value_type,
                                         DoubleSidedTarget>) {
                row = t.victim_row;
                bank = t.flat_bank;
            } else {
                row = t.aggressor_row + 1;
                bank = t.flat_bank;
            }
            const auto &model = machine_->dram().disturbance(bank);
            if (model.threshold_of(row) ==
                machine_->dram().config().flip_threshold) {
                return t;
            }
        }
        return std::nullopt;
    }

    static mem::SystemConfig
    config_with_refresh(Tick refresh_period)
    {
        mem::SystemConfig config;
        config.dram.refresh_period = refresh_period;
        return config;
    }

    std::unique_ptr<mem::MemorySystem> machine_;
    mem::AddressSpace *attacker_ = nullptr;
    Addr buffer_ = 0;
    std::unique_ptr<MemoryLayout> layout_;
};

TEST_F(AttackTest, ScanIndexesAllPages)
{
    EXPECT_EQ(layout_->pages_scanned(), kBufferBytes / mem::kPageBytes);
}

TEST_F(AttackTest, DoubleSidedTargetsSandwichRealVictims)
{
    const auto targets = layout_->find_double_sided_targets(32);
    ASSERT_FALSE(targets.empty());
    const auto &map = machine_->dram().address_map();
    for (const auto &t : targets) {
        const Addr pa_low = attacker_->translate(t.low_aggressor_va);
        const Addr pa_high = attacker_->translate(t.high_aggressor_va);
        const auto low = map.decode(pa_low);
        const auto high = map.decode(pa_high);
        EXPECT_EQ(map.flat_bank(low), t.flat_bank);
        EXPECT_EQ(map.flat_bank(high), t.flat_bank);
        EXPECT_EQ(low.row + 1, t.victim_row);
        EXPECT_EQ(high.row - 1, t.victim_row);
    }
}

TEST_F(AttackTest, SingleSidedTargetsShareBankWithDistantCloser)
{
    const auto targets = layout_->find_single_sided_targets(16, 64);
    ASSERT_FALSE(targets.empty());
    const auto &map = machine_->dram().address_map();
    for (const auto &t : targets) {
        const auto agg = map.decode(attacker_->translate(t.aggressor_va));
        const auto closer = map.decode(attacker_->translate(t.closer_va));
        EXPECT_EQ(map.flat_bank(agg), map.flat_bank(closer));
        EXPECT_GE(closer.row, agg.row + 64);
    }
}

TEST_F(AttackTest, EvictionSetSharesSetAndSlice)
{
    const auto targets = layout_->find_double_sided_targets(4);
    ASSERT_FALSE(targets.empty());
    const Addr target_va = targets[0].low_aggressor_va;
    const auto lines = layout_->build_eviction_set(target_va, 12);
    ASSERT_EQ(lines.size(), 12u);

    const auto &h = machine_->hierarchy();
    const Addr target_pa = attacker_->translate(target_va);
    std::set<Addr> distinct;
    for (const Addr va : lines) {
        const Addr pa = attacker_->translate(va);
        ASSERT_NE(pa, kInvalidAddr);
        EXPECT_EQ(h.llc_set(pa), h.llc_set(target_pa));
        EXPECT_EQ(h.llc_slice(pa), h.llc_slice(target_pa));
        EXPECT_NE(cache::line_of(pa), cache::line_of(target_pa));
        distinct.insert(cache::line_of(pa));
    }
    EXPECT_EQ(distinct.size(), 12u);
}

TEST_F(AttackTest, EvictionSetAvoidsTargetNeighbourhood)
{
    const auto targets = layout_->find_double_sided_targets(4);
    ASSERT_FALSE(targets.empty());
    const Addr target_va = targets[0].low_aggressor_va;
    const auto lines = layout_->build_eviction_set(target_va, 12);
    const auto &map = machine_->dram().address_map();
    const Addr target_pa = attacker_->translate(target_va);
    const auto target_coord = map.decode(target_pa);
    for (const Addr va : lines) {
        const auto coord = map.decode(attacker_->translate(va));
        if (map.flat_bank(coord) != map.flat_bank(target_coord))
            continue;
        const std::int64_t gap = static_cast<std::int64_t>(coord.row) -
                                 static_cast<std::int64_t>(target_coord.row);
        EXPECT_GT(std::abs(gap), 4);
    }
}

TEST_F(AttackTest, ClflushDoubleSidedMatchesTable1)
{
    // Table 1: double-sided with CLFLUSH — 220 K row accesses, first flip
    // at 15 ms.
    const auto target =
        weakest_target(layout_->find_double_sided_targets(64));
    ASSERT_TRUE(target.has_value());
    align_to_refresh(target->victim_row);

    ClflushDoubleSided hammer(*machine_, attacker_->pid(), *target);
    const HammerResult result = hammer.run(ms(70));
    ASSERT_TRUE(result.flipped);
    EXPECT_NEAR(static_cast<double>(result.aggressor_accesses), 220000.0,
                6000.0);
    EXPECT_GT(to_ms(result.duration), 13.0);
    EXPECT_LT(to_ms(result.duration), 19.0);
    EXPECT_EQ(result.flips[0].row, target->victim_row);
}

TEST_F(AttackTest, ClflushSingleSidedMatchesTable1)
{
    // Table 1: single-sided with CLFLUSH — 400 K accesses, ~58 ms.
    const auto targets = layout_->find_single_sided_targets(64, 64);
    const auto target = weakest_target(targets);
    ASSERT_TRUE(target.has_value());
    align_to_refresh(target->aggressor_row + 1);

    ClflushSingleSided hammer(*machine_, attacker_->pid(), *target);
    const HammerResult result = hammer.run(ms(70));
    ASSERT_TRUE(result.flipped);
    EXPECT_NEAR(static_cast<double>(result.aggressor_accesses), 400000.0,
                12000.0);
    EXPECT_GT(to_ms(result.duration), 42.0);
    EXPECT_LT(to_ms(result.duration), 64.0);
}

TEST_F(AttackTest, ClflushFreeDoubleSidedMatchesTable1)
{
    // Table 1: double-sided WITHOUT CLFLUSH — 220 K accesses, ~45 ms.
    const auto targets = layout_->find_double_sided_targets(256);
    std::optional<DoubleSidedTarget> chosen;
    for (const auto &t : targets) {
        if (!ClflushFreeDoubleSided::slice_compatible(*machine_,
                                                      attacker_->pid(), t))
            continue;
        const auto &model = machine_->dram().disturbance(t.flat_bank);
        if (model.threshold_of(t.victim_row) ==
            machine_->dram().config().flip_threshold) {
            chosen = t;
            break;
        }
    }
    ASSERT_TRUE(chosen.has_value())
        << "no slice-compatible weak target in buffer";
    align_to_refresh(chosen->victim_row);

    ClflushFreeDoubleSided hammer(*machine_, attacker_->pid(), *chosen,
                                  *layout_);
    const HammerResult result = hammer.run(ms(70));
    ASSERT_TRUE(result.flipped);
    EXPECT_NEAR(static_cast<double>(result.aggressor_accesses), 220000.0,
                8000.0);
    EXPECT_GT(to_ms(result.duration), 35.0);
    EXPECT_LT(to_ms(result.duration), 60.0);
}

TEST_F(AttackTest, ClflushFreePatternMissesOnlyAggressors)
{
    // Property behind Figure 1b: in steady state each iteration's only
    // LLC misses are the two aggressor rows.
    const auto targets = layout_->find_double_sided_targets(256);
    std::optional<DoubleSidedTarget> chosen;
    for (const auto &t : targets) {
        if (ClflushFreeDoubleSided::slice_compatible(*machine_,
                                                     attacker_->pid(), t)) {
            chosen = t;
            break;
        }
    }
    ASSERT_TRUE(chosen.has_value());
    ClflushFreeDoubleSided hammer(*machine_, attacker_->pid(), *chosen,
                                  *layout_);
    for (int i = 0; i < 4; ++i)
        hammer.step();  // warm up

    const auto before = machine_->hierarchy().llc_stats();
    const std::uint64_t acts_before =
        machine_->dram().bank(chosen->flat_bank).activations();
    const int iterations = 200;
    for (int i = 0; i < iterations; ++i)
        hammer.step();
    const auto after = machine_->hierarchy().llc_stats();

    // Exactly 2 misses per iteration...
    EXPECT_EQ(after.misses - before.misses,
              static_cast<std::uint64_t>(2 * iterations));
    // ...and every miss is an aggressor-row activation in the target bank.
    EXPECT_EQ(machine_->dram().bank(chosen->flat_bank).activations() -
                  acts_before,
              static_cast<std::uint64_t>(2 * iterations));
}

TEST_F(AttackTest, ClflushFreeThroughputSupports190KHammersPerRefresh)
{
    // Section 2.2: "This allows up to 190K double-sided hammers with-in a
    // 64ms refresh period." Our pattern must sustain at least ~150 K.
    const auto targets = layout_->find_double_sided_targets(256);
    std::optional<DoubleSidedTarget> chosen;
    for (const auto &t : targets) {
        if (ClflushFreeDoubleSided::slice_compatible(*machine_,
                                                     attacker_->pid(), t)) {
            chosen = t;
            break;
        }
    }
    ASSERT_TRUE(chosen.has_value());
    ClflushFreeDoubleSided hammer(*machine_, attacker_->pid(), *chosen,
                                  *layout_);
    for (int i = 0; i < 4; ++i)
        hammer.step();
    const Tick start = machine_->now();
    const int iterations = 5000;
    for (int i = 0; i < iterations; ++i)
        hammer.step();
    const double ns_per_iteration =
        to_ns(machine_->now() - start) / iterations;
    const double hammers_per_refresh = 64e6 / ns_per_iteration;
    EXPECT_GT(hammers_per_refresh, 150000.0);
    EXPECT_LT(hammers_per_refresh, 220000.0);
}

TEST_F(AttackTest, SliceIncompatibleTargetThrows)
{
    const auto targets = layout_->find_double_sided_targets(256);
    for (const auto &t : targets) {
        if (!ClflushFreeDoubleSided::slice_compatible(*machine_,
                                                      attacker_->pid(), t)) {
            EXPECT_THROW(ClflushFreeDoubleSided(*machine_, attacker_->pid(),
                                                t, *layout_),
                         std::runtime_error);
            return;
        }
    }
    GTEST_SKIP() << "every target happened to be compatible";
}

TEST_F(AttackTest, HalfDoubleTargetsOwnTheFullSandwich)
{
    const auto targets = layout_->find_half_double_targets(32);
    ASSERT_FALSE(targets.empty());
    const auto &map = machine_->dram().address_map();
    for (const auto &t : targets) {
        const auto far_low = map.decode(attacker_->translate(t.far_low_va));
        const auto near_low =
            map.decode(attacker_->translate(t.near_low_va));
        const auto near_high =
            map.decode(attacker_->translate(t.near_high_va));
        const auto far_high =
            map.decode(attacker_->translate(t.far_high_va));
        EXPECT_EQ(map.flat_bank(far_low), t.flat_bank);
        EXPECT_EQ(map.flat_bank(near_low), t.flat_bank);
        EXPECT_EQ(map.flat_bank(near_high), t.flat_bank);
        EXPECT_EQ(map.flat_bank(far_high), t.flat_bank);
        EXPECT_EQ(far_low.row + 2, t.victim_row);
        EXPECT_EQ(near_low.row + 1, t.victim_row);
        EXPECT_EQ(near_high.row - 1, t.victim_row);
        EXPECT_EQ(far_high.row - 2, t.victim_row);
    }
}

TEST_F(AttackTest, HalfDoubleIsInertWithoutDistanceTwoCoupling)
{
    // On the classic module (second_neighbor_weight = 0) the far
    // aggressors contribute nothing to the sandwiched victim; a run
    // well past the double-sided time-to-flip leaves memory intact.
    const auto targets = layout_->find_half_double_targets(16);
    ASSERT_FALSE(targets.empty());
    ClflushHalfDouble hammer(*machine_, attacker_->pid(), targets[0]);
    const HammerResult result = hammer.run(ms(30));
    EXPECT_FALSE(result.flipped);
    EXPECT_TRUE(machine_->dram().flips().empty());
}

TEST_F(AttackTest, HalfDoubleRejectsAZeroNearTouchInterval)
{
    const auto targets = layout_->find_half_double_targets(16);
    ASSERT_FALSE(targets.empty());
    EXPECT_THROW(
        ClflushHalfDouble(*machine_, attacker_->pid(), targets[0], 0),
        std::runtime_error);
}

TEST_F(AttackTest, ThrashRowsAreDistinctAndSpaced)
{
    const auto rows = layout_->find_thrash_rows(512);
    ASSERT_GE(rows.size(), 64u);
    const auto &map = machine_->dram().address_map();
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    std::map<std::uint32_t, std::vector<std::uint32_t>> by_bank;
    for (const Addr va : rows) {
        const auto coord = map.decode(attacker_->translate(va));
        EXPECT_TRUE(seen.insert({map.flat_bank(coord), coord.row}).second);
        by_bank[map.flat_bank(coord)].push_back(coord.row);
    }
    // Same-bank picks keep the minimum gap, so round-robin traffic never
    // concentrates disturbance on any one victim.
    for (auto &[bank, bank_rows] : by_bank) {
        std::sort(bank_rows.begin(), bank_rows.end());
        for (std::size_t i = 1; i < bank_rows.size(); ++i)
            EXPECT_GE(bank_rows[i] - bank_rows[i - 1], 3u) << bank;
    }
}

TEST_F(AttackTest, TrackerThrashCyclesDistinctRowsWithoutFlipping)
{
    const auto rows = layout_->find_thrash_rows(256);
    ASSERT_FALSE(rows.empty());
    TrackerThrash hammer(*machine_, attacker_->pid(), rows);
    EXPECT_EQ(hammer.working_set_rows(), rows.size());
    const std::uint64_t misses_before =
        machine_->dram().stats().row_misses;
    for (std::size_t i = 0; i < 4 * rows.size(); ++i)
        hammer.step();
    // Round-robin over distinct (bank, row) locations: every access
    // opens a fresh row (maximal tracker pressure)...
    EXPECT_EQ(machine_->dram().stats().row_misses - misses_before,
              4 * rows.size());
    // ...while no victim accumulates disturbance worth mentioning.
    EXPECT_TRUE(machine_->dram().flips().empty());
}

TEST_F(AttackTest, TrackerThrashRejectsAnEmptyWorkingSet)
{
    EXPECT_THROW(TrackerThrash(*machine_, attacker_->pid(), {}),
                 std::runtime_error);
}

/** Next-generation module: lower threshold plus distance-2 coupling. */
class HalfDoubleAttackTest : public AttackTest
{
  protected:
    HalfDoubleAttackTest() : AttackTest(next_gen_config()) {}

    static mem::SystemConfig
    next_gen_config()
    {
        mem::SystemConfig config;
        config.dram.flip_threshold = 200000;
        config.dram.second_neighbor_weight = 0.5;
        return config;
    }
};

TEST_F(HalfDoubleAttackTest, FlipsTheSandwichedVictim)
{
    // The victim accrues w2 from BOTH far aggressors (1.0 per iteration)
    // while the distance-3 collateral rows see only one aggressor each
    // (0.5 per iteration), so a weakest-grade victim always flips first.
    std::optional<HalfDoubleTarget> chosen;
    for (const auto &t : layout_->find_half_double_targets(1024)) {
        if (machine_->dram().disturbance(t.flat_bank).threshold_of(
                t.victim_row) ==
            machine_->dram().config().flip_threshold) {
            chosen = t;
            break;
        }
    }
    ASSERT_TRUE(chosen.has_value());
    align_to_refresh(chosen->victim_row);

    ClflushHalfDouble hammer(*machine_, attacker_->pid(), *chosen);
    const HammerResult result = hammer.run(ms(192));
    ASSERT_TRUE(result.flipped);
    EXPECT_EQ(result.flips[0].row, chosen->victim_row);
    // Pure distance-2 coupling at weight 0.5: the two aggressors must
    // jointly deliver ~2x the threshold in far accesses.
    EXPECT_GT(result.aggressor_accesses, 300000u);
    // The kept-charged near rows never flip.
    for (const auto &flip : machine_->dram().flips()) {
        EXPECT_NE(flip.row, chosen->victim_row - 1);
        EXPECT_NE(flip.row, chosen->victim_row + 1);
    }
}

/** Section 2.1: double refresh (32 ms) does NOT stop the CLFLUSH attack. */
class Attack32msTest : public AttackTest
{
  protected:
    Attack32msTest() : AttackTest(ms(32)) {}
};

TEST_F(Attack32msTest, ClflushDoubleSidedStillFlipsAt32ms)
{
    const auto target =
        weakest_target(layout_->find_double_sided_targets(64));
    ASSERT_TRUE(target.has_value());
    align_to_refresh(target->victim_row);
    ClflushDoubleSided hammer(*machine_, attacker_->pid(), *target);
    const HammerResult result = hammer.run(ms(40));
    EXPECT_TRUE(result.flipped);
    EXPECT_LT(to_ms(result.duration), 32.0);
}

TEST_F(Attack32msTest, SingleSidedIsDefeatedBy32ms)
{
    const auto target =
        weakest_target(layout_->find_single_sided_targets(64, 64));
    ASSERT_TRUE(target.has_value());
    align_to_refresh(target->aggressor_row + 1);
    ClflushSingleSided hammer(*machine_, attacker_->pid(), *target);
    // Two full refresh periods of trying.
    const HammerResult result = hammer.run(ms(64));
    EXPECT_FALSE(result.flipped);
}

TEST_F(Attack32msTest, ClflushFreeIsDefeatedBy32ms)
{
    // Table 1 discussion: "we are unable to yet rowhammer memory in less
    // than 32ms without use of the CLFLUSH instruction."
    const auto targets = layout_->find_double_sided_targets(256);
    std::optional<DoubleSidedTarget> chosen;
    for (const auto &t : targets) {
        if (!ClflushFreeDoubleSided::slice_compatible(*machine_,
                                                      attacker_->pid(), t))
            continue;
        const auto &model = machine_->dram().disturbance(t.flat_bank);
        if (model.threshold_of(t.victim_row) ==
            machine_->dram().config().flip_threshold) {
            chosen = t;
            break;
        }
    }
    ASSERT_TRUE(chosen.has_value());
    align_to_refresh(chosen->victim_row);
    ClflushFreeDoubleSided hammer(*machine_, attacker_->pid(), *chosen,
                                  *layout_);
    const HammerResult result = hammer.run(ms(64));
    EXPECT_FALSE(result.flipped);
}

/** Section 5.2.1: flips remain possible even at a 16 ms refresh period. */
class Attack16msTest : public AttackTest
{
  protected:
    Attack16msTest() : AttackTest(ms(16)) {}
};

TEST_F(Attack16msTest, ClflushDoubleSidedStillFlipsAt16ms)
{
    const auto target =
        weakest_target(layout_->find_double_sided_targets(64));
    ASSERT_TRUE(target.has_value());
    align_to_refresh(target->victim_row);
    ClflushDoubleSided hammer(*machine_, attacker_->pid(), *target);
    const HammerResult result = hammer.run(ms(40));
    EXPECT_TRUE(result.flipped);
    EXPECT_LT(to_ms(result.duration), 16.0);
}

}  // namespace
}  // namespace anvil::attack
