/**
 * @file
 * Unit tests for the discrete-event core (event queue, periodic timer),
 * including the nested time-advance behaviour the ANVIL module relies on.
 */
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hh"
#include "sim/event_queue.hh"

namespace anvil::sim {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, FiresEventsInTimestampOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(30, [&] { order.push_back(3); });
    q.schedule_at(10, [&] { order.push_back(1); });
    q.schedule_at(20, [&] { order.push_back(2); });
    q.advance_to(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, EqualDeadlinesFireFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(5, [&] { order.push_back(1); });
    q.schedule_at(5, [&] { order.push_back(2); });
    q.schedule_at(5, [&] { order.push_back(3); });
    q.advance_to(5);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, HandlerObservesItsDeadline)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule_at(42, [&] { seen = q.now(); });
    q.advance_to(100);
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, EventsBeyondTargetStayPending)
{
    EventQueue q;
    bool fired = false;
    q.schedule_at(50, [&] { fired = true; });
    q.advance_to(49);
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.pending(), 1u);
    q.advance_to(50);
    EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule_at(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // already gone
    q.advance_to(20);
    EXPECT_FALSE(fired);
}

TEST(EventQueue, HandlersMayScheduleFurtherDueEvents)
{
    EventQueue q;
    std::vector<Tick> fires;
    q.schedule_at(10, [&] {
        fires.push_back(q.now());
        q.schedule_at(15, [&] { fires.push_back(q.now()); });
    });
    q.advance_to(20);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, NestedElapseKeepsClockMonotonic)
{
    // An event handler that itself elapses time (ANVIL charging detector
    // overhead) must not make the clock run backwards afterwards.
    EventQueue q;
    std::vector<Tick> trace;
    q.schedule_at(10, [&] {
        q.elapse(100);  // nested: pushes now to 110
        trace.push_back(q.now());
    });
    q.schedule_at(50, [&] { trace.push_back(q.now()); });
    q.advance_to(60);
    ASSERT_EQ(trace.size(), 2u);
    // The t=50 event fires *during* the nested elapse (at its own
    // deadline), before the outer handler resumes at t=110.
    EXPECT_EQ(trace[0], 50u);
    EXPECT_EQ(trace[1], 110u);
    EXPECT_EQ(q.now(), 110u);  // never pulled back to 60
}

TEST(EventQueue, NextDeadlineReportsEarliest)
{
    EventQueue q;
    EXPECT_EQ(q.next_deadline(), std::numeric_limits<Tick>::max());
    q.schedule_at(30, [] {});
    q.schedule_at(20, [] {});
    EXPECT_EQ(q.next_deadline(), 20u);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    q.advance_to(100);
    Tick fired_at = 0;
    q.schedule_in(5, [&] { fired_at = q.now(); });
    q.advance_to(200);
    EXPECT_EQ(fired_at, 105u);
}

TEST(PeriodicTimer, FiresEveryPeriod)
{
    EventQueue q;
    int fires = 0;
    PeriodicTimer timer(q, 10, [&] { ++fires; });
    timer.start();
    q.advance_to(55);
    EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, StopHaltsFiring)
{
    EventQueue q;
    int fires = 0;
    PeriodicTimer timer(q, 10, [&] { ++fires; });
    timer.start();
    q.advance_to(25);
    timer.stop();
    q.advance_to(100);
    EXPECT_EQ(fires, 2);
    EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, CallbackMayStopItself)
{
    EventQueue q;
    int fires = 0;
    PeriodicTimer self(q, 10, [&] {
        ++fires;
        if (fires >= 2)
            self.stop();
    });
    self.start();
    q.advance_to(100);
    EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, RestartResetsPhase)
{
    EventQueue q;
    std::vector<Tick> fires;
    PeriodicTimer timer(q, 10, [&] { fires.push_back(q.now()); });
    timer.start();
    q.advance_to(15);
    timer.start();  // restart at t=15: next fire at 25
    q.advance_to(30);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 25}));
}

TEST(PeriodicTimer, DestructionCancelsCleanly)
{
    EventQueue q;
    int fires = 0;
    {
        PeriodicTimer timer(q, 10, [&] { ++fires; });
        timer.start();
    }
    q.advance_to(100);
    EXPECT_EQ(fires, 0);
}

}  // namespace
}  // namespace anvil::sim
