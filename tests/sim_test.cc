/**
 * @file
 * Unit tests for the discrete-event core (event queue, periodic timer),
 * including the nested time-advance behaviour the ANVIL module relies on.
 */
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "sim/event_queue.hh"

namespace anvil::sim {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, FiresEventsInTimestampOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(30, [&] { order.push_back(3); });
    q.schedule_at(10, [&] { order.push_back(1); });
    q.schedule_at(20, [&] { order.push_back(2); });
    q.advance_to(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, EqualDeadlinesFireFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(5, [&] { order.push_back(1); });
    q.schedule_at(5, [&] { order.push_back(2); });
    q.schedule_at(5, [&] { order.push_back(3); });
    q.advance_to(5);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, HandlerObservesItsDeadline)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule_at(42, [&] { seen = q.now(); });
    q.advance_to(100);
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, EventsBeyondTargetStayPending)
{
    EventQueue q;
    bool fired = false;
    q.schedule_at(50, [&] { fired = true; });
    q.advance_to(49);
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.pending(), 1u);
    q.advance_to(50);
    EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule_at(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));  // already gone
    q.advance_to(20);
    EXPECT_FALSE(fired);
}

TEST(EventQueue, HandlersMayScheduleFurtherDueEvents)
{
    EventQueue q;
    std::vector<Tick> fires;
    q.schedule_at(10, [&] {
        fires.push_back(q.now());
        q.schedule_at(15, [&] { fires.push_back(q.now()); });
    });
    q.advance_to(20);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, NestedElapseKeepsClockMonotonic)
{
    // An event handler that itself elapses time (ANVIL charging detector
    // overhead) must not make the clock run backwards afterwards.
    EventQueue q;
    std::vector<Tick> trace;
    q.schedule_at(10, [&] {
        q.elapse(100);  // nested: pushes now to 110
        trace.push_back(q.now());
    });
    q.schedule_at(50, [&] { trace.push_back(q.now()); });
    q.advance_to(60);
    ASSERT_EQ(trace.size(), 2u);
    // The t=50 event fires *during* the nested elapse (at its own
    // deadline), before the outer handler resumes at t=110.
    EXPECT_EQ(trace[0], 50u);
    EXPECT_EQ(trace[1], 110u);
    EXPECT_EQ(q.now(), 110u);  // never pulled back to 60
}

TEST(EventQueue, NextDeadlineReportsEarliest)
{
    EventQueue q;
    EXPECT_EQ(q.next_deadline(), std::numeric_limits<Tick>::max());
    q.schedule_at(30, [] {});
    q.schedule_at(20, [] {});
    EXPECT_EQ(q.next_deadline(), 20u);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    q.advance_to(100);
    Tick fired_at = 0;
    q.schedule_in(5, [&] { fired_at = q.now(); });
    q.advance_to(200);
    EXPECT_EQ(fired_at, 105u);
}

TEST(PeriodicTimer, FiresEveryPeriod)
{
    EventQueue q;
    int fires = 0;
    PeriodicTimer timer(q, 10, [&] { ++fires; });
    timer.start();
    q.advance_to(55);
    EXPECT_EQ(fires, 5);
}

TEST(PeriodicTimer, StopHaltsFiring)
{
    EventQueue q;
    int fires = 0;
    PeriodicTimer timer(q, 10, [&] { ++fires; });
    timer.start();
    q.advance_to(25);
    timer.stop();
    q.advance_to(100);
    EXPECT_EQ(fires, 2);
    EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, CallbackMayStopItself)
{
    EventQueue q;
    int fires = 0;
    PeriodicTimer self(q, 10, [&] {
        ++fires;
        if (fires >= 2)
            self.stop();
    });
    self.start();
    q.advance_to(100);
    EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, RestartResetsPhase)
{
    EventQueue q;
    std::vector<Tick> fires;
    PeriodicTimer timer(q, 10, [&] { fires.push_back(q.now()); });
    timer.start();
    q.advance_to(15);
    timer.start();  // restart at t=15: next fire at 25
    q.advance_to(30);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 25}));
}

TEST(PeriodicTimer, DestructionCancelsCleanly)
{
    EventQueue q;
    int fires = 0;
    {
        PeriodicTimer timer(q, 10, [&] { ++fires; });
        timer.start();
    }
    q.advance_to(100);
    EXPECT_EQ(fires, 0);
}

// ---------------------------------------------------------------------------
// EventQueue stress: tombstones, compaction, handler re-entrancy
// ---------------------------------------------------------------------------

TEST(EventQueueStress, CancelFromHandlerSuppressesLaterEvent)
{
    EventQueue q;
    bool victim_fired = false;
    const EventId victim = q.schedule_at(20, [&] { victim_fired = true; });
    q.schedule_at(10, [&] { EXPECT_TRUE(q.cancel(victim)); });
    q.advance_to(30);
    EXPECT_FALSE(victim_fired);
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueStress, CancelFromHandlerAtSameDeadline)
{
    // FIFO tie-break means the first-scheduled handler runs first and may
    // cancel a same-deadline event scheduled after it.
    EventQueue q;
    std::vector<int> fires;
    EventId second = 0;
    q.schedule_at(10, [&] {
        fires.push_back(1);
        EXPECT_TRUE(q.cancel(second));
    });
    second = q.schedule_at(10, [&] { fires.push_back(2); });
    q.schedule_at(10, [&] { fires.push_back(3); });
    q.advance_to(10);
    EXPECT_EQ(fires, (std::vector<int>{1, 3}));
}

TEST(EventQueueStress, RearmFromHandlerChainsWithinOneAdvance)
{
    // A handler re-arming itself (the PeriodicTimer pattern) must keep
    // firing within the same advance_to while deadlines remain due.
    EventQueue q;
    std::vector<Tick> fires;
    std::function<void()> rearm = [&] {
        fires.push_back(q.now());
        if (fires.size() < 5)
            q.schedule_in(10, rearm);
    };
    q.schedule_at(10, rearm);
    q.advance_to(35);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 20, 30}));
    q.advance_to(100);
    EXPECT_EQ(fires, (std::vector<Tick>{10, 20, 30, 40, 50}));
}

TEST(EventQueueStress, TombstonesAccumulateThenCompact)
{
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 20; ++i)
        ids.push_back(q.schedule_at(100 + i, [] {}));
    // Below both compaction thresholds (dead <= 16): tombstones linger.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(q.cancel(ids[i]));
    EXPECT_EQ(q.pending(), 10u);
    EXPECT_EQ(q.tombstones(), 10u);
    // Crossing dead > 16 with dead * 2 > heap size sweeps them all.
    for (int i = 10; i < 17; ++i)
        EXPECT_TRUE(q.cancel(ids[i]));
    EXPECT_EQ(q.pending(), 3u);
    EXPECT_EQ(q.tombstones(), 0u);
    // The survivors still fire, in deadline order.
    std::vector<EventId> expected(ids.begin() + 17, ids.end());
    for (EventId id : expected)
        EXPECT_TRUE(q.cancel(id));
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueStress, FifoTiesSurviveInterleavedCancels)
{
    EventQueue q;
    std::vector<int> fires;
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(q.schedule_at(50, [&fires, i] { fires.push_back(i); }));
    // Cancel every other one; survivors must fire in scheduling order.
    for (int i = 0; i < 8; i += 2)
        EXPECT_TRUE(q.cancel(ids[i]));
    q.advance_to(50);
    EXPECT_EQ(fires, (std::vector<int>{1, 3, 5, 7}));
}

TEST(EventQueueStress, RandomizedTraceMatchesReferenceModel)
{
    // Deterministic random interleaving of schedule / cancel / advance_to,
    // checked against a naive ordered-map reference model. The map is keyed
    // (deadline, id) — exactly the documented firing order — so any heap,
    // tombstone, or compaction bug shows up as a sequence divergence.
    EventQueue q;
    Rng rng(0xE7E47ULL);
    std::vector<Tick> fired;          // handler-observed fire times
    std::vector<Tick> expected_fires; // reference-model prediction
    std::map<std::pair<Tick, EventId>, bool> model;  // value: live
    std::vector<EventId> cancellable;

    for (int round = 0; round < 2000; ++round) {
        const auto op = rng.next_below(10);
        if (op < 5) {
            const Tick when = q.now() + rng.next_below(200);
            const EventId id = q.schedule_at(
                when, [&fired, &q] { fired.push_back(q.now()); });
            model[{when, id}] = true;
            cancellable.push_back(id);
        } else if (op < 7 && !cancellable.empty()) {
            const auto pick = rng.next_below(cancellable.size());
            const EventId id = cancellable[pick];
            bool was_live = false;
            for (auto &entry : model) {
                if (entry.first.second == id && entry.second) {
                    entry.second = false;
                    was_live = true;
                    break;
                }
            }
            EXPECT_EQ(q.cancel(id), was_live);
        } else {
            const Tick t = q.now() + rng.next_below(150);
            // Fires due by t, in (deadline, id) order — the map's order.
            for (auto &entry : model) {
                if (entry.first.first <= t && entry.second) {
                    entry.second = false;
                    expected_fires.push_back(entry.first.first);
                }
            }
            q.advance_to(t);
            ASSERT_EQ(fired, expected_fires)
                << "round " << round << " advance_to(" << t << ")";
            EXPECT_EQ(q.now(), t);
        }
        const std::size_t live_in_model = [&] {
            std::size_t n = 0;
            for (const auto &entry : model)
                n += entry.second ? 1 : 0;
            return n;
        }();
        ASSERT_EQ(q.pending(), live_in_model) << "round " << round;
    }
}

}  // namespace
}  // namespace anvil::sim
