/**
 * @file
 * Tests of the multi-tenant process model: tenant normalization, the
 * round-robin TenantScheduler (quantum slicing, start delays), bit-exact
 * determinism of multi-tenant trials, per-tenant seed isolation, and the
 * daemon's cross-tenant detection attribution.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "common/error.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "runner/trial.hh"
#include "scenario/builder.hh"
#include "scenario/scheduler.hh"
#include "scenario/spec.hh"
#include "scenario/testbed.hh"
#include "scenario/validate.hh"

using namespace anvil;

namespace {

runner::TrialContext
context_for(const scenario::ScenarioSpec &spec, std::uint64_t trial)
{
    runner::TrialSpec ts;
    ts.scenario = spec.name;
    ts.trial = trial;
    ts.seed = runner::trial_seed(0x5eedULL, spec.name, trial);
    return runner::TrialContext(ts);
}

scenario::TenantSpec
workload_tenant(const std::string &profile, const std::string &stream,
                std::uint64_t quantum = 1)
{
    scenario::TenantSpec t;
    t.workload = scenario::WorkloadSpec{profile, stream, false};
    t.quantum_accesses = quantum;
    return t;
}

scenario::TenantSpec
attacker_tenant(scenario::AttackKind kind =
                    scenario::AttackKind::kClflushDoubleSided)
{
    scenario::TenantSpec t;
    t.attack = scenario::AttackSpec{kind};
    return t;
}

TEST(NormalizedTenants, OrdersAttacksThenWorkloadsThenExplicit)
{
    scenario::ScenarioSpec spec;
    spec.attacks = {{scenario::AttackKind::kClflushDoubleSided}};
    spec.workloads = {{"mcf", "", false}, {"mcf", "", false}};
    scenario::TenantSpec named = workload_tenant("gcc", "w:gcc");
    named.name = "hog";
    spec.tenants.push_back(named);

    const auto tenants = scenario::normalized_tenants(spec);
    ASSERT_EQ(tenants.size(), 4u);
    EXPECT_EQ(tenants[0].name, "attacker");
    EXPECT_TRUE(tenants[0].attack.has_value());
    EXPECT_EQ(tenants[1].name, "mcf");
    EXPECT_EQ(tenants[2].name, "mcf#2");  // deduped, declaration order
    EXPECT_EQ(tenants[3].name, "hog");
}

/**
 * A tiny two-process rig: each "tenant" step performs exactly one load
 * from its own space, and an observer records the pid order, so the
 * scheduler's interleave is directly visible.
 */
TEST(TenantScheduler, QuantumIsGrantedInCompletedAccesses)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    mem::AddressSpace &a = machine.create_process();
    mem::AddressSpace &b = machine.create_process();
    const Addr va_a = a.mmap(1 << 20);
    const Addr va_b = b.mmap(1 << 20);

    std::vector<Pid> order;
    machine.add_observer(
        [&order](const mem::AccessInfo &info) { order.push_back(info.pid); });

    scenario::TenantScheduler sched(machine);
    Addr off_a = 0;
    Addr off_b = 0;
    scenario::ScheduledTenant ta;
    ta.name = "a";
    ta.pid = a.pid();
    ta.quantum_accesses = 3;
    ta.step = [&] {
        off_a = (off_a + 64) % (1 << 20);
        machine.access(a.pid(), va_a + off_a, AccessType::kLoad);
    };
    scenario::ScheduledTenant tb;
    tb.name = "b";
    tb.pid = b.pid();
    tb.quantum_accesses = 1;
    tb.step = [&] {
        off_b = (off_b + 64) % (1 << 20);
        machine.access(b.pid(), va_b + off_b, AccessType::kLoad);
    };
    sched.add(std::move(ta));
    sched.add(std::move(tb));

    sched.run_until(machine.now() + ms(1));

    ASSERT_GE(order.size(), 8u);
    // Quantum 3 vs 1: the round pattern is AAAB AAAB ...
    for (std::size_t i = 0; i + 4 <= 8; i += 4) {
        EXPECT_EQ(order[i + 0], a.pid());
        EXPECT_EQ(order[i + 1], a.pid());
        EXPECT_EQ(order[i + 2], a.pid());
        EXPECT_EQ(order[i + 3], b.pid());
    }

    const auto &stats = sched.stats();
    EXPECT_EQ(stats[0].accesses, stats[0].steps);
    EXPECT_GT(stats[0].quanta, 0u);
    // Per-space attribution matches what the scheduler observed.
    EXPECT_EQ(a.accesses(), stats[0].accesses);
    EXPECT_EQ(b.accesses(), stats[1].accesses);
}

TEST(TenantScheduler, StartDelayHoldsATenantOut)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    mem::AddressSpace &a = machine.create_process();
    const Addr va = a.mmap(1 << 20);

    Tick first_step = 0;
    Addr off = 0;
    scenario::TenantScheduler sched(machine);
    scenario::ScheduledTenant t;
    t.pid = a.pid();
    t.not_before = machine.now() + us(500);
    t.step = [&] {
        if (first_step == 0)
            first_step = machine.now();
        off = (off + 64) % (1 << 20);
        machine.access(a.pid(), va + off, AccessType::kLoad);
    };
    const Tick arrival = t.not_before;
    sched.add(std::move(t));

    // Deadline before the arrival: the clock must jump straight to the
    // deadline (no livelock, no steps).
    const Tick early_deadline = machine.now() + us(100);
    sched.run_until(early_deadline);
    EXPECT_EQ(machine.now(), early_deadline);
    EXPECT_EQ(first_step, 0u);

    // Past the arrival the tenant runs, and not a tick earlier.
    sched.run_until(arrival + us(500));
    EXPECT_GE(first_step, arrival);
    EXPECT_GT(sched.stats()[0].steps, 0u);
}

TEST(TenantScheduler, EmptyScheduleAdvancesToDeadline)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    scenario::TenantScheduler sched(machine);
    const Tick deadline = machine.now() + ms(2);
    sched.run_until(deadline);
    EXPECT_EQ(machine.now(), deadline);
}

/** The colocation shape: one attacker beside two victims. */
scenario::ScenarioSpec
colocation_spec()
{
    scenario::ScenarioSpec spec;
    spec.name = "test-colocation";
    spec.pre_detector = {us(137), us(6000), "phase"};
    spec.detector = detector::AnvilConfig::baseline();
    spec.pre_attack = {ms(1), us(4000), "attack-phase"};
    scenario::TenantSpec attacker = attacker_tenant();
    attacker.quantum_accesses = 64;
    spec.tenants.push_back(attacker);
    scenario::TenantSpec mcf = workload_tenant("mcf", "w:mcf", 64);
    spec.tenants.push_back(mcf);
    scenario::TenantSpec lib =
        workload_tenant("libquantum", "w:libquantum", 64);
    spec.tenants.push_back(lib);
    spec.run.mode = scenario::RunMode::kInterleaveFor;
    spec.run.duration = ms(32);
    spec.outputs = {scenario::Output::kDetections,
                    scenario::Output::kTenantDetections,
                    scenario::Output::kCrossTenantFp};
    return spec;
}

TEST(MultiTenantScenario, BackToBackRunsAreBitIdentical)
{
    const scenario::ScenarioSpec spec = colocation_spec();

    std::vector<Tick> detections[2];
    std::vector<std::uint64_t> ops[2];
    Tick end[2] = {0, 0};
    for (int rep = 0; rep < 2; ++rep) {
        scenario::ScenarioBuilder builder(spec, context_for(spec, 0));
        scenario::Execution &exec = builder.build();
        builder.run();
        for (const auto &d : exec.anvil()->detections())
            detections[rep].push_back(d.time);
        for (const auto &w : exec.workloads())
            ops[rep].push_back(w->ops());
        end[rep] = exec.machine().now();
    }
    EXPECT_EQ(detections[0], detections[1]);
    EXPECT_EQ(ops[0], ops[1]);
    EXPECT_EQ(end[0], end[1]);
    EXPECT_FALSE(detections[0].empty());
}

TEST(MultiTenantScenario, TenantSeedStreamsAreIsolated)
{
    // Thrash-free profiles: their access streams are pure functions of
    // their own RNG, so re-seeding one tenant must leave the other's
    // address trace untouched (timing may shift; addresses may not).
    auto spec_with = [](const std::string &hmmer_stream) {
        scenario::ScenarioSpec spec;
        spec.name = "test-seed-isolation";
        spec.tenants.push_back(workload_tenant("h264ref", "w:h264"));
        spec.tenants.push_back(workload_tenant("hmmer", hmmer_stream));
        spec.run.mode = scenario::RunMode::kInterleaveFor;
        spec.run.duration = ms(4);
        return spec;
    };

    auto trace_of = [](const scenario::ScenarioSpec &spec, Pid pid,
                       runner::TrialContext ctx) {
        scenario::ScenarioBuilder builder(spec, ctx);
        scenario::Execution &exec = builder.build();
        std::vector<Addr> trace;
        exec.machine().add_observer(
            [&trace, pid](const mem::AccessInfo &info) {
                if (info.pid == pid)
                    trace.push_back(info.va);
            });
        builder.run();
        return trace;
    };

    const scenario::ScenarioSpec base = spec_with("w:hmmer");
    const scenario::ScenarioSpec reseeded = spec_with("w:hmmer2");
    // Both workloads are built in tenant order on a fresh machine, so
    // pids are stable across the two specs.
    const Pid h264_pid = 0;
    const Pid hmmer_pid = 1;

    // The reseeded neighbor changes access *timing*, so the fixed-time
    // run grants each tenant a different number of turns; compare the
    // common prefix, where the per-step address choice lives.
    const auto prefix = [](std::vector<Addr> x, const std::vector<Addr> &y) {
        x.resize(std::min(x.size(), y.size()));
        return x;
    };

    const auto h264_base = trace_of(base, h264_pid, context_for(base, 0));
    const auto h264_reseeded =
        trace_of(reseeded, h264_pid, context_for(base, 0));
    ASSERT_GT(std::min(h264_base.size(), h264_reseeded.size()), 1000u);
    EXPECT_EQ(prefix(h264_base, h264_reseeded),
              prefix(h264_reseeded, h264_base));

    const auto hmmer_base = trace_of(base, hmmer_pid, context_for(base, 0));
    const auto hmmer_reseeded =
        trace_of(reseeded, hmmer_pid, context_for(base, 0));
    ASSERT_GT(std::min(hmmer_base.size(), hmmer_reseeded.size()), 1000u);
    EXPECT_NE(prefix(hmmer_base, hmmer_reseeded),
              prefix(hmmer_reseeded, hmmer_base));
}

TEST(CrossTenantAttribution, DetectionsBlameTheAttackerTenant)
{
    const scenario::ScenarioSpec spec = colocation_spec();
    scenario::ScenarioBuilder builder(spec, context_for(spec, 1));
    scenario::Execution &exec = builder.build();
    builder.run();

    ASSERT_FALSE(exec.anvil()->detections().empty());
    ASSERT_EQ(exec.intruders().size(), 1u);
    const Pid attacker_pid = exec.intruders()[0]->pid();
    for (const detector::Detection &d : exec.anvil()->detections()) {
        EXPECT_EQ(d.offender_pid, attacker_pid);
        const std::size_t idx = exec.tenant_index_of(d.offender_pid);
        ASSERT_LT(idx, exec.tenants().size());
        EXPECT_TRUE(exec.tenants()[idx].is_attacker);
    }
}

TEST(CrossTenantAttribution, HammeringProcessIsBlamedNotItsNeighbor)
{
    // Raw-component rig: two processes on one machine under one daemon;
    // only the second hammers. Majority-vote attribution must charge
    // every detection to the hammering pid even though the idle
    // neighbor was created first.
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    mem::AddressSpace &bystander = machine.create_process();
    (void)bystander.mmap(1 << 20);
    scenario::Attacker hammerer(machine);

    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    anvil.start();

    const auto target =
        scenario::weakest_double_sided(machine, hammerer);
    ASSERT_TRUE(target.has_value());
    attack::ClflushDoubleSided hammer(machine, hammerer.pid(), *target);
    hammer.run(ms(40));

    ASSERT_FALSE(anvil.detections().empty());
    for (const detector::Detection &d : anvil.detections()) {
        EXPECT_EQ(d.offender_pid, hammerer.pid());
        EXPECT_NE(d.offender_pid, bystander.pid());
    }
}

TEST(TenantValidation, RejectsPayloadlessAndDoublePayloadTenants)
{
    scenario::ScenarioSpec spec;
    spec.name = "bad";
    spec.run.mode = scenario::RunMode::kInterleaveFor;
    spec.run.duration = ms(1);

    scenario::TenantSpec empty;
    spec.tenants = {empty};
    EXPECT_THROW(scenario::validate(spec), Error);

    scenario::TenantSpec both = attacker_tenant();
    both.workload = scenario::WorkloadSpec{"mcf", "", false};
    spec.tenants = {both};
    EXPECT_THROW(scenario::validate(spec), Error);
}

TEST(TenantValidation, RejectsZeroQuantum)
{
    scenario::ScenarioSpec spec;
    spec.name = "bad-quantum";
    spec.run.mode = scenario::RunMode::kInterleaveFor;
    spec.run.duration = ms(1);
    scenario::TenantSpec t = workload_tenant("mcf", "");
    t.quantum_accesses = 0;
    spec.tenants = {t};
    EXPECT_THROW(scenario::validate(spec), Error);
}

TEST(TenantValidation, RejectsBadAttackBuffers)
{
    scenario::ScenarioSpec spec;
    spec.name = "bad-buffer";
    spec.run.mode = scenario::RunMode::kInterleaveFor;
    spec.run.duration = ms(1);

    scenario::TenantSpec t = attacker_tenant();
    t.attack->buffer_bytes = (64ULL << 20) + 4096;  // not a power of two
    spec.tenants = {t};
    EXPECT_THROW(scenario::validate(spec), Error);

    t.attack->buffer_bytes = 1 << 20;  // below one 2 MB huge page
    spec.tenants = {t};
    EXPECT_THROW(scenario::validate(spec), Error);

    // Individually fine, but together past the huge-page pool (half of
    // physical capacity).
    t.attack->buffer_bytes = spec.system.dram.capacity_bytes() / 2;
    spec.tenants = {t, t};
    EXPECT_THROW(scenario::validate(spec), Error);

    spec.tenants = {t};
    EXPECT_NO_THROW(scenario::validate(spec));
}

TEST(TenantValidation, TenantOpsNeedsAWorkloadTenant)
{
    scenario::ScenarioSpec spec;
    spec.name = "no-workloads";
    spec.tenants = {attacker_tenant()};
    spec.run.mode = scenario::RunMode::kInterleaveFor;
    spec.run.duration = ms(1);
    spec.outputs = {scenario::Output::kTenantOps};
    EXPECT_THROW(scenario::validate(spec), Error);
}

TEST(TenantValidation, UnknownMitigationSuggestsTheNearestTracker)
{
    scenario::ScenarioSpec spec;
    spec.name = "typo";
    spec.mitigation = "ctr-evict";  // a typo for ctrr-evict
    spec.run.mode = scenario::RunMode::kInterleaveFor;
    spec.run.duration = ms(1);
    try {
        scenario::validate(spec);
        FAIL() << "expected validation to reject the unknown tracker";
    } catch (const Error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("did_you_mean=ctrr-evict"), std::string::npos)
            << what;
    }
}

TEST(TenantValidation, BufferBytesFlowsThroughLegacyAttackList)
{
    // The satellite knob also applies to the legacy spec.attacks path.
    scenario::ScenarioSpec spec;
    spec.name = "legacy-buffer";
    spec.attacks = {{scenario::AttackKind::kClflushDoubleSided}};
    spec.attacks[0].buffer_bytes = 32ULL << 20;
    spec.run.mode = scenario::RunMode::kInterleaveFor;
    spec.run.duration = ms(1);
    EXPECT_NO_THROW(scenario::validate(spec));

    scenario::ScenarioBuilder builder(spec, context_for(spec, 0));
    scenario::Execution &exec = builder.build();
    ASSERT_EQ(exec.intruders().size(), 1u);
    EXPECT_EQ(exec.intruders()[0]->buffer_bytes, 32ULL << 20);
}

}  // namespace
