/**
 * @file
 * Tests for the hardware-mitigation baselines (PARA, counter-based TRR)
 * the paper compares ANVIL against in Sections 1.2 / 5.2.2.
 */
#include <gtest/gtest.h>

#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "mitigations/hardware.hh"
#include "workload/workload.hh"

namespace anvil::mitigations {
namespace {

/** Machine + attacker with a weakest-victim double-sided target. */
struct Rig {
    Rig()
        : machine(mem::SystemConfig{}),
          attacker(&machine.create_process()),
          buffer(attacker->mmap(64ULL << 20)),
          layout(*attacker, machine.dram().address_map(),
                 machine.hierarchy())
    {
        layout.scan(buffer, 64ULL << 20);
        for (const auto &t : layout.find_double_sided_targets(256)) {
            if (machine.dram().disturbance(t.flat_bank).threshold_of(
                    t.victim_row) ==
                machine.dram().config().flip_threshold) {
                target = t;
                break;
            }
        }
    }

    mem::MemorySystem machine;
    mem::AddressSpace *attacker;
    Addr buffer;
    attack::MemoryLayout layout;
    std::optional<attack::DoubleSidedTarget> target;
};

TEST(Para, StopsDoubleSidedHammering)
{
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Para para(rig.machine.dram(), 0.001);
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    const auto result = hammer.run(ms(192));
    EXPECT_FALSE(result.flipped);
    EXPECT_GT(para.stats().neighbor_refreshes, 0u);
}

TEST(Para, RefreshRateTracksProbability)
{
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Para para(rig.machine.dram(), 0.01);
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    for (int i = 0; i < 50000; ++i)
        hammer.step();
    const double per_activation =
        static_cast<double>(para.stats().neighbor_refreshes) /
        static_cast<double>(para.stats().activations_observed);
    // Two coins of p = 0.01 per activation => ~0.02 refreshes each.
    EXPECT_NEAR(per_activation, 0.02, 0.004);
}

TEST(Para, NegligibleCostOnBenignWorkloads)
{
    // PARA adds no core time and its refresh reads are rare: a benign
    // workload's runtime is unchanged (hardware mitigations are free for
    // software — their cost is the new silicon).
    auto run = [](bool with_para) {
        mem::MemorySystem machine{mem::SystemConfig{}};
        std::unique_ptr<Para> para;
        if (with_para)
            para = std::make_unique<Para>(machine.dram(), 0.001);
        workload::Workload load(machine, workload::spec_profile("mcf"));
        load.run_ops(300000);
        return machine.now();
    };
    // The clock advance is identical: refresh reads happen "inside" the
    // controller.
    EXPECT_EQ(run(true), run(false));
}

TEST(Trr, StopsDoubleSidedHammering)
{
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Trr trr(rig.machine.dram(), 32000);
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    const auto result = hammer.run(ms(192));
    EXPECT_FALSE(result.flipped);
    EXPECT_GT(trr.stats().neighbor_refreshes, 0u);
}

TEST(Trr, RefreshesEveryMacActivations)
{
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Trr trr(rig.machine.dram(), 10000);
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    for (int i = 0; i < 30000; ++i)
        hammer.step();  // 30 K activations of each aggressor
    // Each aggressor crossed the MAC 3 times; 2 refreshes per crossing.
    EXPECT_NEAR(static_cast<double>(trr.stats().neighbor_refreshes), 12.0,
                4.0);
}

TEST(Trr, QuietRowsNeverTriggerRefreshes)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    Trr trr(machine.dram(), 32000);
    workload::Workload load(machine, workload::spec_profile("libquantum"));
    load.run_for(ms(50));
    // Streaming touches each row far fewer than 32 K times per window.
    EXPECT_EQ(trr.stats().neighbor_refreshes, 0u);
    EXPECT_GT(trr.stats().activations_observed, 0u);
}

TEST(Trr, MacAboveFlipThresholdIsUnsafe)
{
    // Sanity check of the threat model: a TRR with a MAC above the
    // per-side flip requirement provides no protection — exactly why
    // DDR4 modules with optional/weak TRR were still vulnerable
    // (Section 1.2: bit flips in DDR4 "have been reported").
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Trr trr(rig.machine.dram(), 150000);  // > 110 K per side
    const auto &schedule = rig.machine.dram().refresh_schedule();
    rig.machine.advance(
        schedule.next_refresh(rig.target->victim_row, rig.machine.now()) +
        10 - rig.machine.now());
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    const auto result = hammer.run(ms(80));
    EXPECT_TRUE(result.flipped);
}

}  // namespace
}  // namespace anvil::mitigations
