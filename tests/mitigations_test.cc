/**
 * @file
 * Tests for the hardware-mitigation tracker zoo: the paper's PARA /
 * idealized-TRR baselines (Sections 1.2 / 5.2.2) plus the finite
 * counter-table TRR variants, the victim-centric RVC tracker, the
 * DAPPER-style budgeted tracker, and the name registry that exposes them
 * to scenario specs.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "mitigations/counter_trr.hh"
#include "mitigations/dapper.hh"
#include "mitigations/hardware.hh"
#include "mitigations/registry.hh"
#include "mitigations/rvc.hh"
#include "workload/workload.hh"

namespace anvil::mitigations {
namespace {

/** Machine + attacker with a weakest-victim double-sided target. */
struct Rig {
    Rig()
        : machine(mem::SystemConfig{}),
          attacker(&machine.create_process()),
          buffer(attacker->mmap(64ULL << 20)),
          layout(*attacker, machine.dram().address_map(),
                 machine.hierarchy())
    {
        layout.scan(buffer, 64ULL << 20);
        for (const auto &t : layout.find_double_sided_targets(256)) {
            if (machine.dram().disturbance(t.flat_bank).threshold_of(
                    t.victim_row) ==
                machine.dram().config().flip_threshold) {
                target = t;
                break;
            }
        }
    }

    mem::MemorySystem machine;
    mem::AddressSpace *attacker;
    Addr buffer;
    attack::MemoryLayout layout;
    std::optional<attack::DoubleSidedTarget> target;
};

TEST(Para, StopsDoubleSidedHammering)
{
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Para para(rig.machine.dram(), 0.001);
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    const auto result = hammer.run(ms(192));
    EXPECT_FALSE(result.flipped);
    EXPECT_GT(para.stats().neighbor_refreshes, 0u);
}

TEST(Para, RefreshRateTracksProbability)
{
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Para para(rig.machine.dram(), 0.01);
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    for (int i = 0; i < 50000; ++i)
        hammer.step();
    const double per_activation =
        static_cast<double>(para.stats().neighbor_refreshes) /
        static_cast<double>(para.stats().activations_observed);
    // Two coins of p = 0.01 per activation => ~0.02 refreshes each.
    EXPECT_NEAR(per_activation, 0.02, 0.004);
}

TEST(Para, NegligibleCostOnBenignWorkloads)
{
    // PARA adds no core time and its refresh reads are rare: a benign
    // workload's runtime is unchanged (hardware mitigations are free for
    // software — their cost is the new silicon).
    auto run = [](bool with_para) {
        mem::MemorySystem machine{mem::SystemConfig{}};
        std::unique_ptr<Para> para;
        if (with_para)
            para = std::make_unique<Para>(machine.dram(), 0.001);
        workload::Workload load(machine, workload::spec_profile("mcf"));
        load.run_ops(300000);
        return machine.now();
    };
    // The clock advance is identical: refresh reads happen "inside" the
    // controller.
    EXPECT_EQ(run(true), run(false));
}

TEST(Trr, StopsDoubleSidedHammering)
{
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Trr trr(rig.machine.dram(), 32000);
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    const auto result = hammer.run(ms(192));
    EXPECT_FALSE(result.flipped);
    EXPECT_GT(trr.stats().neighbor_refreshes, 0u);
}

TEST(Trr, RefreshesEveryMacActivations)
{
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Trr trr(rig.machine.dram(), 10000);
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    for (int i = 0; i < 30000; ++i)
        hammer.step();  // 30 K activations of each aggressor
    // Each aggressor crossed the MAC 3 times; 2 refreshes per crossing.
    EXPECT_NEAR(static_cast<double>(trr.stats().neighbor_refreshes), 12.0,
                4.0);
}

TEST(Trr, QuietRowsNeverTriggerRefreshes)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    Trr trr(machine.dram(), 32000);
    workload::Workload load(machine, workload::spec_profile("libquantum"));
    load.run_for(ms(50));
    // Streaming touches each row far fewer than 32 K times per window.
    EXPECT_EQ(trr.stats().neighbor_refreshes, 0u);
    EXPECT_GT(trr.stats().activations_observed, 0u);
}

TEST(Trr, MacAboveFlipThresholdIsUnsafe)
{
    // Sanity check of the threat model: a TRR with a MAC above the
    // per-side flip requirement provides no protection — exactly why
    // DDR4 modules with optional/weak TRR were still vulnerable
    // (Section 1.2: bit flips in DDR4 "have been reported").
    Rig rig;
    ASSERT_TRUE(rig.target.has_value());
    Trr trr(rig.machine.dram(), 150000);  // > 110 K per side
    const auto &schedule = rig.machine.dram().refresh_schedule();
    rig.machine.advance(
        schedule.next_refresh(rig.target->victim_row, rig.machine.now()) +
        10 - rig.machine.now());
    attack::ClflushDoubleSided hammer(rig.machine, rig.attacker->pid(),
                                      *rig.target);
    const auto result = hammer.run(ms(80));
    EXPECT_TRUE(result.flipped);
}

// ---------------------------------------------------------------------------
// Direct-drive rig for the table-based trackers: a bare DramSystem with
// uniform flip thresholds, driven by raw row accesses. Back-to-back
// accesses to one row hit the open row buffer, so activation counts are
// controlled by alternating rows.

dram::DramConfig
tiny_config()
{
    dram::DramConfig config;
    config.ranks_per_channel = 1;
    config.banks_per_rank = 2;
    config.rows_per_bank = 4096;
    config.variation_spread = 0.0;
    return config;
}

struct Device {
    explicit Device(const dram::DramConfig &config = tiny_config())
        : dram(config)
    {
    }

    /** One access to (bank, row); activates iff the row is closed. */
    void
    access(std::uint32_t bank, std::uint32_t row)
    {
        now += dram.config().t_row_miss;
        dram.access(dram.row_to_addr(bank, row), now);
    }

    /** @p n activations each of rows @p a and @p b, alternating. */
    void
    hammer_pair(std::uint32_t bank, std::uint32_t a, std::uint32_t b,
                int n)
    {
        for (int i = 0; i < n; ++i) {
            access(bank, a);
            access(bank, b);
        }
    }

    dram::DramSystem dram;
    Tick now = 0;
};

// ---------------------------------------------------------------------------
// CounterTrr: finite counter-table variants.

TEST(CounterTrr, MacTriggersNeighborRefreshAndRearms)
{
    Device dev;
    CounterTrrConfig config;
    config.mac = 10;
    CounterTrr trr(dev.dram, config, 1);
    dev.hammer_pair(0, 100, 2000, 10);
    // Both aggressors crossed the MAC exactly once; radius 1 refreshes
    // two neighbours per crossing, and the counter re-arms to zero.
    EXPECT_EQ(trr.stats().neighbor_refreshes, 4u);
    EXPECT_EQ(trr.counter_of(0, 100), 0u);
    EXPECT_EQ(trr.counter_of(0, 2000), 0u);
    // The tracker's own refresh reads are filtered by the recursion
    // guard: only the attack's activations are observed.
    EXPECT_EQ(trr.stats().activations_observed, 20u);
}

TEST(CounterTrr, RefreshRadiusTwoCoversFourNeighbors)
{
    Device dev;
    CounterTrrConfig config;
    config.mac = 10;
    config.refresh_radius = 2;
    CounterTrr trr(dev.dram, config, 1);
    dev.hammer_pair(0, 100, 2000, 10);
    EXPECT_EQ(trr.stats().neighbor_refreshes, 8u);
}

TEST(CounterTrr, EdgeRowsClampTheRefreshNeighborhood)
{
    Device dev;
    CounterTrrConfig config;
    config.mac = 10;
    CounterTrr trr(dev.dram, config, 1);
    // Row 0 has no low-side neighbour: its crossing refreshes one row,
    // the mid-bank aggressor's refreshes two.
    dev.hammer_pair(0, 0, 500, 10);
    EXPECT_EQ(trr.stats().neighbor_refreshes, 3u);
}

TEST(CounterTrr, NarrowCountersSaturateBelowTheMac)
{
    Device dev;
    CounterTrrConfig config;
    config.counter_bits = 4;  // saturates at 15
    config.mac = 100;
    CounterTrr trr(dev.dram, config, 1);
    dev.hammer_pair(0, 100, 2000, 200);
    // The mis-provisioned variant can never fire: the counter pins at
    // its ceiling and the MAC is unreachable.
    EXPECT_EQ(trr.counter_of(0, 100), 15u);
    EXPECT_EQ(trr.stats().neighbor_refreshes, 0u);
}

TEST(CounterTrr, ClearResetDropsEntriesAtWindowRollover)
{
    Device dev;
    CounterTrrConfig config;  // Reset::kClear
    CounterTrr trr(dev.dram, config, 1);
    dev.hammer_pair(0, 100, 2000, 8);
    ASSERT_EQ(trr.counter_of(0, 100), 8u);
    dev.now += dev.dram.config().refresh_period;
    dev.access(0, 100);
    // The periodic refresh sweep restored every row; the cleared table
    // restarts the count from this window's single activation.
    EXPECT_EQ(trr.counter_of(0, 100), 1u);
    EXPECT_EQ(trr.counter_of(0, 2000), 0u);
}

TEST(CounterTrr, HalveResetKeepsDecayedCountsAcrossWindows)
{
    Device dev;
    CounterTrrConfig config;
    config.reset = CounterTrrConfig::Reset::kHalve;
    CounterTrr trr(dev.dram, config, 1);
    dev.hammer_pair(0, 100, 2000, 8);
    dev.now += dev.dram.config().refresh_period;
    dev.access(0, 100);
    // 8 halved to 4, plus the activation that rolled the window.
    EXPECT_EQ(trr.counter_of(0, 100), 5u);
    EXPECT_EQ(trr.counter_of(0, 2000), 4u);
}

TEST(CounterTrr, MinCountEvictionDisplacesTheColdestEntry)
{
    Device dev;
    CounterTrrConfig config;
    config.table_size = 2;
    CounterTrr trr(dev.dram, config, 1);
    dev.access(0, 100);
    dev.access(0, 200);
    dev.access(0, 100);  // row 100 at count 2, row 200 at count 1
    dev.access(0, 300);
    EXPECT_EQ(trr.counter_of(0, 100), 2u);
    EXPECT_EQ(trr.counter_of(0, 200), 0u);  // coldest, displaced
    EXPECT_EQ(trr.counter_of(0, 300), 1u);
    EXPECT_EQ(trr.stats().table_evictions, 1u);
}

TEST(CounterTrr, FifoEvictionDisplacesTheOldestEntry)
{
    Device dev;
    CounterTrrConfig config;
    config.table_size = 2;
    config.evict = CounterTrrConfig::Evict::kFifo;
    CounterTrr trr(dev.dram, config, 1);
    dev.access(0, 100);
    dev.access(0, 200);
    dev.access(0, 100);
    dev.access(0, 300);
    // FIFO ignores heat: the hot row 100 is the oldest and goes first —
    // exactly the laundering weakness the matrix measures.
    EXPECT_EQ(trr.counter_of(0, 100), 0u);
    EXPECT_EQ(trr.counter_of(0, 200), 1u);
    EXPECT_EQ(trr.counter_of(0, 300), 1u);
}

TEST(CounterTrr, RefreshOnEvictConvertsTablePressureIntoRefreshes)
{
    Device dev;
    CounterTrrConfig config;
    config.table_size = 4;
    config.refresh_on_evict = true;
    CounterTrr trr(dev.dram, config, 1);
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint32_t r = 0; r < 64; ++r)
            dev.access(0, 100 + 3 * r);  // spaced: no shared neighbours
    }
    ASSERT_GT(trr.stats().table_evictions, 0u);
    // Every displacement refreshed the evicted row's full radius-1
    // neighbourhood: the refresh-storm channel the thrash adversary pays
    // this variant with.
    EXPECT_EQ(trr.stats().neighbor_refreshes,
              2 * trr.stats().table_evictions);
}

TEST(CounterTrr, SamplerStreamIsAPureFunctionOfTheSeed)
{
    CounterTrrConfig config;
    config.sample_probability = 0.25;
    config.table_size = 1024;

    const auto drive = [&config](std::uint64_t seed) {
        auto dev = std::make_unique<Device>();
        CounterTrr trr(dev->dram, config, seed);
        for (std::uint32_t r = 0; r < 400; ++r)
            dev->access(0, 100 + 2 * r);
        std::vector<std::uint64_t> counters;
        counters.reserve(400);
        for (std::uint32_t r = 0; r < 400; ++r)
            counters.push_back(trr.counter_of(0, 100 + 2 * r));
        return std::pair(trr.table_occupancy(0), counters);
    };

    const auto [occ_a, counts_a] = drive(42);
    const auto [occ_b, counts_b] = drive(42);
    const auto [occ_c, counts_c] = drive(43);
    // Same seed, same activation sequence: bit-identical table state —
    // the determinism contract of the trial's "mitigation" sub-stream.
    EXPECT_EQ(occ_a, occ_b);
    EXPECT_EQ(counts_a, counts_b);
    // The sampler really sampled (a strict subset was tracked), and a
    // different seed picks a different subset.
    EXPECT_GT(occ_a, 0u);
    EXPECT_LT(occ_a, 400u);
    EXPECT_NE(counts_a, counts_c);
}

// ---------------------------------------------------------------------------
// Rvc: victim-centric disturbance-credit tracker.

TEST(Rvc, ActivationCreditsVictimsAtBothDistances)
{
    Device dev;
    RvcConfig config;
    config.threshold = 1e9;
    Rvc rvc(dev.dram, config);
    dev.access(0, 100);
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 99), 1.0);
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 101), 1.0);
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 98), 0.5);
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 102), 0.5);
    EXPECT_EQ(rvc.table_occupancy(0), 4u);
}

TEST(Rvc, ActivatingATrackedVictimRestoresItsCharge)
{
    Device dev;
    RvcConfig config;
    config.threshold = 1e9;
    Rvc rvc(dev.dram, config);
    dev.access(0, 100);  // row 101 now carries credit 1.0
    dev.access(0, 101);
    // The activation physically restored row 101, so its credit is
    // zeroed; its own neighbours picked up the new disturbance.
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 101), 0.0);
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 102), 1.5);  // 0.5 + 1.0
}

TEST(Rvc, ThresholdRefreshesTheVictimItselfOnce)
{
    Device dev;
    RvcConfig config;
    config.threshold = 10.0;
    config.second_neighbor_weight = 0.0;
    Rvc rvc(dev.dram, config);
    dev.hammer_pair(0, 100, 2000, 50);
    // Four distance-1 victims, each crossing its budget 5 times; the
    // victim-centric response refreshes ONE row per crossing (the victim
    // directly), not a neighbourhood — 20 total, not 40.
    EXPECT_EQ(rvc.stats().neighbor_refreshes, 20u);
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 101), 0.0);
}

TEST(Rvc, EvictionDisplacesTheColdestVictimFirst)
{
    Device dev;
    RvcConfig config;
    config.table_size = 2;
    config.threshold = 1e9;
    config.second_neighbor_weight = 0.0;
    Rvc rvc(dev.dram, config);
    // Classic double-sided pair around victim 101: the sandwiched victim
    // accrues 2 credits per round and must never be displaced, while the
    // outer victims (99, 103) ping-pong through the remaining slot.
    dev.hammer_pair(0, 100, 102, 20);
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 101), 40.0);
    EXPECT_EQ(rvc.stats().table_evictions, 39u);
    EXPECT_LE(rvc.charge_of(0, 99) + rvc.charge_of(0, 103), 2.0);
}

TEST(Rvc, WindowRolloverDropsStaleCredit)
{
    Device dev;
    RvcConfig config;
    config.threshold = 1e9;
    Rvc rvc(dev.dram, config);
    dev.access(0, 100);
    ASSERT_GT(rvc.table_occupancy(0), 0u);
    dev.now += dev.dram.config().refresh_period;
    dev.access(0, 2000);
    // The refresh sweep restored every row; only the new activation's
    // victims are tracked.
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 99), 0.0);
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 101), 0.0);
    EXPECT_DOUBLE_EQ(rvc.charge_of(0, 2001), 1.0);
}

// ---------------------------------------------------------------------------
// Dapper: Misra-Gries summary + budgeted response.

TEST(Dapper, ThrashDrainsCountersWithoutManufacturingRefreshes)
{
    Device dev;
    DapperConfig config;
    config.table_size = 4;
    config.mac = 100;
    Dapper dapper(dev.dram, config);
    for (int pass = 0; pass < 10; ++pass) {
        for (std::uint32_t r : {100u, 200u, 300u, 400u})
            dev.access(0, r);
    }
    ASSERT_EQ(dapper.table_occupancy(0), 4u);
    // A cold-row churn at a full table decrements instead of evicting:
    // no refresh is ever issued and occupancy never exceeds the table.
    for (std::uint32_t i = 0; i < 100; ++i) {
        dev.access(0, 1000 + 3 * i);
        EXPECT_LE(dapper.table_occupancy(0), 4u);
    }
    EXPECT_EQ(dapper.stats().neighbor_refreshes, 0u);
    EXPECT_EQ(dapper.stats().refreshes_suppressed, 0u);
    EXPECT_GT(dapper.stats().table_evictions, 0u);
}

TEST(Dapper, HotRowKeepsItsCounterThroughThrash)
{
    Device dev;
    DapperConfig config;
    config.table_size = 4;
    config.mac = 50;
    Dapper dapper(dev.dram, config);
    // Misra-Gries guarantee: a row taking half the activation stream
    // cannot be starved by interleaved cold rows — it still crosses the
    // MAC and triggers its refresh.
    for (std::uint32_t i = 0; i < 400; ++i) {
        dev.access(0, 100);
        dev.access(0, 1000 + 3 * i);
    }
    EXPECT_GT(dapper.stats().neighbor_refreshes, 0u);
}

TEST(Dapper, BudgetSuppressesThenRetriesWithTheCounterArmed)
{
    Device dev;
    DapperConfig config;
    config.mac = 5;
    config.refresh_budget = 1;
    config.refresh_radius = 1;
    Dapper dapper(dev.dram, config);
    // Two rows cross the MAC inside one tREFI; the budget covers one.
    dev.hammer_pair(0, 100, 200, 5);
    EXPECT_EQ(dapper.stats().neighbor_refreshes, 2u);
    EXPECT_EQ(dapper.stats().refreshes_suppressed, 1u);
    // The suppressed counter stays armed...
    EXPECT_EQ(dapper.counter_of(0, 200), 5u);
    // ...and fires on the next activation once the window budget resets.
    dev.now += dev.dram.config().t_refi();
    dev.access(0, 200);
    EXPECT_EQ(dapper.stats().neighbor_refreshes, 4u);
    EXPECT_EQ(dapper.counter_of(0, 200), 0u);
}

// ---------------------------------------------------------------------------
// Registry: declarative tracker selection for scenario specs.

TEST(Registry, ListsTheFullTrackerZoo)
{
    const MitigationRegistry &registry = mitigation_registry();
    for (const char *name :
         {"para", "trr", "ctrr-sampled", "ctrr-evict", "ctrr-radius2",
          "rvc", "dapper"}) {
        const MitigationEntry *entry = registry.find(name);
        ASSERT_NE(entry, nullptr) << name;
        EXPECT_FALSE(entry->description.empty()) << name;
    }
    EXPECT_EQ(registry.find("none"), nullptr);  // "no tracker" is the
                                                // empty spec, not a name
}

TEST(Registry, EveryFactoryBuildsAWorkingTracker)
{
    for (const MitigationEntry &entry : mitigation_registry().all()) {
        Device dev;
        auto tracker = entry.make(dev.dram, 1234);
        ASSERT_NE(tracker, nullptr) << entry.name;
        dev.hammer_pair(0, 100, 2000, 4);
        EXPECT_EQ(tracker->stats().activations_observed, 8u)
            << entry.name;
    }
}

TEST(Registry, DuplicateNameIsRejectedWithAnActionableError)
{
    MitigationRegistry registry;
    const MitigationFactory factory = [](dram::DramSystem &dram,
                                         std::uint64_t) {
        return std::make_unique<Trr>(dram, 32000);
    };
    registry.add({"trr", "idealized per-row TRR", factory});
    try {
        registry.add({"trr", "a second trr", factory});
        FAIL() << "duplicate registration should throw";
    } catch (const std::invalid_argument &e) {
        // The message names the collision and what is already taken.
        EXPECT_NE(std::string(e.what()).find("trr"), std::string::npos);
    }
}

TEST(Registry, UnknownNameListsTheKnownTrackers)
{
    try {
        (void)mitigation_registry().at("nonesuch");
        FAIL() << "unknown tracker should throw";
    } catch (const std::out_of_range &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("nonesuch"), std::string::npos);
        EXPECT_NE(message.find("rvc"), std::string::npos);
        EXPECT_NE(message.find("dapper"), std::string::npos);
    }
}

}  // namespace
}  // namespace anvil::mitigations
