/**
 * @file
 * Unit tests for src/common: RNG, statistics, units, table formatting.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/text.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace anvil {
namespace {

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next_u64();
        EXPECT_EQ(va, b.next_u64());
        (void)c.next_u64();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, ReseedResetsSequence)
{
    Rng rng(7);
    const auto first = rng.next_u64();
    rng.next_u64();
    rng.seed(7);
    EXPECT_EQ(first, rng.next_u64());
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(1);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.next_below(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(2);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.next_below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(4);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.next_gaussian());
    EXPECT_NEAR(stat.mean(), 0.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.next_bool(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, HashUnitDoubleIsDeterministicAndUniform)
{
    EXPECT_EQ(hash_unit_double(1, 2), hash_unit_double(1, 2));
    EXPECT_NE(hash_unit_double(1, 2), hash_unit_double(2, 1));
    RunningStat stat;
    for (std::uint64_t i = 0; i < 10000; ++i)
        stat.add(hash_unit_double(i, i * 3 + 1));
    EXPECT_NEAR(stat.mean(), 0.5, 0.02);
    EXPECT_GE(stat.min(), 0.0);
    EXPECT_LT(stat.max(), 1.0);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeMatchesSequentialAdds)
{
    // Partitioned accumulation + merge must agree with adding every
    // sample to one stat (the invariant the sweep aggregator relies on).
    RunningStat whole;
    RunningStat left;
    RunningStat right;
    Rng rng(123);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.next_gaussian() * 3.0 + 1.0;
        whole.add(x);
        (i < 200 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.sum(), whole.sum(), 1e-9);
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmptySides)
{
    RunningStat a;
    RunningStat b;
    b.add(2.0);
    b.add(4.0);
    a.merge(b);  // empty += populated
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    RunningStat empty;
    a.merge(empty);  // populated += empty is a no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(SampleStat, PercentilesInterpolate)
{
    SampleStat s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(SampleStat, ResetClearsEverything)
{
    SampleStat s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.summary().count(), 0u);
    EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(Units, TickConversionsRoundTrip)
{
    EXPECT_EQ(ms(1), 1000 * us(1));
    EXPECT_EQ(us(1), 1000 * ns(1));
    EXPECT_EQ(seconds(1), 1000 * ms(1));
    EXPECT_DOUBLE_EQ(to_ms(ms(6.0)), 6.0);
    EXPECT_DOUBLE_EQ(to_us(us(7.8)), 7.8);
}

TEST(Units, CoreClockCycleMath)
{
    const CoreClock clock(2.6);
    // 150 cycles at 2.6 GHz is ~57.7 ns (the paper's DRAM latency).
    EXPECT_NEAR(to_ns(clock.cycles_to_ticks(150)), 57.7, 0.1);
    // Round trip within rounding error.
    EXPECT_NEAR(static_cast<double>(
                    clock.ticks_to_cycles(clock.cycles_to_ticks(1000000))),
                1e6, 2.0);
}

TEST(TextTable, FormatsCountsWithSeparators)
{
    EXPECT_EQ(TextTable::fmt_count(0), "0");
    EXPECT_EQ(TextTable::fmt_count(999), "999");
    EXPECT_EQ(TextTable::fmt_count(1000), "1,000");
    EXPECT_EQ(TextTable::fmt_count(220000), "220,000");
    EXPECT_EQ(TextTable::fmt_count(1234567), "1,234,567");
}

TEST(TextTable, FmtFixedDigits)
{
    EXPECT_EQ(TextTable::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(1.0, 0), "1");
}

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("Title");
    t.set_header({"a", "bb"});
    t.add_row({"1", "2"});
    t.add_row({"333"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Types, ToStringCoversAll)
{
    EXPECT_STREQ(to_string(DataSource::kL1), "L1");
    EXPECT_STREQ(to_string(DataSource::kL2), "L2");
    EXPECT_STREQ(to_string(DataSource::kLlc), "LLC");
    EXPECT_STREQ(to_string(DataSource::kDram), "DRAM");
    EXPECT_STREQ(to_string(AccessType::kLoad), "load");
    EXPECT_STREQ(to_string(AccessType::kStore), "store");
}

TEST(Text, EditDistanceClassicCases)
{
    EXPECT_EQ(edit_distance("", ""), 0u);
    EXPECT_EQ(edit_distance("abc", ""), 3u);
    EXPECT_EQ(edit_distance("", "abc"), 3u);
    EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
    EXPECT_EQ(edit_distance("trr", "trr"), 0u);
    EXPECT_EQ(edit_distance("ctr-evict", "ctrr-evict"), 1u);
}

TEST(Text, NearestNameSuggestsOnlyGenuineNearMisses)
{
    const std::vector<std::string> names = {"para", "trr", "ctrr-evict",
                                            "rvc", "dapper"};
    EXPECT_EQ(nearest_name("ctr-evict", names), "ctrr-evict");
    EXPECT_EQ(nearest_name("parra", names), "para");
    // Nothing near: an arbitrary name must not draw a suggestion.
    EXPECT_FALSE(nearest_name("completely-different", names).has_value());
    EXPECT_FALSE(nearest_name("x", {}).has_value());
}

}  // namespace
}  // namespace anvil
