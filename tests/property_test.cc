/**
 * @file
 * Cross-module property tests, mostly parameterized sweeps (TEST_P):
 * address-map round trips over many geometries, disturbance-model
 * invariants over calibration points, eviction-set correctness over slice
 * counts, refresh-period sweeps of the attack outcome, and detector
 * invariants under configuration sweeps.
 */
#include <gtest/gtest.h>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/units.hh"
#include "dram/dram_system.hh"
#include "mem/memory_system.hh"
#include "mitigations/registry.hh"
#include "pmu/pmu.hh"
#include "workload/workload.hh"

namespace anvil {
namespace {

// ---------------------------------------------------------------------------
// Address-map round trip across geometries
// ---------------------------------------------------------------------------

struct Geometry {
    std::uint32_t channels;
    std::uint32_t ranks;
    std::uint32_t banks;
    std::uint32_t rows;
    std::uint32_t row_bytes;
};

class AddressMapGeometry : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(AddressMapGeometry, EncodeDecodeRoundTrip)
{
    const Geometry g = GetParam();
    dram::DramConfig config;
    config.channels = g.channels;
    config.ranks_per_channel = g.ranks;
    config.banks_per_rank = g.banks;
    config.rows_per_bank = g.rows;
    config.row_bytes = g.row_bytes;
    const dram::AddressMap map(config);

    EXPECT_EQ(map.capacity(), config.capacity_bytes());
    Rng rng(77);
    for (int i = 0; i < 10000; ++i) {
        const Addr pa = rng.next_below(map.capacity());
        const dram::DramCoord coord = map.decode(pa);
        EXPECT_EQ(map.encode(coord), pa);
        EXPECT_LT(map.flat_bank(coord), config.total_banks());
    }
    // Row stride property: +stride = +1 row, same bank/column.
    const Addr pa = map.capacity() / 3 & ~0xfffULL;
    const auto a = map.decode(pa);
    if (a.row + 1 < g.rows) {
        const auto b = map.decode(pa + map.row_stride());
        EXPECT_EQ(b.row, a.row + 1);
        EXPECT_EQ(map.flat_bank(b), map.flat_bank(a));
        EXPECT_EQ(b.column, a.column);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddressMapGeometry,
    ::testing::Values(Geometry{1, 1, 8, 1024, 8192},
                      Geometry{1, 2, 8, 32768, 8192},  // default module
                      Geometry{2, 2, 8, 16384, 8192},
                      Geometry{1, 1, 16, 4096, 4096},
                      Geometry{2, 1, 4, 2048, 16384},
                      Geometry{4, 2, 8, 65536, 8192},   // server-class
                      Geometry{1, 1, 1, 64, 1024},      // minimal corner
                      Geometry{2, 4, 16, 8192, 2048}),  // many banks
    [](const ::testing::TestParamInfo<Geometry> &info) {
        const Geometry &g = info.param;
        return "c" + std::to_string(g.channels) + "r" +
               std::to_string(g.ranks) + "b" + std::to_string(g.banks) +
               "rows" + std::to_string(g.rows) + "rb" +
               std::to_string(g.row_bytes);
    });

// ---------------------------------------------------------------------------
// Disturbance model calibration sweep
// ---------------------------------------------------------------------------

/** (activations per side, double-sided?, expect flip?) */
struct HammerPoint {
    std::uint64_t per_side;
    bool double_sided;
    bool flips;
};

class DisturbanceCalibration : public ::testing::TestWithParam<HammerPoint>
{
};

TEST_P(DisturbanceCalibration, FlipExactlyWhenCalibrationSays)
{
    const HammerPoint point = GetParam();
    dram::DramConfig config;
    config.ranks_per_channel = 1;
    config.banks_per_rank = 4;
    config.rows_per_bank = 1024;
    config.refresh_slots = 1024;
    config.variation_spread = 0.0;
    dram::RefreshSchedule schedule(config);
    std::vector<dram::FlipEvent> flips;
    dram::DisturbanceModel model(config, 0, schedule, flips);

    Tick t = us(1);
    for (std::uint64_t i = 0; i < point.per_side; ++i) {
        model.on_activate(500, t++);
        if (point.double_sided)
            model.on_activate(502, t++);
    }
    bool victim_flipped = false;
    for (const auto &flip : flips)
        victim_flipped |= (flip.row == 501 || flip.row == 499);
    if (point.double_sided) {
        // Only the sandwiched row benefits from the alpha term.
        bool middle = false;
        for (const auto &flip : flips)
            middle |= flip.row == 501;
        EXPECT_EQ(middle, point.flips);
    } else {
        EXPECT_EQ(victim_flipped, point.flips);
    }
}

INSTANTIATE_TEST_SUITE_P(
    CalibrationPoints, DisturbanceCalibration,
    ::testing::Values(HammerPoint{109000, true, false},   // just short
                      HammerPoint{110000, true, true},    // Table 1
                      HammerPoint{150000, true, true},
                      HammerPoint{199000, false, false},  // single, short
                      HammerPoint{399999, false, false},  // one short
                      HammerPoint{400000, false, true},   // Table 1
                      HammerPoint{120000, false, false}), // 110K is not
                                                          // enough 1-sided
    [](const ::testing::TestParamInfo<HammerPoint> &info) {
        const HammerPoint &p = info.param;
        return std::string(p.double_sided ? "double" : "single") + "_" +
               std::to_string(p.per_side) + (p.flips ? "_flips"
                                                     : "_safe");
    });

// ---------------------------------------------------------------------------
// Eviction sets across slice counts
// ---------------------------------------------------------------------------

class EvictionSetSlices : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(EvictionSetSlices, ConflictsShareSetAndSliceEverywhere)
{
    mem::SystemConfig config;
    config.cache.llc_slices = GetParam();
    // Keep total capacity constant: 2048 * 2 slices baseline.
    config.cache.llc_sets_per_slice = 4096 / GetParam();
    mem::MemorySystem machine(config);
    mem::AddressSpace &proc = machine.create_process();
    const Addr buffer = proc.mmap(64ULL << 20);
    attack::MemoryLayout layout(proc, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, 64ULL << 20);

    Rng rng(123);
    for (int trial = 0; trial < 8; ++trial) {
        const Addr target =
            buffer + rng.next_below((64ULL << 20) / 64) * 64;
        const auto lines = layout.build_eviction_set(target, 12);
        const Addr target_pa = proc.translate(target);
        for (const Addr va : lines) {
            const Addr pa = proc.translate(va);
            EXPECT_EQ(machine.hierarchy().llc_set(pa),
                      machine.hierarchy().llc_set(target_pa));
            EXPECT_EQ(machine.hierarchy().llc_slice(pa),
                      machine.hierarchy().llc_slice(target_pa));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SliceCounts, EvictionSetSlices,
                         ::testing::Values(1u, 2u, 4u),
                         [](const auto &info) {
                             return "slices" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Refresh-period sweep of the flagship attack
// ---------------------------------------------------------------------------

struct RefreshPoint {
    double period_ms;
    bool clflush_flips;  ///< double-sided CLFLUSH outcome
};

class RefreshSweep : public ::testing::TestWithParam<RefreshPoint>
{
};

TEST_P(RefreshSweep, DoubleSidedClflushOutcome)
{
    const RefreshPoint point = GetParam();
    mem::SystemConfig config;
    config.dram.refresh_period = ms(point.period_ms);
    mem::MemorySystem machine(config);
    mem::AddressSpace &attacker = machine.create_process();
    const Addr buffer = attacker.mmap(64ULL << 20);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, 64ULL << 20);

    std::optional<attack::DoubleSidedTarget> target;
    for (const auto &t : layout.find_double_sided_targets(256)) {
        if (machine.dram().disturbance(t.flat_bank).threshold_of(
                t.victim_row) == config.dram.flip_threshold) {
            target = t;
            break;
        }
    }
    ASSERT_TRUE(target.has_value());

    // Align with the victim's refresh for a clean measurement window.
    const auto &schedule = machine.dram().refresh_schedule();
    machine.advance(schedule.next_refresh(target->victim_row,
                                          machine.now()) +
                    10 - machine.now());

    attack::ClflushDoubleSided hammer(machine, attacker.pid(), *target);
    const auto result = hammer.run(ms(point.period_ms) + ms(8));
    EXPECT_EQ(result.flipped, point.clflush_flips);
}

INSTANTIATE_TEST_SUITE_P(
    Periods, RefreshSweep,
    ::testing::Values(RefreshPoint{64.0, true}, RefreshPoint{32.0, true},
                      RefreshPoint{16.0, true},
                      // Section 2.1: "Going from a 64ms refresh period to
                      // the 15ms required to protect our DRAM" — at 12 ms
                      // even the fastest attack cannot accumulate 110 K
                      // per side.
                      RefreshPoint{12.0, false}),
    [](const auto &info) {
        return "period" +
               std::to_string(static_cast<int>(info.param.period_ms)) +
               "ms";
    });

// ---------------------------------------------------------------------------
// Detector invariants across configurations
// ---------------------------------------------------------------------------

class DetectorConfigSweep
    : public ::testing::TestWithParam<detector::AnvilConfig>
{
};

TEST_P(DetectorConfigSweep, StopsTheBaselineAttackWithZeroFlips)
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);
    detector::Anvil anvil(machine, pmu, GetParam());
    anvil.start();

    mem::AddressSpace &attacker = machine.create_process();
    const Addr buffer = attacker.mmap(64ULL << 20);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, 64ULL << 20);
    const auto targets = layout.find_double_sided_targets(4);
    ASSERT_FALSE(targets.empty());
    attack::ClflushDoubleSided hammer(machine, attacker.pid(),
                                      targets.front());
    const auto result = hammer.run(ms(128));
    EXPECT_FALSE(result.flipped);
    EXPECT_GE(anvil.stats().detections, 1u);
    // Selective refreshes stay orders of magnitude below hammering rates.
    const double per_64ms = static_cast<double>(
                                anvil.stats().selective_refreshes) /
                            (to_ms(machine.now()) / 64.0);
    EXPECT_LT(per_64ms, 1000.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DetectorConfigSweep,
    ::testing::Values(detector::AnvilConfig::baseline(),
                      detector::AnvilConfig::light(),
                      detector::AnvilConfig::heavy()),
    [](const ::testing::TestParamInfo<detector::AnvilConfig> &info) {
        std::string name = info.param.name;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------------
// Tracker-zoo invariants under randomized traffic
// ---------------------------------------------------------------------------

/** One-bank next-gen module: every tracker sees maximal table pressure. */
dram::DramConfig
tracker_config()
{
    dram::DramConfig config;
    config.ranks_per_channel = 1;
    config.banks_per_rank = 1;
    config.rows_per_bank = 4096;
    config.variation_spread = 0.0;
    config.flip_threshold = 150000;
    config.second_neighbor_weight = 0.5;
    return config;
}

/**
 * Seeded random trace: a double-sided hammer pair (rows 100/102) mixed
 * with uniform cold-row churn, so one trace exercises both the
 * flip-prevention and the table-thrash paths of every tracker.
 */
std::vector<std::uint32_t>
mixed_trace(std::uint64_t seed, std::size_t accesses)
{
    Rng rng(seed);
    std::vector<std::uint32_t> rows;
    rows.reserve(accesses);
    bool low = false;
    for (std::size_t i = 0; i < accesses; ++i) {
        if (rng.next_bool(0.5)) {
            rows.push_back(low ? 100 : 102);
            low = !low;
        } else {
            // Churn stays clear of the hammer neighbourhood: touching
            // the victim would restore its charge and neuter the trace.
            rows.push_back(static_cast<std::uint32_t>(
                200 + rng.next_below(tracker_config().rows_per_bank -
                                     200)));
        }
    }
    return rows;
}

/** Replays @p rows against @p dram; returns the flip count. */
std::size_t
replay(dram::DramSystem &dram, const std::vector<std::uint32_t> &rows)
{
    Tick now = 0;
    for (const std::uint32_t row : rows) {
        now += dram.config().t_row_miss;
        dram.access(dram.row_to_addr(0, row), now);
    }
    return dram.flips().size();
}

class TrackerProperty : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TrackerProperty, RefreshesAccountForEveryPreventedFlip)
{
    // A tracker cannot prevent a flip without issuing at least one
    // refresh read: across seeds, refreshes >= flips prevented relative
    // to the identical unprotected replay.
    for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
        const auto rows = mixed_trace(seed, 400000);

        dram::DramSystem plain(tracker_config());
        const std::size_t flips_plain = replay(plain, rows);
        ASSERT_GE(flips_plain, 1u) << "trace too weak to test prevention";

        dram::DramSystem tracked(tracker_config());
        const auto tracker =
            mitigations::mitigation_registry().at(GetParam()).make(
                tracked, seed);
        const std::size_t flips_tracked = replay(tracked, rows);

        const std::size_t prevented =
            flips_plain > flips_tracked ? flips_plain - flips_tracked : 0;
        EXPECT_GE(tracker->stats().neighbor_refreshes, prevented)
            << "seed " << seed;
        EXPECT_GT(tracker->stats().activations_observed, 0u);
    }
}

TEST_P(TrackerProperty, ThrashChurnStaysBoundedAndFlipFree)
{
    // Pure cold-row churn: the worst case for every finite table. No
    // tracker may crash, flip memory with its own refresh reads, or let
    // its bookkeeping run away.
    Rng rng(99);
    dram::DramSystem dram(tracker_config());
    const auto tracker =
        mitigations::mitigation_registry().at(GetParam()).make(dram, 7);
    constexpr std::size_t kAccesses = 200000;
    Tick now = 0;
    for (std::size_t i = 0; i < kAccesses; ++i) {
        now += dram.config().t_row_miss;
        const auto row = static_cast<std::uint32_t>(
            rng.next_below(dram.config().rows_per_bank));
        dram.access(dram.row_to_addr(0, row), now);
    }
    EXPECT_TRUE(dram.flips().empty());
    const mitigations::MitigationStats &stats = tracker->stats();
    // Same-row repeats hit the open row buffer; everything else is an
    // observed activation — and nothing beyond the driven traffic is.
    EXPECT_LE(stats.activations_observed, kAccesses);
    EXPECT_GE(stats.activations_observed, kAccesses * 9 / 10);
    // Refresh volume is bounded by the response policy, not unbounded:
    // even refresh-on-evict issues at most a radius neighbourhood per
    // eviction, and one activation credits at most four victims (so at
    // most four evictions, for the victim-centric tracker).
    EXPECT_LE(stats.table_evictions, 4 * stats.activations_observed);
    EXPECT_LE(stats.neighbor_refreshes,
              4 * stats.activations_observed);
    EXPECT_LE(stats.table_peak_entries,
              dram.config().rows_per_bank);
}

INSTANTIATE_TEST_SUITE_P(
    TrackerZoo, TrackerProperty,
    ::testing::Values("para", "trr", "ctrr-sampled", "ctrr-evict",
                      "ctrr-radius2", "rvc", "dapper"),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------------
// Workload determinism across the whole suite
// ---------------------------------------------------------------------------

class WorkloadSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadSweep, RunsDeterministicallyAndNeverFlips)
{
    auto run = [&] {
        mem::MemorySystem machine{mem::SystemConfig{}};
        workload::Workload load(machine,
                                workload::spec_profile(GetParam()));
        load.run_ops(200000);
        EXPECT_TRUE(machine.dram().flips().empty());
        return machine.now();
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSweep,
    ::testing::Values("astar", "bzip2", "gcc", "gobmk", "h264ref", "hmmer",
                      "libquantum", "mcf", "omnetpp", "perlbench", "sjeng",
                      "xalancbmk"),
    [](const auto &info) { return std::string(info.param); });

}  // namespace
}  // namespace anvil
