/**
 * @file
 * Determinism regression net for the simulator.
 *
 * Two back-to-back serial runs of the double-sided attack + ANVIL
 * scenario must produce identical Detection sequences and AnvilStats.
 * This guards the contracts parallel sweeps rely on: the EventQueue's
 * FIFO tie-break among equal deadlines (src/sim/event_queue.hh), the
 * explicit seeding of every random stream, and the absence of any
 * global mutable state shared between simulated machines.
 */
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "workload/workload.hh"

namespace anvil {
namespace {

/** Everything observable from one scenario run. */
struct RunRecord {
    std::vector<detector::Detection> detections;
    detector::AnvilStats stats;
    dram::DramSystem::Stats dram;
    std::uint64_t flips = 0;
    Tick end_time = 0;
};

/**
 * The Table-3 double-sided CLFLUSH attack under ANVIL-baseline with one
 * background workload, entirely determined by @p seed.
 */
RunRecord
run_scenario(std::uint64_t seed)
{
    mem::SystemConfig config;
    config.vm_seed = seed;
    mem::MemorySystem machine(config);
    pmu::Pmu pmu(machine);

    mem::AddressSpace &attacker = machine.create_process();
    const std::uint64_t buffer_bytes = 16ULL << 20;
    const Addr buffer = attacker.mmap(buffer_bytes);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, buffer_bytes);
    const auto targets = layout.find_double_sided_targets(4);
    if (targets.empty())
        throw std::runtime_error("no double-sided target");

    workload::SpecProfile profile = workload::spec_profile("mcf");
    profile.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    workload::Workload background(machine, profile);

    detector::Anvil anvil(machine, pmu,
                          detector::AnvilConfig::baseline());
    anvil.set_ground_truth([] { return true; });
    anvil.start();

    machine.advance(ms(1));
    attack::ClflushDoubleSided hammer(machine, attacker.pid(),
                                      targets.front());
    workload::Runner runner(machine);
    runner.add([&] { hammer.step(); });
    runner.add([&] { background.step(); });
    runner.run_for(ms(32));

    RunRecord record;
    record.detections = anvil.detections();
    record.stats = anvil.stats();
    record.dram = machine.dram().stats();
    record.flips = machine.dram().flips().size();
    record.end_time = machine.now();
    return record;
}

void
expect_identical(const RunRecord &a, const RunRecord &b)
{
    // Detection sequences: same length, and every field of every
    // detection (including the aggressors' identities and order) equal.
    ASSERT_EQ(a.detections.size(), b.detections.size());
    for (std::size_t i = 0; i < a.detections.size(); ++i) {
        const detector::Detection &da = a.detections[i];
        const detector::Detection &db = b.detections[i];
        EXPECT_EQ(da.time, db.time) << "detection " << i;
        EXPECT_EQ(da.refreshes_performed, db.refreshes_performed)
            << "detection " << i;
        EXPECT_EQ(da.ground_truth_attack, db.ground_truth_attack)
            << "detection " << i;
        ASSERT_EQ(da.aggressors.size(), db.aggressors.size())
            << "detection " << i;
        for (std::size_t j = 0; j < da.aggressors.size(); ++j) {
            EXPECT_EQ(da.aggressors[j].flat_bank,
                      db.aggressors[j].flat_bank);
            EXPECT_EQ(da.aggressors[j].row, db.aggressors[j].row);
            EXPECT_EQ(da.aggressors[j].samples,
                      db.aggressors[j].samples);
            EXPECT_DOUBLE_EQ(da.aggressors[j].estimated_accesses,
                             db.aggressors[j].estimated_accesses);
        }
    }

    // AnvilStats, field by field.
    EXPECT_EQ(a.stats.stage1_windows, b.stats.stage1_windows);
    EXPECT_EQ(a.stats.stage1_triggers, b.stats.stage1_triggers);
    EXPECT_EQ(a.stats.stage2_windows, b.stats.stage2_windows);
    EXPECT_EQ(a.stats.detections, b.stats.detections);
    EXPECT_EQ(a.stats.selective_refreshes, b.stats.selective_refreshes);
    EXPECT_EQ(a.stats.false_positive_detections,
              b.stats.false_positive_detections);
    EXPECT_EQ(a.stats.false_positive_refreshes,
              b.stats.false_positive_refreshes);
    EXPECT_EQ(a.stats.overhead, b.stats.overhead);

    // The machine as a whole advanced identically.
    EXPECT_EQ(a.dram.accesses, b.dram.accesses);
    EXPECT_EQ(a.dram.row_hits, b.dram.row_hits);
    EXPECT_EQ(a.dram.row_misses, b.dram.row_misses);
    EXPECT_EQ(a.dram.selective_refreshes, b.dram.selective_refreshes);
    EXPECT_EQ(a.dram.refresh_stall, b.dram.refresh_stall);
    EXPECT_EQ(a.flips, b.flips);
    EXPECT_EQ(a.end_time, b.end_time);
}

TEST(Determinism, BackToBackRunsAreIdentical)
{
    const RunRecord first = run_scenario(0x5eed);
    const RunRecord second = run_scenario(0x5eed);
    // The scenario must be non-trivial for the comparison to mean
    // anything: ANVIL detected the attack at least once.
    ASSERT_GE(first.stats.detections, 1u);
    expect_identical(first, second);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    // Conversely, the seed must actually steer the run; otherwise the
    // test above would pass vacuously on a seed-blind simulator.
    const RunRecord a = run_scenario(0x5eed);
    const RunRecord b = run_scenario(0xbeef);
    EXPECT_NE(a.dram.accesses, b.dram.accesses);
}

}  // namespace
}  // namespace anvil
