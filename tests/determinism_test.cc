/**
 * @file
 * Determinism regression net for the simulator.
 *
 * Two back-to-back serial runs of the double-sided attack + ANVIL
 * scenario must produce identical Detection sequences and AnvilStats.
 * This guards the contracts parallel sweeps rely on: the EventQueue's
 * FIFO tie-break among equal deadlines (src/sim/event_queue.hh), the
 * explicit seeding of every random stream, and the absence of any
 * global mutable state shared between simulated machines.
 */
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "mitigations/counter_trr.hh"
#include "mitigations/registry.hh"
#include "pmu/pmu.hh"
#include "workload/workload.hh"

namespace anvil {
namespace {

/** Everything observable from one scenario run. */
struct RunRecord {
    std::vector<detector::Detection> detections;
    detector::AnvilStats stats;
    dram::DramSystem::Stats dram;
    std::uint64_t flips = 0;
    Tick end_time = 0;
};

/**
 * The Table-3 double-sided CLFLUSH attack under ANVIL-baseline with one
 * background workload, entirely determined by @p seed.
 */
RunRecord
run_scenario(std::uint64_t seed)
{
    mem::SystemConfig config;
    config.vm_seed = seed;
    mem::MemorySystem machine(config);
    pmu::Pmu pmu(machine);

    mem::AddressSpace &attacker = machine.create_process();
    const std::uint64_t buffer_bytes = 16ULL << 20;
    const Addr buffer = attacker.mmap(buffer_bytes);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, buffer_bytes);
    const auto targets = layout.find_double_sided_targets(4);
    if (targets.empty())
        throw std::runtime_error("no double-sided target");

    workload::SpecProfile profile = workload::spec_profile("mcf");
    profile.seed = seed ^ 0x9e3779b97f4a7c15ULL;
    workload::Workload background(machine, profile);

    detector::Anvil anvil(machine, pmu,
                          detector::AnvilConfig::baseline());
    anvil.set_ground_truth([] { return true; });
    anvil.start();

    machine.advance(ms(1));
    attack::ClflushDoubleSided hammer(machine, attacker.pid(),
                                      targets.front());
    workload::Runner runner(machine);
    runner.add([&] { hammer.step(); });
    runner.add([&] { background.step(); });
    runner.run_for(ms(32));

    RunRecord record;
    record.detections = anvil.detections();
    record.stats = anvil.stats();
    record.dram = machine.dram().stats();
    record.flips = machine.dram().flips().size();
    record.end_time = machine.now();
    return record;
}

void
expect_identical(const RunRecord &a, const RunRecord &b)
{
    // Detection sequences: same length, and every field of every
    // detection (including the aggressors' identities and order) equal.
    ASSERT_EQ(a.detections.size(), b.detections.size());
    for (std::size_t i = 0; i < a.detections.size(); ++i) {
        const detector::Detection &da = a.detections[i];
        const detector::Detection &db = b.detections[i];
        EXPECT_EQ(da.time, db.time) << "detection " << i;
        EXPECT_EQ(da.refreshes_performed, db.refreshes_performed)
            << "detection " << i;
        EXPECT_EQ(da.ground_truth_attack, db.ground_truth_attack)
            << "detection " << i;
        ASSERT_EQ(da.aggressors.size(), db.aggressors.size())
            << "detection " << i;
        for (std::size_t j = 0; j < da.aggressors.size(); ++j) {
            EXPECT_EQ(da.aggressors[j].flat_bank,
                      db.aggressors[j].flat_bank);
            EXPECT_EQ(da.aggressors[j].row, db.aggressors[j].row);
            EXPECT_EQ(da.aggressors[j].samples,
                      db.aggressors[j].samples);
            EXPECT_DOUBLE_EQ(da.aggressors[j].estimated_accesses,
                             db.aggressors[j].estimated_accesses);
        }
    }

    // AnvilStats, field by field.
    EXPECT_EQ(a.stats.stage1_windows, b.stats.stage1_windows);
    EXPECT_EQ(a.stats.stage1_triggers, b.stats.stage1_triggers);
    EXPECT_EQ(a.stats.stage2_windows, b.stats.stage2_windows);
    EXPECT_EQ(a.stats.detections, b.stats.detections);
    EXPECT_EQ(a.stats.selective_refreshes, b.stats.selective_refreshes);
    EXPECT_EQ(a.stats.false_positive_detections,
              b.stats.false_positive_detections);
    EXPECT_EQ(a.stats.false_positive_refreshes,
              b.stats.false_positive_refreshes);
    EXPECT_EQ(a.stats.overhead, b.stats.overhead);

    // The machine as a whole advanced identically.
    EXPECT_EQ(a.dram.accesses, b.dram.accesses);
    EXPECT_EQ(a.dram.row_hits, b.dram.row_hits);
    EXPECT_EQ(a.dram.row_misses, b.dram.row_misses);
    EXPECT_EQ(a.dram.selective_refreshes, b.dram.selective_refreshes);
    EXPECT_EQ(a.dram.refresh_stall, b.dram.refresh_stall);
    EXPECT_EQ(a.flips, b.flips);
    EXPECT_EQ(a.end_time, b.end_time);
}

TEST(Determinism, BackToBackRunsAreIdentical)
{
    const RunRecord first = run_scenario(0x5eed);
    const RunRecord second = run_scenario(0x5eed);
    // The scenario must be non-trivial for the comparison to mean
    // anything: ANVIL detected the attack at least once.
    ASSERT_GE(first.stats.detections, 1u);
    expect_identical(first, second);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    // Conversely, the seed must actually steer the run; otherwise the
    // test above would pass vacuously on a seed-blind simulator.
    const RunRecord a = run_scenario(0x5eed);
    const RunRecord b = run_scenario(0xbeef);
    EXPECT_NE(a.dram.accesses, b.dram.accesses);
}

/** Everything observable from one tracked (mitigation-attached) run. */
struct TrackedRecord {
    mitigations::MitigationStats stats;
    dram::DramSystem::Stats dram;
    std::uint64_t flips = 0;
    Tick end_time = 0;
    /// End-of-run counter values of the two aggressor rows: retains the
    /// sampler's pickup lag even when refresh counts are identical.
    std::uint64_t low_counter = 0;
    std::uint64_t high_counter = 0;
};

/**
 * Double-sided CLFLUSH against the next-generation module with the
 * sampler-based counter-table TRR attached. The tracker's RNG sees only
 * @p mitigation_seed — the contract behind the per-trial "mitigation"
 * sub-stream the scenario layer hands to the registry factory.
 */
TrackedRecord
run_tracked(std::uint64_t vm_seed, std::uint64_t mitigation_seed)
{
    mem::SystemConfig config;
    config.vm_seed = vm_seed;
    config.dram.flip_threshold = 200000;
    config.dram.second_neighbor_weight = 0.5;
    mem::MemorySystem machine(config);
    const auto tracker =
        mitigations::mitigation_registry().at("ctrr-sampled").make(
            machine.dram(), mitigation_seed);

    mem::AddressSpace &attacker = machine.create_process();
    const std::uint64_t buffer_bytes = 16ULL << 20;
    const Addr buffer = attacker.mmap(buffer_bytes);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, buffer_bytes);
    const auto targets = layout.find_double_sided_targets(4);
    if (targets.empty())
        throw std::runtime_error("no double-sided target");

    const attack::DoubleSidedTarget &target = targets.front();
    attack::ClflushDoubleSided hammer(machine, attacker.pid(), target);
    hammer.run(ms(24));

    TrackedRecord record;
    record.stats = tracker->stats();
    const auto *ctrr =
        dynamic_cast<const mitigations::CounterTrr *>(tracker.get());
    if (ctrr != nullptr) {
        record.low_counter =
            ctrr->counter_of(target.flat_bank, target.victim_row - 1);
        record.high_counter =
            ctrr->counter_of(target.flat_bank, target.victim_row + 1);
    }
    record.dram = machine.dram().stats();
    record.flips = machine.dram().flips().size();
    record.end_time = machine.now();
    return record;
}

TEST(Determinism, TrackedRunsAreReproducible)
{
    const TrackedRecord a = run_tracked(0x5eed, 7);
    const TrackedRecord b = run_tracked(0x5eed, 7);
    ASSERT_GT(a.stats.activations_observed, 0u);
    EXPECT_EQ(a.stats.activations_observed, b.stats.activations_observed);
    EXPECT_EQ(a.stats.neighbor_refreshes, b.stats.neighbor_refreshes);
    EXPECT_EQ(a.stats.table_evictions, b.stats.table_evictions);
    EXPECT_EQ(a.stats.table_peak_entries, b.stats.table_peak_entries);
    EXPECT_EQ(a.dram.accesses, b.dram.accesses);
    EXPECT_EQ(a.dram.row_hits, b.dram.row_hits);
    EXPECT_EQ(a.dram.row_misses, b.dram.row_misses);
    EXPECT_EQ(a.low_counter, b.low_counter);
    EXPECT_EQ(a.high_counter, b.high_counter);
    EXPECT_EQ(a.flips, b.flips);
    EXPECT_EQ(a.end_time, b.end_time);
}

TEST(Determinism, MitigationSeedSteersTheSampler)
{
    // The sampler's coin stream must come from the mitigation seed, not
    // from any shared/global source. A different seed shifts when the
    // aggressors earn their counters; the total refresh count is
    // quantized by MAC crossings and may coincide between seeds, but the
    // pickup lag survives in the aggressors' end-of-run counter values.
    // Scan a few seeds so one coincidental lag collision can't pass a
    // seed-blind sampler off as healthy.
    const TrackedRecord a = run_tracked(0x5eed, 7);
    bool diverged = false;
    for (std::uint64_t seed = 8; seed <= 11 && !diverged; ++seed) {
        const TrackedRecord c = run_tracked(0x5eed, seed);
        diverged = a.low_counter != c.low_counter ||
                   a.high_counter != c.high_counter ||
                   a.stats.neighbor_refreshes != c.stats.neighbor_refreshes;
    }
    EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace anvil
