/**
 * @file
 * Tests of the sweep engine's fault paths, driven by deterministic fault
 * injection (runner/fault.hh): error boundaries, retries with re-derived
 * seeds, watchdog timeouts, the crash-safe journal (round-trip, torn-tail
 * recovery, foreign-file rejection), and the headline recovery guarantee —
 * a sweep drained mid-run and finished with --resume writes final JSON
 * byte-identical to an uninterrupted run.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "runner/fault.hh"
#include "runner/journal.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"
#include "runner/trial.hh"

namespace anvil {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/** A cheap, fully deterministic trial body: results derive from the seed. */
runner::TrialResult
synthetic_result(const runner::TrialContext &ctx)
{
    runner::TrialResult r;
    const std::uint64_t s = ctx.seed_for("unit");
    r.set_value("metric", static_cast<double>(s % 1000) / 7.0);
    r.set_counter("events", s % 17);
    return r;
}

runner::SweepOptions
base_options()
{
    runner::SweepOptions o;
    o.name = "synthetic";
    o.jobs = 1;
    o.master_seed = 0x5eedULL;
    return o;
}

/** Runs a 1-scenario/3-trial synthetic sweep with @p options. */
runner::SweepRun
run_synthetic(runner::SweepOptions options)
{
    runner::Sweep sweep(std::move(options));
    sweep.add_scenario("alpha", 3, synthetic_result);
    return sweep.run();
}

std::string
json_of(const runner::SweepRun &run)
{
    std::ostringstream os;
    run.sink.write_json(os);
    return os.str();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool
file_exists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** A per-test scratch path, cleared of leftovers from earlier runs. */
std::string
temp_path(const std::string &name)
{
    const std::string path =
        ::testing::TempDir() + "anvil_fault_test_" + name;
    std::remove(path.c_str());
    std::remove((path + ".journal").c_str());
    return path;
}

/** Tests that touch the process-wide drain flag must leave it cleared. */
struct ShutdownGuard {
    ShutdownGuard() { runner::clear_shutdown(); }
    ~ShutdownGuard() { runner::clear_shutdown(); }
};

// ---------------------------------------------------------------------------
// Fault-spec parsing and matching
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesKindScenarioAndTrial)
{
    const runner::FaultSpec f = runner::parse_fault("throw@alpha:3");
    EXPECT_EQ(f.kind, runner::FaultKind::kThrow);
    EXPECT_EQ(f.scenario, "alpha");
    EXPECT_EQ(f.trial, 3u);

    // The trial index follows the LAST ':', so scenario names may
    // themselves contain colons (e.g. "mcf/anvil:heavy").
    const runner::FaultSpec g = runner::parse_fault("hang@a:b:2");
    EXPECT_EQ(g.kind, runner::FaultKind::kHang);
    EXPECT_EQ(g.scenario, "a:b");
    EXPECT_EQ(g.trial, 2u);
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(runner::parse_fault("throw"), Error);
    EXPECT_THROW(runner::parse_fault("nope@x"), Error);
    EXPECT_THROW(runner::parse_fault("throw@x:notanumber"), Error);
    EXPECT_THROW(runner::parse_fault("bogus@x:1"), Error);
    EXPECT_THROW(runner::parse_fault("throw@x:"), Error);
}

TEST(FaultSpec, PlanMatchesExactCoordinatesOnly)
{
    const runner::FaultPlan plan(
        {runner::parse_fault("throw@alpha:1")});
    runner::TrialSpec spec;
    spec.scenario = "alpha";
    spec.trial = 1;
    EXPECT_NE(plan.match(spec), nullptr);
    spec.trial = 2;
    EXPECT_EQ(plan.match(spec), nullptr);
    spec.scenario = "beta";
    spec.trial = 1;
    EXPECT_EQ(plan.match(spec), nullptr);
    EXPECT_TRUE(runner::FaultPlan().empty());
}

// ---------------------------------------------------------------------------
// Injected faults become structured outcomes
// ---------------------------------------------------------------------------

TEST(FaultInjection, ThrowBecomesFailedOutcomeNotCrash)
{
    runner::SweepOptions options = base_options();
    options.faults = {runner::parse_fault("throw@alpha:1")};
    const runner::SweepRun run = run_synthetic(std::move(options));

    EXPECT_EQ(run.completed, 2u);
    EXPECT_EQ(run.failed, 1u);
    ASSERT_EQ(run.outcomes.size(), 3u);
    EXPECT_EQ(run.outcomes[1].status, runner::TrialStatus::kFailed);
    EXPECT_NE(run.outcomes[1].error.find("injected fault"),
              std::string::npos)
        << run.outcomes[1].error;
    EXPECT_NE(run.outcomes[1].error.find("scenario=alpha"),
              std::string::npos)
        << "the error must carry the trial's identity: "
        << run.outcomes[1].error;

    // The failure is a first-class JSON record, siblings are unaffected.
    const std::string json = json_of(run);
    EXPECT_NE(json.find("\"failures\""), std::string::npos);
    EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
}

TEST(FaultInjection, RetriedFlakeIsByteIdenticalToCleanRun)
{
    const std::string clean = json_of(run_synthetic(base_options()));

    runner::SweepOptions options = base_options();
    options.faults = {runner::parse_fault("flaky@alpha:1")};
    options.retries = 1;
    const runner::SweepRun run = run_synthetic(std::move(options));

    EXPECT_EQ(run.completed, 3u);
    EXPECT_EQ(run.failed, 0u);
    ASSERT_EQ(run.outcomes.size(), 3u);
    EXPECT_EQ(run.outcomes[1].status, runner::TrialStatus::kOk);
    EXPECT_EQ(run.outcomes[1].attempts, 2u);
    // The retry re-derives the identical seed, so a flaky-infra retry
    // cannot change results: the report is byte-identical.
    EXPECT_EQ(json_of(run), clean);
}

TEST(FaultInjection, FlakeWithoutRetriesFails)
{
    runner::SweepOptions options = base_options();
    options.faults = {runner::parse_fault("flaky@alpha:1")};
    const runner::SweepRun run = run_synthetic(std::move(options));
    EXPECT_EQ(run.failed, 1u);
    EXPECT_EQ(run.outcomes[1].status, runner::TrialStatus::kFailed);
}

TEST(FaultInjection, HangIsBoundedByTheWatchdogAndNeverRetried)
{
    runner::SweepOptions options = base_options();
    options.faults = {runner::parse_fault("hang@alpha:0")};
    options.trial_timeout = 1000;
    options.retries = 3;  // timeouts are deterministic: retrying is futile
    const runner::SweepRun run = run_synthetic(std::move(options));

    ASSERT_EQ(run.outcomes.size(), 3u);
    EXPECT_EQ(run.outcomes[0].status, runner::TrialStatus::kTimedOut);
    EXPECT_EQ(run.outcomes[0].attempts, 1u);
    EXPECT_NE(run.outcomes[0].error.find("budget"), std::string::npos)
        << run.outcomes[0].error;
    EXPECT_EQ(run.completed, 2u);
    EXPECT_EQ(run.failed, 1u);

    const std::string json = json_of(run);
    EXPECT_NE(json.find("\"status\": \"timed_out\""), std::string::npos);
}

TEST(FaultInjection, HangWithoutTimeoutFailsWithGuidance)
{
    runner::SweepOptions options = base_options();
    options.faults = {runner::parse_fault("hang@alpha:0")};
    const runner::SweepRun run = run_synthetic(std::move(options));
    ASSERT_EQ(run.outcomes.size(), 3u);
    EXPECT_EQ(run.outcomes[0].status, runner::TrialStatus::kFailed);
    EXPECT_NE(run.outcomes[0].error.find("--trial-timeout"),
              std::string::npos)
        << run.outcomes[0].error;
}

TEST(FaultInjection, CorruptionIsSilentDeterministicAndSeedDerived)
{
    const std::string clean = json_of(run_synthetic(base_options()));

    runner::SweepOptions options = base_options();
    options.faults = {runner::parse_fault("corrupt@alpha:1")};
    const runner::SweepRun first = run_synthetic(options);
    const runner::SweepRun second = run_synthetic(options);

    // Silent: the trial still reports ok...
    EXPECT_EQ(first.failed, 0u);
    EXPECT_EQ(first.outcomes[1].status, runner::TrialStatus::kOk);
    // ...corrupted: the report differs from a clean run...
    EXPECT_NE(json_of(first), clean);
    // ...deterministic: the perturbation replays exactly.
    EXPECT_EQ(json_of(first), json_of(second));
}

TEST(FaultInjection, TimeoutFromTheTrialBodyIsRecorded)
{
    runner::SweepOptions options = base_options();
    options.trial_timeout = 100;
    options.retries = 2;
    runner::Sweep sweep(std::move(options));
    sweep.add_scenario("ticking", 1, [](const runner::TrialContext &ctx) {
        for (int i = 0; i < 10000; ++i)
            ctx.watchdog().tick();
        return runner::TrialResult{};
    });
    const runner::SweepRun run = sweep.run();
    ASSERT_EQ(run.outcomes.size(), 1u);
    EXPECT_EQ(run.outcomes[0].status, runner::TrialStatus::kTimedOut);
    EXPECT_EQ(run.outcomes[0].attempts, 1u);
}

// ---------------------------------------------------------------------------
// Journal: round-trip, recovery, rejection
// ---------------------------------------------------------------------------

runner::TrialSpec
spec_at(const std::string &scenario, std::uint64_t trial,
        std::uint64_t global_index)
{
    runner::TrialSpec s;
    s.scenario = scenario;
    s.trial = trial;
    s.seed = runner::trial_seed(0x5eedULL, scenario, trial);
    s.global_index = global_index;
    return s;
}

TEST(Journal, RoundTripsEveryFieldBitExactly)
{
    const std::string path = temp_path("roundtrip.journal");

    runner::TrialSpec spec = spec_at("alpha", 2, 7);
    runner::TrialOutcome out;
    out.status = runner::TrialStatus::kFailed;
    out.error = "trial failed [scenario=alpha]: caused by: boom";
    out.attempts = 3;
    out.result.set_value("mean_ms", 1.0 / 3.0);  // not exactly printable
    out.result.set_value("neg_zero", -0.0);
    out.result.set_counter("flips", 0xdeadbeefcafeULL);
    detector::AnvilStats anvil{};
    anvil.stage1_windows = 11;
    anvil.stage1_triggers = 22;
    anvil.stage2_windows = 33;
    anvil.detections = 44;
    anvil.selective_refreshes = 55;
    anvil.false_positive_detections = 66;
    anvil.false_positive_refreshes = 77;
    anvil.overhead = 88;
    out.result.set_anvil(anvil);
    dram::DramSystem::Stats dram{};
    dram.accesses = 101;
    dram.row_hits = 102;
    dram.row_misses = 103;
    dram.selective_refreshes = 104;
    dram.refresh_stall = 105;
    out.result.set_dram(dram);

    {
        runner::JournalWriter writer;
        writer.open(path, "synthetic", 0x5eedULL, /*append=*/false);
        ASSERT_TRUE(writer.is_open());
        writer.append(spec, out);
        // A second, minimal record: ok status, no stat blocks.
        runner::TrialOutcome ok;
        ok.result.set_counter("events", 9);
        writer.append(spec_at("beta", 0, 8), ok);
    }

    const std::vector<runner::JournalRecord> records =
        runner::read_journal(path, "synthetic", 0x5eedULL);
    ASSERT_EQ(records.size(), 2u);

    const runner::JournalRecord &rec = records[0];
    EXPECT_EQ(rec.spec.scenario, "alpha");
    EXPECT_EQ(rec.spec.trial, 2u);
    EXPECT_EQ(rec.spec.seed, spec.seed);
    EXPECT_EQ(rec.spec.global_index, 7u);
    EXPECT_EQ(rec.outcome.status, runner::TrialStatus::kFailed);
    EXPECT_EQ(rec.outcome.error, out.error);
    EXPECT_EQ(rec.outcome.attempts, 3u);
    ASSERT_EQ(rec.outcome.result.values().size(), 2u);
    EXPECT_EQ(rec.outcome.result.values()[0].first, "mean_ms");
    EXPECT_EQ(rec.outcome.result.values()[0].second, 1.0 / 3.0);
    EXPECT_TRUE(std::signbit(rec.outcome.result.values()[1].second));
    ASSERT_EQ(rec.outcome.result.counters().size(), 1u);
    EXPECT_EQ(rec.outcome.result.counters()[0].second,
              0xdeadbeefcafeULL);
    ASSERT_TRUE(rec.outcome.result.has_anvil());
    EXPECT_EQ(rec.outcome.result.anvil().false_positive_refreshes, 77u);
    EXPECT_EQ(rec.outcome.result.anvil().overhead, 88u);
    ASSERT_TRUE(rec.outcome.result.has_dram());
    EXPECT_EQ(rec.outcome.result.dram().refresh_stall, 105u);

    EXPECT_EQ(records[1].spec.scenario, "beta");
    EXPECT_FALSE(records[1].outcome.result.has_anvil());
    EXPECT_FALSE(records[1].outcome.result.has_dram());
}

TEST(Journal, TornTrailingRecordIsTruncatedAway)
{
    const std::string path = temp_path("torn.journal");
    {
        runner::JournalWriter writer;
        writer.open(path, "synthetic", 1, /*append=*/false);
        runner::TrialOutcome ok;
        ok.result.set_counter("events", 1);
        writer.append(spec_at("alpha", 0, 0), ok);
        writer.append(spec_at("alpha", 1, 1), ok);
    }
    // Emulate a crash mid-append: a length prefix promising 48 bytes,
    // followed by only a few.
    {
        std::ofstream app(path, std::ios::binary | std::ios::app);
        const char torn[] = {48, 0, 0, 0, 'x', 'y', 'z'};
        app.write(torn, sizeof torn);
    }

    const std::vector<runner::JournalRecord> recovered =
        runner::read_journal(path, "synthetic", 1);
    ASSERT_EQ(recovered.size(), 2u);
    EXPECT_EQ(recovered[1].spec.trial, 1u);

    // Recovery truncated the file: a second read sees a clean journal.
    const std::vector<runner::JournalRecord> again =
        runner::read_journal(path, "synthetic", 1);
    EXPECT_EQ(again.size(), 2u);
}

TEST(Journal, RejectsForeignFilesAndMismatchedSweeps)
{
    const std::string missing = temp_path("never_written.journal");
    EXPECT_TRUE(
        runner::read_journal(missing, "synthetic", 1).empty());

    const std::string garbage = temp_path("garbage.journal");
    {
        std::ofstream out(garbage, std::ios::binary);
        out << "this is not a journal";
    }
    EXPECT_THROW(runner::read_journal(garbage, "synthetic", 1), Error);

    const std::string other = temp_path("other_sweep.journal");
    {
        runner::JournalWriter writer;
        writer.open(other, "sweep_a", 1, /*append=*/false);
    }
    // Different name or master seed: refuse, with guidance.
    try {
        runner::read_journal(other, "sweep_b", 1);
        FAIL() << "foreign journal accepted";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("different sweep"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(runner::read_journal(other, "sweep_a", 2), Error);

    // The append-side re-check refuses the same mismatch.
    runner::JournalWriter writer;
    EXPECT_THROW(writer.open(other, "sweep_b", 1, /*append=*/true),
                 Error);
}

// ---------------------------------------------------------------------------
// Drain + resume: the recovery guarantee end to end
// ---------------------------------------------------------------------------

/** Builds the reference two-scenario sweep over @p fn. */
runner::Sweep
two_scenario_sweep(runner::SweepOptions options, runner::TrialFn fn)
{
    runner::Sweep sweep(std::move(options));
    sweep.add_scenario("alpha", 3, fn);
    sweep.add_scenario("beta", 3, fn);
    return sweep;
}

TEST(Resume, DrainedSweepResumesToByteIdenticalJson)
{
    ShutdownGuard guard;

    // Reference: the uninterrupted run.
    const std::string ref_json = temp_path("resume_ref.json");
    runner::SweepOptions ref_options = base_options();
    ref_options.json_out = ref_json;
    {
        runner::SweepRun run =
            two_scenario_sweep(ref_options, synthetic_result).run();
        EXPECT_EQ(runner::finish_sweep(run, ref_options), runner::kExitOk);
        EXPECT_FALSE(file_exists(runner::journal_path(ref_json)))
            << "a committed report must remove its journal";
    }
    const std::string reference = slurp(ref_json);
    ASSERT_FALSE(reference.empty());

    // Interrupted: a shutdown request lands after the second trial, as if
    // SIGTERM arrived mid-sweep. Serial jobs make the cut deterministic.
    const std::string out_json = temp_path("resume_out.json");
    runner::SweepOptions options = base_options();
    options.json_out = out_json;
    {
        runner::SweepRun run =
            two_scenario_sweep(
                options,
                [](const runner::TrialContext &ctx) {
                    runner::TrialResult r = synthetic_result(ctx);
                    if (ctx.spec().global_index == 1)
                        runner::request_shutdown();
                    return r;
                })
                .run();
        EXPECT_EQ(run.completed, 2u);
        EXPECT_EQ(run.skipped, 4u);
        EXPECT_FALSE(run.complete());
        EXPECT_EQ(runner::finish_sweep(run, options),
                  runner::kExitPartial);
        EXPECT_FALSE(file_exists(out_json))
            << "a partial run must not write final JSON";
        EXPECT_TRUE(file_exists(runner::journal_path(out_json)))
            << "the journal must survive for --resume";
    }

    // Resume: replay the journal, run only the remainder.
    runner::clear_shutdown();
    options.resume = true;
    {
        runner::SweepRun run =
            two_scenario_sweep(options, synthetic_result).run();
        EXPECT_EQ(run.resumed, 2u);
        EXPECT_EQ(run.skipped, 0u);
        EXPECT_TRUE(run.complete());
        EXPECT_EQ(runner::finish_sweep(run, options), runner::kExitOk);
    }
    EXPECT_EQ(slurp(out_json), reference)
        << "resume must be byte-identical to an uninterrupted run";
    EXPECT_FALSE(file_exists(runner::journal_path(out_json)));
}

TEST(Resume, RefusesAJournalThatContradictsThePlan)
{
    ShutdownGuard guard;
    const std::string out_json = temp_path("resume_mismatch.json");

    runner::SweepOptions options = base_options();
    options.json_out = out_json;
    {
        runner::Sweep sweep(options);
        sweep.add_scenario("alpha", 2,
                           [](const runner::TrialContext &ctx) {
                               runner::request_shutdown();
                               return synthetic_result(ctx);
                           });
        runner::SweepRun run = sweep.run();
        EXPECT_EQ(runner::finish_sweep(run, options),
                  runner::kExitPartial);
    }

    // Same name, same seed — but the sweep definition changed (different
    // scenario), so the journaled record no longer matches the plan.
    runner::clear_shutdown();
    options.resume = true;
    runner::Sweep changed(options);
    changed.add_scenario("gamma", 2, synthetic_result);
    try {
        changed.run();
        FAIL() << "resume accepted a journal from a different plan";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("sweep plan"),
                  std::string::npos)
            << e.what();
    }
    std::remove(runner::journal_path(out_json).c_str());
}

TEST(Output, JsonWritesAreAtomicAndFailuresAreReported)
{
    const runner::ResultSink sink;

    runner::SweepOptions good = base_options();
    good.json_out = temp_path("atomic.json");
    EXPECT_TRUE(runner::write_json_output(sink, good));
    const std::string written = slurp(good.json_out);
    EXPECT_EQ(written.front(), '{');

    runner::SweepOptions bad = base_options();
    bad.json_out = ::testing::TempDir() + "no_such_dir/never.json";
    EXPECT_FALSE(runner::write_json_output(sink, bad));

    runner::SweepOptions none = base_options();  // no report requested
    EXPECT_TRUE(runner::write_json_output(sink, none));
}

TEST(Output, UnwritableReportPathStillRunsAndExitsJsonError)
{
    // The journal lives next to the report, so an unwritable destination
    // also fails journal creation. That must degrade (run unjournaled),
    // not abort: the sweep completes and the unwritable report keeps its
    // documented exit code.
    runner::SweepOptions options = base_options();
    options.json_out = ::testing::TempDir() + "no_such_dir/report.json";
    const runner::SweepRun run = run_synthetic(options);
    EXPECT_EQ(run.completed, 3u);
    EXPECT_EQ(runner::finish_sweep(run, options),
              runner::kExitJsonError);
}

}  // namespace
}  // namespace anvil
