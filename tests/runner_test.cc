/**
 * @file
 * Tests for the parallel experiment runner: thread-pool behaviour, the
 * deterministic seed chain, JSON formatting, and the headline guarantee —
 * a parallel sweep emits byte-identical aggregated JSON to a serial one
 * with the same master seed, including on a real Table-3-style
 * detection sweep.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "runner/json.hh"
#include "runner/options.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "runner/trial.hh"

namespace anvil {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    runner::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable)
{
    runner::ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns)
{
    runner::ThreadPool pool(2);
    pool.wait_idle();  // must not hang
    SUCCEED();
}

TEST(ThreadPool, SurvivesThrowingTasks)
{
    runner::ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&, i] {
            if (i % 3 == 0)
                throw std::runtime_error("task blew up");
            count.fetch_add(1);
        });
    }
    pool.wait_idle();
    // Every non-throwing task still ran; no worker died, no terminate.
    EXPECT_EQ(count.load(), 13);
    pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 14);
}

// ---------------------------------------------------------------------------
// Error + Watchdog
// ---------------------------------------------------------------------------

TEST(Error, RendersContextAndCauseDeterministically)
{
    Error e = Error("trial failed")
                  .with("scenario", std::string("alpha"))
                  .with("trial", std::uint64_t{3})
                  .with_hex("seed", 0xbeef)
                  .caused_by(std::runtime_error("boom"));
    EXPECT_STREQ(e.what(),
                 "trial failed [scenario=alpha, trial=3, seed=0xbeef]: "
                 "caused by: boom");
}

TEST(Error, NestedCausesFlattenIntoOneChain)
{
    const Error inner = Error("disk unhappy").with("path", std::string("x"));
    const Error outer = Error("journal write failed").caused_by(inner);
    EXPECT_STREQ(outer.what(), "journal write failed: caused by: "
                               "disk unhappy [path=x]");
}

TEST(Watchdog, UnarmedNeverFires)
{
    runner::Watchdog wd;
    EXPECT_FALSE(wd.armed());
    for (int i = 0; i < 1000; ++i)
        wd.tick();
    EXPECT_EQ(wd.used(), 0u);
}

TEST(Watchdog, FiresExactlyAtItsBudget)
{
    runner::Watchdog wd;
    wd.arm(10);
    EXPECT_TRUE(wd.armed());
    for (int i = 0; i < 9; ++i)
        wd.tick();
    EXPECT_EQ(wd.used(), 9u);
    EXPECT_THROW(wd.tick(), TimeoutError);
}

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

TEST(TrialSeed, IsDeterministic)
{
    EXPECT_EQ(runner::trial_seed(42, "scenario", 3),
              runner::trial_seed(42, "scenario", 3));
    EXPECT_EQ(runner::sub_seed(7, "vm"), runner::sub_seed(7, "vm"));
}

TEST(TrialSeed, SeparatesScenariosTrialsAndMasters)
{
    std::set<std::uint64_t> seeds;
    for (const char *scenario : {"a", "b", "ab"}) {
        for (std::uint64_t trial = 0; trial < 8; ++trial) {
            for (std::uint64_t master : {1ULL, 2ULL}) {
                seeds.insert(
                    runner::trial_seed(master, scenario, trial));
            }
        }
    }
    EXPECT_EQ(seeds.size(), 3u * 8u * 2u) << "seed collision";
}

TEST(TrialSeed, SubStreamsAreDecorrelated)
{
    const std::uint64_t seed = runner::trial_seed(1, "x", 0);
    EXPECT_NE(runner::sub_seed(seed, "vm"),
              runner::sub_seed(seed, "workload"));
    EXPECT_NE(runner::sub_seed(seed, "vm"), seed);
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

TEST(JsonWriter, WritesNestedDocument)
{
    std::ostringstream os;
    runner::JsonWriter json(os);
    json.begin_object();
    json.field("name", "t\"est\n");
    json.field("count", std::uint64_t{3});
    json.field("ratio", 0.5);
    json.key("list").begin_array();
    json.value(std::uint64_t{1});
    json.value(std::uint64_t{2});
    json.end_array();
    json.end_object();

    EXPECT_EQ(os.str(), "{\n"
                        "  \"name\": \"t\\\"est\\n\",\n"
                        "  \"count\": 3,\n"
                        "  \"ratio\": 0.5,\n"
                        "  \"list\": [\n"
                        "    1,\n"
                        "    2\n"
                        "  ]\n"
                        "}\n");
}

TEST(JsonWriter, DoubleFormatIsStableAndRoundTrips)
{
    EXPECT_EQ(runner::JsonWriter::format_double(0.0), "0");
    EXPECT_EQ(runner::JsonWriter::format_double(42.0), "42");
    EXPECT_EQ(runner::JsonWriter::format_double(-3.0), "-3");
    // Non-integral values round-trip through %.17g.
    const double v = 1.0 / 3.0;
    EXPECT_EQ(std::stod(runner::JsonWriter::format_double(v)), v);
    EXPECT_EQ(runner::JsonWriter::format_double(
                  std::numeric_limits<double>::infinity()),
              "null");
}

// ---------------------------------------------------------------------------
// Sweep engine on synthetic trials
// ---------------------------------------------------------------------------

/** Cheap deterministic trial: metrics are pure functions of the seed. */
runner::TrialResult
synthetic_trial(const runner::TrialContext &ctx)
{
    runner::TrialResult r;
    r.set_value("seed_unit",
                static_cast<double>(ctx.seed() % 1000) / 1000.0);
    r.set_counter("seed_low", ctx.seed() % 17);
    return r;
}

runner::SweepOptions
synthetic_options(unsigned jobs)
{
    runner::SweepOptions opts;
    opts.name = "synthetic";
    opts.jobs = jobs;
    opts.master_seed = 99;
    return opts;
}

std::string
run_synthetic_json(unsigned jobs)
{
    runner::Sweep sweep(synthetic_options(jobs));
    sweep.add_scenario("alpha", 25, synthetic_trial);
    sweep.add_scenario("beta", 25, synthetic_trial);
    const runner::SweepRun run = sweep.run();
    std::ostringstream os;
    run.sink.write_json(os);
    return os.str();
}

TEST(Sweep, ParallelJsonIsByteIdenticalToSerial)
{
    const std::string serial = run_synthetic_json(1);
    const std::string parallel = run_synthetic_json(8);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("\"schema\": \"anvil-sweep-v1\""),
              std::string::npos);
}

TEST(Sweep, ReplaySelectsExactlyOneTrial)
{
    runner::SweepOptions opts = synthetic_options(1);
    // Global indices: alpha = 0..24, beta = 25..49.
    opts.replay_trial = 26;
    runner::Sweep sweep(opts);
    sweep.add_scenario("alpha", 25, synthetic_trial);
    sweep.add_scenario("beta", 25, synthetic_trial);
    const runner::SweepRun run = sweep.run();
    const runner::ResultSink &sink = run.sink;

    ASSERT_EQ(sink.total_trials(), 1u);
    const runner::ScenarioAggregate *beta = sink.find("beta");
    ASSERT_NE(beta, nullptr);
    EXPECT_EQ(sink.find("alpha"), nullptr);
    // The replayed trial must see the identical derived seed.
    const std::uint64_t seed = runner::trial_seed(99, "beta", 1);
    EXPECT_EQ(beta->counter_sum("seed_low"), seed % 17);
}

TEST(Sweep, TrialExceptionBecomesErrorNotCrash)
{
    runner::Sweep sweep(synthetic_options(2));
    sweep.add_scenario("flaky", 4, [](const runner::TrialContext &ctx) {
        if (ctx.spec().trial == 2)
            throw std::runtime_error("boom");
        return synthetic_trial(ctx);
    });
    const runner::SweepRun run = sweep.run();
    const runner::ResultSink &sink = run.sink;
    const runner::ScenarioAggregate *agg = sink.find("flaky");
    ASSERT_NE(agg, nullptr);
    EXPECT_EQ(agg->trials(), 4u);
    EXPECT_EQ(agg->errors(), 1u);
    EXPECT_EQ(sink.total_errors(), 1u);
    EXPECT_EQ(run.failed, 1u);
    EXPECT_EQ(run.completed, 3u);
    EXPECT_TRUE(run.complete());
    // The failure is a record, not just a counter: scenario, cause, and
    // the trial's own seed all land in the rendered error.
    ASSERT_EQ(agg->failures().size(), 1u);
    const runner::TrialFailure &failure = agg->failures().front();
    EXPECT_EQ(failure.trial, 2u);
    EXPECT_EQ(failure.status, runner::TrialStatus::kFailed);
    EXPECT_NE(failure.error.find("boom"), std::string::npos);
    EXPECT_NE(failure.error.find("scenario=flaky"), std::string::npos);
    // Only the three healthy trials contribute observations.
    ASSERT_NE(agg->value_stat("seed_unit"), nullptr);
    EXPECT_EQ(agg->value_stat("seed_unit")->count(), 3u);
}

TEST(Sweep, DerivedValuesAppearInJson)
{
    runner::Sweep sweep(synthetic_options(1));
    sweep.add_scenario("alpha", 2, synthetic_trial);
    runner::SweepRun run = sweep.run();
    runner::ResultSink &sink = run.sink;
    sink.set_derived("alpha", "twice_mean",
                     2.0 * sink.scenario("alpha").value_mean("seed_unit"));
    std::ostringstream os;
    sink.write_json(os);
    EXPECT_NE(os.str().find("\"twice_mean\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// CLI parsing
// ---------------------------------------------------------------------------

TEST(CliOptions, ParsesRunnerFlagsAndPositionals)
{
    const char *argv[] = {"bench",          "--jobs",   "4",
                          "--master-seed",  "0x10",     "--trials=9",
                          "--json-out",     "out.json", "--replay-trial",
                          "7",              "2.5"};
    runner::CliOptions opts = runner::CliOptions::parse(
        static_cast<int>(std::size(argv)), const_cast<char **>(argv));
    EXPECT_EQ(opts.sweep.jobs, 4u);
    EXPECT_EQ(opts.sweep.master_seed, 0x10u);
    EXPECT_EQ(opts.trials, 9u);
    EXPECT_EQ(opts.trials_or(6), 9u);
    EXPECT_EQ(opts.sweep.json_out, "out.json");
    ASSERT_TRUE(opts.sweep.replay_trial.has_value());
    EXPECT_EQ(*opts.sweep.replay_trial, 7u);
    ASSERT_EQ(opts.positional.size(), 1u);
    EXPECT_DOUBLE_EQ(opts.positional_double(0, 3.0), 2.5);
    EXPECT_DOUBLE_EQ(opts.positional_double(1, 3.0), 3.0);
}

TEST(CliOptions, ParsesFaultToleranceFlags)
{
    const char *argv[] = {"bench",
                          "--retries",
                          "2",
                          "--trial-timeout=5000",
                          "--json-out",
                          "out.json",
                          "--resume",
                          "--inject-fault",
                          "throw@alpha:3",
                          "--inject-fault=hang@beta:0"};
    runner::CliOptions opts = runner::CliOptions::parse(
        static_cast<int>(std::size(argv)), const_cast<char **>(argv));
    EXPECT_EQ(opts.sweep.retries, 2u);
    EXPECT_EQ(opts.sweep.trial_timeout, 5000u);
    EXPECT_TRUE(opts.sweep.resume);
    ASSERT_EQ(opts.sweep.faults.size(), 2u);
    EXPECT_EQ(opts.sweep.faults[0].kind, runner::FaultKind::kThrow);
    EXPECT_EQ(opts.sweep.faults[0].scenario, "alpha");
    EXPECT_EQ(opts.sweep.faults[0].trial, 3u);
    EXPECT_EQ(opts.sweep.faults[1].kind, runner::FaultKind::kHang);
    EXPECT_EQ(opts.sweep.faults[1].scenario, "beta");
    EXPECT_EQ(opts.sweep.faults[1].trial, 0u);
}

TEST(CliOptions, DefaultsLeaveBenchDefaultsAlone)
{
    const char *argv[] = {"bench"};
    runner::CliOptions opts =
        runner::CliOptions::parse(1, const_cast<char **>(argv));
    EXPECT_EQ(opts.trials_or(6), 6u);
    EXPECT_FALSE(opts.sweep.replay_trial.has_value());
    EXPECT_TRUE(opts.sweep.json_out.empty());
}

// ---------------------------------------------------------------------------
// End-to-end: a Table-3-style detection sweep, parallel vs serial
// ---------------------------------------------------------------------------

/**
 * A shortened Table-3 trial: fresh machine, CLFLUSH double-sided attack
 * under ANVIL-baseline for 20 ms. Heavy enough to exercise the whole
 * stack (VM, caches, DRAM disturbance, detector, per-trial seeds), short
 * enough for CI.
 */
runner::TrialResult
detection_trial(const runner::TrialContext &ctx)
{
    mem::SystemConfig config;
    config.vm_seed = ctx.seed_for("vm");
    mem::MemorySystem machine(config);
    pmu::Pmu pmu(machine);

    mem::AddressSpace &attacker = machine.create_process();
    const std::uint64_t buffer_bytes = 16ULL << 20;
    const Addr buffer = attacker.mmap(buffer_bytes);
    attack::MemoryLayout layout(attacker, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, buffer_bytes);
    const auto targets = layout.find_double_sided_targets(4);
    if (targets.empty())
        throw std::runtime_error("no double-sided target");

    detector::Anvil anvil(machine, pmu,
                          detector::AnvilConfig::baseline());
    anvil.set_ground_truth([] { return true; });
    anvil.start();

    // Attack begins at a seed-dependent window phase.
    machine.advance(us(100) + ctx.seed_for("phase") % us(5000));

    attack::ClflushDoubleSided hammer(machine, attacker.pid(),
                                      targets.front());
    const Tick start = machine.now();
    while (machine.now() < start + ms(20))
        hammer.step();

    runner::TrialResult r;
    r.set_counter("flips", machine.dram().flips().size());
    r.set_counter("detections", anvil.stats().detections);
    r.set_value("attack_ms", to_ms(machine.now() - start));
    if (!anvil.detections().empty()) {
        r.set_value("detect_ms",
                    to_ms(anvil.detections().front().time - start));
    }
    r.set_anvil(anvil.stats());
    r.set_dram(machine.dram().stats());
    return r;
}

std::string
run_detection_sweep_json(unsigned jobs)
{
    runner::SweepOptions opts;
    opts.name = "table3_style";
    opts.jobs = jobs;
    opts.master_seed = 0x5eed;
    runner::Sweep sweep(opts);
    sweep.add_scenario("clflush/phase-a", 2, detection_trial);
    sweep.add_scenario("clflush/phase-b", 2, detection_trial);
    const runner::SweepRun run = sweep.run();
    std::ostringstream os;
    run.sink.write_json(os);
    return os.str();
}

TEST(SweepEndToEnd, DetectionSweepParallelMatchesSerialByteForByte)
{
    const std::string serial = run_detection_sweep_json(1);
    const std::string parallel = run_detection_sweep_json(4);
    EXPECT_EQ(serial, parallel);
    // The sweep actually detected the attacks (sanity that the trials
    // are real, not vacuous).
    EXPECT_NE(serial.find("\"detections\""), std::string::npos);
}

}  // namespace
}  // namespace anvil
