/**
 * @file
 * Unit tests for virtual memory (frame allocator, address spaces,
 * pagemap) and the MemorySystem access path / timing.
 */
#include <gtest/gtest.h>

#include <set>

#include "common/units.hh"
#include "mem/memory_system.hh"
#include "mem/virtual_memory.hh"

namespace anvil::mem {
namespace {

TEST(FrameAllocator, FramesAreUniqueAlignedAndInRange)
{
    FrameAllocator alloc(64ULL << 20, 1);
    std::set<Addr> seen;
    for (int i = 0; i < 1000; ++i) {
        const Addr frame = alloc.allocate();
        EXPECT_EQ(frame % kPageBytes, 0u);
        EXPECT_LT(frame, 64ULL << 20);
        EXPECT_TRUE(seen.insert(frame).second) << "duplicate frame";
    }
    EXPECT_EQ(alloc.frames_allocated(), 1000u);
}

TEST(FrameAllocator, ExhaustionThrows)
{
    FrameAllocator alloc(16 * kPageBytes, 2);
    for (int i = 0; i < 16; ++i)
        alloc.allocate();
    EXPECT_THROW(alloc.allocate(), std::bad_alloc);
}

TEST(FrameAllocator, FreeRecyclesFrames)
{
    FrameAllocator alloc(16 * kPageBytes, 3);
    const Addr a = alloc.allocate();
    alloc.free(a);
    EXPECT_EQ(alloc.frames_allocated(), 0u);
    // Exhausting still works because the freed frame returns.
    std::set<Addr> seen;
    for (int i = 0; i < 16; ++i)
        seen.insert(alloc.allocate());
    EXPECT_EQ(seen.size(), 16u);
}

TEST(FrameAllocator, LayoutIsSeedDeterministicAndScattered)
{
    FrameAllocator a(1ULL << 30, 42), b(1ULL << 30, 42), c(1ULL << 30, 43);
    bool differs = false;
    Addr min_frame = ~0ULL, max_frame = 0;
    for (int i = 0; i < 256; ++i) {
        const Addr fa = a.allocate();
        EXPECT_EQ(fa, b.allocate());
        differs |= (fa != c.allocate());
        min_frame = std::min(min_frame, fa);
        max_frame = std::max(max_frame, fa);
    }
    EXPECT_TRUE(differs);
    // 256 pages must scatter across most of the small-frame region (the
    // lower half of memory; the upper half backs THP blocks), not sit in
    // one contiguous chunk.
    EXPECT_GT(max_frame - min_frame, (1ULL << 30) / 4);
}

TEST(FrameAllocator, HugeBlocksAreAlignedDisjointAndHigh)
{
    FrameAllocator alloc(256ULL << 20, 11);
    std::set<Addr> blocks;
    for (int i = 0; i < 32; ++i) {
        const Addr block = alloc.allocate_huge();
        EXPECT_EQ(block % kHugeBytes, 0u);
        EXPECT_LT(block, 256ULL << 20);
        EXPECT_TRUE(blocks.insert(block).second);
    }
    EXPECT_EQ(alloc.huge_blocks_allocated(), 32u);
    // Huge blocks never collide with the 4 KB pool.
    for (int i = 0; i < 100; ++i) {
        const Addr frame = alloc.allocate();
        for (const Addr block : blocks) {
            EXPECT_TRUE(frame + kPageBytes <= block ||
                        frame >= block + kHugeBytes);
        }
    }
}

TEST(FrameAllocator, HugeBlocksRecycle)
{
    FrameAllocator alloc(16ULL << 20, 12);  // 4 huge blocks available
    std::vector<Addr> blocks;
    for (int i = 0; i < 4; ++i)
        blocks.push_back(alloc.allocate_huge());
    EXPECT_THROW(alloc.allocate_huge(), std::bad_alloc);
    alloc.free_huge(blocks[0]);
    EXPECT_EQ(alloc.allocate_huge(), blocks[0]);
}

TEST(AddressSpace, LargeMmapIsHugeBackedAndContiguous)
{
    FrameAllocator frames(256ULL << 20, 13);
    AddressSpace space(0, frames);
    const Addr base = space.mmap(4 * kHugeBytes);
    ASSERT_EQ(space.regions().size(), 1u);
    EXPECT_TRUE(space.regions()[0].huge);

    // Within each 2 MB block the VA->PA mapping is linear.
    for (std::uint64_t block = 0; block < 4; ++block) {
        const Addr block_pa = space.translate(base + block * kHugeBytes);
        EXPECT_EQ(block_pa % kHugeBytes, 0u);
        for (std::uint64_t off = 0; off < kHugeBytes; off += 37 * 4096 + 3) {
            EXPECT_EQ(space.translate(base + block * kHugeBytes + off),
                      block_pa + off);
        }
    }
}

TEST(AddressSpace, SmallMmapStaysOnScatteredFrames)
{
    FrameAllocator frames(256ULL << 20, 14);
    AddressSpace space(0, frames);
    const Addr base = space.mmap(16 * kPageBytes);
    ASSERT_EQ(space.regions().size(), 1u);
    EXPECT_FALSE(space.regions()[0].huge);
    // Adjacent pages are (almost surely) not physically adjacent.
    int adjacent = 0;
    for (int p = 0; p + 1 < 16; ++p) {
        if (space.pagemap(base + (p + 1) * kPageBytes) ==
            space.pagemap(base + p * kPageBytes) + kPageBytes) {
            ++adjacent;
        }
    }
    EXPECT_LT(adjacent, 4);
}

TEST(AddressSpace, SharedMappingAliasesFrames)
{
    FrameAllocator frames(256ULL << 20, 16);
    AddressSpace owner(1, frames);
    AddressSpace viewer(2, frames);
    const Addr src = owner.mmap(4 * kPageBytes);
    const Addr view = viewer.mmap_shared(owner, src, 4 * kPageBytes);
    for (std::uint64_t off = 0; off < 4 * kPageBytes; off += 777) {
        EXPECT_EQ(viewer.translate(view + off), owner.translate(src + off))
            << "shared pages must alias the owner's frames";
    }
}

TEST(AddressSpace, SharedViewOfSubrange)
{
    FrameAllocator frames(256ULL << 20, 17);
    AddressSpace owner(1, frames);
    AddressSpace viewer(2, frames);
    const Addr src = owner.mmap(8 * kPageBytes);
    const Addr view =
        viewer.mmap_shared(owner, src + 2 * kPageBytes, kPageBytes);
    EXPECT_EQ(viewer.pagemap(view), owner.pagemap(src + 2 * kPageBytes));
}

TEST(AddressSpace, UnmappingSharedViewKeepsOwnerFrames)
{
    FrameAllocator frames(256ULL << 20, 18);
    AddressSpace owner(1, frames);
    AddressSpace viewer(2, frames);
    const Addr src = owner.mmap(2 * kPageBytes);
    const std::uint64_t allocated = frames.frames_allocated();
    const Addr view = viewer.mmap_shared(owner, src, 2 * kPageBytes);
    EXPECT_EQ(frames.frames_allocated(), allocated);  // no new frames
    viewer.munmap(view, 2 * kPageBytes);
    EXPECT_EQ(frames.frames_allocated(), allocated);  // nothing freed
    EXPECT_EQ(viewer.translate(view), kInvalidAddr);
    EXPECT_NE(owner.translate(src), kInvalidAddr);
}

TEST(AddressSpace, MunmapReleasesHugeBlocks)
{
    FrameAllocator frames(64ULL << 20, 15);
    AddressSpace space(0, frames);
    const Addr base = space.mmap(2 * kHugeBytes);
    EXPECT_EQ(frames.huge_blocks_allocated(), 2u);
    space.munmap(base, 2 * kHugeBytes);
    EXPECT_EQ(frames.huge_blocks_allocated(), 0u);
    EXPECT_EQ(space.translate(base), kInvalidAddr);
    EXPECT_TRUE(space.regions().empty());
}

TEST(AddressSpace, MmapTranslatePagemap)
{
    FrameAllocator frames(64ULL << 20, 5);
    AddressSpace space(7, frames);
    const Addr base = space.mmap(8 * kPageBytes);
    EXPECT_EQ(space.mapped_pages(), 8u);
    EXPECT_EQ(space.pid(), 7u);

    // Offsets within a page share a frame; pagemap returns the frame base.
    const Addr pa0 = space.translate(base);
    const Addr pa1 = space.translate(base + 100);
    EXPECT_EQ(pa1, pa0 + 100);
    EXPECT_EQ(space.pagemap(base + 100), pa0);

    // Different pages get different frames.
    EXPECT_NE(space.pagemap(base), space.pagemap(base + kPageBytes));
}

TEST(AddressSpace, UnmappedAddressesAreInvalid)
{
    FrameAllocator frames(64ULL << 20, 6);
    AddressSpace space(0, frames);
    EXPECT_EQ(space.translate(0x1234), kInvalidAddr);
    const Addr base = space.mmap(kPageBytes);
    // Guard gap after the region stays unmapped.
    EXPECT_EQ(space.translate(base + kPageBytes), kInvalidAddr);
}

TEST(AddressSpace, MunmapReleasesFrames)
{
    FrameAllocator frames(64ULL << 20, 7);
    AddressSpace space(0, frames);
    const Addr base = space.mmap(4 * kPageBytes);
    EXPECT_EQ(frames.frames_allocated(), 4u);
    space.munmap(base, 4 * kPageBytes);
    EXPECT_EQ(frames.frames_allocated(), 0u);
    EXPECT_EQ(space.translate(base), kInvalidAddr);
}

TEST(AddressSpace, RegionsDoNotOverlap)
{
    FrameAllocator frames(64ULL << 20, 8);
    AddressSpace space(0, frames);
    const Addr r1 = space.mmap(3 * kPageBytes);
    const Addr r2 = space.mmap(kPageBytes);
    EXPECT_GE(r2, r1 + 3 * kPageBytes);
}

TEST(AddressSpace, TlbCountsHitsAndMisses)
{
    FrameAllocator frames(64ULL << 20, 9);
    AddressSpace space(0, frames);
    const Addr base = space.mmap(2 * kPageBytes);
    EXPECT_EQ(space.tlb_hits(), 0u);

    const Addr pa = space.translate(base);  // cold: page-table walk
    EXPECT_EQ(space.tlb_misses(), 1u);
    EXPECT_EQ(space.translate(base + 64), pa + 64);  // warm: TLB hit
    EXPECT_EQ(space.tlb_hits(), 1u);
    EXPECT_EQ(space.tlb_misses(), 1u);

    // A different page is a separate entry: one more miss, then hits.
    space.translate(base + kPageBytes);
    EXPECT_EQ(space.tlb_misses(), 2u);
    space.translate(base + kPageBytes + 8);
    EXPECT_EQ(space.tlb_hits(), 2u);
}

TEST(AddressSpace, TlbMunmapRemapFrameReuseDoesNotAlias)
{
    // The frame-reuse hazard: translate() warms the TLB, the region is
    // unmapped (frame returns to the allocator), and a new mapping picks
    // the frame up again. A stale TLB entry would keep translating the
    // *old* VA to the recycled frame; the munmap flush must prevent it.
    FrameAllocator frames(16 * kPageBytes, 10);
    AddressSpace space(0, frames);

    const Addr old_va = space.mmap(kPageBytes);
    const Addr old_pa = space.translate(old_va);  // cached in the TLB
    ASSERT_NE(old_pa, kInvalidAddr);
    space.munmap(old_va, kPageBytes);

    // Drain the small pool so the new page provably reuses the old frame.
    const Addr new_va = space.mmap(16 * kPageBytes);
    bool reused = false;
    for (std::uint64_t p = 0; p < 16; ++p)
        reused |= space.pagemap(new_va + p * kPageBytes) ==
                  (old_pa & ~(kPageBytes - 1));
    EXPECT_TRUE(reused) << "allocator should have recycled the frame";

    // The old VA must now be invalid, not served from a stale entry.
    EXPECT_EQ(space.translate(old_va), kInvalidAddr);
}

TEST(AddressSpace, TlbFlushedOnSharedMapAndUnmap)
{
    FrameAllocator frames(64ULL << 20, 11);
    AddressSpace owner(1, frames);
    AddressSpace viewer(2, frames);
    const Addr src = owner.mmap(2 * kPageBytes);

    const Addr view = viewer.mmap_shared(owner, src, 2 * kPageBytes);
    ASSERT_EQ(viewer.translate(view), owner.translate(src));  // warm TLBs

    viewer.munmap(view, 2 * kPageBytes);
    EXPECT_EQ(viewer.translate(view), kInvalidAddr);
    // The owner's own mapping (and TLB) is unaffected.
    EXPECT_NE(owner.translate(src), kInvalidAddr);
}

class MemorySystemTest : public ::testing::Test
{
  protected:
    static SystemConfig
    config()
    {
        SystemConfig c;
        // Small module for fast tests.
        c.dram.ranks_per_channel = 1;
        c.dram.banks_per_rank = 8;
        c.dram.rows_per_bank = 4096;
        return c;
    }

    MemorySystemTest() : machine_(config()) {}

    mem::MemorySystem machine_;
};

TEST_F(MemorySystemTest, AccessAdvancesClockByLatency)
{
    AddressSpace &proc = machine_.create_process();
    const Addr va = proc.mmap(kPageBytes);
    const Tick before = machine_.now();
    const AccessInfo info = machine_.access(proc.pid(), va,
                                            AccessType::kLoad);
    EXPECT_EQ(machine_.now(), before + info.latency);
    EXPECT_EQ(info.source, DataSource::kDram);
    EXPECT_TRUE(info.llc_miss);
    EXPECT_EQ(info.pa, proc.translate(va));

    // Second access: L1 hit, 4 cycles.
    const AccessInfo hit = machine_.access(proc.pid(), va,
                                           AccessType::kLoad);
    EXPECT_EQ(hit.source, DataSource::kL1);
    EXPECT_EQ(hit.latency,
              machine_.core().cycles_to_ticks(
                  machine_.config().cache.l1_latency));
}

TEST_F(MemorySystemTest, UnmappedAccessThrows)
{
    AddressSpace &proc = machine_.create_process();
    EXPECT_THROW(machine_.access(proc.pid(), 0xdead000, AccessType::kLoad),
                 std::out_of_range);
}

TEST_F(MemorySystemTest, ClflushForcesNextAccessToDram)
{
    AddressSpace &proc = machine_.create_process();
    const Addr va = proc.mmap(kPageBytes);
    machine_.access(proc.pid(), va, AccessType::kLoad);
    machine_.clflush(proc.pid(), va);
    const AccessInfo info = machine_.access(proc.pid(), va,
                                            AccessType::kLoad);
    EXPECT_EQ(info.source, DataSource::kDram);
}

TEST_F(MemorySystemTest, ObserverSeesEveryAccess)
{
    AddressSpace &proc = machine_.create_process();
    const Addr va = proc.mmap(kPageBytes);
    int seen = 0;
    machine_.add_observer([&](const AccessInfo &info) {
        ++seen;
        EXPECT_EQ(info.pid, proc.pid());
        EXPECT_EQ(info.complete_time, machine_.now());
    });
    machine_.access(proc.pid(), va, AccessType::kLoad);
    machine_.access(proc.pid(), va, AccessType::kStore);
    EXPECT_EQ(seen, 2);
}

TEST_F(MemorySystemTest, AdvanceCyclesMatchesCoreClock)
{
    const Tick before = machine_.now();
    machine_.advance_cycles(2600000);  // 1 ms at 2.6 GHz
    EXPECT_NEAR(to_ms(machine_.now() - before), 1.0, 1e-6);
}

TEST_F(MemorySystemTest, RefreshRowPhysRestoresCharge)
{
    AddressSpace &proc = machine_.create_process();
    const Addr va = proc.mmap(kPageBytes);
    const Addr pa = proc.translate(va);
    machine_.refresh_row_phys(pa);
    EXPECT_EQ(machine_.dram().stats().selective_refreshes, 1u);
    EXPECT_GT(machine_.now(), 0u);
}

TEST_F(MemorySystemTest, ProcessesGetDistinctFrames)
{
    AddressSpace &p1 = machine_.create_process();
    AddressSpace &p2 = machine_.create_process();
    const Addr va1 = p1.mmap(kPageBytes);
    const Addr va2 = p2.mmap(kPageBytes);
    // Address spaces share the VA layout but never a physical frame.
    EXPECT_EQ(va1, va2);
    EXPECT_NE(p1.translate(va1), p2.translate(va2));
}

TEST_F(MemorySystemTest, EventsFireDuringAccessLatency)
{
    AddressSpace &proc = machine_.create_process();
    const Addr va = proc.mmap(kPageBytes);
    bool fired = false;
    machine_.clock().schedule_in(1, [&] { fired = true; });
    machine_.access(proc.pid(), va, AccessType::kLoad);
    EXPECT_TRUE(fired);
}

TEST_F(MemorySystemTest, AccessesAreChargedToTheOwningSpace)
{
    AddressSpace &p1 = machine_.create_process();
    AddressSpace &p2 = machine_.create_process();
    const Addr va1 = p1.mmap(kPageBytes);
    const Addr va2 = p2.mmap(kPageBytes);

    for (int i = 0; i < 3; ++i)
        machine_.access(p1.pid(), va1, AccessType::kLoad);
    machine_.access(p2.pid(), va2, AccessType::kStore);

    EXPECT_EQ(p1.accesses(), 3u);
    EXPECT_EQ(p2.accesses(), 1u);
    EXPECT_EQ(machine_.process_count(), 2u);
}

TEST_F(MemorySystemTest, TlbFlushesStayWithinTheirSpace)
{
    AddressSpace &p1 = machine_.create_process();
    AddressSpace &p2 = machine_.create_process();
    const Addr va1 = p1.mmap(kPageBytes);
    EXPECT_EQ(p1.tlb_flushes(), 1u);  // the mmap itself

    // Another tenant's mapping churn must never evict this process's
    // cached translations.
    for (int i = 0; i < 4; ++i) {
        const Addr va2 = p2.mmap(kPageBytes);
        p2.munmap(va2, kPageBytes);
    }
    EXPECT_EQ(p1.tlb_flushes(), 1u);
    EXPECT_EQ(p2.tlb_flushes(), 8u);  // 4 x (mmap + munmap)

    // A warm translation survives the neighbor's churn.
    (void)p1.translate(va1);
    const std::uint64_t misses_before = p1.tlb_misses();
    (void)p1.translate(va1);
    EXPECT_EQ(p1.tlb_misses(), misses_before);
}

}  // namespace
}  // namespace anvil::mem
