/**
 * @file
 * Golden-trace equivalence: the flat replacement engines
 * (flat_replacement.hh) must reproduce the victim/eviction sequences of
 * the retained per-set virtual SetPolicy reference (replacement.hh)
 * bit-exactly, over randomized traces that exercise hits, fills,
 * invalidations, and both the split (victim + on_fill) and fused
 * (victim_and_fill) eviction paths.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/flat_replacement.hh"
#include "cache/replacement.hh"
#include "common/rng.hh"

namespace anvil::cache {
namespace {

constexpr std::uint32_t kSets = 8;
constexpr std::uint64_t kTraceSeed = 0x7ACEDBEEFULL;
constexpr std::uint64_t kPolicySeed = 0xCACE5EEDULL;

/**
 * Drives a randomized trace through a flat ReplacementEngine and a bank of
 * per-set SetPolicy references in lockstep, asserting identical victim
 * choices throughout.
 *
 * Occupancy is modelled the way Cache does it: invalid ways are filled
 * lowest-index first, and victim() is only consulted when the set is full
 * (the SetPolicy contract). @p invalidate_weight scales how often a full
 * set gets a way invalidated instead of touched or evicted, so
 * invalidate-heavy traces stress the policies' invalid-way bookkeeping.
 */
void
run_equivalence_trace(ReplPolicy policy, std::uint32_t ways,
                      std::uint32_t ops, std::uint32_t invalidate_weight)
{
    // Separate but identically seeded RNGs for the two implementations:
    // kRandom must draw in the same order on both sides. The trace uses
    // its own generator so it cannot perturb the policy streams.
    Rng engine_rng(kPolicySeed);
    Rng ref_rng(kPolicySeed);
    Rng trace(kTraceSeed ^ static_cast<std::uint64_t>(policy));

    ReplacementEngine engine(policy, kSets, ways, &engine_rng);
    std::vector<std::unique_ptr<SetPolicy>> reference;
    for (std::uint32_t s = 0; s < kSets; ++s)
        reference.push_back(make_set_policy(policy, ways, &ref_rng));

    std::vector<std::uint64_t> valid(kSets, 0);
    const std::uint64_t full = (ways == 64)
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << ways) - 1;

    const auto nth_valid_way = [&](std::uint32_t set, std::uint64_t n) {
        std::uint64_t m = valid[set];
        std::uint32_t w = 0;
        for (;; ++w) {
            if ((m >> w) & 1) {
                if (n == 0)
                    return w;
                --n;
            }
        }
    };

    for (std::uint32_t i = 0; i < ops; ++i) {
        const auto set =
            static_cast<std::uint32_t>(trace.next_below(kSets));

        if (valid[set] != full) {
            // Free way available: fill lowest-index invalid way, exactly
            // like Cache::fill's free-way path.
            std::uint32_t w = 0;
            while ((valid[set] >> w) & 1)
                ++w;
            valid[set] |= std::uint64_t{1} << w;
            engine.on_fill(set, w);
            reference[set]->on_fill(w);
            continue;
        }

        const auto op = trace.next_below(6 + invalidate_weight);
        if (op < 2) {
            // Hit: touch a valid way.
            const auto w = nth_valid_way(
                set, trace.next_below(static_cast<std::uint64_t>(ways)));
            engine.on_access(set, w);
            reference[set]->on_access(w);
        } else if (op < 4) {
            // Eviction via the split path.
            const std::uint32_t got = engine.victim(set);
            const std::uint32_t want = reference[set]->victim();
            ASSERT_EQ(got, want) << to_string(policy) << " victim, op " << i;
            engine.on_fill(set, got);
            reference[set]->on_fill(want);
        } else if (op < 6) {
            // Eviction via the fused path: victim_and_fill must equal
            // victim() followed by on_fill(victim).
            const std::uint32_t got = engine.victim_and_fill(set);
            const std::uint32_t want = reference[set]->victim();
            ASSERT_EQ(got, want)
                << to_string(policy) << " victim_and_fill, op " << i;
            reference[set]->on_fill(want);
        } else {
            // Invalidate a valid way.
            const auto w = nth_valid_way(
                set, trace.next_below(static_cast<std::uint64_t>(ways)));
            valid[set] &= ~(std::uint64_t{1} << w);
            engine.on_invalidate(set, w);
            reference[set]->on_invalidate(w);
        }
    }
}

class FlatEngineEquivalence : public ::testing::TestWithParam<ReplPolicy> {};

TEST_P(FlatEngineEquivalence, MatchesReferenceOnMixedTrace)
{
    run_equivalence_trace(GetParam(), 8, 20000, 1);
}

TEST_P(FlatEngineEquivalence, MatchesReferenceOnInvalidateHeavyTrace)
{
    run_equivalence_trace(GetParam(), 8, 20000, 12);
}

TEST_P(FlatEngineEquivalence, MatchesReferenceAtLlcAssociativity)
{
    // 12 ways, like the modelled LLC. Tree-PLRU requires 2^k ways, so it
    // keeps the 8-way shape here.
    const std::uint32_t ways = GetParam() == ReplPolicy::kTreePlru ? 16 : 12;
    run_equivalence_trace(GetParam(), ways, 20000, 3);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, FlatEngineEquivalence,
    ::testing::Values(ReplPolicy::kLru, ReplPolicy::kBitPlru,
                      ReplPolicy::kNru, ReplPolicy::kTreePlru,
                      ReplPolicy::kSrrip, ReplPolicy::kRandom),
    [](const ::testing::TestParamInfo<ReplPolicy> &info) {
        return to_string(info.param);
    });

}  // namespace
}  // namespace anvil::cache
