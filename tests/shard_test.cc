/**
 * @file
 * Tests of the sharded-campaign machinery (runner/shard.hh,
 * runner/supervisor.hh): trial partitioning and range syntax, in-process
 * shard runs whose journals merge byte-identically to a direct run (in
 * any completion order, with empty shards, and across requeue-style
 * overlaps), the merge validator's rejection paths (divergent
 * duplicates, foreign plan headers, incomplete campaigns), lease-record
 * replay semantics, process-fault once-markers, and — through the real
 * anvil-sim binary (ANVIL_SIM_PATH) — the headline guarantee: a
 * supervised multi-process run with injected shard crashes and stalls
 * recovers and produces JSON byte-identical to the committed
 * single-process golden.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "common/error.hh"
#include "runner/fault.hh"
#include "runner/journal.hh"
#include "runner/shard.hh"
#include "runner/supervisor.hh"
#include "runner/sweep.hh"
#include "runner/trial.hh"

namespace anvil {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/** A cheap, fully deterministic trial body: results derive from the seed. */
runner::TrialResult
synthetic_result(const runner::TrialContext &ctx)
{
    runner::TrialResult r;
    const std::uint64_t s = ctx.seed_for("unit");
    r.set_value("metric", static_cast<double>(s % 1000) / 7.0);
    r.set_counter("events", s % 17);
    return r;
}

runner::SweepOptions
base_options()
{
    runner::SweepOptions o;
    o.name = "synthetic";
    o.jobs = 1;
    o.master_seed = 0x5eedULL;
    return o;
}

/** Registers the canonical 2-scenario x 3-trial synthetic sweep. */
void
add_synthetic_scenarios(runner::Sweep &sweep)
{
    sweep.add_scenario("alpha", 3, synthetic_result);
    sweep.add_scenario("beta", 3, synthetic_result);
}

std::string
json_of(const runner::ResultSink &sink)
{
    std::ostringstream os;
    sink.write_json(os);
    return os.str();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool
file_exists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** A per-test scratch path, cleared of leftovers from earlier runs. */
std::string
temp_path(const std::string &name)
{
    const std::string path =
        ::testing::TempDir() + "anvil_shard_test_" + name;
    std::remove(path.c_str());
    for (std::uint32_t k = 0; k < 8; ++k)
        std::remove(runner::shard_journal_path(path, k).c_str());
    return path;
}

/** The direct (unsharded, 1-process) run every merge must reproduce. */
std::string
direct_json()
{
    runner::Sweep sweep(base_options());
    add_synthetic_scenarios(sweep);
    return json_of(sweep.run().sink);
}

/** The synthetic sweep's full deterministic plan. */
std::vector<runner::TrialSpec>
synthetic_plan()
{
    runner::Sweep sweep(base_options());
    add_synthetic_scenarios(sweep);
    return sweep.plan_specs();
}

/** Runs one in-process shard of the synthetic sweep over @p ranges. */
int
run_shard(const std::string &json_out, std::uint32_t index,
          std::uint32_t count, std::vector<runner::TrialRange> ranges)
{
    runner::SweepOptions options = base_options();
    options.json_out = json_out;
    runner::ShardAssignment shard;
    shard.index = index;
    shard.count = count;
    shard.ranges = std::move(ranges);
    shard.lease_interval_ms = 50;
    options.shard = shard;
    runner::Sweep sweep(std::move(options));
    add_synthetic_scenarios(sweep);
    return runner::finish_shard(sweep.run());
}

runner::MergeResult
merge(const std::string &json_out, std::uint32_t count, bool check = false)
{
    runner::MergeOptions mo;
    mo.json_out = json_out;
    mo.shard_count = count;
    mo.check = check;
    return runner::merge_shards(synthetic_plan(), "synthetic", 0x5eedULL,
                                mo);
}

// ---------------------------------------------------------------------------
// Partitioning and range syntax
// ---------------------------------------------------------------------------

TEST(Partition, SplitsNearEvenlyAndContiguously)
{
    const auto shards = runner::partition_trials(10, 4);
    ASSERT_EQ(shards.size(), 4u);
    EXPECT_EQ(runner::to_string(shards[0]), "0-2");
    EXPECT_EQ(runner::to_string(shards[1]), "3-5");
    EXPECT_EQ(runner::to_string(shards[2]), "6-7");
    EXPECT_EQ(runner::to_string(shards[3]), "8-9");
}

TEST(Partition, MoreShardsThanTrialsLeavesEmptyShards)
{
    const auto shards = runner::partition_trials(3, 5);
    ASSERT_EQ(shards.size(), 5u);
    EXPECT_EQ(runner::to_string(shards[0]), "0");
    EXPECT_EQ(runner::to_string(shards[2]), "2");
    EXPECT_TRUE(shards[3].empty());
    EXPECT_TRUE(shards[4].empty());
    for (const auto &shard : runner::partition_trials(0, 3))
        EXPECT_TRUE(shard.empty());
    EXPECT_THROW(runner::partition_trials(4, 0), Error);
}

TEST(Ranges, ParseAndRenderRoundTrip)
{
    const auto ranges = runner::parse_trial_ranges("0-2,5,7-9");
    ASSERT_EQ(ranges.size(), 3u);
    EXPECT_TRUE(ranges[0].contains(1));
    EXPECT_FALSE(ranges[0].contains(3));
    EXPECT_EQ(ranges[1].first, 5u);
    EXPECT_EQ(ranges[1].last, 5u);
    EXPECT_EQ(runner::to_string(ranges), "0-2,5,7-9");

    EXPECT_THROW(runner::parse_trial_ranges(""), Error);
    EXPECT_THROW(runner::parse_trial_ranges("banana"), Error);
    EXPECT_THROW(runner::parse_trial_ranges("5-2"), Error);   // descending
    EXPECT_THROW(runner::parse_trial_ranges("0-3,2-5"), Error);  // overlap
}

TEST(Ranges, CompressesIndicesToMinimalRanges)
{
    EXPECT_EQ(runner::to_string(
                  runner::compress_indices({0, 1, 2, 5, 7, 8})),
              "0-2,5,7-8");
    EXPECT_TRUE(runner::compress_indices({}).empty());
}

TEST(Backoff, DoublesPerConsecutiveDeath)
{
    EXPECT_EQ(runner::backoff_delay_ms(100, 0), 0u);
    EXPECT_EQ(runner::backoff_delay_ms(100, 1), 100u);
    EXPECT_EQ(runner::backoff_delay_ms(100, 2), 200u);
    EXPECT_EQ(runner::backoff_delay_ms(100, 4), 800u);
}

// ---------------------------------------------------------------------------
// Shard runs + deterministic merge
// ---------------------------------------------------------------------------

TEST(ShardRun, MergedJournalsAreByteIdenticalToADirectRun)
{
    const std::string out = temp_path("merge_basic.json");
    const auto parts = runner::partition_trials(6, 2);
    EXPECT_EQ(run_shard(out, 0, 2, parts[0]), runner::kExitOk);
    EXPECT_EQ(run_shard(out, 1, 2, parts[1]), runner::kExitOk);

    runner::MergeResult m = merge(out, 2);
    ASSERT_TRUE(m.complete()) << (m.problems.empty() ? ""
                                                     : m.problems.front());
    EXPECT_EQ(m.merged, 6u);
    EXPECT_EQ(m.duplicates, 0u);
    EXPECT_EQ(json_of(m.sink), direct_json());
}

TEST(ShardRun, OutOfOrderShardCompletionIsByteIdentical)
{
    const std::string out = temp_path("merge_ooo.json");
    const auto parts = runner::partition_trials(6, 3);
    // Shards complete in reverse order; the merge folds in plan order,
    // so completion order must be invisible in the output.
    EXPECT_EQ(run_shard(out, 2, 3, parts[2]), runner::kExitOk);
    EXPECT_EQ(run_shard(out, 1, 3, parts[1]), runner::kExitOk);
    EXPECT_EQ(run_shard(out, 0, 3, parts[0]), runner::kExitOk);

    runner::MergeResult m = merge(out, 3);
    ASSERT_TRUE(m.complete());
    EXPECT_EQ(json_of(m.sink), direct_json());
}

TEST(ShardRun, EmptyShardWritesAValidBareJournal)
{
    const std::string out = temp_path("merge_empty.json");
    // 4 shards over 6 trials via an explicit assignment that leaves
    // shard 3 with nothing (the CLI produces the same shape when a
    // campaign has fewer trials than shards).
    EXPECT_EQ(run_shard(out, 0, 4, {runner::TrialRange{0, 1}}),
              runner::kExitOk);
    EXPECT_EQ(run_shard(out, 1, 4, {runner::TrialRange{2, 3}}),
              runner::kExitOk);
    EXPECT_EQ(run_shard(out, 2, 4, {runner::TrialRange{4, 5}}),
              runner::kExitOk);
    EXPECT_EQ(run_shard(out, 3, 4, {}), runner::kExitOk);

    // The empty shard still left a header-only journal with the right
    // identity — evidence it ran, not a hole in the campaign.
    runner::JournalHeader header = runner::read_journal_header(
        runner::shard_journal_path(out, 3));
    EXPECT_EQ(header.sweep, "synthetic");
    EXPECT_EQ(header.shard_index, 3u);
    EXPECT_EQ(header.shard_count, 4u);

    runner::MergeResult m = merge(out, 4);
    ASSERT_TRUE(m.complete());
    EXPECT_EQ(json_of(m.sink), direct_json());
}

TEST(ShardRun, ShardResumesFromItsOwnJournal)
{
    const std::string out = temp_path("merge_resume.json");
    // First run covers a prefix of the shard's range; the second run of
    // the *same* shard must replay those records and run only the rest.
    EXPECT_EQ(run_shard(out, 0, 2, {runner::TrialRange{0, 1}}),
              runner::kExitOk);
    EXPECT_EQ(run_shard(out, 0, 2, {runner::TrialRange{0, 2}}),
              runner::kExitOk);
    EXPECT_EQ(run_shard(out, 1, 2, {runner::TrialRange{3, 5}}),
              runner::kExitOk);

    runner::MergeResult m = merge(out, 2);
    ASSERT_TRUE(m.complete());
    EXPECT_EQ(m.duplicates, 0u);  // replay, not re-execution
    EXPECT_EQ(json_of(m.sink), direct_json());
}

// ---------------------------------------------------------------------------
// Merge validation
// ---------------------------------------------------------------------------

TEST(Merge, IdenticalDuplicateFromARequeueRaceIsAccepted)
{
    const std::string out = temp_path("merge_dup.json");
    // Trial 2 is claimed by both shards — the requeue race: the original
    // owner journaled it right before dying, and the reassigned survivor
    // ran it again. Determinism makes both records identical.
    EXPECT_EQ(run_shard(out, 0, 2, {runner::TrialRange{0, 2}}),
              runner::kExitOk);
    EXPECT_EQ(run_shard(out, 1, 2, {runner::TrialRange{2, 5}}),
              runner::kExitOk);

    runner::MergeResult m = merge(out, 2);
    ASSERT_TRUE(m.complete());
    EXPECT_EQ(m.merged, 6u);
    EXPECT_EQ(m.duplicates, 1u);
    EXPECT_EQ(json_of(m.sink), direct_json());

    // The strict validator (merge --check) flags the same overlap.
    runner::MergeResult strict = merge(out, 2, /*check=*/true);
    EXPECT_FALSE(strict.complete());
    ASSERT_FALSE(strict.problems.empty());
    EXPECT_NE(strict.problems.front().find("also claimed"),
              std::string::npos);
}

TEST(Merge, DivergentDuplicateIsRefused)
{
    const std::string out = temp_path("merge_diverge.json");
    const auto plan = synthetic_plan();
    EXPECT_EQ(run_shard(out, 0, 2, {runner::TrialRange{0, 5}}),
              runner::kExitOk);

    // Forge shard 1's journal: it claims trial 0 with a *different*
    // outcome — what a nondeterministic trial body would produce.
    runner::JournalHeader header;
    header.sweep = "synthetic";
    header.master_seed = 0x5eedULL;
    header.plan_hash = runner::plan_hash(plan);
    header.shard_index = 1;
    header.shard_count = 2;
    {
        runner::JournalWriter writer;
        writer.open(runner::shard_journal_path(out, 1), header,
                    /*append=*/false);
        runner::TrialOutcome outcome;
        outcome.result.set_value("metric", 123.456);
        outcome.result.set_counter("events", 999);
        writer.append(plan[0], outcome);
    }

    runner::MergeResult m = merge(out, 2);
    EXPECT_FALSE(m.complete());
    ASSERT_FALSE(m.problems.empty());
    EXPECT_NE(m.problems.front().find("diverges"), std::string::npos);
}

TEST(Merge, JournalWithMismatchedPlanHeaderIsRejected)
{
    const std::string out = temp_path("merge_foreign.json");
    const auto plan = synthetic_plan();
    EXPECT_EQ(run_shard(out, 0, 2, {runner::TrialRange{0, 2}}),
              runner::kExitOk);

    // Shard 1's journal comes from a different sweep definition: same
    // name and seed, different plan hash (trial count changed).
    runner::JournalHeader header;
    header.sweep = "synthetic";
    header.master_seed = 0x5eedULL;
    header.plan_hash = runner::plan_hash(plan) ^ 0xdeadbeefULL;
    header.shard_index = 1;
    header.shard_count = 2;
    {
        runner::JournalWriter writer;
        writer.open(runner::shard_journal_path(out, 1), header,
                    /*append=*/false);
    }

    runner::MergeResult m = merge(out, 2);
    EXPECT_FALSE(m.complete());
    bool mentions_plan = false;
    for (const std::string &problem : m.problems)
        mentions_plan |= problem.find("sweep plan") != std::string::npos;
    EXPECT_TRUE(mentions_plan)
        << (m.problems.empty() ? "" : m.problems.front());
}

TEST(Merge, IncompleteCampaignNamesTheMissingRanges)
{
    const std::string out = temp_path("merge_incomplete.json");
    EXPECT_EQ(run_shard(out, 0, 2, {runner::TrialRange{0, 2}}),
              runner::kExitOk);
    // Shard 1 never ran: trials 3-5 are durable nowhere.
    runner::MergeResult m = merge(out, 2);
    EXPECT_FALSE(m.complete());
    ASSERT_FALSE(m.problems.empty());
    const std::string &problem = m.problems.back();
    EXPECT_NE(problem.find("incomplete campaign"), std::string::npos);
    EXPECT_NE(problem.find("3-5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lease records and process-fault markers
// ---------------------------------------------------------------------------

TEST(Lease, HeartbeatRecordsAreInvisibleToReplay)
{
    const std::string path = temp_path("lease.journal");
    const auto plan = synthetic_plan();
    runner::JournalHeader header;
    header.sweep = "synthetic";
    header.master_seed = 0x5eedULL;
    {
        runner::JournalWriter writer;
        writer.open(path, header, /*append=*/false);
        writer.append_lease(0);
        runner::TrialOutcome outcome;
        outcome.result = synthetic_result(runner::TrialContext(plan[0]));
        writer.append(plan[0], outcome);
        writer.append_lease(1);
        writer.append_lease(2);
    }
    const auto records = runner::read_journal(path, header);
    ASSERT_EQ(records.size(), 1u);  // leases are liveness, not results
    EXPECT_EQ(records[0].spec.global_index, 0u);
    std::remove(path.c_str());
}

TEST(FaultMarker, SpentMarkerSuppressesAProcessFault)
{
    const std::string base = temp_path("marker.json");
    const runner::FaultSpec fault = runner::parse_fault("abort@alpha:1");
    ASSERT_TRUE(runner::is_process_fault(fault.kind));

    // Pretend a previous incarnation of this process already fired the
    // fault: the marker exists, so injecting again must be a no-op —
    // otherwise a deterministic crash would burn the supervisor's whole
    // respawn budget and recovery could never complete.
    const std::string marker = runner::fault_marker_path(base, fault);
    { std::ofstream(marker) << "spent"; }

    runner::FaultPlan plans({fault});
    plans.set_marker_base(base);
    runner::TrialSpec spec;
    spec.scenario = "alpha";
    spec.trial = 1;
    const runner::TrialContext ctx(spec);
    plans.inject_before(fault, ctx, 1);  // must NOT abort the process
    SUCCEED();
    std::remove(marker.c_str());
}

TEST(FaultSpec, ProcessKindsParseAndRenderRoundTrip)
{
    for (const char *text :
         {"abort@alpha:1", "sigkill-self@CLFLUSH (Light Load):0",
          "stall@beta:2"}) {
        const runner::FaultSpec fault = runner::parse_fault(text);
        EXPECT_TRUE(runner::is_process_fault(fault.kind)) << text;
        EXPECT_EQ(runner::to_string(fault), text);
    }
    EXPECT_FALSE(runner::is_process_fault(runner::FaultKind::kThrow));
    EXPECT_FALSE(runner::is_process_fault(runner::FaultKind::kCorrupt));
}

// ---------------------------------------------------------------------------
// End-to-end: the real binary, real processes, real crashes
// ---------------------------------------------------------------------------

#ifdef ANVIL_SIM_PATH

int
run_command(const std::string &command)
{
    const int status = std::system(command.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/**
 * The acceptance scenario: a 4-shard supervised table3 campaign where
 * one shard SIGKILLs itself mid-trial and another wedges (SIGSTOP) past
 * its lease, recovered by respawn, with final JSON byte-identical to
 * the committed single-process golden.
 */
TEST(Supervise, CrashedAndStalledShardsRecoverByteIdentically)
{
    const std::string out = temp_path("supervise_e2e.json");
    const std::string command =
        std::string(ANVIL_SIM_PATH) +
        " supervise table3_detection --trials 1 --shards 4" +
        " --json-out " + out +
        " --lease-timeout-ms 4000 --backoff-ms 100" +
        " --inject-fault 'sigkill-self@CLFLUSH (Light Load):0'" +
        " --inject-fault 'stall@CLFLUSH-free (Heavy Load):0'" +
        " 2>&1";
    EXPECT_EQ(run_command(command), 0);
    EXPECT_EQ(slurp(out),
              slurp(std::string(ANVIL_TEST_DATA_DIR) +
                    "/table3_golden.json"));
    // Commit removed the shard journals — the campaign is spent.
    for (std::uint32_t k = 0; k < 4; ++k) {
        EXPECT_FALSE(
            file_exists(runner::shard_journal_path(out, k)));
    }
    std::remove(out.c_str());
}

/** merge --check is the campaign validator: incomplete -> exit 6. */
TEST(Supervise, MergeCheckRejectsAnIncompleteCampaign)
{
    const std::string out = temp_path("merge_check_e2e.json");
    const std::string shard0 =
        std::string(ANVIL_SIM_PATH) +
        " shard table3_detection --trials 1 --shard-index 0"
        " --shard-count 4 --json-out " + out + " 2>&1";
    EXPECT_EQ(run_command(shard0), 0);

    const std::string check =
        std::string(ANVIL_SIM_PATH) +
        " merge table3_detection --trials 1 --shards 4 --check"
        " --json-out " + out + " 2>&1";
    EXPECT_EQ(run_command(check), runner::kExitMergeError);
    EXPECT_FALSE(file_exists(out));  // --check never writes the report

    for (std::uint32_t k = 0; k < 4; ++k)
        std::remove(runner::shard_journal_path(out, k).c_str());
}

#endif  // ANVIL_SIM_PATH

}  // namespace
}  // namespace anvil
