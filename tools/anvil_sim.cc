/**
 * @file
 * anvil-sim: the single driver for every paper table/figure sweep.
 *
 *   anvil-sim --list                         enumerate scenario sweeps
 *   anvil-sim SWEEP [args] [runner flags]    run one sweep
 *
 * The sweep definitions live in the scenario catalog
 * (src/scenario/catalog.cc); this binary only resolves the name, runs
 * the sweep through the shared parallel runner, and emits the standard
 * `anvil-sweep-v1` JSON report. The per-table bench binaries render the
 * paper's human-readable tables over the same definitions; output from
 * this driver is the machine-readable path (--json-out PATH or "-").
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "runner/options.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

namespace {

void
print_list()
{
    std::printf("registered scenario sweeps:\n");
    for (const scenario::SweepFactory &factory :
         scenario::paper_registry().all()) {
        std::string invocation = factory.name;
        if (!factory.usage.empty())
            invocation += " " + factory.usage;
        std::printf("  %-36s %s\n", invocation.c_str(),
                    factory.description.c_str());
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    // --list is our flag, not the runner's; handle it before parse()
    // (which exits 2 on flags it does not know).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            print_list();
            return 0;
        }
    }

    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv,
        "  positional: scenario sweep name, then its own arguments\n"
        "  --list             print the registered scenario sweeps\n");
    if (cli.positional.empty()) {
        std::fprintf(stderr,
                     "anvil-sim: expected a scenario sweep name "
                     "(try --list)\n");
        return 2;
    }

    const std::string name = cli.positional.front();
    const scenario::SweepFactory *factory =
        scenario::paper_registry().find(name);
    if (factory == nullptr) {
        std::fprintf(stderr, "anvil-sim: unknown scenario sweep '%s'\n\n",
                     name.c_str());
        print_list();
        return 2;
    }

    // The sweep sees its own positionals exactly as its bench binary
    // would: argument 0 is the first after the sweep name.
    cli.positional.erase(cli.positional.begin());

    const scenario::SweepSpec spec = factory->make(cli);
    runner::ResultSink sink = scenario::run_sweep(spec, cli);
    return runner::write_json_output(sink, cli.sweep) ? 0 : 1;
}
