/**
 * @file
 * anvil-sim: the single driver for every paper table/figure sweep.
 *
 *   anvil-sim --list                         enumerate scenario sweeps
 *   anvil-sim [run] SWEEP [args] [flags]     run one sweep in-process
 *   anvil-sim supervise SWEEP [args] [flags] sharded multi-process run
 *   anvil-sim shard SWEEP [args] [flags]     one shard child (internal)
 *   anvil-sim merge SWEEP [args] [flags]     fold shard journals into
 *                                            the report (--check: only
 *                                            validate, write nothing)
 *
 * The sweep definitions live in the scenario catalog
 * (src/scenario/catalog.cc); this binary only resolves the name, runs
 * the sweep through the shared parallel runner, and emits the standard
 * `anvil-sweep-v1` JSON report. `supervise` splits the sweep's trial
 * plan over --shards child processes (each `anvil-sim shard`, its own
 * crash-isolated checkpoint journal), restarts or requeues dead shards,
 * and merges the journals into a report byte-identical to a
 * single-process run (EXPERIMENTS.md "Sharded runs").
 *
 * Exit codes (runner::ExitCode): 0 = complete and all trials ok;
 * 1 = report not writable; 2 = usage error; 3 = interrupted
 * (SIGINT/SIGTERM drained the run — rerun the same command to resume);
 * 4 = complete but at least one trial failed (see the JSON "failures"
 * records); 5 = supervise: trials outstanding after every shard slot
 * exhausted its respawn budget (journals kept — rerun to continue);
 * 6 = merge: shard journals incomplete, conflicting, or invalid.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/text.hh"
#include "runner/options.hh"
#include "runner/shard.hh"
#include "runner/supervisor.hh"
#include "runner/sweep.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

namespace {

void
print_list()
{
    std::printf("registered scenario sweeps:\n");
    for (const scenario::SweepFactory &factory :
         scenario::paper_registry().all()) {
        std::string invocation = factory.name;
        if (!factory.usage.empty())
            invocation += " " + factory.usage;
        std::printf("  %-36s %s\n", invocation.c_str(),
                    factory.description.c_str());
    }
}

/** The registered sweep closest to @p name, or nullptr if nothing near. */
const scenario::SweepFactory *
nearest_sweep(const std::string &name)
{
    std::vector<std::string> names;
    for (const scenario::SweepFactory &factory :
         scenario::paper_registry().all())
        names.push_back(factory.name);
    const auto near = nearest_name(name, names);
    return near ? scenario::paper_registry().find(*near) : nullptr;
}

/** True when sharded verbs may use --json-out as a journal anchor. */
bool
require_file_json_out(const runner::CliOptions &cli, const char *verb)
{
    if (!cli.sweep.json_out.empty() && cli.sweep.json_out != "-")
        return true;
    std::fprintf(stderr,
                 "anvil-sim: `%s` needs --json-out FILE (shard journals "
                 "live next to the JSON report)\n",
                 verb);
    return false;
}

/** Prints merge diagnostics; returns the verb's exit code. */
int
report_merge_problems(const runner::MergeResult &merge)
{
    for (const std::string &line : merge.coverage)
        std::fprintf(stderr, "anvil-sim: merge: %s\n", line.c_str());
    for (const std::string &line : merge.problems)
        std::fprintf(stderr, "anvil-sim: merge: error: %s\n", line.c_str());
    return runner::kExitMergeError;
}

/**
 * `anvil-sim shard`: run this process's slice of the campaign. The
 * journal is the only output; the supervisor's merge writes the report.
 */
int
run_shard(const scenario::SweepSpec &spec, runner::CliOptions &cli)
{
    if (!cli.sweep.shard) {
        std::fprintf(stderr,
                     "anvil-sim: `shard` needs --shard-index and "
                     "--shard-count\n");
        return runner::kExitUsage;
    }
    if (!require_file_json_out(cli, "shard"))
        return runner::kExitUsage;
    if (cli.sweep.shard->ranges.empty()) {
        // No explicit --shard-trials: own shard K's slice of the even
        // partition. Plan size requires a built sweep, so build twice —
        // construction only registers closures, it runs nothing.
        runner::CliOptions probe = cli;
        const std::uint64_t total =
            scenario::make_sweep(spec, probe).plan_specs().size();
        cli.sweep.shard->ranges = runner::partition_trials(
            total, cli.sweep.shard->count)[cli.sweep.shard->index];
    }
    runner::Sweep sweep = scenario::make_sweep(spec, cli);
    return runner::finish_shard(sweep.run());
}

/**
 * `anvil-sim supervise`: partition the plan over child `shard`
 * processes, babysit them to durable completion, then merge.
 */
int
run_supervise(const scenario::SweepFactory &factory,
              const scenario::SweepSpec &spec, runner::CliOptions &cli)
{
    if (!require_file_json_out(cli, "supervise"))
        return runner::kExitUsage;
    if (cli.supervisor.shards == 0) {
        std::fprintf(stderr, "anvil-sim: --shards must be at least 1\n");
        return runner::kExitUsage;
    }

    runner::Sweep sweep = scenario::make_sweep(spec, cli);
    const std::vector<runner::TrialSpec> plan = sweep.plan_specs();

    runner::SupervisorOptions sup;
    sup.exe = "/proc/self/exe";
    sup.json_out = cli.sweep.json_out;
    sup.sweep = cli.sweep.name;
    sup.master_seed = cli.sweep.master_seed;
    sup.shards = cli.supervisor.shards;
    sup.respawn_budget = cli.supervisor.respawn_budget;
    sup.lease_timeout_ms = cli.supervisor.lease_timeout_ms;
    sup.backoff_ms = cli.supervisor.backoff_ms;

    // Children re-run this binary's `shard` verb over the same sweep
    // with the same determinism-relevant flags; the supervisor appends
    // the per-shard assignment itself.
    std::vector<std::string> &args = sup.child_args;
    args.push_back("shard");
    args.push_back(factory.name);
    args.insert(args.end(), cli.positional.begin(), cli.positional.end());
    args.push_back("--json-out");
    args.push_back(cli.sweep.json_out);
    args.push_back("--master-seed");
    args.push_back(std::to_string(cli.sweep.master_seed));
    if (cli.trials != 0) {
        args.push_back("--trials");
        args.push_back(std::to_string(cli.trials));
    }
    if (cli.sweep.retries != 0) {
        args.push_back("--retries");
        args.push_back(std::to_string(cli.sweep.retries));
    }
    if (cli.sweep.trial_timeout != 0) {
        args.push_back("--trial-timeout");
        args.push_back(std::to_string(cli.sweep.trial_timeout));
    }
    unsigned jobs = cli.supervisor.shard_jobs;
    if (jobs == 0) {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        jobs = std::max(1u, hw / std::max(1u, sup.shards));
    }
    args.push_back("--jobs");
    args.push_back(std::to_string(jobs));
    for (const runner::FaultSpec &fault : cli.sweep.faults) {
        args.push_back("--inject-fault");
        args.push_back(runner::to_string(fault));
    }

    const runner::SupervisorReport report =
        runner::supervise(plan, sup);
    if (report.interrupted)
        return runner::kExitPartial;
    if (!report.complete)
        return runner::kExitShardDead;

    runner::MergeOptions mo;
    mo.json_out = cli.sweep.json_out;
    mo.shard_count = sup.shards;
    runner::MergeResult merge =
        runner::merge_shards(plan, cli.sweep.name, cli.sweep.master_seed,
                             mo);
    if (!merge.complete())
        return report_merge_problems(merge);
    if (spec.finalize)
        spec.finalize(merge.sink);
    if (!runner::write_json_output(merge.sink, cli.sweep))
        return runner::kExitJsonError;
    // The report is durable; the shard journals' work is committed.
    runner::remove_shard_journals(cli.sweep.json_out, sup.shards);
    return merge.failed != 0 ? runner::kExitTrialFailure
                             : runner::kExitOk;
}

/**
 * `anvil-sim merge`: fold existing shard journals into the report —
 * the manual recovery path, and (--check) the campaign validator.
 */
int
run_merge(const scenario::SweepSpec &spec, runner::CliOptions &cli)
{
    if (!require_file_json_out(cli, "merge"))
        return runner::kExitUsage;
    runner::Sweep sweep = scenario::make_sweep(spec, cli);
    const std::vector<runner::TrialSpec> plan = sweep.plan_specs();

    runner::MergeOptions mo;
    mo.json_out = cli.sweep.json_out;
    mo.shard_count = cli.supervisor.shards;
    mo.check = cli.check;
    runner::MergeResult merge =
        runner::merge_shards(plan, cli.sweep.name, cli.sweep.master_seed,
                             mo);
    if (!merge.complete())
        return report_merge_problems(merge);
    if (cli.check) {
        for (const std::string &line : merge.coverage)
            std::fprintf(stderr, "anvil-sim: merge: %s\n", line.c_str());
        std::fprintf(stderr,
                     "anvil-sim: merge: ok — %llu trial(s) across %u "
                     "shard journal(s), %llu failure record(s)\n",
                     static_cast<unsigned long long>(merge.merged),
                     mo.shard_count,
                     static_cast<unsigned long long>(merge.failed));
        return runner::kExitOk;
    }
    if (spec.finalize)
        spec.finalize(merge.sink);
    if (!runner::write_json_output(merge.sink, cli.sweep))
        return runner::kExitJsonError;
    runner::remove_shard_journals(cli.sweep.json_out, mo.shard_count);
    return merge.failed != 0 ? runner::kExitTrialFailure
                             : runner::kExitOk;
}

}  // namespace

int
main(int argc, char **argv)
{
    // --list is our flag, not the runner's; handle it before parse()
    // (which exits 2 on flags it does not know).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            print_list();
            return runner::kExitOk;
        }
    }

    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv,
        "  positional: [run|supervise|shard|merge] scenario sweep name,\n"
        "              then the sweep's own arguments\n"
        "  --list             print the registered scenario sweeps\n");
    // `anvil-sim run SWEEP` reads naturally in CI scripts and docs; the
    // verb is optional and never a sweep name itself.
    std::string verb = "run";
    if (!cli.positional.empty() &&
        (cli.positional.front() == "run" ||
         cli.positional.front() == "shard" ||
         cli.positional.front() == "supervise" ||
         cli.positional.front() == "merge")) {
        verb = cli.positional.front();
        cli.positional.erase(cli.positional.begin());
    }
    if (cli.positional.empty()) {
        std::fprintf(stderr,
                     "anvil-sim: expected a scenario sweep name "
                     "(try --list)\n");
        return runner::kExitUsage;
    }

    const std::string name = cli.positional.front();
    const scenario::SweepFactory *factory =
        scenario::paper_registry().find(name);
    if (factory == nullptr) {
        std::fprintf(stderr, "anvil-sim: unknown scenario sweep '%s'\n",
                     name.c_str());
        if (const scenario::SweepFactory *near = nearest_sweep(name)) {
            std::fprintf(stderr, "  did you mean '%s'?\n",
                         near->name.c_str());
        }
        std::fprintf(stderr, "\n");
        print_list();
        return runner::kExitUsage;
    }

    // The sweep sees its own positionals exactly as its bench binary
    // would: argument 0 is the first after the sweep name.
    cli.positional.erase(cli.positional.begin());

    // SIGINT/SIGTERM drain instead of kill: in-flight trials (or shard
    // children) finish what they started, journals stay on disk, and we
    // exit kExitPartial so the run is resumable.
    runner::install_signal_handlers();

    try {
        const scenario::SweepSpec spec = factory->make(cli);
        if (verb == "shard")
            return run_shard(spec, cli);
        if (verb == "supervise")
            return run_supervise(*factory, spec, cli);
        if (verb == "merge")
            return run_merge(spec, cli);
        runner::SweepRun run = scenario::run_sweep(spec, cli);
        return runner::finish_sweep(run, cli.sweep);
    } catch (const Error &e) {
        // Configuration-level faults (spec validation, a --resume journal
        // from a different sweep) — not per-trial failures, which the
        // runner's error boundary already turned into outcomes.
        std::fprintf(stderr, "anvil-sim: %s\n", e.what());
        return runner::kExitUsage;
    }
}
