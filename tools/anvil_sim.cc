/**
 * @file
 * anvil-sim: the single driver for every paper table/figure sweep.
 *
 *   anvil-sim --list                         enumerate scenario sweeps
 *   anvil-sim SWEEP [args] [runner flags]    run one sweep
 *
 * The sweep definitions live in the scenario catalog
 * (src/scenario/catalog.cc); this binary only resolves the name, runs
 * the sweep through the shared parallel runner, and emits the standard
 * `anvil-sweep-v1` JSON report. The per-table bench binaries render the
 * paper's human-readable tables over the same definitions; output from
 * this driver is the machine-readable path (--json-out PATH or "-").
 *
 * Exit codes (runner::ExitCode): 0 = complete and all trials ok;
 * 1 = report not writable; 2 = usage error; 3 = interrupted
 * (SIGINT/SIGTERM drained the sweep — rerun with --resume); 4 = complete
 * but at least one trial failed (see the JSON "failures" records).
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/text.hh"
#include "runner/options.hh"
#include "runner/sweep.hh"
#include "scenario/builder.hh"
#include "scenario/registry.hh"

using namespace anvil;

namespace {

void
print_list()
{
    std::printf("registered scenario sweeps:\n");
    for (const scenario::SweepFactory &factory :
         scenario::paper_registry().all()) {
        std::string invocation = factory.name;
        if (!factory.usage.empty())
            invocation += " " + factory.usage;
        std::printf("  %-36s %s\n", invocation.c_str(),
                    factory.description.c_str());
    }
}

/** The registered sweep closest to @p name, or nullptr if nothing near. */
const scenario::SweepFactory *
nearest_sweep(const std::string &name)
{
    std::vector<std::string> names;
    for (const scenario::SweepFactory &factory :
         scenario::paper_registry().all())
        names.push_back(factory.name);
    const auto near = nearest_name(name, names);
    return near ? scenario::paper_registry().find(*near) : nullptr;
}

}  // namespace

int
main(int argc, char **argv)
{
    // --list is our flag, not the runner's; handle it before parse()
    // (which exits 2 on flags it does not know).
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            print_list();
            return runner::kExitOk;
        }
    }

    runner::CliOptions cli = runner::CliOptions::parse(
        argc, argv,
        "  positional: [run] scenario sweep name, then its own arguments\n"
        "  --list             print the registered scenario sweeps\n");
    // `anvil-sim run SWEEP` reads naturally in CI scripts and docs; the
    // verb is optional and never a sweep name itself.
    if (!cli.positional.empty() && cli.positional.front() == "run")
        cli.positional.erase(cli.positional.begin());
    if (cli.positional.empty()) {
        std::fprintf(stderr,
                     "anvil-sim: expected a scenario sweep name "
                     "(try --list)\n");
        return runner::kExitUsage;
    }

    const std::string name = cli.positional.front();
    const scenario::SweepFactory *factory =
        scenario::paper_registry().find(name);
    if (factory == nullptr) {
        std::fprintf(stderr, "anvil-sim: unknown scenario sweep '%s'\n",
                     name.c_str());
        if (const scenario::SweepFactory *near = nearest_sweep(name)) {
            std::fprintf(stderr, "  did you mean '%s'?\n",
                         near->name.c_str());
        }
        std::fprintf(stderr, "\n");
        print_list();
        return runner::kExitUsage;
    }

    // The sweep sees its own positionals exactly as its bench binary
    // would: argument 0 is the first after the sweep name.
    cli.positional.erase(cli.positional.begin());

    // SIGINT/SIGTERM drain the sweep instead of killing it: in-flight
    // trials finish, the journal is flushed, and we exit kExitPartial so
    // the run is resumable with --resume.
    runner::install_signal_handlers();

    try {
        const scenario::SweepSpec spec = factory->make(cli);
        runner::SweepRun run = scenario::run_sweep(spec, cli);
        return runner::finish_sweep(run, cli.sweep);
    } catch (const Error &e) {
        // Configuration-level faults (spec validation, a --resume journal
        // from a different sweep) — not per-trial failures, which the
        // runner's error boundary already turned into outcomes.
        std::fprintf(stderr, "anvil-sim: %s\n", e.what());
        return runner::kExitUsage;
    }
}
