#!/usr/bin/env python3
"""Compare two anvil-bench-v1 reports and fail on throughput regression.

Usage:
    perf_compare.py BASELINE.json CURRENT.json [--max-regression 0.30]

Exits non-zero if any benchmark present in both reports regressed by more
than the threshold (relative drop in sim_accesses_per_sec). Benchmarks
only present on one side are reported but do not fail the comparison, so
adding or retiring scenarios does not require a lockstep baseline update.

CI runners are noisy; the default 30% threshold is deliberately loose —
this gate catches "accidentally reintroduced a per-access hash-map probe"
scale regressions, not single-digit drift.

Exit codes: 0 = no regression, 1 = regression, 2 = unreadable input (a
missing, truncated, or malformed report — e.g. the producing job was
killed mid-write), so CI can tell "the code got slower" from "the
comparison never happened".
"""
import argparse
import json
import sys

EXIT_REGRESSION = 1
EXIT_BAD_INPUT = 2


def die_bad_input(path, why):
    print(f"perf_compare: {path}: {why}", file=sys.stderr)
    sys.exit(EXIT_BAD_INPUT)


def load(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        die_bad_input(path, f"cannot read report: {e.strerror or e}")
    except json.JSONDecodeError as e:
        die_bad_input(path, f"not valid JSON (truncated upload or torn "
                            f"write?): {e}")
    if not isinstance(report, dict) or report.get("schema") != "anvil-bench-v1":
        die_bad_input(path, "not an anvil-bench-v1 report "
                            f"(schema={report.get('schema')!r})"
                      if isinstance(report, dict)
                      else "not an anvil-bench-v1 report (top level is "
                           f"{type(report).__name__}, expected object)")
    out = {}
    for i, b in enumerate(report.get("benchmarks") or []):
        try:
            out[b["name"]] = float(b["sim_accesses_per_sec"])
        except (TypeError, KeyError, ValueError) as e:
            die_bad_input(path, f"benchmarks[{i}] is malformed "
                                f"(missing or non-numeric field): {e!r}")
    if not out:
        die_bad_input(path, "report contains no benchmarks")
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="maximum allowed relative drop (default 0.30)")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failures = []
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(base.keys() | cur.keys()):
        if name not in base:
            print(f"{name:<44} {'-':>12} {cur[name]:>12.3e}   (new)")
            continue
        if name not in cur:
            print(f"{name:<44} {base[name]:>12.3e} {'-':>12}   (gone)")
            continue
        delta = (cur[name] - base[name]) / base[name]
        flag = ""
        if delta < -args.max_regression:
            failures.append(name)
            flag = "  << REGRESSION"
        print(f"{name:<44} {base[name]:>12.3e} {cur[name]:>12.3e} "
              f"{delta:>+7.1%}{flag}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.max_regression:.0%}: {', '.join(failures)}")
        return EXIT_REGRESSION
    print(f"\nOK: no benchmark regressed more than {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
