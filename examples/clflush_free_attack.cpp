/**
 * @file
 * Walkthrough of the CLFLUSH-free rowhammer attack (paper Section 2.2).
 *
 * Demonstrates every stage an attacker goes through:
 *   1. map a large buffer and read /proc/pagemap to learn physical frames;
 *   2. find aggressor rows sandwiching a victim row in one DRAM bank;
 *   3. build an LLC eviction set (same set, same slice) for the aggressors
 *      using the reverse-engineered cache mapping;
 *   4. drive the Bit-PLRU replacement state so that ONLY the two aggressor
 *      addresses miss the cache each iteration;
 *   5. hammer until the victim row's bits flip — without ever executing a
 *      CLFLUSH instruction.
 */
#include <cstdio>

#include "attack/hammer.hh"
#include "mem/memory_system.hh"
#include "scenario/testbed.hh"

using namespace anvil;

int
main()
{
    mem::SystemConfig config;
    mem::MemorySystem machine(config);

    std::printf("machine: %.1f GB DDR3, %u banks, %u-way Bit-PLRU LLC\n",
                static_cast<double>(config.dram.capacity_bytes()) /
                    (1ULL << 30),
                config.dram.total_banks(), config.cache.llc_ways);

    // -- Stage 1: buffer + pagemap ---------------------------------------
    scenario::Attacker intruder(machine);
    mem::AddressSpace &attacker = *intruder.space;
    attack::MemoryLayout &layout = intruder.layout;
    std::printf("mapped %llu MB, scanned %zu pages via pagemap\n",
                static_cast<unsigned long long>(
                    scenario::Attacker::kBufferBytes >> 20),
                layout.pages_scanned());

    // -- Stage 2: find a double-sided target ------------------------------
    const auto targets = layout.find_double_sided_targets(512);
    std::printf("found %zu double-sided aggressor/victim triples\n",
                targets.size());
    const attack::DoubleSidedTarget *target = nullptr;
    for (const auto &t : targets) {
        // The shared-LLC-set placement needs the two aggressors to agree
        // on the slice hash; ~1 in 4 triples qualifies.
        if (attack::ClflushFreeDoubleSided::slice_compatible(
                machine, attacker.pid(), t)) {
            target = &t;
            break;
        }
    }
    if (target == nullptr) {
        std::printf("no slice-compatible target; map a larger buffer\n");
        return 1;
    }
    std::printf("target: bank %u, victim row %u (aggressors %u and %u)\n",
                target->flat_bank, target->victim_row,
                target->victim_row - 1, target->victim_row + 1);

    // -- Stage 3 + 4: eviction set & replacement-state manipulation -------
    attack::ClflushFreeDoubleSided hammer(machine, attacker.pid(), *target,
                                          layout);
    std::printf("eviction set: %zu conflict lines sharing LLC set %u, "
                "slice %u\n",
                hammer.touch_set().size(),
                machine.hierarchy().llc_set(
                    attacker.translate(hammer.a0())),
                machine.hierarchy().llc_slice(
                    attacker.translate(hammer.a0())));

    // Show the steady-state cache behaviour the attack relies on.
    for (int i = 0; i < 4; ++i)
        hammer.step();  // warm up
    const auto llc_before = machine.hierarchy().llc_stats();
    const Tick t0 = machine.now();
    for (int i = 0; i < 1000; ++i)
        hammer.step();
    const auto llc_after = machine.hierarchy().llc_stats();
    const double misses_per_iter =
        static_cast<double>(llc_after.misses - llc_before.misses) / 1000.0;
    const double ns_per_iter = to_ns(machine.now() - t0) / 1000.0;
    std::printf("steady state: %.2f LLC misses per iteration "
                "(both aggressor rows), %.0f ns per iteration,\n"
                "              up to %.0fK double-sided hammers per 64 ms "
                "refresh interval (paper: ~190K)\n",
                misses_per_iter, ns_per_iter, 64e6 / ns_per_iter / 1000.0);

    // -- Stage 5: hammer victims until one flips ---------------------------
    // Not every victim row is equally sensitive; like the published attack
    // implementations, keep moving to the next target until bits flip.
    int tried = 0;
    for (const auto &t : targets) {
        if (!attack::ClflushFreeDoubleSided::slice_compatible(
                machine, attacker.pid(), t)) {
            continue;
        }
        if (++tried > 12)
            break;
        attack::ClflushFreeDoubleSided trial(machine, attacker.pid(), t,
                                             layout);
        const attack::HammerResult result = trial.run(ms(128));
        if (result.flipped) {
            std::printf("BIT FLIP in bank %u row %u after %llu aggressor "
                        "accesses (%.1f ms of hammering, %d target(s) "
                        "tried) — no CLFLUSH executed\n",
                        result.flips[0].flat_bank, result.flips[0].row,
                        static_cast<unsigned long long>(
                            result.aggressor_accesses),
                        to_ms(result.duration), tried);
            return 0;
        }
        std::printf("victim row %u resisted (%.0f ms); trying the next "
                    "target\n",
                    t.victim_row, to_ms(result.duration));
    }
    std::printf("no flip after %d targets — this module's sensitive rows "
                "are elsewhere in the buffer\n", tried);
    return 0;
}
