/**
 * @file
 * Detector tuning walkthrough: sweeps ANVIL's main knobs — the Stage-1
 * miss threshold, the window lengths, and the victim blast radius — and
 * prints the detection-latency / overhead / false-positive trade-off each
 * point buys. This is the experiment a deployer would run to pick a
 * configuration for their own DRAM (Section 4.5: the parameters "are
 * adaptable to other systems and attack scenarios").
 */
#include <cstdio>
#include <iostream>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "common/table.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "scenario/testbed.hh"
#include "workload/workload.hh"

using namespace anvil;

namespace {

struct TunePoint {
    double detect_ms = -1.0;   ///< latency against a CLFLUSH attack
    bool flipped = false;
    double overhead_pct = 0.0; ///< on a benign memory-intensive workload
    std::uint64_t fp_refreshes = 0;
};

TunePoint
evaluate(const detector::AnvilConfig &config)
{
    TunePoint point;

    // (a) Detection latency and protection against a real attack.
    {
        mem::MemorySystem machine{mem::SystemConfig{}};
        pmu::Pmu pmu(machine);
        detector::Anvil anvil(machine, pmu, config);
        anvil.start();
        scenario::Attacker intruder(machine);
        const auto targets =
            intruder.layout.find_double_sided_targets(4);
        if (!targets.empty()) {
            attack::ClflushDoubleSided hammer(
                machine, intruder.space->pid(), targets.front());
            const Tick start = machine.now();
            const auto result = hammer.run(ms(96));
            point.flipped = result.flipped;
            if (!anvil.detections().empty()) {
                point.detect_ms =
                    to_ms(anvil.detections().front().time - start);
            }
        }
    }

    // (b) Overhead and false positives on a benign workload.
    {
        mem::MemorySystem machine{mem::SystemConfig{}};
        pmu::Pmu pmu(machine);
        workload::Workload load(machine,
                                workload::spec_profile("libquantum"));
        const Tick base_start = machine.now();
        load.run_ops(1500000);
        const Tick base = machine.now() - base_start;

        mem::MemorySystem machine2{mem::SystemConfig{}};
        pmu::Pmu pmu2(machine2);
        detector::Anvil anvil(machine2, pmu2, config);
        anvil.set_ground_truth([] { return false; });
        anvil.start();
        workload::Workload load2(machine2,
                                 workload::spec_profile("libquantum"));
        const Tick start = machine2.now();
        load2.run_ops(1500000);
        point.overhead_pct =
            100.0 * (static_cast<double>(machine2.now() - start) /
                         static_cast<double>(base) -
                     1.0);
        point.fp_refreshes = anvil.stats().false_positive_refreshes;
    }
    return point;
}

}  // namespace

int
main()
{
    TextTable table("ANVIL tuning sweep (attack: double-sided CLFLUSH; "
                    "benign: libquantum)");
    table.set_header({"Configuration", "Detect latency", "Bit flips",
                      "Overhead", "FP refreshes"});

    auto add_point = [&](const std::string &label,
                         const detector::AnvilConfig &config) {
        const TunePoint p = evaluate(config);
        table.add_row({label,
                       p.detect_ms >= 0
                           ? TextTable::fmt(p.detect_ms, 1) + " ms"
                           : "never",
                       p.flipped ? "FLIPPED" : "0",
                       TextTable::fmt(p.overhead_pct, 2) + " %",
                       TextTable::fmt_count(p.fp_refreshes)});
    };

    add_point("baseline (Table 2)", detector::AnvilConfig::baseline());
    add_point("light (10K threshold)", detector::AnvilConfig::light());
    add_point("heavy (2 ms windows)", detector::AnvilConfig::heavy());

    // Threshold sweep.
    for (const std::uint64_t threshold : {5000ULL, 40000ULL, 80000ULL}) {
        detector::AnvilConfig config = detector::AnvilConfig::baseline();
        config.llc_miss_threshold = threshold;
        add_point("threshold " + TextTable::fmt_count(threshold), config);
    }

    // Window sweep.
    for (const double window_ms : {1.0, 3.0, 12.0}) {
        detector::AnvilConfig config = detector::AnvilConfig::baseline();
        config.tc = ms(window_ms);
        config.ts = ms(window_ms);
        add_point("tc = ts = " + TextTable::fmt(window_ms, 0) + " ms",
                  config);
    }

    // Blast radius sweep (how many rows around an aggressor to refresh).
    for (const std::uint32_t radius : {2u, 4u}) {
        detector::AnvilConfig config = detector::AnvilConfig::baseline();
        config.blast_radius = radius;
        add_point("blast radius +/-" + std::to_string(radius), config);
    }

    // The two-stage design ablation: sample continuously, no Stage-1 gate.
    {
        detector::AnvilConfig config = detector::AnvilConfig::baseline();
        config.two_stage = false;
        add_point("single-stage (always sampling)", config);
    }

    table.print(std::cout);
    std::printf("\nReading the table: lower thresholds and shorter windows "
                "detect faster but sample more often (overhead, false "
                "positives); larger blast radii cost extra refreshes per "
                "detection but protect against wider disturbance.\n"
                "Note the tc = 1 ms row: the threshold is a count per "
                "window, so shrinking the window without rescaling the "
                "threshold (20K misses can't accumulate in 1 ms) blinds "
                "Stage 1 entirely and the attack lands — window and "
                "threshold must be tuned together, which is why "
                "ANVIL-heavy keeps 20K over 2 ms only for attacks twice "
                "as fast as the baseline's.\n");
    return 0;
}
