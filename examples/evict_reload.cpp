/**
 * @file
 * The Section 2.2 bonus claim: "the technique used in the CLFLUSH-free
 * rowhammering attack can be used in other attacks that need to flush the
 * cache at specific addresses. For example the Flush+Reload cache
 * side-channel attack [...] Our CLFLUSH-free cache flushing method can
 * extend this attack to situations where the CLFLUSH instruction is not
 * available (e.g., JavaScript)."
 *
 * This demo builds that Evict+Reload side channel: a victim process
 * touches (or doesn't touch) a line of a shared library depending on a
 * secret bit; a spy with no CLFLUSH evicts the probe line with a
 * replacement-state-manipulating eviction set, lets the victim run, then
 * reloads the line and classifies the access latency. The recovered bits
 * equal the secret.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "attack/memory_layout.hh"
#include "mem/memory_system.hh"

using namespace anvil;

int
main()
{
    mem::MemorySystem machine{mem::SystemConfig{}};

    // The victim: a process with a "shared library" whose code path
    // depends on a secret (e.g., a crypto key bit selecting a table
    // entry).
    mem::AddressSpace &victim = machine.create_process();
    const Addr library = victim.mmap(16 * 4096);
    const Addr probe_victim_va = library + 7 * 4096;  // the watched line

    // The spy: maps the same library (shared file mapping) plus a private
    // buffer for eviction sets, and uses pagemap + the known cache
    // mapping — no CLFLUSH anywhere.
    mem::AddressSpace &spy = machine.create_process();
    const Addr probe_spy_va =
        spy.mmap_shared(victim, library, 16 * 4096) + 7 * 4096;
    const Addr buffer = spy.mmap(64ULL << 20);
    attack::MemoryLayout layout(spy, machine.dram().address_map(),
                                machine.hierarchy());
    layout.scan(buffer, 64ULL << 20);
    const auto eviction_set = layout.build_eviction_set(probe_spy_va, 16);
    std::printf("spy: %zu-line eviction set for the shared probe line "
                "(set %u, slice %u)\n",
                eviction_set.size(),
                machine.hierarchy().llc_set(spy.translate(probe_spy_va)),
                machine.hierarchy().llc_slice(
                    spy.translate(probe_spy_va)));

    // The latency boundary between "victim touched it" (on-chip hit) and
    // "still evicted" (DRAM access).
    const Tick hit_boundary = machine.core().cycles_to_ticks(
        machine.config().cache.llc_latency + 5);

    const std::string secret = "1011001110001101";
    std::string recovered;
    int evictions_failed = 0;
    for (const char bit : secret) {
        // EVICT: sweep the eviction set a few times; with 16 conflicts in
        // a 12-way set the probe line cannot survive.
        for (int round = 0; round < 4; ++round) {
            for (const Addr line : eviction_set)
                machine.access(spy.pid(), line, AccessType::kLoad);
        }
        if (machine.hierarchy().present_anywhere(
                spy.translate(probe_spy_va))) {
            ++evictions_failed;
        }

        // VICTIM runs: touches the probe line only if its secret bit is 1.
        if (bit == '1')
            machine.access(victim.pid(), probe_victim_va,
                           AccessType::kLoad);

        // RELOAD: time the access to the shared line.
        const mem::AccessInfo reload =
            machine.access(spy.pid(), probe_spy_va, AccessType::kLoad);
        recovered.push_back(reload.latency <= hit_boundary ? '1' : '0');
    }

    std::printf("secret:    %s\nrecovered: %s\n", secret.c_str(),
                recovered.c_str());
    std::printf("evictions that failed to clear the probe line: %d\n",
                evictions_failed);
    std::printf(recovered == secret
                    ? "side channel works: every bit leaked without "
                      "CLFLUSH\n"
                    : "bit errors — tune the eviction pattern\n");
    return recovered == secret ? 0 : 1;
}
