/**
 * @file
 * Quickstart: build the simulated machine, run a double-sided CLFLUSH
 * rowhammer attack against unprotected DRAM, watch it flip bits, then
 * load ANVIL and watch the same attack get detected and neutralized.
 *
 * This walks through the whole public API surface in ~100 lines:
 * MemorySystem, MemoryLayout (the attacker's pagemap view), the hammer
 * kernels, the PMU, and the ANVIL detector.
 */
#include <cstdio>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "scenario/testbed.hh"

using namespace anvil;

namespace {

/** Runs one hammering campaign and reports what happened. */
void
campaign(const char *label, bool protect)
{
    // A fresh machine: 4 GB DDR3 behind a Sandy Bridge-like hierarchy.
    mem::SystemConfig config;
    mem::MemorySystem machine(config);
    pmu::Pmu pmu(machine);

    // The attacker: one process that maps a 64 MB buffer and scans it
    // through /proc/pagemap for aggressor/victim row triples.
    scenario::Attacker intruder(machine);

    const auto targets = intruder.layout.find_double_sided_targets(16);
    if (targets.empty()) {
        std::printf("no double-sided targets found\n");
        return;
    }

    // Optionally load the defense.
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    if (protect)
        anvil.start();

    std::printf("== %s ==\n", label);
    std::uint64_t total_flips = 0;
    for (const auto &target : targets) {
        attack::ClflushDoubleSided hammer(machine, intruder.space->pid(),
                                          target);
        const attack::HammerResult result = hammer.run(ms(80));
        total_flips += result.flips.size();
        std::printf(
            "  bank %2u victim row %5u: %s after %llu aggressor accesses "
            "(%.1f ms)\n",
            target.flat_bank, target.victim_row,
            result.flipped ? "FLIPPED" : "no flip",
            static_cast<unsigned long long>(result.aggressor_accesses),
            to_ms(result.duration));
        if (total_flips >= 2 && !protect)
            break;  // seen enough carnage
    }

    std::printf("  total bit flips: %llu\n",
                static_cast<unsigned long long>(total_flips));
    if (protect) {
        const auto &stats = anvil.stats();
        std::printf("  ANVIL: %llu detections, %llu selective refreshes, "
                    "%.2f ms overhead\n",
                    static_cast<unsigned long long>(stats.detections),
                    static_cast<unsigned long long>(
                        stats.selective_refreshes),
                    to_ms(stats.overhead));
    }
}

}  // namespace

int
main()
{
    campaign("unprotected system", /*protect=*/false);
    campaign("ANVIL-protected system", /*protect=*/true);
    return 0;
}
