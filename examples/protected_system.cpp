/**
 * @file
 * A day in the life of an ANVIL-protected machine: ordinary benchmarks
 * run with ~1 % overhead and near-zero false positives; when a rowhammer
 * attack starts mid-run it is detected within a refresh period, its victim
 * rows are selectively refreshed, and no bit ever flips.
 */
#include <cstdio>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "scenario/testbed.hh"
#include "workload/workload.hh"

using namespace anvil;

int
main()
{
    mem::MemorySystem machine{mem::SystemConfig{}};
    pmu::Pmu pmu(machine);

    // Load the ANVIL kernel module.
    detector::Anvil anvil(machine, pmu, detector::AnvilConfig::baseline());
    bool attack_running = false;
    anvil.set_ground_truth([&] { return attack_running; });
    anvil.start();
    std::printf("%s loaded: tc=%.0f ms, ts=%.0f ms, threshold=%llu misses\n",
                anvil.config().name.c_str(), to_ms(anvil.config().tc),
                to_ms(anvil.config().ts),
                static_cast<unsigned long long>(
                    anvil.config().llc_miss_threshold));

    // Ordinary multiprogrammed load.
    workload::Workload mcf(machine, workload::spec_profile("mcf"));
    workload::Workload gcc(machine, workload::spec_profile("gcc"));
    workload::Runner runner(machine);
    runner.add([&] { mcf.step(); });
    runner.add([&] { gcc.step(); });

    std::printf("\n-- phase 1: benign workloads only (300 ms) --\n");
    runner.run_for(ms(300));
    std::printf("stage-1 windows: %llu, escalations to sampling: %llu, "
                "false-positive refreshes: %llu\n",
                static_cast<unsigned long long>(
                    anvil.stats().stage1_windows),
                static_cast<unsigned long long>(
                    anvil.stats().stage1_triggers),
                static_cast<unsigned long long>(
                    anvil.stats().false_positive_refreshes));

    // An attacker process appears.
    std::printf("\n-- phase 2: CLFLUSH rowhammer attack joins (200 ms) --\n");
    scenario::Attacker intruder(machine);
    const auto targets = intruder.layout.find_double_sided_targets(4);
    if (targets.empty()) {
        std::printf("no targets found\n");
        return 1;
    }
    attack::ClflushDoubleSided hammer(machine, intruder.space->pid(),
                                      targets.front());
    workload::Runner mixed(machine);
    mixed.add([&] { hammer.step(); });
    mixed.add([&] { mcf.step(); });
    mixed.add([&] { gcc.step(); });

    attack_running = true;
    const Tick attack_start = machine.now();
    const auto detections_before = anvil.stats().detections;
    mixed.run_for(ms(200));
    attack_running = false;

    const auto &stats = anvil.stats();
    std::printf("detections: %llu",
                static_cast<unsigned long long>(stats.detections -
                                                detections_before));
    for (const auto &d : anvil.detections()) {
        if (d.time >= attack_start) {
            std::printf(" (first after %.1f ms)",
                        to_ms(d.time - attack_start));
            break;
        }
    }
    std::printf("\nselective refreshes: %llu, bit flips: %zu\n",
                static_cast<unsigned long long>(stats.selective_refreshes),
                machine.dram().flips().size());
    std::printf("detector overhead so far: %.2f ms of core time (%.2f %% "
                "of the run)\n",
                to_ms(stats.overhead),
                100.0 * static_cast<double>(stats.overhead) /
                    static_cast<double>(machine.now()));

    std::printf("\n-- phase 3: attacker leaves; system keeps running --\n");
    runner.run_for(ms(100));
    std::printf("final bit-flip count: %zu (the attack never landed)\n",
                machine.dram().flips().size());
    return 0;
}
