#include "cache/hierarchy.hh"

#include <bit>
#include <cassert>

#include "common/bits.hh"

namespace anvil::cache {

namespace {

/**
 * Slice-selection hash. Each slice-index bit is the parity of the physical
 * address ANDed with a per-bit mask, following the style of the
 * reverse-engineered Intel complex-addressing functions (Hund et al.,
 * referenced by the paper as [12]).
 */
constexpr std::uint64_t kSliceMasks[3] = {
    0x1B5F575440ULL,
    0x2EB5FAA880ULL,
    0x3CCCC93100ULL,
};

}  // namespace

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
    : config_(config),
      rng_(config.rng_seed),
      l1_("L1", config_.l1_sets, config_.l1_ways, config_.l1_policy, &rng_),
      l2_("L2", config_.l2_sets, config_.l2_ways, config_.l2_policy, &rng_)
{
    assert(is_pow2(config_.llc_slices) && "slice count must be 2^k");
    assert(config_.llc_slices <= 8 && "at most 3 slice-hash bits defined");
    llc_.reserve(config_.llc_slices);
    for (std::uint32_t s = 0; s < config_.llc_slices; ++s) {
        llc_.emplace_back("LLC.slice" + std::to_string(s),
                          config_.llc_sets_per_slice, config_.llc_ways,
                          config_.llc_policy, &rng_);
    }
}

std::uint32_t
CacheHierarchy::llc_slice(Addr pa) const
{
    if (config_.llc_slices == 1)
        return 0;
    std::uint32_t slice = 0;
    const int bits = std::countr_zero(config_.llc_slices);
    for (int b = 0; b < bits; ++b) {
        const auto parity =
            static_cast<std::uint32_t>(std::popcount(pa & kSliceMasks[b]) &
                                       1);
        slice |= parity << b;
    }
    return slice;
}

std::uint32_t
CacheHierarchy::llc_set(Addr pa) const
{
    return static_cast<std::uint32_t>((pa >> kLineShift) &
                                      (config_.llc_sets_per_slice - 1));
}

void
CacheHierarchy::install_llc(Addr pa, Cache &slice)
{
    if (auto evicted = slice.fill(pa)) {
        if (config_.llc_inclusive) {
            // Inclusive LLC: a line leaving the LLC must leave the core
            // caches too (back-invalidation).
            l1_.invalidate(*evicted);
            l2_.invalidate(*evicted);
        }
    }
}

CacheHierarchy::Result
CacheHierarchy::access(Addr pa, AccessType type)
{
    (void)type;  // loads and stores are symmetric in the tag-store model
    Result result;

    if (l1_.access(pa)) {
        result.source = DataSource::kL1;
        result.latency = config_.l1_latency;
        return result;
    }
    if (l2_.access(pa)) {
        l1_.fill(pa);
        result.source = DataSource::kL2;
        result.latency = config_.l2_latency;
        return result;
    }

    Cache &slice = llc_[llc_slice(pa)];
    if (slice.access(pa)) {
        l2_.fill(pa);
        l1_.fill(pa);
        result.source = DataSource::kLlc;
        result.latency = config_.llc_latency;
        return result;
    }

    // Miss to DRAM: fill all levels (LLC first, maintaining inclusion).
    install_llc(pa, slice);
    l2_.fill(pa);
    l1_.fill(pa);
    result.source = DataSource::kDram;
    result.latency = config_.llc_latency;  // DRAM latency added by caller
    result.llc_miss = true;
    return result;
}

int
CacheHierarchy::clflush(Addr pa)
{
    int found = 0;
    found += l1_.invalidate(pa) ? 1 : 0;
    found += l2_.invalidate(pa) ? 1 : 0;
    found += llc_[llc_slice(pa)].invalidate(pa) ? 1 : 0;
    return found;
}

bool
CacheHierarchy::present_anywhere(Addr pa) const
{
    return l1_.contains(pa) || l2_.contains(pa) ||
           llc_[llc_slice(pa)].contains(pa);
}

CacheStats
CacheHierarchy::llc_stats() const
{
    CacheStats total;
    for (const auto &slice : llc_) {
        const CacheStats &s = slice.stats();
        total.accesses += s.accesses;
        total.hits += s.hits;
        total.misses += s.misses;
        total.fills += s.fills;
        total.evictions += s.evictions;
        total.invalidations += s.invalidations;
    }
    return total;
}

void
CacheHierarchy::reset_stats()
{
    l1_.reset_stats();
    l2_.reset_stats();
    for (auto &slice : llc_)
        slice.reset_stats();
}

}  // namespace anvil::cache
