#include "cache/replacement.hh"

#include <cassert>
#include <stdexcept>

namespace anvil::cache {

ReplPolicy
parse_policy(const std::string &name)
{
    if (name == "lru") return ReplPolicy::kLru;
    if (name == "bitplru") return ReplPolicy::kBitPlru;
    if (name == "nru") return ReplPolicy::kNru;
    if (name == "treeplru") return ReplPolicy::kTreePlru;
    if (name == "srrip") return ReplPolicy::kSrrip;
    if (name == "random") return ReplPolicy::kRandom;
    throw std::invalid_argument("unknown replacement policy: " + name);
}

const char *
to_string(ReplPolicy policy)
{
    switch (policy) {
      case ReplPolicy::kLru: return "lru";
      case ReplPolicy::kBitPlru: return "bitplru";
      case ReplPolicy::kNru: return "nru";
      case ReplPolicy::kTreePlru: return "treeplru";
      case ReplPolicy::kSrrip: return "srrip";
      case ReplPolicy::kRandom: return "random";
    }
    return "?";
}

namespace {

/** True LRU via a recency stack (index 0 = MRU). */
class LruPolicy : public SetPolicy
{
  public:
    explicit LruPolicy(std::uint32_t ways)
    {
        stack_.reserve(ways);
        for (std::uint32_t w = 0; w < ways; ++w)
            stack_.push_back(w);
    }

    void on_access(std::uint32_t way) override { touch(way); }
    void on_fill(std::uint32_t way) override { touch(way); }
    void on_invalidate(std::uint32_t way) override
    {
        // Move to LRU position so the way is reused first.
        remove(way);
        stack_.push_back(way);
    }

    std::uint32_t victim() override { return stack_.back(); }

  private:
    void
    touch(std::uint32_t way)
    {
        remove(way);
        stack_.insert(stack_.begin(), way);
    }

    void
    remove(std::uint32_t way)
    {
        for (auto it = stack_.begin(); it != stack_.end(); ++it) {
            if (*it == way) {
                stack_.erase(it);
                return;
            }
        }
    }

    std::vector<std::uint32_t> stack_;
};

/**
 * Bit-PLRU exactly as the paper describes it (Section 2.2): "each cache
 * line in a set has a single MRU bit. Every time a cache line is accessed,
 * its MRU bit is set. The least-recently used cache line is the line with
 * the lowest index whose MRU bit is cleared. When the last MRU bit is set,
 * the other MRU bits in the set are cleared."
 */
class BitPlruPolicy : public SetPolicy
{
  public:
    explicit BitPlruPolicy(std::uint32_t ways) : mru_(ways, false) {}

    void on_access(std::uint32_t way) override { set_mru(way); }
    void on_fill(std::uint32_t way) override { set_mru(way); }
    void on_invalidate(std::uint32_t way) override { mru_[way] = false; }

    std::uint32_t victim() override
    {
        for (std::uint32_t w = 0; w < mru_.size(); ++w) {
            if (!mru_[w])
                return w;
        }
        // Unreachable in normal operation: set_mru never leaves all bits
        // set. Defensive fallback.
        return 0;
    }

  private:
    void
    set_mru(std::uint32_t way)
    {
        mru_[way] = true;
        for (bool b : mru_) {
            if (!b)
                return;
        }
        // Last MRU bit was just set: clear all the others.
        for (std::uint32_t w = 0; w < mru_.size(); ++w)
            mru_[w] = (w == way);
    }

    std::vector<bool> mru_;
};

/**
 * NRU: like Bit-PLRU but the reference bits are cleared lazily at victim
 * selection when none are clear.
 */
class NruPolicy : public SetPolicy
{
  public:
    explicit NruPolicy(std::uint32_t ways) : ref_(ways, false) {}

    void on_access(std::uint32_t way) override { ref_[way] = true; }
    void on_fill(std::uint32_t way) override { ref_[way] = true; }
    void on_invalidate(std::uint32_t way) override { ref_[way] = false; }

    std::uint32_t victim() override
    {
        for (int pass = 0; pass < 2; ++pass) {
            for (std::uint32_t w = 0; w < ref_.size(); ++w) {
                if (!ref_[w])
                    return w;
            }
            for (std::uint32_t w = 0; w < ref_.size(); ++w)
                ref_[w] = false;
        }
        return 0;  // unreachable
    }

  private:
    std::vector<bool> ref_;
};

/** Classic binary-tree pseudo-LRU. @pre ways is a power of two. */
class TreePlruPolicy : public SetPolicy
{
  public:
    explicit TreePlruPolicy(std::uint32_t ways)
        : ways_(ways), bits_(ways > 1 ? ways - 1 : 1, false)
    {
        assert((ways & (ways - 1)) == 0 && "tree PLRU needs 2^k ways");
    }

    void on_access(std::uint32_t way) override { touch(way); }
    void on_fill(std::uint32_t way) override { touch(way); }
    void on_invalidate(std::uint32_t) override {}

    std::uint32_t victim() override
    {
        std::uint32_t node = 0;
        std::uint32_t low = 0;
        std::uint32_t range = ways_;
        while (range > 1) {
            const bool go_right = bits_[node];
            range /= 2;
            if (go_right) {
                low += range;
                node = 2 * node + 2;
            } else {
                node = 2 * node + 1;
            }
        }
        return low;
    }

  private:
    void
    touch(std::uint32_t way)
    {
        // Flip each node on the path to point away from this way.
        std::uint32_t node = 0;
        std::uint32_t low = 0;
        std::uint32_t range = ways_;
        while (range > 1) {
            range /= 2;
            const bool in_right = way >= low + range;
            bits_[node] = !in_right;  // point away from the accessed half
            if (in_right) {
                low += range;
                node = 2 * node + 2;
            } else {
                node = 2 * node + 1;
            }
        }
    }

    std::uint32_t ways_;
    std::vector<bool> bits_;
};

/** SRRIP with 2-bit re-reference prediction values (Jaleel et al.). */
class SrripPolicy : public SetPolicy
{
  public:
    static constexpr std::uint8_t kMaxRrpv = 3;

    explicit SrripPolicy(std::uint32_t ways) : rrpv_(ways, kMaxRrpv) {}

    void on_access(std::uint32_t way) override { rrpv_[way] = 0; }
    void on_fill(std::uint32_t way) override { rrpv_[way] = kMaxRrpv - 1; }
    void on_invalidate(std::uint32_t way) override { rrpv_[way] = kMaxRrpv; }

    std::uint32_t victim() override
    {
        while (true) {
            for (std::uint32_t w = 0; w < rrpv_.size(); ++w) {
                if (rrpv_[w] == kMaxRrpv)
                    return w;
            }
            for (auto &v : rrpv_)
                ++v;
        }
    }

  private:
    std::vector<std::uint8_t> rrpv_;
};

/** Uniform-random victim selection. */
class RandomPolicy : public SetPolicy
{
  public:
    RandomPolicy(std::uint32_t ways, Rng *rng) : ways_(ways), rng_(rng)
    {
        assert(rng != nullptr && "random policy needs an Rng");
    }

    void on_access(std::uint32_t) override {}
    void on_fill(std::uint32_t) override {}
    void on_invalidate(std::uint32_t) override {}

    std::uint32_t victim() override
    {
        return static_cast<std::uint32_t>(rng_->next_below(ways_));
    }

  private:
    std::uint32_t ways_;
    Rng *rng_;
};

}  // namespace

std::unique_ptr<SetPolicy>
make_set_policy(ReplPolicy policy, std::uint32_t ways, Rng *rng)
{
    switch (policy) {
      case ReplPolicy::kLru:
        return std::make_unique<LruPolicy>(ways);
      case ReplPolicy::kBitPlru:
        return std::make_unique<BitPlruPolicy>(ways);
      case ReplPolicy::kNru:
        return std::make_unique<NruPolicy>(ways);
      case ReplPolicy::kTreePlru:
        return std::make_unique<TreePlruPolicy>(ways);
      case ReplPolicy::kSrrip:
        return std::make_unique<SrripPolicy>(ways);
      case ReplPolicy::kRandom:
        return std::make_unique<RandomPolicy>(ways, rng);
    }
    return nullptr;
}

}  // namespace anvil::cache
