/**
 * @file
 * Flat replacement engines: the per-access hot-path implementation of the
 * six replacement policies.
 *
 * The reference implementation (`SetPolicy` in replacement.hh) allocates
 * one heap object per cache set and dispatches every touch through a
 * vtable — a pointer chase plus an indirect call per access per level.
 * Each engine here instead keeps the state of *all* sets of a cache in a
 * single contiguous POD array (one machine word or a few bytes per set),
 * dispatched once per cache through a `std::variant`. Victim/eviction
 * sequences are bit-exact with the reference policies — enforced by the
 * golden-trace equivalence tests — and `kRandom` draws from the shared
 * Rng in exactly the same call order.
 */
#ifndef ANVIL_CACHE_FLAT_REPLACEMENT_HH
#define ANVIL_CACHE_FLAT_REPLACEMENT_HH

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <variant>
#include <vector>

#include "cache/replacement.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace anvil::cache {

/**
 * True LRU. Per set: a recency stack of way indices, position 0 = MRU,
 * matching LruPolicy's vector layout exactly.
 */
class LruEngine
{
  public:
    LruEngine(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), stack_(static_cast<std::size_t>(sets) * ways)
    {
        assert(ways <= 255 && "way index must fit a byte");
        for (std::uint32_t s = 0; s < sets; ++s) {
            for (std::uint32_t w = 0; w < ways; ++w)
                stack_[static_cast<std::size_t>(s) * ways + w] =
                    static_cast<std::uint8_t>(w);
        }
    }

    void on_access(std::uint32_t set, std::uint32_t way) { touch(set, way); }
    void on_fill(std::uint32_t set, std::uint32_t way) { touch(set, way); }

    void
    on_invalidate(std::uint32_t set, std::uint32_t way)
    {
        // Move to the LRU position so the way is reused first.
        std::uint8_t *s = &stack_[static_cast<std::size_t>(set) * ways_];
        const std::uint32_t pos = find(s, way);
        std::memmove(s + pos, s + pos + 1, ways_ - pos - 1);
        s[ways_ - 1] = static_cast<std::uint8_t>(way);
    }

    std::uint32_t
    victim(std::uint32_t set)
    {
        return stack_[static_cast<std::size_t>(set) * ways_ + ways_ - 1];
    }

    /** victim() + on_fill() in one pass: the victim's stack position is
     * known to be the back, so the fill skips the find() scan. */
    std::uint32_t
    victim_and_fill(std::uint32_t set)
    {
        std::uint8_t *s = &stack_[static_cast<std::size_t>(set) * ways_];
        const std::uint8_t w = s[ways_ - 1];
        std::memmove(s + 1, s, ways_ - 1);
        s[0] = w;
        return w;
    }

  private:
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        std::uint8_t *s = &stack_[static_cast<std::size_t>(set) * ways_];
        const std::uint32_t pos = find(s, way);
        std::memmove(s + 1, s, pos);
        s[0] = static_cast<std::uint8_t>(way);
    }

    std::uint32_t
    find(const std::uint8_t *s, std::uint32_t way) const
    {
        for (std::uint32_t i = 0; i < ways_; ++i) {
            if (s[i] == way)
                return i;
        }
        assert(false && "way not in recency stack");
        return 0;
    }

    std::uint32_t ways_;
    std::vector<std::uint8_t> stack_;
};

/**
 * Bit-PLRU (paper Section 2.2). Per set: one MRU bitmask word.
 */
class BitPlruEngine
{
  public:
    BitPlruEngine(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), full_(low_mask(ways)), mru_(sets, 0)
    {
        assert(ways <= 64 && "MRU bitmask is one 64-bit word");
    }

    void on_access(std::uint32_t set, std::uint32_t way) { set_mru(set, way); }
    void on_fill(std::uint32_t set, std::uint32_t way) { set_mru(set, way); }

    void
    on_invalidate(std::uint32_t set, std::uint32_t way)
    {
        mru_[set] &= ~(1ULL << way);
    }

    std::uint32_t
    victim(std::uint32_t set)
    {
        // Lowest index whose MRU bit is clear; defensive 0 if none (the
        // reference's unreachable fallback).
        const auto w =
            static_cast<std::uint32_t>(std::countr_one(mru_[set]));
        return w < ways_ ? w : 0;
    }

    /** victim() + on_fill() on one load/store of the MRU word. */
    std::uint32_t
    victim_and_fill(std::uint32_t set)
    {
        const std::uint64_t m = mru_[set];
        auto w = static_cast<std::uint32_t>(std::countr_one(m));
        if (w >= ways_)
            w = 0;
        const std::uint64_t nm = m | (1ULL << w);
        mru_[set] = nm == full_ ? (1ULL << w) : nm;
        return w;
    }

  private:
    void
    set_mru(std::uint32_t set, std::uint32_t way)
    {
        std::uint64_t m = mru_[set] | (1ULL << way);
        // When the last MRU bit is set, clear all the others.
        mru_[set] = m == full_ ? (1ULL << way) : m;
    }

    std::uint32_t ways_;
    std::uint64_t full_;
    std::vector<std::uint64_t> mru_;
};

/**
 * NRU: reference bits cleared lazily at victim selection.
 */
class NruEngine
{
  public:
    NruEngine(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), ref_(sets, 0)
    {
        assert(ways <= 64 && "reference bitmask is one 64-bit word");
    }

    void
    on_access(std::uint32_t set, std::uint32_t way)
    {
        ref_[set] |= 1ULL << way;
    }

    void
    on_fill(std::uint32_t set, std::uint32_t way)
    {
        ref_[set] |= 1ULL << way;
    }

    void
    on_invalidate(std::uint32_t set, std::uint32_t way)
    {
        ref_[set] &= ~(1ULL << way);
    }

    std::uint32_t
    victim(std::uint32_t set)
    {
        const auto w =
            static_cast<std::uint32_t>(std::countr_one(ref_[set]));
        if (w < ways_)
            return w;
        // All referenced: clear every bit and take way 0, exactly like the
        // reference's second pass.
        ref_[set] = 0;
        return 0;
    }

    /** victim() + on_fill() without reloading the reference word. */
    std::uint32_t
    victim_and_fill(std::uint32_t set)
    {
        const std::uint64_t r = ref_[set];
        auto w = static_cast<std::uint32_t>(std::countr_one(r));
        if (w < ways_) {
            ref_[set] = r | (1ULL << w);
            return w;
        }
        ref_[set] = 1;  // cleared, then way 0 filled
        return 0;
    }

  private:
    std::uint32_t ways_;
    std::vector<std::uint64_t> ref_;
};

/**
 * Binary-tree pseudo-LRU. Per set: the ways-1 tree bits in one word,
 * bit n = node n in the reference's array layout. @pre ways is 2^k.
 */
class TreePlruEngine
{
  public:
    TreePlruEngine(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways), bits_(sets, 0)
    {
        assert(is_pow2(ways) && "tree PLRU needs 2^k ways");
        assert(ways <= 64 && "tree bits fit one 64-bit word");
        // The path walked by touch() depends only on the way index, so the
        // node bits it sets and clears can be tabulated once per way; each
        // touch then collapses to two bitwise operations. Every node on
        // the path appears in exactly one of the two masks, so applying
        // them in either order matches the original walk.
        for (std::uint32_t w = 0; w < ways; ++w) {
            std::uint64_t set_mask = 0;
            std::uint64_t clear_mask = 0;
            std::uint32_t node = 0;
            std::uint32_t low = 0;
            std::uint32_t range = ways;
            while (range > 1) {
                range /= 2;
                if (w >= low + range) {
                    clear_mask |= std::uint64_t{1} << node;
                    low += range;
                    node = 2 * node + 2;
                } else {
                    set_mask |= std::uint64_t{1} << node;
                    node = 2 * node + 1;
                }
            }
            touch_set_[w] = set_mask;
            touch_clear_[w] = clear_mask;
        }
    }

    void on_access(std::uint32_t set, std::uint32_t way) { touch(set, way); }
    void on_fill(std::uint32_t set, std::uint32_t way) { touch(set, way); }
    void on_invalidate(std::uint32_t, std::uint32_t) {}

    std::uint32_t
    victim(std::uint32_t set)
    {
        const std::uint64_t bits = bits_[set];
        std::uint32_t node = 0;
        std::uint32_t low = 0;
        std::uint32_t range = ways_;
        while (range > 1) {
            const bool go_right = (bits >> node) & 1;
            range /= 2;
            if (go_right) {
                low += range;
                node = 2 * node + 2;
            } else {
                node = 2 * node + 1;
            }
        }
        return low;
    }

    /**
     * victim() + on_fill() in a single traversal: the fill's touch walks
     * exactly the nodes the victim search followed, so each visited bit
     * can be flipped away from the chosen leaf on the way down.
     */
    std::uint32_t
    victim_and_fill(std::uint32_t set)
    {
        std::uint64_t bits = bits_[set];
        std::uint32_t node = 0;
        std::uint32_t low = 0;
        std::uint32_t range = ways_;
        while (range > 1) {
            const bool go_right = (bits >> node) & 1;
            range /= 2;
            if (go_right) {
                bits &= ~(1ULL << node);
                low += range;
                node = 2 * node + 2;
            } else {
                bits |= 1ULL << node;
                node = 2 * node + 1;
            }
        }
        bits_[set] = bits;
        return low;
    }

  private:
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        // Flip each node on the path to point away from this way.
        bits_[set] = (bits_[set] | touch_set_[way]) & ~touch_clear_[way];
    }

    std::uint32_t ways_;
    std::vector<std::uint64_t> bits_;
    std::array<std::uint64_t, 64> touch_set_{};
    std::array<std::uint64_t, 64> touch_clear_{};
};

/**
 * SRRIP with 2-bit RRPVs, one byte per way in a contiguous array.
 */
class SrripEngine
{
  public:
    static constexpr std::uint8_t kMaxRrpv = 3;

    SrripEngine(std::uint32_t sets, std::uint32_t ways)
        : ways_(ways),
          rrpv_(static_cast<std::size_t>(sets) * ways, kMaxRrpv)
    {
    }

    void
    on_access(std::uint32_t set, std::uint32_t way)
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
    }

    void
    on_fill(std::uint32_t set, std::uint32_t way)
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = kMaxRrpv - 1;
    }

    void
    on_invalidate(std::uint32_t set, std::uint32_t way)
    {
        rrpv_[static_cast<std::size_t>(set) * ways_ + way] = kMaxRrpv;
    }

    std::uint32_t
    victim(std::uint32_t set)
    {
        std::uint8_t *r = &rrpv_[static_cast<std::size_t>(set) * ways_];
        while (true) {
            for (std::uint32_t w = 0; w < ways_; ++w) {
                if (r[w] == kMaxRrpv)
                    return w;
            }
            for (std::uint32_t w = 0; w < ways_; ++w)
                ++r[w];
        }
    }

    std::uint32_t
    victim_and_fill(std::uint32_t set)
    {
        const std::uint32_t w = victim(set);
        on_fill(set, w);
        return w;
    }

  private:
    std::uint32_t ways_;
    std::vector<std::uint8_t> rrpv_;
};

/** Uniform-random victim; draws from the shared Rng exactly like the
 * reference, preserving the global RNG call order. */
class RandomEngine
{
  public:
    RandomEngine(std::uint32_t ways, Rng *rng) : ways_(ways), rng_(rng)
    {
        assert(rng != nullptr && "random policy needs an Rng");
    }

    void on_access(std::uint32_t, std::uint32_t) {}
    void on_fill(std::uint32_t, std::uint32_t) {}
    void on_invalidate(std::uint32_t, std::uint32_t) {}

    std::uint32_t
    victim(std::uint32_t)
    {
        return static_cast<std::uint32_t>(rng_->next_below(ways_));
    }

    std::uint32_t
    victim_and_fill(std::uint32_t set)
    {
        return victim(set);  // on_fill is a no-op
    }

  private:
    std::uint32_t ways_;
    Rng *rng_;
};

/**
 * Policy-dispatching wrapper owning one flat engine for a whole cache.
 *
 * Dispatch is a branch on the policy tag — resolved identically on every
 * access of a given cache, so it predicts perfectly — instead of a
 * per-set vtable load.
 */
class ReplacementEngine
{
  public:
    ReplacementEngine(ReplPolicy policy, std::uint32_t sets,
                      std::uint32_t ways, Rng *rng)
        : policy_(policy), impl_(make(policy, sets, ways, rng))
    {
    }

    void
    on_access(std::uint32_t set, std::uint32_t way)
    {
        dispatch([&](auto &e) { e.on_access(set, way); });
    }

    void
    on_fill(std::uint32_t set, std::uint32_t way)
    {
        dispatch([&](auto &e) { e.on_fill(set, way); });
    }

    void
    on_invalidate(std::uint32_t set, std::uint32_t way)
    {
        dispatch([&](auto &e) { e.on_invalidate(set, way); });
    }

    std::uint32_t
    victim(std::uint32_t set)
    {
        std::uint32_t v = 0;
        dispatch([&](auto &e) { v = e.victim(set); });
        return v;
    }

    /**
     * Equivalent to victim(set) followed by on_fill(set, victim), fused
     * so each engine touches its per-set state once.
     */
    std::uint32_t
    victim_and_fill(std::uint32_t set)
    {
        std::uint32_t v = 0;
        dispatch([&](auto &e) { v = e.victim_and_fill(set); });
        return v;
    }

    ReplPolicy policy() const { return policy_; }

  private:
    using Variant = std::variant<LruEngine, BitPlruEngine, NruEngine,
                                 TreePlruEngine, SrripEngine, RandomEngine>;

    static Variant make(ReplPolicy policy, std::uint32_t sets,
                        std::uint32_t ways, Rng *rng);

    /** Switch on the policy tag; avoids std::visit's dispatch table. */
    template <typename Fn>
    void
    dispatch(Fn &&fn)
    {
        switch (policy_) {
          case ReplPolicy::kLru:
            fn(*std::get_if<LruEngine>(&impl_));
            break;
          case ReplPolicy::kBitPlru:
            fn(*std::get_if<BitPlruEngine>(&impl_));
            break;
          case ReplPolicy::kNru:
            fn(*std::get_if<NruEngine>(&impl_));
            break;
          case ReplPolicy::kTreePlru:
            fn(*std::get_if<TreePlruEngine>(&impl_));
            break;
          case ReplPolicy::kSrrip:
            fn(*std::get_if<SrripEngine>(&impl_));
            break;
          case ReplPolicy::kRandom:
            fn(*std::get_if<RandomEngine>(&impl_));
            break;
        }
    }

    ReplPolicy policy_;
    Variant impl_;
};

}  // namespace anvil::cache

#endif  // ANVIL_CACHE_FLAT_REPLACEMENT_HH
