/**
 * @file
 * Three-level cache hierarchy modelled on the paper's evaluation platform
 * (Intel i5-2540M, Sandy Bridge): private L1/L2 and a shared, inclusive,
 * physically indexed, sliced last-level cache with 12 ways.
 *
 * "On our Intel Sandy Bridge machine, bits 6 to 16 of the physical
 * addresses are used to map to last-level cache sets. Furthermore, the
 * last-level cache is organized into slices, with one slice per processor
 * core." (Section 2.2). With 2 slices of 2048 sets each, the per-slice set
 * index is bits 6..16 and the slice is selected by a hash of the upper
 * address bits.
 */
#ifndef ANVIL_CACHE_HIERARCHY_HH
#define ANVIL_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/types.hh"

namespace anvil::cache {

/** Configuration of the full hierarchy. */
struct HierarchyConfig {
    // L1D: 32 KB, 8-way.
    std::uint32_t l1_sets = 64;
    std::uint32_t l1_ways = 8;
    Cycles l1_latency = 4;
    ReplPolicy l1_policy = ReplPolicy::kTreePlru;

    // L2: 256 KB, 8-way.
    std::uint32_t l2_sets = 512;
    std::uint32_t l2_ways = 8;
    Cycles l2_latency = 12;
    ReplPolicy l2_policy = ReplPolicy::kTreePlru;

    // LLC: 3 MB total = 2 slices x 2048 sets x 12 ways x 64 B.
    std::uint32_t llc_slices = 2;
    std::uint32_t llc_sets_per_slice = 2048;
    std::uint32_t llc_ways = 12;
    /// "Access to the last-level cache on Sandy Bridge takes 26 to 31
    /// cycles" — the paper's cost model uses 29.
    Cycles llc_latency = 29;
    ReplPolicy llc_policy = ReplPolicy::kBitPlru;
    bool llc_inclusive = true;

    std::uint64_t rng_seed = 0xCACE5EEDULL;

    std::uint64_t
    llc_size_bytes() const
    {
        return static_cast<std::uint64_t>(llc_slices) * llc_sets_per_slice *
               llc_ways * kLineBytes;
    }
};

/**
 * The hierarchy. Timing is expressed in core cycles up to and including the
 * LLC lookup; a miss reports DataSource::kDram and the memory system adds
 * the DRAM latency on top.
 */
class CacheHierarchy
{
  public:
    /** Outcome of a hierarchy lookup (fills already performed). */
    struct Result {
        DataSource source = DataSource::kL1;
        Cycles latency = 0;  ///< on-chip portion only
        bool llc_miss = false;
    };

    explicit CacheHierarchy(const HierarchyConfig &config);

    /** Performs one load/store, handling all fills and inclusions. */
    Result access(Addr pa, AccessType type);

    /**
     * CLFLUSH: evicts the line containing @p pa from every level.
     * @return number of levels the line was found in.
     */
    int clflush(Addr pa);

    /** True if the line is present at any level (for tests). */
    bool present_anywhere(Addr pa) const;

    /** LLC slice index the address maps to. */
    std::uint32_t llc_slice(Addr pa) const;

    /** Set index within its LLC slice. */
    std::uint32_t llc_set(Addr pa) const;

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc(std::uint32_t slice) const { return llc_[slice]; }
    const HierarchyConfig &config() const { return config_; }

    /** Aggregate LLC stats across slices. */
    CacheStats llc_stats() const;

    void reset_stats();

  private:
    void install_llc(Addr pa, Cache &slice);

    HierarchyConfig config_;
    Rng rng_;
    Cache l1_;
    Cache l2_;
    std::vector<Cache> llc_;
};

}  // namespace anvil::cache

#endif  // ANVIL_CACHE_HIERARCHY_HH
