#include "cache/flat_replacement.hh"

namespace anvil::cache {

ReplacementEngine::Variant
ReplacementEngine::make(ReplPolicy policy, std::uint32_t sets,
                        std::uint32_t ways, Rng *rng)
{
    switch (policy) {
      case ReplPolicy::kLru:
        return Variant{std::in_place_type<LruEngine>, sets, ways};
      case ReplPolicy::kBitPlru:
        return Variant{std::in_place_type<BitPlruEngine>, sets, ways};
      case ReplPolicy::kNru:
        return Variant{std::in_place_type<NruEngine>, sets, ways};
      case ReplPolicy::kTreePlru:
        return Variant{std::in_place_type<TreePlruEngine>, sets, ways};
      case ReplPolicy::kSrrip:
        return Variant{std::in_place_type<SrripEngine>, sets, ways};
      case ReplPolicy::kRandom:
        return Variant{std::in_place_type<RandomEngine>, ways, rng};
    }
    return Variant{std::in_place_type<LruEngine>, sets, ways};
}

}  // namespace anvil::cache
