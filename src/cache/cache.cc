#include "cache/cache.hh"

#include <bit>
#include <cassert>

#include "common/bits.hh"

namespace anvil::cache {

Cache::Cache(std::string name, std::uint32_t sets, std::uint32_t ways,
             ReplPolicy policy, Rng *rng)
    : name_(std::move(name)),
      sets_(sets),
      ways_(ways),
      full_mask_(low_mask(ways)),
      repl_(policy, sets, ways, rng)
{
    assert(is_pow2(sets) && "sets must be 2^k");
    assert(ways > 0 && ways <= 64);
    tags_.resize(static_cast<std::size_t>(sets_) * ways_, 0);
    valid_bits_.resize(sets_, 0);
}

std::uint32_t
Cache::set_index(Addr pa) const
{
    return static_cast<std::uint32_t>((pa >> kLineShift) & (sets_ - 1));
}

std::optional<std::uint32_t>
Cache::find(std::uint32_t set, Addr line) const
{
    const Addr *tags = &tags_[static_cast<std::size_t>(set) * ways_];
    std::uint64_t m = valid_bits_[set];
    if (m == full_mask_) {
        // Full set (the steady state): a plain counted scan over the
        // packed tags, with no validity filtering in the loop.
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (tags[w] == line)
                return w;
        }
        return std::nullopt;
    }
    while (m != 0) {
        const auto w = static_cast<std::uint32_t>(std::countr_zero(m));
        if (tags[w] == line)
            return w;
        m &= m - 1;
    }
    return std::nullopt;
}

bool
Cache::access(Addr pa)
{
    const Addr line = line_of(pa);
    const std::uint32_t set = set_index(pa);
    ++stats_.accesses;
    if (auto way = find(set, line)) {
        ++stats_.hits;
        repl_.on_access(set, *way);
        return true;
    }
    ++stats_.misses;
    return false;
}

bool
Cache::contains(Addr pa) const
{
    return find(set_index(pa), line_of(pa)).has_value();
}

std::optional<Addr>
Cache::fill(Addr pa)
{
    const Addr line = line_of(pa);
    const std::uint32_t set = set_index(pa);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    assert(!find(set, line) && "fill of already-present line");

    ++stats_.fills;

    // Prefer an invalid way (lowest index first, like a scan would).
    const std::uint64_t valid = valid_bits_[set];
    if (valid != full_mask_) {
        const auto w = static_cast<std::uint32_t>(std::countr_one(valid));
        tags_[base + w] = line;
        valid_bits_[set] = valid | (std::uint64_t{1} << w);
        repl_.on_fill(set, w);
        return std::nullopt;
    }

    const std::uint32_t w = repl_.victim_and_fill(set);
    assert(w < ways_);
    const Addr evicted = tags_[base + w];
    tags_[base + w] = line;
    ++stats_.evictions;
    return evicted;
}

bool
Cache::invalidate(Addr pa)
{
    const Addr line = line_of(pa);
    const std::uint32_t set = set_index(pa);
    if (auto w = find(set, line)) {
        valid_bits_[set] &= ~(std::uint64_t{1} << *w);
        repl_.on_invalidate(set, *w);
        ++stats_.invalidations;
        return true;
    }
    return false;
}

std::vector<Addr>
Cache::lines_in_set(std::uint32_t set) const
{
    std::vector<Addr> lines;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint64_t m = valid_bits_[set];
    while (m != 0) {
        const auto w = static_cast<std::uint32_t>(std::countr_zero(m));
        lines.push_back(tags_[base + w]);
        m &= m - 1;
    }
    return lines;
}

}  // namespace anvil::cache
