#include "cache/cache.hh"

#include <cassert>

namespace anvil::cache {

Cache::Cache(std::string name, std::uint32_t sets, std::uint32_t ways,
             ReplPolicy policy, Rng *rng)
    : name_(std::move(name)), sets_(sets), ways_(ways)
{
    assert(sets > 0 && (sets & (sets - 1)) == 0 && "sets must be 2^k");
    assert(ways > 0);
    ways_store_.resize(static_cast<std::size_t>(sets_) * ways_);
    policies_.reserve(sets_);
    for (std::uint32_t s = 0; s < sets_; ++s)
        policies_.push_back(make_set_policy(policy, ways_, rng));
}

std::uint32_t
Cache::set_index(Addr pa) const
{
    return static_cast<std::uint32_t>((pa >> kLineShift) & (sets_ - 1));
}

std::optional<std::uint32_t>
Cache::find(std::uint32_t set, Addr line) const
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Way &way = ways_store_[base + w];
        if (way.valid && way.line == line)
            return w;
    }
    return std::nullopt;
}

bool
Cache::access(Addr pa)
{
    const Addr line = line_of(pa);
    const std::uint32_t set = set_index(pa);
    ++stats_.accesses;
    if (auto way = find(set, line)) {
        ++stats_.hits;
        policies_[set]->on_access(*way);
        return true;
    }
    ++stats_.misses;
    return false;
}

bool
Cache::contains(Addr pa) const
{
    return find(set_index(pa), line_of(pa)).has_value();
}

std::optional<Addr>
Cache::fill(Addr pa)
{
    const Addr line = line_of(pa);
    const std::uint32_t set = set_index(pa);
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    assert(!find(set, line) && "fill of already-present line");

    ++stats_.fills;

    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = ways_store_[base + w];
        if (!way.valid) {
            way.valid = true;
            way.line = line;
            policies_[set]->on_fill(w);
            return std::nullopt;
        }
    }

    const std::uint32_t w = policies_[set]->victim();
    assert(w < ways_);
    Way &way = ways_store_[base + w];
    const Addr evicted = way.line;
    way.line = line;
    policies_[set]->on_fill(w);
    ++stats_.evictions;
    return evicted;
}

bool
Cache::invalidate(Addr pa)
{
    const Addr line = line_of(pa);
    const std::uint32_t set = set_index(pa);
    if (auto w = find(set, line)) {
        ways_store_[static_cast<std::size_t>(set) * ways_ + *w].valid =
            false;
        policies_[set]->on_invalidate(*w);
        ++stats_.invalidations;
        return true;
    }
    return false;
}

std::vector<Addr>
Cache::lines_in_set(std::uint32_t set) const
{
    std::vector<Addr> lines;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Way &way = ways_store_[base + w];
        if (way.valid)
            lines.push_back(way.line);
    }
    return lines;
}

}  // namespace anvil::cache
