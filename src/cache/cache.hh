/**
 * @file
 * A single set-associative cache level (tag store only — the simulator
 * models placement/replacement behaviour and timing, not data contents).
 */
#ifndef ANVIL_CACHE_CACHE_HH
#define ANVIL_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/flat_replacement.hh"
#include "cache/replacement.hh"
#include "common/types.hh"

namespace anvil::cache {

inline constexpr std::uint32_t kLineBytes = 64;
inline constexpr std::uint32_t kLineShift = 6;

/** Truncates an address to its cache-line base address. */
constexpr Addr
line_of(Addr pa)
{
    return pa & ~static_cast<Addr>(kLineBytes - 1);
}

/** Per-cache hit/miss/eviction counters. */
struct CacheStats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;

    void
    reset()
    {
        *this = CacheStats();
    }
};

/**
 * Tag store of one cache (or one LLC slice).
 *
 * Lookup and fill are split so a hierarchy can implement inclusive /
 * exclusive policies: access() probes (and updates replacement state on a
 * hit); fill() installs a line, returning any line evicted to make room.
 */
class Cache
{
  public:
    /**
     * @param name        for stats / debugging ("L1", "LLC.slice0", ...)
     * @param sets        number of sets (power of two)
     * @param ways        associativity
     * @param policy      replacement policy for every set
     * @param rng         used by the random policy (may be nullptr)
     */
    Cache(std::string name, std::uint32_t sets, std::uint32_t ways,
          ReplPolicy policy, Rng *rng);

    /**
     * Probes for the line containing @p pa; updates replacement state and
     * counters on a hit.
     * @return true on hit.
     */
    bool access(Addr pa);

    /** True if the line containing @p pa is present (no state update). */
    bool contains(Addr pa) const;

    /**
     * Installs the line containing @p pa.
     * @return the base address of the line evicted to make room, if any.
     * @pre the line is not already present.
     */
    std::optional<Addr> fill(Addr pa);

    /**
     * Removes the line containing @p pa if present.
     * @return true if a line was invalidated.
     */
    bool invalidate(Addr pa);

    /** Set index the line containing @p pa maps to. */
    std::uint32_t set_index(Addr pa) const;

    /** Lines currently valid in @p set (for tests/telemetry). */
    std::vector<Addr> lines_in_set(std::uint32_t set) const;

    const CacheStats &stats() const { return stats_; }
    void reset_stats() { stats_.reset(); }

    const std::string &name() const { return name_; }
    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }
    std::uint64_t size_bytes() const
    {
        return static_cast<std::uint64_t>(sets_) * ways_ * kLineBytes;
    }

  private:
    /** Finds the way holding @p line in @p set, or nullopt. */
    std::optional<std::uint32_t> find(std::uint32_t set, Addr line) const;

    std::string name_;
    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint64_t full_mask_;  ///< all @c ways_ low bits set
    /// Packed tag store, [set * ways_ + way]; an entry is meaningful only
    /// while its bit in valid_bits_ is set. Tags-only layout keeps a whole
    /// set's tags in one or two cache lines for the probe scan.
    std::vector<Addr> tags_;
    /// Per-set bitmask of valid ways: probes iterate its set bits,
    /// fill() finds the first free way with one bit operation.
    std::vector<std::uint64_t> valid_bits_;
    ReplacementEngine repl_;   ///< flat per-set replacement state
    CacheStats stats_;
};

}  // namespace anvil::cache

#endif  // ANVIL_CACHE_CACHE_HH
