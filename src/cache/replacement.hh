/**
 * @file
 * Cache replacement policies.
 *
 * The CLFLUSH-free rowhammer attack (paper Section 2.2) works by driving
 * the aggressor address to the least-recently-used position of the LLC's
 * replacement state. The paper reverse-engineered Sandy Bridge's policy as
 * Bit-PLRU ("similar to Not Recently Used"); we implement that policy
 * exactly as described, plus true LRU, NRU, Tree-PLRU, SRRIP, and Random
 * for comparison and ablation.
 *
 * These per-set virtual-dispatch policies are the REFERENCE
 * implementation, kept for golden-equivalence testing; the hot path uses
 * the flat engines in flat_replacement.hh, which must reproduce these
 * victim/eviction sequences bit-exactly.
 */
#ifndef ANVIL_CACHE_REPLACEMENT_HH
#define ANVIL_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace anvil::cache {

/** Replacement policy selector. */
enum class ReplPolicy {
    kLru,      ///< true least-recently-used
    kBitPlru,  ///< MRU-bit pseudo-LRU (Sandy Bridge LLC, per the paper)
    kNru,      ///< not-recently-used
    kTreePlru, ///< binary-tree pseudo-LRU
    kSrrip,    ///< static re-reference interval prediction (2-bit)
    kRandom,   ///< uniform random victim
};

/** Parses "lru" / "bitplru" / ... (case-sensitive). */
ReplPolicy parse_policy(const std::string &name);

/** Name of a policy value. */
const char *to_string(ReplPolicy policy);

/**
 * Replacement state for one cache set.
 *
 * The owning cache guarantees that victim() is only called when every way
 * is valid (invalid ways are filled first).
 */
class SetPolicy
{
  public:
    virtual ~SetPolicy() = default;

    /** A hit touched @p way. */
    virtual void on_access(std::uint32_t way) = 0;

    /** A new line was installed in @p way. */
    virtual void on_fill(std::uint32_t way) = 0;

    /** The line in @p way was invalidated. */
    virtual void on_invalidate(std::uint32_t way) = 0;

    /** Chooses the way to evict. */
    virtual std::uint32_t victim() = 0;
};

/**
 * Creates per-set policy state.
 * @param rng used only by kRandom; may be nullptr for other policies.
 */
std::unique_ptr<SetPolicy> make_set_policy(ReplPolicy policy,
                                           std::uint32_t ways, Rng *rng);

}  // namespace anvil::cache

#endif  // ANVIL_CACHE_REPLACEMENT_HH
