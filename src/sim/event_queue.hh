/**
 * @file
 * Discrete-event queue and simulated clock.
 *
 * The simulator is driver-paced: workloads and attacks issue memory
 * accesses, each of which elapses simulated time; any events (DRAM refresh
 * bookkeeping, ANVIL window timers, PMU sample flushes) whose deadline was
 * crossed fire in timestamp order before the access result is returned.
 */
#ifndef ANVIL_SIM_EVENT_QUEUE_HH
#define ANVIL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>

#include "common/types.hh"

namespace anvil::sim {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Simulated clock plus a queue of one-shot callbacks ordered by deadline.
 *
 * Ties are broken by scheduling order (FIFO among equal deadlines), which
 * keeps runs deterministic.
 */
class EventQueue
{
  public:
    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedules @p fn to run at absolute time @p when.
     * @pre when >= now()
     * @return a handle usable with cancel().
     */
    EventId schedule_at(Tick when, std::function<void()> fn);

    /** Schedules @p fn to run @p delay ticks from now. */
    EventId schedule_in(Tick delay, std::function<void()> fn);

    /**
     * Cancels a pending event.
     * @return true if the event was pending and is now removed.
     */
    bool cancel(EventId id);

    /**
     * Advances the clock to @p t, firing every event with deadline <= t in
     * order. Handlers observe now() == their deadline and may schedule
     * further events (which also fire if due before @p t).
     */
    void advance_to(Tick t);

    /** Advances the clock by @p dt ticks (see advance_to). */
    void elapse(Tick dt) { advance_to(now_ + dt); }

    /** Number of events still pending. */
    std::size_t pending() const { return events_.size(); }

    /** Deadline of the earliest pending event, or max Tick if none. */
    Tick next_deadline() const;

  private:
    struct Key {
        Tick when;
        EventId id;
        bool operator<(const Key &o) const
        {
            return when != o.when ? when < o.when : id < o.id;
        }
    };

    Tick now_ = 0;
    EventId next_id_ = 1;
    std::map<Key, std::function<void()>> events_;
};

/**
 * Repeating timer built on an EventQueue.
 *
 * Used for ANVIL's tc/ts windows: the callback runs every @p period ticks
 * until stop() is called. The callback may call stop() or reschedule().
 */
class PeriodicTimer
{
  public:
    PeriodicTimer(EventQueue &queue, Tick period, std::function<void()> fn);
    ~PeriodicTimer();

    PeriodicTimer(const PeriodicTimer &) = delete;
    PeriodicTimer &operator=(const PeriodicTimer &) = delete;

    /** Starts (or restarts) the timer; first fire is one period from now. */
    void start();

    /** Stops the timer; no further fires. */
    void stop();

    /** Changes the period; takes effect at the next (re)arm. */
    void set_period(Tick period) { period_ = period; }

    Tick period() const { return period_; }
    bool running() const { return running_; }

  private:
    void arm();

    EventQueue &queue_;
    Tick period_;
    std::function<void()> fn_;
    EventId pending_ = 0;
    bool running_ = false;
};

}  // namespace anvil::sim

#endif  // ANVIL_SIM_EVENT_QUEUE_HH
