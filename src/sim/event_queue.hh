/**
 * @file
 * Discrete-event queue and simulated clock.
 *
 * The simulator is driver-paced: workloads and attacks issue memory
 * accesses, each of which elapses simulated time; any events (DRAM refresh
 * bookkeeping, ANVIL window timers, PMU sample flushes) whose deadline was
 * crossed fire in timestamp order before the access result is returned.
 */
#ifndef ANVIL_SIM_EVENT_QUEUE_HH
#define ANVIL_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace anvil::sim {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Simulated clock plus a queue of one-shot callbacks ordered by deadline.
 *
 * Ties are broken by scheduling order (FIFO among equal deadlines), which
 * keeps runs deterministic.
 *
 * Implementation: a binary min-heap keyed on (when, id) — ids increase
 * monotonically, so the (when, id) order reproduces the FIFO tie-break
 * exactly. cancel() is O(1): the event's id is simply dropped from the
 * live set and its heap entry becomes a tombstone that is skipped when it
 * surfaces; when tombstones outnumber live events the heap is compacted
 * in one pass (deferred compaction). ANVIL schedules *and* cancels a
 * window event on every stage transition, which made the previous
 * map + linear-scan-cancel implementation a per-transition hot spot.
 */
class EventQueue
{
  public:
    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedules @p fn to run at absolute time @p when.
     * @pre when >= now()
     * @return a handle usable with cancel().
     */
    EventId schedule_at(Tick when, std::function<void()> fn);

    /** Schedules @p fn to run @p delay ticks from now. */
    EventId schedule_in(Tick delay, std::function<void()> fn);

    /**
     * Cancels a pending event.
     * @return true if the event was pending and is now removed.
     */
    bool cancel(EventId id);

    /**
     * Advances the clock to @p t, firing every event with deadline <= t in
     * order. Handlers observe now() == their deadline and may schedule
     * further events (which also fire if due before @p t).
     */
    void
    advance_to(Tick t)
    {
        // Fast path: the heap top is the minimum deadline of all entries
        // (live or tombstone), so if it is beyond @p t nothing can be due
        // and the per-call cost is one comparison — no liveness lookup.
        // This runs on every simulated memory access.
        if (heap_.empty() || heap_.front().when > t) {
            if (t > now_)
                now_ = t;
            return;
        }
        run_due(t);
    }

    /** Advances the clock by @p dt ticks (see advance_to). */
    void elapse(Tick dt) { advance_to(now_ + dt); }

    /** Number of events still pending. */
    std::size_t pending() const { return live_.size(); }

    /** Deadline of the earliest pending event, or max Tick if none. */
    Tick next_deadline() const;

    /** Heap entries occupied by cancelled events (for tests). */
    std::size_t tombstones() const { return heap_.size() - live_.size(); }

  private:
    struct Entry {
        Tick when;
        EventId id;
        std::function<void()> fn;
    };

    /** Min-heap "greater" comparator over (when, id). */
    static bool
    later(const Entry &a, const Entry &b)
    {
        return a.when != b.when ? a.when > b.when : a.id > b.id;
    }

    /** Pops tombstones off the heap top until a live event (or empty). */
    void prune_top() const;

    /** Slow path of advance_to: at least one heap entry has deadline <= t. */
    void run_due(Tick t);

    /** One-pass removal of all tombstones once they dominate the heap. */
    void maybe_compact();

    Tick now_ = 0;
    EventId next_id_ = 1;
    mutable std::vector<Entry> heap_;
    std::unordered_set<EventId> live_;  ///< scheduled, not fired/cancelled
};

/**
 * Repeating timer built on an EventQueue.
 *
 * Used for ANVIL's tc/ts windows: the callback runs every @p period ticks
 * until stop() is called. The callback may call stop() or reschedule().
 */
class PeriodicTimer
{
  public:
    PeriodicTimer(EventQueue &queue, Tick period, std::function<void()> fn);
    ~PeriodicTimer();

    PeriodicTimer(const PeriodicTimer &) = delete;
    PeriodicTimer &operator=(const PeriodicTimer &) = delete;

    /** Starts (or restarts) the timer; first fire is one period from now. */
    void start();

    /** Stops the timer; no further fires. */
    void stop();

    /** Changes the period; takes effect at the next (re)arm. */
    void set_period(Tick period) { period_ = period; }

    Tick period() const { return period_; }
    bool running() const { return running_; }

  private:
    void arm();

    EventQueue &queue_;
    Tick period_;
    std::function<void()> fn_;
    EventId pending_ = 0;
    bool running_ = false;
};

}  // namespace anvil::sim

#endif  // ANVIL_SIM_EVENT_QUEUE_HH
