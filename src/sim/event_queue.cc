#include "sim/event_queue.hh"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace anvil::sim {

EventId
EventQueue::schedule_at(Tick when, std::function<void()> fn)
{
    assert(when >= now_ && "cannot schedule events in the past");
    const EventId id = next_id_++;
    heap_.push_back(Entry{when, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), later);
    live_.insert(id);
    return id;
}

EventId
EventQueue::schedule_in(Tick delay, std::function<void()> fn)
{
    return schedule_at(now_ + delay, std::move(fn));
}

bool
EventQueue::cancel(EventId id)
{
    if (live_.erase(id) == 0)
        return false;
    // The heap entry stays behind as a tombstone; it is skipped when it
    // reaches the top, or swept out wholesale by maybe_compact().
    maybe_compact();
    return true;
}

void
EventQueue::prune_top() const
{
    while (!heap_.empty() && !live_.count(heap_.front().id)) {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        heap_.pop_back();
    }
}

void
EventQueue::maybe_compact()
{
    const std::size_t dead = heap_.size() - live_.size();
    if (dead <= 16 || dead * 2 <= heap_.size())
        return;
    std::erase_if(heap_,
                  [&](const Entry &e) { return !live_.count(e.id); });
    std::make_heap(heap_.begin(), heap_.end(), later);
}

Tick
EventQueue::next_deadline() const
{
    prune_top();
    if (heap_.empty())
        return std::numeric_limits<Tick>::max();
    return heap_.front().when;
}

void
EventQueue::run_due(Tick t)
{
    // Handlers may themselves elapse time (e.g. ANVIL charging detector
    // overhead), which re-enters advance_to and can push now_ past t; the
    // max() below keeps the clock monotonic in that case.
    while (!heap_.empty() && heap_.front().when <= t) {
        // Pop the event before running it so the handler can freely
        // schedule/cancel (including re-entering advance_to).
        std::pop_heap(heap_.begin(), heap_.end(), later);
        Entry entry = std::move(heap_.back());
        heap_.pop_back();
        if (live_.erase(entry.id) == 0)
            continue;  // tombstone
        if (entry.when > now_)
            now_ = entry.when;
        entry.fn();
    }
    if (t > now_)
        now_ = t;
}

PeriodicTimer::PeriodicTimer(EventQueue &queue, Tick period,
                             std::function<void()> fn)
    : queue_(queue), period_(period), fn_(std::move(fn))
{
}

PeriodicTimer::~PeriodicTimer()
{
    stop();
}

void
PeriodicTimer::start()
{
    stop();
    running_ = true;
    arm();
}

void
PeriodicTimer::stop()
{
    if (pending_ != 0) {
        queue_.cancel(pending_);
        pending_ = 0;
    }
    running_ = false;
}

void
PeriodicTimer::arm()
{
    pending_ = queue_.schedule_in(period_, [this] {
        pending_ = 0;
        // Re-arm before invoking so the callback can stop() the timer.
        arm();
        fn_();
    });
}

}  // namespace anvil::sim
