#include "sim/event_queue.hh"

#include <cassert>
#include <limits>
#include <utility>

namespace anvil::sim {

EventId
EventQueue::schedule_at(Tick when, std::function<void()> fn)
{
    assert(when >= now_ && "cannot schedule events in the past");
    const EventId id = next_id_++;
    events_.emplace(Key{when, id}, std::move(fn));
    return id;
}

EventId
EventQueue::schedule_in(Tick delay, std::function<void()> fn)
{
    return schedule_at(now_ + delay, std::move(fn));
}

bool
EventQueue::cancel(EventId id)
{
    for (auto it = events_.begin(); it != events_.end(); ++it) {
        if (it->first.id == id) {
            events_.erase(it);
            return true;
        }
    }
    return false;
}

Tick
EventQueue::next_deadline() const
{
    if (events_.empty())
        return std::numeric_limits<Tick>::max();
    return events_.begin()->first.when;
}

void
EventQueue::advance_to(Tick t)
{
    // Handlers may themselves elapse time (e.g. ANVIL charging detector
    // overhead), which re-enters advance_to and can push now_ past t; the
    // max() below keeps the clock monotonic in that case.
    while (!events_.empty()) {
        auto it = events_.begin();
        if (it->first.when > t)
            break;
        // Move the handler out before erasing so it can schedule/cancel.
        std::function<void()> fn = std::move(it->second);
        if (it->first.when > now_)
            now_ = it->first.when;
        events_.erase(it);
        fn();
    }
    if (t > now_)
        now_ = t;
}

PeriodicTimer::PeriodicTimer(EventQueue &queue, Tick period,
                             std::function<void()> fn)
    : queue_(queue), period_(period), fn_(std::move(fn))
{
}

PeriodicTimer::~PeriodicTimer()
{
    stop();
}

void
PeriodicTimer::start()
{
    stop();
    running_ = true;
    arm();
}

void
PeriodicTimer::stop()
{
    if (pending_ != 0) {
        queue_.cancel(pending_);
        pending_ = 0;
    }
    running_ = false;
}

void
PeriodicTimer::arm()
{
    pending_ = queue_.schedule_in(period_, [this] {
        pending_ = 0;
        // Re-arm before invoking so the callback can stop() the timer.
        arm();
        fn_();
    });
}

}  // namespace anvil::sim
