#include "common/stats.hh"

#include <cmath>

namespace anvil {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const double n_total =
        static_cast<double>(count_) + static_cast<double>(other.count_);
    mean_ += delta * static_cast<double>(other.count_) / n_total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / n_total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::min() const
{
    return count_ > 0 ? min_ : 0.0;
}

double
RunningStat::max() const
{
    return count_ > 0 ? max_ : 0.0;
}

double
RunningStat::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
SampleStat::add(double x)
{
    summary_.add(x);
    if (samples_.size() < max_samples_) {
        samples_.push_back(x);
        sorted_ = false;
    }
}

void
SampleStat::reset()
{
    summary_.reset();
    samples_.clear();
    sorted_ = true;
}

double
SampleStat::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank =
        (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace anvil
