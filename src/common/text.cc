#include "common/text.hh"

#include <algorithm>

namespace anvil {

std::size_t
edit_distance(std::string_view a, std::string_view b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

std::optional<std::string>
nearest_name(std::string_view name,
             const std::vector<std::string> &candidates)
{
    const std::string *best = nullptr;
    std::size_t best_distance = 0;
    for (const std::string &candidate : candidates) {
        const std::size_t d = edit_distance(name, candidate);
        if (best == nullptr || d < best_distance) {
            best = &candidate;
            best_distance = d;
        }
    }
    if (best == nullptr)
        return std::nullopt;
    const std::size_t cutoff = std::max<std::size_t>(3, best->size() / 3);
    if (best_distance > cutoff)
        return std::nullopt;
    return *best;
}

}  // namespace anvil
