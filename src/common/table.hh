/**
 * @file
 * ASCII table printer used by the benchmark harnesses to emit rows in the
 * same shape as the paper's tables and figure data series.
 */
#ifndef ANVIL_COMMON_TABLE_HH
#define ANVIL_COMMON_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace anvil {

/** Column-aligned text table with a title, header row, and data rows. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Sets the header row. */
    void set_header(std::vector<std::string> header);

    /** Appends a data row (cells may be fewer than header columns). */
    void add_row(std::vector<std::string> row);

    /** Renders the table. */
    void print(std::ostream &os) const;

    /** Formats a double with @p digits fractional digits. */
    static std::string fmt(double value, int digits = 2);

    /** Formats an integer with thousands separators (e.g. "220,000"). */
    static std::string fmt_count(std::uint64_t value);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace anvil

#endif  // ANVIL_COMMON_TABLE_HH
