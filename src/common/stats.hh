/**
 * @file
 * Lightweight statistics primitives used across the simulator.
 */
#ifndef ANVIL_COMMON_STATS_HH
#define ANVIL_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace anvil {

/** Simple monotonically increasing event counter. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running summary statistics (count / mean / min / max / stddev) computed
 * with Welford's online algorithm, so no samples are stored.
 */
class RunningStat
{
  public:
    void add(double x);
    void reset();

    /**
     * Folds another RunningStat in, as if its samples had been added to
     * this one (parallel Welford combination, Chan et al.). Used to
     * aggregate per-trial statistics across an experiment sweep; the
     * result is independent of how samples were partitioned, up to
     * floating-point rounding, and exactly deterministic for a fixed
     * merge order.
     */
    void merge(const RunningStat &other);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ > 0 ? mean_ : 0.0; }
    double min() const;
    double max() const;
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Sample reservoir that also keeps full summary stats; percentiles are
 * computed over the (bounded) stored sample set.
 */
class SampleStat
{
  public:
    explicit SampleStat(std::size_t max_samples = 1 << 16)
        : max_samples_(max_samples) {}

    void add(double x);
    void reset();

    const RunningStat &summary() const { return summary_; }

    /** p in [0, 100]; linear interpolation between order statistics. */
    double percentile(double p) const;

  private:
    RunningStat summary_;
    std::size_t max_samples_;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** A labelled scalar for report output. */
struct NamedValue {
    std::string name;
    double value;
};

}  // namespace anvil

#endif  // ANVIL_COMMON_STATS_HH
