#include "common/rng.hh"

#include <cmath>

namespace anvil {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double
hash_unit_double(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t h = splitmix64(splitmix64(a) ^ (b * 0x9e3779b97f4a7c15ULL));
    // Take the top 53 bits so the double is uniform in [0, 1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Rng::Rng(std::uint64_t s)
{
    seed(s);
}

void
Rng::seed(std::uint64_t s)
{
    for (auto &word : state_) {
        s = splitmix64(s);
        word = s;
    }
    has_cached_gaussian_ = false;
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next_u64();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::next_double()
{
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::next_gaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = next_double();
    } while (u1 <= 0.0);
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
}

bool
Rng::next_bool(double p)
{
    return next_double() < p;
}

}  // namespace anvil
