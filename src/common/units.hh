/**
 * @file
 * Time and frequency unit helpers.
 *
 * The simulator's base time unit (Tick) is one picosecond, which lets us
 * represent both CPU cycles at GHz-class frequencies and DRAM timing
 * parameters (tREFI = 7.8 us, tRFC = 260 ns, ...) without rounding drift.
 */
#ifndef ANVIL_COMMON_UNITS_HH
#define ANVIL_COMMON_UNITS_HH

#include <cstdint>

#include "common/types.hh"

namespace anvil {

inline constexpr Tick kTicksPerNs = 1000;
inline constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
inline constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
inline constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

constexpr Tick ns(double v) { return static_cast<Tick>(v * kTicksPerNs); }
constexpr Tick us(double v) { return static_cast<Tick>(v * kTicksPerUs); }
constexpr Tick ms(double v) { return static_cast<Tick>(v * kTicksPerMs); }
constexpr Tick seconds(double v) { return static_cast<Tick>(v * kTicksPerSec); }

constexpr double to_ns(Tick t) { return static_cast<double>(t) / kTicksPerNs; }
constexpr double to_us(Tick t) { return static_cast<double>(t) / kTicksPerUs; }
constexpr double to_ms(Tick t) { return static_cast<double>(t) / kTicksPerMs; }
constexpr double to_sec(Tick t) { return static_cast<double>(t) / kTicksPerSec; }

/**
 * Converts between CPU cycles and simulator ticks for a fixed core clock.
 *
 * The evaluation platform in the paper is an Intel i5-2540M at a nominal
 * 2.6 GHz; that is the default frequency used throughout.
 */
class CoreClock
{
  public:
    explicit constexpr CoreClock(double freq_ghz = 2.6)
        : freq_ghz_(freq_ghz) {}

    /** Core frequency in GHz. */
    constexpr double freq_ghz() const { return freq_ghz_; }

    /** Duration of @p cycles cycles, in ticks (picoseconds). */
    constexpr Tick
    cycles_to_ticks(Cycles cycles) const
    {
        return static_cast<Tick>(static_cast<double>(cycles) * 1000.0 /
                                 freq_ghz_);
    }

    /** Number of whole cycles elapsed in @p t ticks. */
    constexpr Cycles
    ticks_to_cycles(Tick t) const
    {
        return static_cast<Cycles>(static_cast<double>(t) * freq_ghz_ /
                                   1000.0);
    }

  private:
    double freq_ghz_;
};

}  // namespace anvil

#endif  // ANVIL_COMMON_UNITS_HH
