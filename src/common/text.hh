/**
 * @file
 * Small text utilities shared by CLI drivers and spec validation:
 * edit distance and nearest-name typo suggestions ("did you mean ...?").
 */
#ifndef ANVIL_COMMON_TEXT_HH
#define ANVIL_COMMON_TEXT_HH

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace anvil {

/** Edit distance between two names (classic dynamic program). */
std::size_t edit_distance(std::string_view a, std::string_view b);

/**
 * The candidate closest to @p name, or nullopt when nothing is near.
 * Only a genuinely near miss is suggested — a typo, a dropped prefix
 * (within max(3, len/3) edits of the best candidate) — never an
 * arbitrary name that merely happens to be least far away.
 */
std::optional<std::string>
nearest_name(std::string_view name,
             const std::vector<std::string> &candidates);

}  // namespace anvil

#endif  // ANVIL_COMMON_TEXT_HH
