/**
 * @file
 * Fundamental types shared by every subsystem of the ANVIL simulator.
 */
#ifndef ANVIL_COMMON_TYPES_HH
#define ANVIL_COMMON_TYPES_HH

#include <cstdint>

namespace anvil {

/** A physical or virtual memory address (byte granularity). */
using Addr = std::uint64_t;

/** A CPU clock-cycle count. */
using Cycles = std::uint64_t;

/** Simulated time, in picoseconds (the simulator's base tick). */
using Tick = std::uint64_t;

/** Process identifier, used to resolve sampled virtual addresses. */
using Pid = std::uint32_t;

/** An invalid/unmapped address sentinel. */
inline constexpr Addr kInvalidAddr = ~static_cast<Addr>(0);

/** An absent-process sentinel (e.g. a detection no tenant owns). */
inline constexpr Pid kInvalidPid = ~static_cast<Pid>(0);

/** Kind of a memory operation issued to the memory system. */
enum class AccessType : std::uint8_t {
    kLoad,
    kStore,
};

/** Where a memory access was ultimately serviced from. */
enum class DataSource : std::uint8_t {
    kL1,
    kL2,
    kLlc,
    kDram,
};

/** Human-readable name of a data source ("L1", "L2", "LLC", "DRAM"). */
const char *to_string(DataSource src);

/** Human-readable name of an access type ("load"/"store"). */
const char *to_string(AccessType type);

}  // namespace anvil

#endif  // ANVIL_COMMON_TYPES_HH
