/**
 * @file
 * Structured error type shared across the simulator and the experiment
 * runner.
 *
 * An Error carries a short message, an ordered list of key=value context
 * attachments (scenario name, trial index, seed, file offset, ...), and a
 * flattened cause chain, and renders them all into what(). The rendering
 * is deterministic — the same failure produces the same string on every
 * run — because failure diagnostics end up in journals and sweep JSON,
 * where byte-stability is a tested property.
 */
#ifndef ANVIL_COMMON_ERROR_HH
#define ANVIL_COMMON_ERROR_HH

#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <utility>
#include <vector>

namespace anvil {

/** Exception with attachable context and a cause chain. */
class Error : public std::exception
{
  public:
    explicit Error(std::string message) : message_(std::move(message))
    {
        render();
    }

    /** Attaches a key=value context pair (kept in attachment order). */
    Error &
    with(std::string key, std::string value)
    {
        context_.emplace_back(std::move(key), std::move(value));
        render();
        return *this;
    }

    Error &
    with(std::string key, std::uint64_t value)
    {
        return with(std::move(key), std::to_string(value));
    }

    /** Attaches a key=0x... hex context pair (seeds, addresses). */
    Error &
    with_hex(std::string key, std::uint64_t value)
    {
        char buf[24];
        std::snprintf(buf, sizeof buf, "0x%llx",
                      static_cast<unsigned long long>(value));
        return with(std::move(key), std::string(buf));
    }

    /**
     * Attaches the shard coordinate ("shard=K/N") an error occurred in,
     * so diagnostics from a supervised multi-process sweep identify
     * which child journal or process to inspect.
     */
    Error &
    with_shard(std::uint32_t index, std::uint32_t count)
    {
        return with("shard", std::to_string(index) + "/" +
                                 std::to_string(count));
    }

    /**
     * Records @p cause as the underlying failure. A nested Error cause
     * flattens naturally: its what() already renders its own chain.
     */
    Error &
    caused_by(const std::exception &cause)
    {
        cause_ = cause.what();
        render();
        return *this;
    }

    Error &
    caused_by(std::string cause)
    {
        cause_ = std::move(cause);
        render();
        return *this;
    }

    const char *
    what() const noexcept override
    {
        return rendered_.c_str();
    }

    const std::string &message() const { return message_; }
    const std::string &cause() const { return cause_; }

  private:
    void
    render()
    {
        rendered_ = message_;
        if (!context_.empty()) {
            rendered_ += " [";
            for (std::size_t i = 0; i < context_.size(); ++i) {
                if (i != 0)
                    rendered_ += ", ";
                rendered_ += context_[i].first;
                rendered_ += '=';
                rendered_ += context_[i].second;
            }
            rendered_ += ']';
        }
        if (!cause_.empty()) {
            rendered_ += ": caused by: ";
            rendered_ += cause_;
        }
    }

    std::string message_;
    std::vector<std::pair<std::string, std::string>> context_;
    std::string cause_;
    std::string rendered_;
};

/**
 * A trial exceeded its simulated-event budget (see runner::Watchdog).
 * Distinct type so the runner can classify the outcome as timed-out
 * rather than failed.
 */
class TimeoutError : public Error
{
  public:
    using Error::Error;
};

}  // namespace anvil

#endif  // ANVIL_COMMON_ERROR_HH
