#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace anvil {

void
TextTable::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::add_row(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i)
        widths[i] = header_[i].size();
    for (const auto &row : rows_) {
        for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    std::size_t total = 0;
    for (auto w : widths)
        total += w + 3;

    os << "\n" << title_ << "\n" << std::string(total, '-') << "\n";
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : std::string();
            os << std::left << std::setw(static_cast<int>(widths[i]) + 3)
               << cell;
        }
        os << "\n";
    };
    emit_row(header_);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    os << std::string(total, '-') << "\n";
}

std::string
TextTable::fmt(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
TextTable::fmt_count(std::uint64_t value)
{
    const std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (digits.size() - i) % 3 == 0)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

}  // namespace anvil
