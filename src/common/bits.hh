/**
 * @file
 * Small bit-manipulation helpers shared across subsystems (power-of-two
 * checks for cache/DRAM geometry, exact log2 for address decomposition).
 */
#ifndef ANVIL_COMMON_BITS_HH
#define ANVIL_COMMON_BITS_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace anvil {

/** True if @p v is a (non-zero) power of two. */
constexpr bool
is_pow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. @pre is_pow2(v) */
constexpr std::uint32_t
log2_exact(std::uint64_t v)
{
    assert(is_pow2(v) && "value must be a power of two");
    return static_cast<std::uint32_t>(std::countr_zero(v));
}

/** Mask selecting the low @p bits bits. */
constexpr std::uint64_t
low_mask(std::uint32_t bits)
{
    return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

}  // namespace anvil

#endif  // ANVIL_COMMON_BITS_HH
