/**
 * @file
 * Minimal leveled logging for the simulator.
 *
 * Log output is off by default (kWarn) so that test and benchmark output
 * stays clean; raise the level with Logger::set_level or the ANVIL_LOG
 * environment variable ("debug", "info", "warn", "error", "off").
 */
#ifndef ANVIL_COMMON_LOG_HH
#define ANVIL_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace anvil {

enum class LogLevel : int {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kOff = 4,
};

/** Process-wide logging configuration and sink. */
class Logger
{
  public:
    /** Currently active level (messages below it are dropped). */
    static LogLevel level();

    /** Sets the active level. */
    static void set_level(LogLevel level);

    /** True if a message at @p level would be emitted. */
    static bool enabled(LogLevel level);

    /** Emits one message (appends a newline) to stderr. */
    static void write(LogLevel level, const std::string &component,
                      const std::string &message);
};

namespace log_detail {

/** Builds and emits a log line on destruction. */
class LineBuilder
{
  public:
    LineBuilder(LogLevel level, const char *component)
        : level_(level), component_(component) {}

    ~LineBuilder() { Logger::write(level_, component_, stream_.str()); }

    template <typename T>
    LineBuilder &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    const char *component_;
    std::ostringstream stream_;
};

}  // namespace log_detail
}  // namespace anvil

#define ANVIL_LOG(level, component)                                          \
    if (!::anvil::Logger::enabled(level)) {                                  \
    } else                                                                   \
        ::anvil::log_detail::LineBuilder(level, component)

#define ANVIL_DEBUG(component) ANVIL_LOG(::anvil::LogLevel::kDebug, component)
#define ANVIL_INFO(component) ANVIL_LOG(::anvil::LogLevel::kInfo, component)
#define ANVIL_WARN(component) ANVIL_LOG(::anvil::LogLevel::kWarn, component)
#define ANVIL_ERROR(component) ANVIL_LOG(::anvil::LogLevel::kError, component)

#endif  // ANVIL_COMMON_LOG_HH
