/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (PEBS sampling jitter, random
 * replacement, per-cell flip-threshold variation, workload address streams)
 * draws from explicitly seeded Rng instances so that every experiment is
 * reproducible bit-for-bit.
 */
#ifndef ANVIL_COMMON_RNG_HH
#define ANVIL_COMMON_RNG_HH

#include <cstdint>

namespace anvil {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Small, fast, and high quality; this is not a cryptographic generator and
 * does not need to be.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Uniform integer in [0, bound) using Lemire reduction. @pre bound > 0 */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Standard normal variate (Box-Muller, cached second value). */
    double next_gaussian();

    /** Bernoulli trial with success probability @p p. */
    bool next_bool(double p);

    /** Re-seed the generator (resets all cached state). */
    void seed(std::uint64_t seed);

  private:
    std::uint64_t state_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

/** splitmix64 step — also useful as a cheap stateless integer hash. */
std::uint64_t splitmix64(std::uint64_t x);

/** Stateless hash of (a, b) onto [0, 1); used for per-row variation. */
double hash_unit_double(std::uint64_t a, std::uint64_t b);

}  // namespace anvil

#endif  // ANVIL_COMMON_RNG_HH
