#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/types.hh"

namespace anvil {

const char *
to_string(DataSource src)
{
    switch (src) {
      case DataSource::kL1: return "L1";
      case DataSource::kL2: return "L2";
      case DataSource::kLlc: return "LLC";
      case DataSource::kDram: return "DRAM";
    }
    return "?";
}

const char *
to_string(AccessType type)
{
    return type == AccessType::kLoad ? "load" : "store";
}

namespace {

LogLevel
initial_level()
{
    const char *env = std::getenv("ANVIL_LOG");
    if (env == nullptr)
        return LogLevel::kWarn;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::kInfo;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::kWarn;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::kError;
    return LogLevel::kOff;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
}

}  // namespace

LogLevel
Logger::level()
{
    return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void
Logger::set_level(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
Logger::enabled(LogLevel level)
{
    return static_cast<int>(level) >=
           g_level.load(std::memory_order_relaxed);
}

void
Logger::write(LogLevel level, const std::string &component,
              const std::string &message)
{
    std::fprintf(stderr, "[%s] %s: %s\n", level_name(level),
                 component.c_str(), message.c_str());
}

}  // namespace anvil
