#include "mitigations/registry.hh"

#include <sstream>
#include <stdexcept>

#include "mitigations/counter_trr.hh"
#include "mitigations/dapper.hh"
#include "mitigations/hardware.hh"
#include "mitigations/rvc.hh"

namespace anvil::mitigations {

void
MitigationRegistry::add(MitigationEntry entry)
{
    if (find(entry.name) != nullptr) {
        throw std::invalid_argument(
            "duplicate mitigation tracker name '" + entry.name +
            "' — every tracker needs a unique registry key; already "
            "registered: " +
            known_names());
    }
    entries_.push_back(std::move(entry));
}

const MitigationEntry *
MitigationRegistry::find(const std::string &name) const
{
    for (const MitigationEntry &entry : entries_) {
        if (entry.name == name)
            return &entry;
    }
    return nullptr;
}

const MitigationEntry &
MitigationRegistry::at(const std::string &name) const
{
    const MitigationEntry *entry = find(name);
    if (entry == nullptr) {
        throw std::out_of_range("unknown mitigation tracker '" + name +
                                "' — known trackers: " + known_names());
    }
    return *entry;
}

std::string
MitigationRegistry::known_names() const
{
    std::ostringstream os;
    bool first = true;
    for (const MitigationEntry &entry : entries_) {
        os << (first ? "" : ", ") << entry.name;
        first = false;
    }
    return os.str();
}

namespace {

CounterTrrConfig
ctrr_sampled_config()
{
    CounterTrrConfig config;
    config.table_size = 16;
    config.counter_bits = 24;
    config.mac = 32000;
    config.reset = CounterTrrConfig::Reset::kHalve;
    config.evict = CounterTrrConfig::Evict::kMinCount;
    config.sample_probability = 0.25;
    config.refresh_radius = 1;
    return config;
}

CounterTrrConfig
ctrr_evict_config()
{
    CounterTrrConfig config;
    config.table_size = 8;
    config.counter_bits = 24;
    config.mac = 32000;
    config.reset = CounterTrrConfig::Reset::kClear;
    config.evict = CounterTrrConfig::Evict::kFifo;
    config.refresh_on_evict = true;
    config.refresh_radius = 1;
    return config;
}

CounterTrrConfig
ctrr_radius2_config()
{
    CounterTrrConfig config;
    config.table_size = 16;
    config.counter_bits = 24;
    config.mac = 16000;
    config.reset = CounterTrrConfig::Reset::kClear;
    config.evict = CounterTrrConfig::Evict::kMinCount;
    config.refresh_radius = 2;
    return config;
}

}  // namespace

const MitigationRegistry &
mitigation_registry()
{
    static const MitigationRegistry registry = [] {
        MitigationRegistry r;
        // The two paper baselines keep their historic fixed parameters
        // (PARA's builtin seed, TRR's MAC) so sweeps that predate the
        // registry emit byte-identical JSON through it.
        r.add({"para",
               "PARA: probabilistic adjacent row refresh (p = 0.001)",
               [](dram::DramSystem &dram, std::uint64_t) {
                   return std::make_unique<Para>(dram);
               }});
        r.add({"trr",
               "idealized counter TRR: unbounded per-row counters, "
               "MAC 32000",
               [](dram::DramSystem &dram, std::uint64_t) {
                   return std::make_unique<Trr>(dram);
               }});
        r.add({"ctrr-sampled",
               "counter-table TRR: 16 entries/bank, 1-in-4 sampler, "
               "halving reset, MAC 32000",
               [](dram::DramSystem &dram, std::uint64_t seed) {
                   return std::make_unique<CounterTrr>(
                       dram, ctrr_sampled_config(), seed);
               }});
        r.add({"ctrr-evict",
               "counter-table TRR: 8 entries/bank, FIFO eviction with "
               "refresh-on-evict, MAC 32000",
               [](dram::DramSystem &dram, std::uint64_t seed) {
                   return std::make_unique<CounterTrr>(
                       dram, ctrr_evict_config(), seed);
               }});
        r.add({"ctrr-radius2",
               "counter-table TRR: 16 entries/bank, refresh radius 2, "
               "MAC 16000",
               [](dram::DramSystem &dram, std::uint64_t seed) {
                   return std::make_unique<CounterTrr>(
                       dram, ctrr_radius2_config(), seed);
               }});
        r.add({"rvc",
               "victim-centric tracker: per-victim disturbance credit, "
               "direct victim refresh",
               [](dram::DramSystem &dram, std::uint64_t) {
                   return std::make_unique<Rvc>(dram, RvcConfig{});
               }});
        r.add({"dapper",
               "performance-attack-resilient tracker: Misra-Gries "
               "summary + per-tREFI refresh budget",
               [](dram::DramSystem &dram, std::uint64_t) {
                   return std::make_unique<Dapper>(dram, DapperConfig{});
               }});
        return r;
    }();
    return registry;
}

}  // namespace anvil::mitigations
