/**
 * @file
 * RVC-style victim-centric rowhammer tracker.
 *
 * Aggressor-centric counters (TRR and its variants) count who hammers
 * and guess who suffers — which is exactly what half-double breaks: the
 * hammered rows' distance-1 neighbours get refreshed while the real
 * victim two rows away keeps discharging. The victim-centric approach
 * (PAPERS.md: "Rapid Victim Identification", RVC) inverts the ledger:
 * each activation credits estimated disturbance to the rows it actually
 * disturbs (distance 1 at full weight, distance 2 at the module's
 * second-neighbour weight), and a victim crossing its charge budget is
 * refreshed DIRECTLY — no neighbourhood guessing, so blast-radius
 * changes cannot route around it.
 */
#ifndef ANVIL_MITIGATIONS_RVC_HH
#define ANVIL_MITIGATIONS_RVC_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/dram_system.hh"
#include "mitigations/mitigation.hh"

namespace anvil::mitigations {

/** Configuration of the victim-centric tracker. */
struct RvcConfig {
    /// Victim-counter entries per bank.
    std::uint32_t table_size = 32;
    /// Accumulated disturbance credit at which the victim is refreshed.
    /// The credit omits the super-linear double-sided term, so with the
    /// paper's alpha the true disturbance is at most ~1.82x the credit;
    /// the default keeps even that bound far below every module's flip
    /// threshold.
    double threshold = 50000.0;
    /// Disturbance credited to distance-2 victims per activation
    /// (distance-1 victims are credited 1.0). Matches the device's
    /// second_neighbor_weight when modelling a co-designed tracker.
    double second_neighbor_weight = 0.5;
};

/** Victim-centric disturbance-credit tracker (one table per bank). */
class Rvc : public Mitigation
{
  public:
    Rvc(dram::DramSystem &dram, const RvcConfig &config);

    const char *name() const override { return "rvc"; }

    const RvcConfig &config() const { return config_; }

    /** Current entry count of @p flat_bank's table (for tests). */
    std::size_t table_occupancy(std::uint32_t flat_bank) const;

    /** Charge credited to (@p flat_bank, @p row), or 0 if untracked. */
    double charge_of(std::uint32_t flat_bank, std::uint32_t row) const;

  protected:
    void on_activation(std::uint32_t flat_bank, std::uint32_t row,
                       Tick now) override;

  private:
    struct Entry {
        std::uint32_t row = 0;
        double charge = 0.0;
        std::uint64_t order = 0;  ///< global insertion sequence number
    };
    struct BankTable {
        std::vector<Entry> entries;
        std::uint64_t epoch = 0;
    };

    /** Credits @p weight of disturbance to victim @p row. */
    void credit(std::uint32_t flat_bank, BankTable &bank, std::int64_t row,
                double weight, Tick now);

    RvcConfig config_;
    std::vector<BankTable> tables_;  ///< one per flat bank
    std::uint64_t next_order_ = 0;
};

}  // namespace anvil::mitigations

#endif  // ANVIL_MITIGATIONS_RVC_HH
