/**
 * @file
 * Name registry of the tracker zoo, so scenario specs can select a
 * hardware mitigation declaratively ("rvc", "ctrr-evict", ...) the same
 * way they select workload profiles by name.
 *
 * Each entry is a factory taking the device and a per-trial seed (the
 * trial's "mitigation" sub-stream); trackers with no stochastic state
 * ignore the seed, and the legacy PARA/TRR baselines keep their historic
 * fixed parameters so pre-existing sweep JSON stays byte-identical.
 */
#ifndef ANVIL_MITIGATIONS_REGISTRY_HH
#define ANVIL_MITIGATIONS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dram/dram_system.hh"
#include "mitigations/mitigation.hh"

namespace anvil::mitigations {

/** Constructs one tracker attached to @p dram, seeded by @p seed. */
using MitigationFactory = std::function<std::unique_ptr<Mitigation>(
    dram::DramSystem &dram, std::uint64_t seed)>;

/** One named tracker in the zoo. */
struct MitigationEntry {
    std::string name;         ///< registry key (ScenarioSpec::mitigation)
    std::string description;  ///< one line for listings and error text
    MitigationFactory make;
};

/** Maps tracker names to factories; rejects duplicates. */
class MitigationRegistry
{
  public:
    /**
     * Registers a tracker.
     * @throw std::invalid_argument on a duplicate name, naming both the
     *        collision and the already-registered trackers.
     */
    void add(MitigationEntry entry);

    /** Entry by name, or nullptr when absent. */
    const MitigationEntry *find(const std::string &name) const;

    /**
     * Entry by name.
     * @throw std::out_of_range for unknown names, listing every
     *        registered tracker so the caller can fix the spec.
     */
    const MitigationEntry &at(const std::string &name) const;

    const std::vector<MitigationEntry> &all() const { return entries_; }

    /** Comma-separated registered names (for error messages). */
    std::string known_names() const;

  private:
    std::vector<MitigationEntry> entries_;  ///< registration order
};

/**
 * The built-in tracker zoo: the paper's PARA/TRR baselines, the
 * reverse-engineered counter-table TRR variants, the victim-centric RVC
 * tracker, and the DAPPER-style budgeted tracker.
 */
const MitigationRegistry &mitigation_registry();

}  // namespace anvil::mitigations

#endif  // ANVIL_MITIGATIONS_REGISTRY_HH
