#include "mitigations/dapper.hh"

#include <algorithm>

namespace anvil::mitigations {

Dapper::Dapper(dram::DramSystem &dram, const DapperConfig &config)
    : Mitigation(dram), config_(config), t_refi_(dram.config().t_refi())
{
    tables_.resize(dram.config().total_banks());
    for (BankTable &bank : tables_)
        bank.entries.reserve(config_.table_size);
}

std::size_t
Dapper::table_occupancy(std::uint32_t flat_bank) const
{
    return tables_.at(flat_bank).entries.size();
}

std::uint64_t
Dapper::counter_of(std::uint32_t flat_bank, std::uint32_t row) const
{
    for (const Entry &e : tables_.at(flat_bank).entries) {
        if (e.row == row)
            return e.count;
    }
    return 0;
}

bool
Dapper::spend_budget(Tick now)
{
    const std::uint64_t window = now / t_refi_;
    if (window != budget_window_) {
        budget_window_ = window;
        budget_spent_ = 0;
    }
    if (budget_spent_ >= config_.refresh_budget)
        return false;
    ++budget_spent_;
    return true;
}

void
Dapper::on_activation(std::uint32_t flat_bank, std::uint32_t row, Tick now)
{
    BankTable &bank = tables_[flat_bank];
    const std::uint64_t epoch = now / dram_.config().refresh_period;
    if (bank.epoch != epoch) {
        bank.epoch = epoch;
        bank.entries.clear();
    }

    Entry *entry = nullptr;
    for (Entry &e : bank.entries) {
        if (e.row == row) {
            entry = &e;
            break;
        }
    }
    if (entry == nullptr) {
        if (bank.entries.size() < config_.table_size) {
            bank.entries.push_back(Entry{row, 0});
            entry = &bank.entries.back();
            stats_.table_peak_entries = std::max<std::uint64_t>(
                stats_.table_peak_entries, bank.entries.size());
        } else {
            // Misra-Gries step: a cold row at a full table decrements
            // every counter instead of evicting. Thrash traffic drains
            // state; it cannot manufacture refreshes.
            for (Entry &e : bank.entries) {
                if (e.count > 0)
                    --e.count;
            }
            const auto dead = std::remove_if(
                bank.entries.begin(), bank.entries.end(),
                [](const Entry &e) { return e.count == 0; });
            stats_.table_evictions += static_cast<std::uint64_t>(
                bank.entries.end() - dead);
            bank.entries.erase(dead, bank.entries.end());
            return;
        }
    }

    ++entry->count;
    if (entry->count >= config_.mac) {
        // Budgeted response: past the per-tREFI cap the counter stays
        // armed (count is preserved) and the refresh retries on the
        // row's next activation, in a later interval.
        if (spend_budget(now)) {
            entry->count = 0;
            refresh_neighbors(flat_bank, row, now,
                              config_.refresh_radius);
        } else {
            ++stats_.refreshes_suppressed;
        }
    }
}

}  // namespace anvil::mitigations
