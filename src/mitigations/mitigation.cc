#include "mitigations/mitigation.hh"

namespace anvil::mitigations {

Mitigation::Mitigation(dram::DramSystem &dram) : dram_(dram)
{
    dram_.add_activation_hook(
        [this](std::uint32_t bank, std::uint32_t row, Tick now) {
            if (in_refresh_)
                return;  // our own refresh reads do not re-trigger
            ++stats_.activations_observed;
            on_activation(bank, row, now);
        });
}

void
Mitigation::refresh_row(std::uint32_t flat_bank, std::int64_t row, Tick now)
{
    if (row < 0 ||
        row >= static_cast<std::int64_t>(dram_.config().rows_per_bank))
        return;
    in_refresh_ = true;
    dram_.refresh_row(flat_bank, static_cast<std::uint32_t>(row), now);
    ++stats_.neighbor_refreshes;
    in_refresh_ = false;
}

void
Mitigation::refresh_neighbors(std::uint32_t flat_bank, std::uint32_t row,
                              Tick now, std::uint32_t radius)
{
    const auto r = static_cast<std::int64_t>(row);
    for (std::uint32_t d = 1; d <= radius; ++d) {
        refresh_row(flat_bank, r - d, now);
        refresh_row(flat_bank, r + d, now);
    }
}

}  // namespace anvil::mitigations
