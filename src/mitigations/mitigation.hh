/**
 * @file
 * The common interface of every in-DRAM / in-controller rowhammer
 * tracker the simulator can attach to a DramSystem.
 *
 * A Mitigation observes every row activation through the device's
 * activation hook and issues neighbour (or victim) refreshes in
 * response. Refresh reads are absorbed into controller slack: they
 * consume no core time (the cost of these defenses is new silicon, not
 * software cycles), only DRAM state changes — which is exactly why the
 * paper's Section 1.2 classifies them as undeployable on existing
 * hardware.
 *
 * Derived trackers implement on_activation(); the base class owns the
 * hook registration, the self-recursion guard (a tracker's own refresh
 * reads re-enter the activation path and must not re-trigger it), and
 * the shared statistics block.
 */
#ifndef ANVIL_MITIGATIONS_MITIGATION_HH
#define ANVIL_MITIGATIONS_MITIGATION_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/dram_system.hh"

namespace anvil::mitigations {

/** Counters shared by all hardware trackers. */
struct MitigationStats {
    /// Row activations seen by the tracker (its own refreshes excluded).
    std::uint64_t activations_observed = 0;
    /// Refresh reads the tracker issued (neighbour or victim rows).
    std::uint64_t neighbor_refreshes = 0;
    /// Entries displaced from a finite tracking table (0 for trackers
    /// with unbounded state such as the idealized seed TRR).
    std::uint64_t table_evictions = 0;
    /// Refreshes clipped by a rate budget (DAPPER-style trackers).
    std::uint64_t refreshes_suppressed = 0;
    /// High-water occupancy of the fullest per-bank table.
    std::uint64_t table_peak_entries = 0;
};

/**
 * Base class of every hardware rowhammer tracker.
 *
 * Attach to a DramSystem before issuing traffic; detaching is not
 * supported (hardware does not unload). Exactly one tracker should be
 * attached per device (real controllers run one TRR engine).
 */
class Mitigation
{
  public:
    explicit Mitigation(dram::DramSystem &dram);
    virtual ~Mitigation() = default;

    Mitigation(const Mitigation &) = delete;
    Mitigation &operator=(const Mitigation &) = delete;

    /** Tracker name for reports (matches its registry key). */
    virtual const char *name() const = 0;

    const MitigationStats &stats() const { return stats_; }

  protected:
    /**
     * Reacts to one observed activation of @p row in @p flat_bank.
     * Never invoked re-entrantly: activations caused by this tracker's
     * own refresh reads are filtered out before dispatch.
     */
    virtual void on_activation(std::uint32_t flat_bank, std::uint32_t row,
                               Tick now) = 0;

    /**
     * Issues one guarded refresh read of (@p flat_bank, @p row),
     * counting it in stats. Out-of-range rows are ignored (callers pass
     * signed neighbour offsets freely at bank edges).
     */
    void refresh_row(std::uint32_t flat_bank, std::int64_t row, Tick now);

    /**
     * Refreshes every row within @p radius of @p row (excluding the row
     * itself), nearest first, low side before high side — the classic
     * TRR victim-refresh response.
     */
    void refresh_neighbors(std::uint32_t flat_bank, std::uint32_t row,
                           Tick now, std::uint32_t radius = 1);

    dram::DramSystem &dram_;
    MitigationStats stats_;

  private:
    bool in_refresh_ = false;  ///< guards against self-recursion
};

}  // namespace anvil::mitigations

#endif  // ANVIL_MITIGATIONS_MITIGATION_HH
