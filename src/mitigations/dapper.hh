/**
 * @file
 * DAPPER-style performance-attack-resilient tracker.
 *
 * A tracker can be attacked two ways: route disturbance around its
 * bookkeeping (half-double vs aggressor-centric counters), or weaponize
 * its RESPONSE — force so many mitigation refreshes that memory
 * performance collapses without ever hammering a single row (PAPERS.md:
 * DAPPER). This tracker closes both channels:
 *
 *  - Tracking state is a Misra-Gries heavy-hitter summary per bank:
 *    untracked activations arriving at a full table DECREMENT every
 *    counter instead of evicting an entry. A tracker-thrash adversary
 *    cycling thousands of cold rows only drains counters — it cannot
 *    force refresh-generating evictions, and any genuinely hot row
 *    (activations > window / (table_size + 1)) is guaranteed a counter.
 *  - The response is budgeted: at most `refresh_budget` mitigation
 *    refreshes per tREFI. A triggered refresh beyond the budget is
 *    deferred (the counter stays armed and retries next interval), so
 *    the tracker's worst-case bandwidth cost is a hard bound, not a
 *    function of attacker behaviour.
 */
#ifndef ANVIL_MITIGATIONS_DAPPER_HH
#define ANVIL_MITIGATIONS_DAPPER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/dram_system.hh"
#include "mitigations/mitigation.hh"

namespace anvil::mitigations {

/** Configuration of the performance-attack-resilient tracker. */
struct DapperConfig {
    /// Misra-Gries summary entries per bank.
    std::uint32_t table_size = 16;
    /// Activation count that triggers a neighbourhood refresh.
    std::uint64_t mac = 32000;
    /// Mitigation refreshes allowed per tREFI across the device — the
    /// hard cap on the tracker's bandwidth cost.
    std::uint32_t refresh_budget = 4;
    /// Refresh radius 2 covers half-double's distance-2 blast radius.
    std::uint32_t refresh_radius = 2;
};

/** Misra-Gries summary + budgeted-response tracker. */
class Dapper : public Mitigation
{
  public:
    Dapper(dram::DramSystem &dram, const DapperConfig &config);

    const char *name() const override { return "dapper"; }

    const DapperConfig &config() const { return config_; }

    /** Current entry count of @p flat_bank's summary (for tests). */
    std::size_t table_occupancy(std::uint32_t flat_bank) const;

    /** Counter value of (@p flat_bank, @p row), or 0 if untracked. */
    std::uint64_t counter_of(std::uint32_t flat_bank,
                             std::uint32_t row) const;

  protected:
    void on_activation(std::uint32_t flat_bank, std::uint32_t row,
                       Tick now) override;

  private:
    struct Entry {
        std::uint32_t row = 0;
        std::uint64_t count = 0;
    };
    struct BankTable {
        std::vector<Entry> entries;
        std::uint64_t epoch = 0;
    };

    /** True if a refresh is within budget at @p now (and charges it). */
    bool spend_budget(Tick now);

    DapperConfig config_;
    std::vector<BankTable> tables_;  ///< one per flat bank
    Tick t_refi_ = 0;
    std::uint64_t budget_window_ = 0;   ///< tREFI index of the budget
    std::uint32_t budget_spent_ = 0;    ///< refreshes in that window
};

}  // namespace anvil::mitigations

#endif  // ANVIL_MITIGATIONS_DAPPER_HH
