#include "mitigations/hardware.hh"

namespace anvil::mitigations {

Para::Para(dram::DramSystem &dram, double probability, std::uint64_t seed)
    : Mitigation(dram), probability_(probability), rng_(seed)
{
}

void
Para::on_activation(std::uint32_t flat_bank, std::uint32_t row, Tick now)
{
    const std::uint32_t rows = dram_.config().rows_per_bank;
    // Independent coin per neighbour, as in the PARA proposal. The
    // refresh read is absorbed into controller slack: it consumes no core
    // time (this is dedicated hardware), only DRAM state changes.
    if (row > 0 && rng_.next_bool(probability_))
        refresh_row(flat_bank, static_cast<std::int64_t>(row) - 1, now);
    if (row + 1 < rows && rng_.next_bool(probability_))
        refresh_row(flat_bank, static_cast<std::int64_t>(row) + 1, now);
}

Trr::Trr(dram::DramSystem &dram, std::uint64_t max_activations)
    : Mitigation(dram), max_activations_(max_activations)
{
}

void
Trr::on_activation(std::uint32_t flat_bank, std::uint32_t row, Tick now)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(flat_bank) << 32) | row;
    const std::uint64_t epoch = now / dram_.config().refresh_period;
    auto &[count, count_epoch] = counters_[key];
    if (count_epoch != epoch) {
        count = 0;
        count_epoch = epoch;
    }
    if (++count < max_activations_)
        return;

    count = 0;
    refresh_neighbors(flat_bank, row, now);
}

}  // namespace anvil::mitigations
