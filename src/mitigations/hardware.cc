#include "mitigations/hardware.hh"

namespace anvil::mitigations {

Para::Para(dram::DramSystem &dram, double probability, std::uint64_t seed)
    : dram_(dram), probability_(probability), rng_(seed)
{
    dram_.add_activation_hook(
        [this](std::uint32_t bank, std::uint32_t row, Tick now) {
            on_activation(bank, row, now);
        });
}

void
Para::on_activation(std::uint32_t flat_bank, std::uint32_t row, Tick now)
{
    if (in_refresh_)
        return;  // our own refresh reads do not re-trigger
    ++stats_.activations_observed;
    const std::uint32_t rows = dram_.config().rows_per_bank;
    in_refresh_ = true;
    // Independent coin per neighbour, as in the PARA proposal. The
    // refresh read is absorbed into controller slack: it consumes no core
    // time (this is dedicated hardware), only DRAM state changes.
    if (row > 0 && rng_.next_bool(probability_)) {
        dram_.refresh_row(flat_bank, row - 1, now);
        ++stats_.neighbor_refreshes;
    }
    if (row + 1 < rows && rng_.next_bool(probability_)) {
        dram_.refresh_row(flat_bank, row + 1, now);
        ++stats_.neighbor_refreshes;
    }
    in_refresh_ = false;
}

Trr::Trr(dram::DramSystem &dram, std::uint64_t max_activations)
    : dram_(dram), max_activations_(max_activations)
{
    dram_.add_activation_hook(
        [this](std::uint32_t bank, std::uint32_t row, Tick now) {
            on_activation(bank, row, now);
        });
}

void
Trr::on_activation(std::uint32_t flat_bank, std::uint32_t row, Tick now)
{
    if (in_refresh_)
        return;
    ++stats_.activations_observed;

    const std::uint64_t key =
        (static_cast<std::uint64_t>(flat_bank) << 32) | row;
    const std::uint64_t epoch = now / dram_.config().refresh_period;
    auto &[count, count_epoch] = counters_[key];
    if (count_epoch != epoch) {
        count = 0;
        count_epoch = epoch;
    }
    if (++count < max_activations_)
        return;

    count = 0;
    const std::uint32_t rows = dram_.config().rows_per_bank;
    in_refresh_ = true;
    if (row > 0) {
        dram_.refresh_row(flat_bank, row - 1, now);
        ++stats_.neighbor_refreshes;
    }
    if (row + 1 < rows) {
        dram_.refresh_row(flat_bank, row + 1, now);
        ++stats_.neighbor_refreshes;
    }
    in_refresh_ = false;
}

}  // namespace anvil::mitigations
