/**
 * @file
 * Parameterized per-bank counter-table TRR variants.
 *
 * Real DDR4/LPDDR4 TRR engines are not the idealized per-row counter of
 * hardware.hh: reverse-engineering efforts (TRRespass, U-TRR, and the
 * gem5 rowhammer models) consistently find a SMALL per-bank table of
 * activation counters — a sampler decides which activations are worth a
 * table entry, counters have a finite width, a full table evicts, and
 * counts are reset (or decayed) at refresh-window boundaries. Every one
 * of those resource limits is an attack surface: too few entries fall to
 * many-sided patterns, narrow counters saturate below the MAC, and
 * refresh-on-evict policies turn table pressure into refresh storms — a
 * performance attack that never hammers any single row.
 *
 * CounterTrr exposes all of those knobs so the mitigation matrix can
 * measure each failure mode against each attack kind.
 */
#ifndef ANVIL_MITIGATIONS_COUNTER_TRR_HH
#define ANVIL_MITIGATIONS_COUNTER_TRR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/dram_system.hh"
#include "mitigations/mitigation.hh"

namespace anvil::mitigations {

/** One counter-table TRR configuration (one reverse-engineered variant). */
struct CounterTrrConfig {
    /// Counter-table entries per bank.
    std::uint32_t table_size = 16;
    /// Counter width in bits; counters saturate at 2^bits - 1. A width
    /// whose maximum is below the MAC can never trigger a refresh — the
    /// classic mis-provisioned-TRR failure mode.
    std::uint32_t counter_bits = 24;
    /// Maximum activation count: reaching it refreshes the row's
    /// neighbours and re-arms the counter.
    std::uint64_t mac = 32000;

    /// What happens to tracked state at a refresh-window rollover.
    enum class Reset {
        kClear,  ///< drop every entry (per-window MAC, like the seed TRR)
        kHalve,  ///< halve counts, keep entries (decayed multi-window MAC)
    };
    Reset reset = Reset::kClear;

    /// Which entry a full table displaces for a new row.
    enum class Evict {
        kMinCount,  ///< lowest count, ties broken oldest-first
        kFifo,      ///< oldest entry regardless of count
    };
    Evict evict = Evict::kMinCount;

    /// Probability an activation of an untracked row allocates an entry
    /// (1.0 = track every new row; < 1.0 models sampler-based TRR).
    double sample_probability = 1.0;

    /// Refresh the evicted row's neighbours on displacement — the
    /// "paranoid evict" policy. Safe against eviction-laundering attacks
    /// but converts table thrash directly into refresh storms.
    bool refresh_on_evict = false;

    /// Neighbourhood radius of a triggered refresh: 1 covers classic
    /// hammering; 2 additionally covers aggressor-at-distance-2
    /// (half-double) patterns.
    std::uint32_t refresh_radius = 1;

    /** Largest value a counter can hold. */
    std::uint64_t
    counter_max() const
    {
        return counter_bits >= 64 ? ~0ULL : (1ULL << counter_bits) - 1;
    }
};

/** Finite counter-table TRR engine (one table per bank). */
class CounterTrr : public Mitigation
{
  public:
    /**
     * @param seed seeds the sampler; pass the trial's "mitigation"
     *        sub-stream so sampled variants stay deterministic per trial.
     */
    CounterTrr(dram::DramSystem &dram, const CounterTrrConfig &config,
               std::uint64_t seed);

    const char *name() const override { return "counter-trr"; }

    const CounterTrrConfig &config() const { return config_; }

    /** Current entry count of @p flat_bank's table (for tests). */
    std::size_t table_occupancy(std::uint32_t flat_bank) const;

    /** Counter value of (@p flat_bank, @p row), or 0 if untracked. */
    std::uint64_t counter_of(std::uint32_t flat_bank,
                             std::uint32_t row) const;

  protected:
    void on_activation(std::uint32_t flat_bank, std::uint32_t row,
                       Tick now) override;

  private:
    struct Entry {
        std::uint32_t row = 0;
        std::uint64_t count = 0;
        std::uint64_t order = 0;  ///< global insertion sequence number
    };
    struct BankTable {
        std::vector<Entry> entries;
        std::uint64_t epoch = 0;  ///< refresh-window epoch of the counts
    };

    void roll_window(BankTable &bank, std::uint64_t epoch);
    /** Index of the entry the eviction policy displaces. */
    std::size_t victim_index(const BankTable &bank) const;

    CounterTrrConfig config_;
    Rng rng_;
    std::vector<BankTable> tables_;  ///< one per flat bank
    std::uint64_t next_order_ = 0;
};

}  // namespace anvil::mitigations

#endif  // ANVIL_MITIGATIONS_COUNTER_TRR_HH
