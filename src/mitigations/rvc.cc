#include "mitigations/rvc.hh"

#include <algorithm>

namespace anvil::mitigations {

Rvc::Rvc(dram::DramSystem &dram, const RvcConfig &config)
    : Mitigation(dram), config_(config)
{
    tables_.resize(dram.config().total_banks());
    for (BankTable &bank : tables_)
        bank.entries.reserve(config_.table_size);
}

std::size_t
Rvc::table_occupancy(std::uint32_t flat_bank) const
{
    return tables_.at(flat_bank).entries.size();
}

double
Rvc::charge_of(std::uint32_t flat_bank, std::uint32_t row) const
{
    for (const Entry &e : tables_.at(flat_bank).entries) {
        if (e.row == row)
            return e.charge;
    }
    return 0.0;
}

void
Rvc::credit(std::uint32_t flat_bank, BankTable &bank, std::int64_t row,
            double weight, Tick now)
{
    if (row < 0 ||
        row >= static_cast<std::int64_t>(dram_.config().rows_per_bank))
        return;
    const auto victim = static_cast<std::uint32_t>(row);

    Entry *entry = nullptr;
    for (Entry &e : bank.entries) {
        if (e.row == victim) {
            entry = &e;
            break;
        }
    }
    if (entry == nullptr) {
        if (bank.entries.size() >= config_.table_size) {
            // Displace the coldest victim (least charge, ties broken
            // oldest-first): a cold victim is by definition the one
            // furthest from its flip threshold.
            std::size_t coldest = 0;
            for (std::size_t i = 1; i < bank.entries.size(); ++i) {
                const Entry &e = bank.entries[i];
                const Entry &c = bank.entries[coldest];
                if (e.charge < c.charge ||
                    (e.charge == c.charge && e.order < c.order))
                    coldest = i;
            }
            bank.entries.erase(bank.entries.begin() +
                               static_cast<std::ptrdiff_t>(coldest));
            ++stats_.table_evictions;
        }
        bank.entries.push_back(Entry{victim, 0.0, next_order_++});
        entry = &bank.entries.back();
        stats_.table_peak_entries = std::max<std::uint64_t>(
            stats_.table_peak_entries, bank.entries.size());
    }

    entry->charge += weight;
    if (entry->charge >= config_.threshold) {
        entry->charge = 0.0;
        // Victim-centric response: restore the victim itself. No
        // neighbourhood guessing, so it is blast-radius independent.
        refresh_row(flat_bank, row, now);
    }
}

void
Rvc::on_activation(std::uint32_t flat_bank, std::uint32_t row, Tick now)
{
    BankTable &bank = tables_[flat_bank];
    // Window rollover: the periodic refresh sweep restored every row, so
    // accumulated credit is stale.
    const std::uint64_t epoch = now / dram_.config().refresh_period;
    if (bank.epoch != epoch) {
        bank.epoch = epoch;
        bank.entries.clear();
    }

    // The activation restored the accessed row's own charge; its
    // accumulated credit (if tracked) is gone with it.
    for (Entry &e : bank.entries) {
        if (e.row == row) {
            e.charge = 0.0;
            break;
        }
    }

    const auto r = static_cast<std::int64_t>(row);
    credit(flat_bank, bank, r - 1, 1.0, now);
    credit(flat_bank, bank, r + 1, 1.0, now);
    if (config_.second_neighbor_weight > 0.0) {
        credit(flat_bank, bank, r - 2, config_.second_neighbor_weight,
               now);
        credit(flat_bank, bank, r + 2, config_.second_neighbor_weight,
               now);
    }
}

}  // namespace anvil::mitigations
