/**
 * @file
 * Hardware rowhammer mitigations the paper compares ANVIL against
 * (Sections 1.2 and 5.2.2). These live in the memory controller / DRAM
 * device, observe every row activation, and issue neighbour refreshes —
 * no software, no performance counters, but also "require the
 * introduction of new hardware" and so cannot protect deployed systems.
 *
 *  - PARA (Kim et al., ISCA'14): on every activation, refresh each
 *    adjacent row with a small independent probability p. A hammering row
 *    triggers a victim refresh with overwhelming cumulative probability
 *    long before the flip threshold.
 *  - TRR (counter-based targeted row refresh, as in LPDDR4/DDR4 and the
 *    Kim/Nair/Qureshi CAL'15 proposal): count activations per row within
 *    each refresh window; when a row crosses the maximum activation count
 *    (MAC), refresh its neighbours and reset its counter. This seed TRR
 *    is idealized — its counter table is unbounded; the finite-table
 *    variants live in counter_trr.hh.
 */
#ifndef ANVIL_MITIGATIONS_HARDWARE_HH
#define ANVIL_MITIGATIONS_HARDWARE_HH

#include <cstdint>
#include <unordered_map>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/dram_system.hh"
#include "mitigations/mitigation.hh"

namespace anvil::mitigations {

/**
 * PARA: probabilistic adjacent row activation.
 */
class Para : public Mitigation
{
  public:
    /**
     * @param dram        the device to protect
     * @param probability per-neighbour refresh probability per activation
     *                    (Kim et al. suggest ~0.001 for large margins)
     */
    Para(dram::DramSystem &dram, double probability = 0.001,
         std::uint64_t seed = 0xBA5EBA11ULL);

    const char *name() const override { return "para"; }

  protected:
    void on_activation(std::uint32_t flat_bank, std::uint32_t row,
                       Tick now) override;

  private:
    double probability_;
    Rng rng_;
};

/**
 * Counter-based targeted row refresh.
 */
class Trr : public Mitigation
{
  public:
    /**
     * @param dram the device to protect
     * @param max_activations MAC: activations of one row within one
     *        refresh window that trigger a neighbour refresh. Must be
     *        comfortably below the device's flip threshold per side
     *        (110 K on the paper's module); LPDDR4-era parts quote MACs
     *        in the tens of thousands.
     */
    Trr(dram::DramSystem &dram, std::uint64_t max_activations = 32000);

    const char *name() const override { return "trr"; }

  protected:
    void on_activation(std::uint32_t flat_bank, std::uint32_t row,
                       Tick now) override;

  private:
    std::uint64_t max_activations_;
    /// (bank, row) -> (count, window epoch); counts reset every refresh
    /// period, mirroring the per-window MAC definition.
    std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        counters_;
};

}  // namespace anvil::mitigations

#endif  // ANVIL_MITIGATIONS_HARDWARE_HH
