#include "mitigations/counter_trr.hh"

#include <algorithm>

namespace anvil::mitigations {

CounterTrr::CounterTrr(dram::DramSystem &dram,
                       const CounterTrrConfig &config, std::uint64_t seed)
    : Mitigation(dram), config_(config), rng_(seed)
{
    tables_.resize(dram.config().total_banks());
    for (BankTable &bank : tables_)
        bank.entries.reserve(config_.table_size);
}

std::size_t
CounterTrr::table_occupancy(std::uint32_t flat_bank) const
{
    return tables_.at(flat_bank).entries.size();
}

std::uint64_t
CounterTrr::counter_of(std::uint32_t flat_bank, std::uint32_t row) const
{
    for (const Entry &e : tables_.at(flat_bank).entries) {
        if (e.row == row)
            return e.count;
    }
    return 0;
}

void
CounterTrr::roll_window(BankTable &bank, std::uint64_t epoch)
{
    if (bank.epoch == epoch)
        return;
    bank.epoch = epoch;
    switch (config_.reset) {
      case CounterTrrConfig::Reset::kClear:
          bank.entries.clear();
          break;
      case CounterTrrConfig::Reset::kHalve:
          for (Entry &e : bank.entries)
              e.count /= 2;
          break;
    }
}

std::size_t
CounterTrr::victim_index(const BankTable &bank) const
{
    std::size_t victim = 0;
    for (std::size_t i = 1; i < bank.entries.size(); ++i) {
        const Entry &e = bank.entries[i];
        const Entry &v = bank.entries[victim];
        switch (config_.evict) {
          case CounterTrrConfig::Evict::kMinCount:
              if (e.count < v.count ||
                  (e.count == v.count && e.order < v.order))
                  victim = i;
              break;
          case CounterTrrConfig::Evict::kFifo:
              if (e.order < v.order)
                  victim = i;
              break;
        }
    }
    return victim;
}

void
CounterTrr::on_activation(std::uint32_t flat_bank, std::uint32_t row,
                          Tick now)
{
    BankTable &bank = tables_[flat_bank];
    roll_window(bank, now / dram_.config().refresh_period);

    Entry *entry = nullptr;
    for (Entry &e : bank.entries) {
        if (e.row == row) {
            entry = &e;
            break;
        }
    }

    if (entry == nullptr) {
        // Sampler: only a fraction of untracked activations earn a table
        // entry. The coin is drawn per candidate so the stream is a pure
        // function of the tracker's seed and the activation sequence.
        if (config_.sample_probability < 1.0 &&
            !rng_.next_bool(config_.sample_probability))
            return;
        if (bank.entries.size() >= config_.table_size) {
            const std::size_t victim = victim_index(bank);
            const std::uint32_t evicted_row = bank.entries[victim].row;
            bank.entries.erase(bank.entries.begin() +
                               static_cast<std::ptrdiff_t>(victim));
            ++stats_.table_evictions;
            if (config_.refresh_on_evict) {
                // The displaced row's history is lost; refresh its
                // neighbourhood so laundering counters through eviction
                // cannot build up disturbance unseen.
                refresh_neighbors(flat_bank, evicted_row, now,
                                  config_.refresh_radius);
            }
        }
        bank.entries.push_back(Entry{row, 0, next_order_++});
        entry = &bank.entries.back();
        stats_.table_peak_entries = std::max<std::uint64_t>(
            stats_.table_peak_entries, bank.entries.size());
    }

    if (entry->count < config_.counter_max())
        ++entry->count;
    if (entry->count >= config_.mac) {
        entry->count = 0;
        refresh_neighbors(flat_bank, row, now, config_.refresh_radius);
    }
}

}  // namespace anvil::mitigations
