#include "mem/virtual_memory.hh"

#include <algorithm>
#include <cassert>
#include <new>
#include <stdexcept>

namespace anvil::mem {

void
FrameAllocator::ScrambledPool::init(std::uint64_t count, std::uint64_t seed)
{
    assert(count > 1);
    count_ = count;
    // Smallest even bit width whose 2^bits covers the count; indices that
    // permute out of range are cycle-walked past.
    std::uint32_t bits = 2;
    while ((1ULL << bits) < count)
        bits += 2;
    half_bits_ = bits / 2;
    for (auto &key : round_keys_) {
        seed = splitmix64(seed);
        key = seed;
    }
}

std::uint64_t
FrameAllocator::ScrambledPool::permute(std::uint64_t index) const
{
    const std::uint64_t half_mask = (1ULL << half_bits_) - 1;
    std::uint64_t left = index >> half_bits_;
    std::uint64_t right = index & half_mask;
    for (const std::uint64_t key : round_keys_) {
        const std::uint64_t f = splitmix64(right ^ key) & half_mask;
        const std::uint64_t new_right = left ^ f;
        left = right;
        right = new_right;
    }
    return (left << half_bits_) | right;
}

std::uint64_t
FrameAllocator::ScrambledPool::take()
{
    if (!recycled_.empty()) {
        const std::uint64_t index = recycled_.back();
        recycled_.pop_back();
        return index;
    }
    while (next_index_ < (1ULL << (2 * half_bits_))) {
        const std::uint64_t image = permute(next_index_++);
        if (image < count_)
            return image;
    }
    throw std::bad_alloc();
}

void
FrameAllocator::ScrambledPool::put(std::uint64_t index)
{
    recycled_.push_back(index);
}

FrameAllocator::FrameAllocator(std::uint64_t capacity_bytes,
                               std::uint64_t seed)
    : total_frames_(capacity_bytes / kPageBytes)
{
    assert(capacity_bytes % kPageBytes == 0);
    // Lower half: scattered 4 KB frames; upper half: 2 MB THP blocks.
    // (On small test configurations without room for any huge block the
    // whole space serves 4 KB frames.)
    const std::uint64_t huge_blocks = capacity_bytes / 2 / kHugeBytes;
    small_frames_ = total_frames_ - huge_blocks * (kHugeBytes / kPageBytes);
    huge_base_ = static_cast<Addr>(small_frames_) << kPageShift;
    small_pool_.init(small_frames_, seed);
    if (huge_blocks > 1)
        huge_pool_.init(huge_blocks, splitmix64(seed ^ 0x48554745ULL));
    else if (huge_blocks == 1)
        huge_pool_.init(2, splitmix64(seed ^ 0x48554745ULL));
}

Addr
FrameAllocator::allocate()
{
    const std::uint64_t frame = small_pool_.take();
    ++allocated_;
    return frame << kPageShift;
}

void
FrameAllocator::free(Addr frame)
{
    assert(allocated_ > 0);
    --allocated_;
    small_pool_.put(frame >> kPageShift);
}

Addr
FrameAllocator::allocate_huge()
{
    const std::uint64_t capacity_blocks =
        (static_cast<std::uint64_t>(total_frames_) * kPageBytes -
         huge_base_) / kHugeBytes;
    std::uint64_t block;
    do {
        block = huge_pool_.take();
    } while (block >= capacity_blocks);
    ++huge_allocated_;
    return huge_base_ + block * kHugeBytes;
}

void
FrameAllocator::free_huge(Addr block)
{
    assert(huge_allocated_ > 0);
    --huge_allocated_;
    huge_pool_.put((block - huge_base_) / kHugeBytes);
}

AddressSpace::AddressSpace(Pid pid, FrameAllocator &frames)
    : pid_(pid), frames_(frames)
{
}

Addr
AddressSpace::mmap(std::uint64_t bytes)
{
    const bool huge = bytes >= kHugeBytes;
    const std::uint64_t granule = huge ? kHugeBytes : kPageBytes;
    const std::uint64_t chunks = (bytes + granule - 1) / granule;
    const Addr base = next_va_;
    next_va_ += chunks * granule;
    next_va_ += kPageBytes;  // unmapped guard gap between regions

    for (std::uint64_t c = 0; c < chunks; ++c) {
        if (huge) {
            const Addr block = frames_.allocate_huge();
            for (std::uint64_t p = 0; p < kHugeBytes / kPageBytes; ++p) {
                pages_[base + c * kHugeBytes + p * kPageBytes] =
                    block + p * kPageBytes;
            }
        } else {
            pages_[base + c * kPageBytes] = frames_.allocate();
        }
    }
    regions_.push_back(MappedRegion{base, chunks * granule, huge});
    tlb_flush();
    return base;
}

Addr
AddressSpace::mmap_shared(const AddressSpace &source, Addr src_va,
                          std::uint64_t bytes)
{
    const std::uint64_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    const Addr base = next_va_;
    next_va_ += pages * kPageBytes + kPageBytes;
    for (std::uint64_t p = 0; p < pages; ++p) {
        const Addr frame = source.pagemap(src_va + p * kPageBytes);
        assert(frame != kInvalidAddr && "sharing an unmapped page");
        pages_[base + p * kPageBytes] = frame;
    }
    regions_.push_back(
        MappedRegion{base, pages * kPageBytes, false, true});
    tlb_flush();
    return base;
}

void
AddressSpace::munmap(Addr va_base, std::uint64_t bytes)
{
    auto region = std::find_if(regions_.begin(), regions_.end(),
                               [&](const MappedRegion &r) {
                                   return r.va_base == va_base;
                               });
    if (region == regions_.end())
        return;
    (void)bytes;  // whole-region unmap, like the attack code's usage

    tlb_flush();
    if (region->shared) {
        // The frames belong to the source mapping; just drop the view.
        for (std::uint64_t off = 0; off < region->bytes;
             off += kPageBytes) {
            pages_.erase(va_base + off);
        }
        regions_.erase(region);
        return;
    }
    if (region->huge) {
        for (std::uint64_t off = 0; off < region->bytes;
             off += kHugeBytes) {
            frames_.free_huge(pages_.at(va_base + off));
            for (std::uint64_t p = 0; p < kHugeBytes / kPageBytes; ++p)
                pages_.erase(va_base + off + p * kPageBytes);
        }
    } else {
        for (std::uint64_t off = 0; off < region->bytes;
             off += kPageBytes) {
            auto it = pages_.find(va_base + off);
            if (it != pages_.end()) {
                frames_.free(it->second);
                pages_.erase(it);
            }
        }
    }
    regions_.erase(region);
}

void
AddressSpace::tlb_flush()
{
    tlb_.fill(TlbEntry{});
    ++tlb_flushes_;
}

Addr
AddressSpace::translate(Addr va) const
{
    const Addr page = va & ~static_cast<Addr>(kPageBytes - 1);
    const std::uint32_t idx =
        static_cast<std::uint32_t>(page >> kPageShift) & (kTlbEntries - 1);
    TlbEntry &entry = tlb_[idx];
    if (entry.va_page == page) {
        ++tlb_hits_;
        return entry.pa_page | (va & (kPageBytes - 1));
    }
    ++tlb_misses_;
    auto it = pages_.find(page);
    if (it == pages_.end())
        return kInvalidAddr;
    entry.va_page = page;
    entry.pa_page = it->second;
    return it->second | (va & (kPageBytes - 1));
}

Addr
AddressSpace::pagemap(Addr va) const
{
    const Addr pa = translate(va);
    if (pa == kInvalidAddr)
        return kInvalidAddr;
    return pa & ~static_cast<Addr>(kPageBytes - 1);
}

}  // namespace anvil::mem
