/**
 * @file
 * The full memory system: per-process virtual memory in front of the cache
 * hierarchy in front of DRAM, all advancing one shared simulated clock.
 *
 * This is the single point through which workloads and attacks touch
 * memory; PMU facilities observe completed accesses through the observer
 * hook, exactly as hardware counters observe the memory pipeline.
 */
#ifndef ANVIL_MEM_MEMORY_SYSTEM_HH
#define ANVIL_MEM_MEMORY_SYSTEM_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "dram/dram_system.hh"
#include "mem/virtual_memory.hh"
#include "sim/event_queue.hh"

namespace anvil::mem {

/** Top-level configuration of the simulated machine. */
struct SystemConfig {
    dram::DramConfig dram;
    cache::HierarchyConfig cache;
    CoreClock core{2.6};  ///< i5-2540M nominal frequency
    /// Cost of one CLFLUSH instruction (mostly overlapped by the
    /// out-of-order core). Calibrated with overlap_llc_miss_lookup so the
    /// CLFLUSH-based double-sided attack reproduces Table 1's ~15 ms
    /// time-to-first-flip: 110 K x 2 x (150 + 8) cycles = 13.4 ms, plus
    /// refresh stalls.
    Cycles clflush_cycles = 8;
    /// When a load misses the LLC, the on-chip lookup latency is hidden
    /// under the DRAM access (an out-of-order core overlaps them); the
    /// paper's cost model likewise charges a flat "DRAM access latency of
    /// 150 cycles" per miss (Section 2.2).
    bool overlap_llc_miss_lookup = true;
    std::uint64_t vm_seed = 0xF4A3E5EEDULL;
};

/** Everything known about one completed memory access. */
struct AccessInfo {
    Pid pid = 0;
    Addr va = 0;
    Addr pa = 0;
    AccessType type = AccessType::kLoad;
    DataSource source = DataSource::kL1;
    Tick latency = 0;      ///< total, including DRAM if missed
    bool llc_miss = false;
    Tick complete_time = 0;
};

/**
 * Interface for the one component observing every access on the hot path
 * (in practice: the PMU). A direct virtual call through this interface
 * replaces the generic std::function observer hop for the common case;
 * ad-hoc observers (tests, telemetry) still use add_observer().
 */
class AccessListener
{
  public:
    virtual ~AccessListener() = default;

    /** Called after every completed access. */
    virtual void on_access(const AccessInfo &info) = 0;
};

/**
 * The machine. Single memory controller, single simulated hardware thread
 * (the paper's workloads are single-threaded; concurrent load is modelled
 * by interleaving drivers — see workload::LoadMix).
 */
class MemorySystem
{
  public:
    using Observer = std::function<void(const AccessInfo &)>;

    explicit MemorySystem(const SystemConfig &config);

    /** The simulated clock / event queue. */
    sim::EventQueue &clock() { return clock_; }
    Tick now() const { return clock_.now(); }

    /** Creates a new process address space. */
    AddressSpace &create_process();

    /** Looks up an existing process. @pre pid was returned earlier. */
    AddressSpace &process(Pid pid) { return *spaces_.at(pid); }
    const AddressSpace &process(Pid pid) const { return *spaces_.at(pid); }

    /** Number of process address spaces created (pids are [0, count)). */
    std::size_t process_count() const { return spaces_.size(); }

    /**
     * Performs one load or store: translates, walks the cache hierarchy,
     * touches DRAM on an LLC miss, advances the clock by the access
     * latency, fires due events, and notifies observers.
     * @pre va is mapped in @p pid.
     */
    AccessInfo access(Pid pid, Addr va, AccessType type);

    /** Executes CLFLUSH of the line containing @p va. */
    void clflush(Pid pid, Addr va);

    /** Models non-memory compute: advances the clock by @p n core cycles. */
    void advance_cycles(Cycles n);

    /** Advances the clock by @p dt ticks. */
    void advance(Tick dt) { clock_.elapse(dt); }

    /**
     * Privileged uncached read of the DRAM row containing physical address
     * @p pa — ANVIL's selective-refresh primitive. Advances the clock by
     * the read latency.
     */
    void refresh_row_phys(Addr pa);

    /** Registers an observer of completed accesses (tests, telemetry). */
    void add_observer(Observer observer);

    /**
     * Registers THE direct access listener (the PMU). At most one;
     * notified before any generic observers.
     * @pre no listener registered yet, or @p listener is nullptr.
     */
    void
    set_access_listener(AccessListener *listener)
    {
        assert(listener == nullptr || listener_ == nullptr);
        listener_ = listener;
    }

    dram::DramSystem &dram() { return dram_; }
    const dram::DramSystem &dram() const { return dram_; }
    cache::CacheHierarchy &hierarchy() { return hierarchy_; }
    const cache::CacheHierarchy &hierarchy() const { return hierarchy_; }
    const SystemConfig &config() const { return config_; }
    const CoreClock &core() const { return config_.core; }

  private:
    SystemConfig config_;
    sim::EventQueue clock_;
    FrameAllocator frames_;
    dram::DramSystem dram_;
    cache::CacheHierarchy hierarchy_;
    std::vector<std::unique_ptr<AddressSpace>> spaces_;
    AccessListener *listener_ = nullptr;
    std::vector<Observer> observers_;
    /// cycles_to_ticks of the on-chip latency by DataSource (the hierarchy
    /// reports one of three fixed config latencies), precomputed so the
    /// per-access path needs no floating-point conversion.
    std::array<Tick, 4> on_chip_ticks_{};
    Tick clflush_ticks_ = 0;  ///< cycles_to_ticks(clflush_cycles)
};

}  // namespace anvil::mem

#endif  // ANVIL_MEM_MEMORY_SYSTEM_HH
