#include "mem/memory_system.hh"

#include <cassert>
#include <stdexcept>

namespace anvil::mem {

MemorySystem::MemorySystem(const SystemConfig &config)
    : config_(config),
      frames_(config.dram.capacity_bytes(), config.vm_seed),
      dram_(config.dram),
      hierarchy_(config.cache)
{
    const auto idx = [](DataSource s) {
        return static_cast<std::size_t>(s);
    };
    on_chip_ticks_[idx(DataSource::kL1)] =
        config_.core.cycles_to_ticks(config_.cache.l1_latency);
    on_chip_ticks_[idx(DataSource::kL2)] =
        config_.core.cycles_to_ticks(config_.cache.l2_latency);
    on_chip_ticks_[idx(DataSource::kLlc)] =
        config_.core.cycles_to_ticks(config_.cache.llc_latency);
    on_chip_ticks_[idx(DataSource::kDram)] =
        config_.core.cycles_to_ticks(config_.cache.llc_latency);
    clflush_ticks_ = config_.core.cycles_to_ticks(config_.clflush_cycles);
}

AddressSpace &
MemorySystem::create_process()
{
    const Pid pid = static_cast<Pid>(spaces_.size());
    spaces_.push_back(std::make_unique<AddressSpace>(pid, frames_));
    return *spaces_.back();
}

AccessInfo
MemorySystem::access(Pid pid, Addr va, AccessType type)
{
    AddressSpace &space = process(pid);
    const Addr pa = space.translate(va);
    if (pa == kInvalidAddr)
        throw std::out_of_range("access to unmapped virtual address");

    const auto on_chip = hierarchy_.access(pa, type);
    Tick latency = on_chip_ticks_[static_cast<std::size_t>(on_chip.source)];
    if (on_chip.llc_miss) {
        if (config_.overlap_llc_miss_lookup)
            latency = dram_.access(pa, clock_.now()).latency;
        else
            latency += dram_.access(pa, clock_.now() + latency).latency;
    }

    clock_.elapse(latency);

    AccessInfo info;
    info.pid = pid;
    info.va = va;
    info.pa = pa;
    info.type = type;
    info.source = on_chip.source;
    info.latency = latency;
    info.llc_miss = on_chip.llc_miss;
    info.complete_time = clock_.now();

    space.note_access();
    if (listener_ != nullptr)
        listener_->on_access(info);
    for (const auto &observer : observers_)
        observer(info);
    return info;
}

void
MemorySystem::clflush(Pid pid, Addr va)
{
    AddressSpace &space = process(pid);
    const Addr pa = space.translate(va);
    if (pa == kInvalidAddr)
        throw std::out_of_range("clflush of unmapped virtual address");
    hierarchy_.clflush(pa);
    clock_.elapse(clflush_ticks_);
}

void
MemorySystem::advance_cycles(Cycles n)
{
    clock_.elapse(config_.core.cycles_to_ticks(n));
}

void
MemorySystem::refresh_row_phys(Addr pa)
{
    const Tick latency = dram_.refresh_row(pa, clock_.now());
    clock_.elapse(latency);
}

void
MemorySystem::add_observer(Observer observer)
{
    observers_.push_back(std::move(observer));
}

}  // namespace anvil::mem
