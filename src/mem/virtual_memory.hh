/**
 * @file
 * Virtual memory: per-process address spaces with 4 KB pages, backed by a
 * shared physical frame allocator, plus the /proc/pagemap-style interface
 * the CLFLUSH-free attack uses to discover physical addresses
 * (Section 2.3: "The CLFLUSH-free rowhammering attack uses the Linux
 * /proc/pagemap utility to convert virtual addresses to physical
 * addresses").
 */
#ifndef ANVIL_MEM_VIRTUAL_MEMORY_HH
#define ANVIL_MEM_VIRTUAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace anvil::mem {

inline constexpr std::uint32_t kPageBytes = 4096;
inline constexpr std::uint32_t kPageShift = 12;

/// Transparent-huge-page block size. Large anonymous mmaps are backed by
/// physically contiguous 2 MB blocks, as Linux THP does on the paper's
/// evaluation platform. A 2 MB block spans 16 consecutive rows of one
/// DRAM bank (row stride 128 KB), which is what makes both double-sided
/// attack targeting and benign bank-local conflict sweeps realistic.
inline constexpr std::uint64_t kHugeBytes = 2ULL << 20;

/**
 * Physical frame allocator over the module's address range.
 *
 * Frames are handed out in a deterministically scrambled order — a
 * Feistel pseudo-random permutation of the whole frame index space — so a
 * process's pages scatter across the entire module the way they do under
 * the Linux buddy allocator, while staying searchable via pagemap and
 * bit-for-bit reproducible per seed. The permutation needs O(1) state, so
 * constructing a 4 GB allocator is free.
 */
class FrameAllocator
{
  public:
    /**
     * @param capacity_bytes size of physical memory (multiple of 4 KB)
     * @param seed           permutation seed (same seed => same layout)
     */
    FrameAllocator(std::uint64_t capacity_bytes, std::uint64_t seed);

    /**
     * Allocates one 4 KB frame (from the lower half of physical memory;
     * the upper half is reserved for huge blocks).
     * @return its physical base address.
     * @throw std::bad_alloc when the small-frame pool is exhausted.
     */
    Addr allocate();

    /** Returns @p frame to the pool (for munmap). */
    void free(Addr frame);

    /**
     * Allocates one physically contiguous, aligned 2 MB block (THP).
     * @return the block's physical base address.
     * @throw std::bad_alloc when the huge pool is exhausted.
     */
    Addr allocate_huge();

    /** Returns a huge block to the pool. */
    void free_huge(Addr block);

    std::uint64_t total_frames() const { return total_frames_; }
    std::uint64_t frames_allocated() const { return allocated_; }
    std::uint64_t huge_blocks_allocated() const { return huge_allocated_; }

  private:
    /** A lazily-walked Feistel permutation over [0, count). */
    class ScrambledPool
    {
      public:
        void init(std::uint64_t count, std::uint64_t seed);
        std::uint64_t take();           ///< @throw std::bad_alloc if empty
        void put(std::uint64_t index);  ///< return a previously taken index

      private:
        std::uint64_t permute(std::uint64_t index) const;

        std::uint64_t count_ = 0;
        std::uint32_t half_bits_ = 0;
        std::uint64_t round_keys_[4] = {};
        std::uint64_t next_index_ = 0;
        std::vector<std::uint64_t> recycled_;
    };

    std::uint64_t total_frames_;
    std::uint64_t small_frames_;  ///< frames below the huge region
    std::uint64_t allocated_ = 0;
    std::uint64_t huge_allocated_ = 0;
    ScrambledPool small_pool_;
    ScrambledPool huge_pool_;
    Addr huge_base_ = 0;  ///< physical base of the huge region
};

/** One mapped region and how it is backed. */
struct MappedRegion {
    Addr va_base = 0;
    std::uint64_t bytes = 0;
    bool huge = false;    ///< backed by contiguous 2 MB THP blocks
    bool shared = false;  ///< frames owned by another mapping
};

/**
 * One process's page table.
 *
 * mmap() eagerly populates mappings (as the attack implementations do with
 * a touch loop); pagemap() exposes VA->PA exactly like /proc/pid/pagemap.
 * Regions of at least 2 MB are transparently backed by huge blocks (THP),
 * smaller ones by scattered 4 KB frames.
 */
class AddressSpace
{
  public:
    AddressSpace(Pid pid, FrameAllocator &frames);

    /**
     * Maps @p bytes (rounded up to pages; to 2 MB when THP-backed) of
     * anonymous memory.
     * @return the virtual base address of the region.
     */
    Addr mmap(std::uint64_t bytes);

    /** Unmaps a region previously returned by mmap (whole regions only). */
    void munmap(Addr va_base, std::uint64_t bytes);

    /**
     * Maps @p bytes of *another* process's memory into this address
     * space, page-for-page — the model of a shared library or shared
     * file mapping, the sharing that Flush+Reload-style side channels
     * exploit.
     * @return the local virtual base address of the shared view.
     * @pre [src_va, src_va + bytes) is mapped in @p source.
     */
    Addr mmap_shared(const AddressSpace &source, Addr src_va,
                     std::uint64_t bytes);

    /** All live regions, in mapping order (huge ones are THP-backed). */
    const std::vector<MappedRegion> &regions() const { return regions_; }

    /**
     * Translates a virtual address.
     * @return the physical address, or kInvalidAddr if unmapped.
     *
     * Hot path: a small direct-mapped TLB caches page translations in
     * front of the page-table hash map; it is flushed on every mapping
     * change (mmap/mmap_shared/munmap), so it can never serve a stale
     * frame across an unmap/remap frame reuse.
     */
    Addr translate(Addr va) const;

    /** TLB telemetry. */
    std::uint64_t tlb_hits() const { return tlb_hits_; }
    std::uint64_t tlb_misses() const { return tlb_misses_; }

    /**
     * Times this TLB was flushed. Flushes happen only on THIS space's
     * mapping changes — another tenant's mmap/munmap churn never evicts
     * this process's cached translations (per-tenant TLB isolation).
     */
    std::uint64_t tlb_flushes() const { return tlb_flushes_; }

    /**
     * Completed memory accesses charged to this process — the
     * per-tenant attribution a system-wide daemon reads. Maintained by
     * MemorySystem::access via note_access().
     */
    std::uint64_t accesses() const { return accesses_; }

    /** Called by MemorySystem on every completed access of this space. */
    void note_access() { ++accesses_; }

    /** Number of direct-mapped TLB entries. */
    static constexpr std::uint32_t kTlbEntries = 256;

    /**
     * The /proc/pagemap interface: physical frame base of the page
     * containing @p va, or kInvalidAddr. (Real kernels now restrict this
     * interface — see paper Section 5.2.1 — but the evaluated attacks
     * predate that and use it.)
     */
    Addr pagemap(Addr va) const;

    Pid pid() const { return pid_; }
    std::uint64_t mapped_pages() const { return pages_.size(); }

  private:
    struct TlbEntry {
        Addr va_page = kInvalidAddr;
        Addr pa_page = 0;
    };

    /** Drops every cached translation (any mapping change). */
    void tlb_flush();

    Pid pid_;
    FrameAllocator &frames_;
    Addr next_va_ = 0x7f0000000000ULL;  ///< mmap region grows upward
    std::unordered_map<Addr, Addr> pages_;  ///< va page -> pa frame
    std::vector<MappedRegion> regions_;

    // Direct-mapped translation cache (mutable: translate() is
    // semantically const; the TLB is pure memoization).
    mutable std::array<TlbEntry, kTlbEntries> tlb_;
    mutable std::uint64_t tlb_hits_ = 0;
    mutable std::uint64_t tlb_misses_ = 0;
    std::uint64_t tlb_flushes_ = 0;
    std::uint64_t accesses_ = 0;
};

}  // namespace anvil::mem

#endif  // ANVIL_MEM_VIRTUAL_MEMORY_HH
