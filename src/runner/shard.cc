#include "runner/shard.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>

#include "runner/journal.hh"

namespace anvil::runner {
namespace {

std::string
shard_label(std::uint32_t index)
{
    return "shard " + std::to_string(index);
}

}  // namespace

std::vector<std::vector<TrialRange>>
partition_trials(std::uint64_t total, std::uint32_t count)
{
    if (count == 0)
        throw Error("cannot partition a sweep into zero shards");
    std::vector<std::vector<TrialRange>> shards(count);
    const std::uint64_t base = total / count;
    const std::uint64_t extra = total % count;
    std::uint64_t next = 0;
    for (std::uint32_t k = 0; k < count; ++k) {
        const std::uint64_t size = base + (k < extra ? 1 : 0);
        if (size == 0)
            continue;  // empty shard: fewer trials than shards
        shards[k].push_back(TrialRange{next, next + size - 1});
        next += size;
    }
    return shards;
}

std::vector<TrialRange>
parse_trial_ranges(const std::string &text)
{
    std::vector<TrialRange> ranges;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string part = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const auto parse_u64 = [&](const std::string &s) {
            char *end = nullptr;
            const std::uint64_t v = std::strtoull(s.c_str(), &end, 0);
            if (end == s.c_str() || *end != '\0') {
                throw Error("malformed trial range (expected "
                            "\"A-B[,C-D...]\")")
                    .with("ranges", text)
                    .with("part", part);
            }
            return v;
        };
        TrialRange range;
        const std::size_t dash = part.find('-');
        if (dash == std::string::npos) {
            range.first = range.last = parse_u64(part);
        } else {
            range.first = parse_u64(part.substr(0, dash));
            range.last = parse_u64(part.substr(dash + 1));
        }
        if (range.last < range.first) {
            throw Error("descending trial range")
                .with("ranges", text)
                .with("part", part);
        }
        if (!ranges.empty() && range.first <= ranges.back().last) {
            throw Error("trial ranges must be ascending and disjoint")
                .with("ranges", text);
        }
        ranges.push_back(range);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (ranges.empty())
        throw Error("empty trial range list");
    return ranges;
}

std::string
to_string(const std::vector<TrialRange> &ranges)
{
    std::string out;
    for (const TrialRange &range : ranges) {
        if (!out.empty())
            out += ',';
        out += std::to_string(range.first);
        if (range.last != range.first)
            out += '-' + std::to_string(range.last);
    }
    return out;
}

std::vector<TrialRange>
compress_indices(const std::vector<std::uint64_t> &sorted_indices)
{
    std::vector<TrialRange> ranges;
    for (const std::uint64_t index : sorted_indices) {
        if (!ranges.empty() && ranges.back().last + 1 == index)
            ranges.back().last = index;
        else
            ranges.push_back(TrialRange{index, index});
    }
    return ranges;
}

MergeResult
merge_shards(const std::vector<TrialSpec> &plan, const std::string &sweep,
             std::uint64_t master_seed, const MergeOptions &options)
{
    MergeResult merge;
    if (options.shard_count == 0) {
        merge.problems.push_back("no shards to merge (shard count is 0)");
        return merge;
    }

    JournalHeader expect;
    expect.sweep = sweep;
    expect.master_seed = master_seed;
    expect.plan_hash = plan_hash(plan);

    struct Claimed {
        JournalRecord record;
        std::string encoded;  ///< canonical payload, for divergence checks
        std::uint32_t shard;
    };
    std::map<std::uint64_t, Claimed> claimed;  // global index -> record

    for (std::uint32_t k = 0; k < options.shard_count; ++k) {
        const std::string path =
            shard_journal_path(options.json_out, k);
        expect.shard_index = k;
        expect.shard_count = options.shard_count;
        std::vector<JournalRecord> records;
        try {
            records = read_journal(path, expect);
        } catch (const Error &e) {
            merge.problems.push_back(shard_label(k) + ": " + e.what());
            continue;
        }
        // read_journal returns empty both for "no file" and "no records";
        // distinguish them for the coverage report.
        std::uint64_t kept = 0, dups = 0;
        for (JournalRecord &rec : records) {
            const std::uint64_t i = rec.spec.global_index;
            if (i >= plan.size() || plan[i].scenario != rec.spec.scenario ||
                plan[i].trial != rec.spec.trial ||
                plan[i].seed != rec.spec.seed) {
                merge.problems.push_back(
                    shard_label(k) + ": record for trial #" +
                    std::to_string(i) +
                    " does not match the sweep plan (" + path + ")");
                continue;
            }
            std::string encoded =
                encode_journal_payload(rec.spec, rec.outcome);
            const auto it = claimed.find(i);
            if (it != claimed.end()) {
                if (it->second.encoded != encoded) {
                    merge.problems.push_back(
                        shard_label(k) + ": trial #" + std::to_string(i) +
                        " diverges from " +
                        shard_label(it->second.shard) +
                        "'s record — the shards did not run the same "
                        "deterministic computation");
                } else {
                    ++merge.duplicates;
                    ++dups;
                    if (options.check) {
                        merge.problems.push_back(
                            shard_label(k) + ": trial #" +
                            std::to_string(i) + " also claimed by " +
                            shard_label(it->second.shard) +
                            " (identical record; requeue overlap)");
                    }
                }
                continue;
            }
            claimed.emplace(
                i, Claimed{std::move(rec), std::move(encoded), k});
            ++kept;
        }
        merge.coverage.push_back(
            shard_label(k) + ": " + std::to_string(kept) +
            " trial record(s)" +
            (dups != 0 ? " + " + std::to_string(dups) + " duplicate(s)"
                       : std::string()) +
            " (" + path + ")");
    }

    // Completeness: every plan trial must be durable somewhere.
    std::vector<std::uint64_t> missing;
    for (std::uint64_t i = 0; i < plan.size(); ++i) {
        if (claimed.find(i) == claimed.end())
            missing.push_back(i);
    }
    if (!missing.empty()) {
        merge.problems.push_back(
            "incomplete campaign: trial(s) " +
            to_string(compress_indices(missing)) + " (" +
            std::to_string(missing.size()) + " of " +
            std::to_string(plan.size()) +
            ") are in no shard journal — rerun `supervise` to finish "
            "them");
    }
    if (!merge.complete())
        return merge;

    // Fold in plan order — the exact loop a single-process run ends
    // with, which is what makes the merged JSON byte-identical.
    merge.sink.set_meta(sweep, master_seed);
    for (std::uint64_t i = 0; i < plan.size(); ++i) {
        const Claimed &c = claimed.at(i);
        if (c.record.outcome.failed())
            ++merge.failed;
        merge.sink.add(plan[i], c.record.outcome);
        ++merge.merged;
    }
    return merge;
}

void
remove_shard_journals(const std::string &json_out,
                      std::uint32_t shard_count)
{
    for (std::uint32_t k = 0; k < shard_count; ++k)
        std::remove(shard_journal_path(json_out, k).c_str());
}

}  // namespace anvil::runner
