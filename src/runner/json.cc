#include "runner/json.hh"

#include <cmath>
#include <cstdio>

namespace anvil::runner {

void
JsonWriter::newline_indent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepare_slot()
{
    if (after_key_) {
        // Value follows "key": on the same line.
        after_key_ = false;
        return;
    }
    if (stack_.empty())
        return;
    if (!first_in_frame_)
        os_ << ',';
    first_in_frame_ = false;
    newline_indent();
}

JsonWriter &
JsonWriter::begin_object()
{
    prepare_slot();
    os_ << '{';
    stack_.push_back(Frame::kObject);
    first_in_frame_ = true;
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    stack_.pop_back();
    if (!first_in_frame_)
        newline_indent();
    os_ << '}';
    first_in_frame_ = false;
    if (stack_.empty())
        os_ << '\n';
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    prepare_slot();
    os_ << '[';
    stack_.push_back(Frame::kArray);
    first_in_frame_ = true;
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    stack_.pop_back();
    if (!first_in_frame_)
        newline_indent();
    os_ << ']';
    first_in_frame_ = false;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    prepare_slot();
    os_ << '"' << escape(k) << "\": ";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    prepare_slot();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    prepare_slot();
    os_ << format_double(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepare_slot();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepare_slot();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepare_slot();
    os_ << (v ? "true" : "false");
    return *this;
}

std::string
JsonWriter::format_double(double v)
{
    if (!std::isfinite(v))
        return "null";
    // %.17g round-trips every finite double and is locale-independent for
    // the characters it can emit; integral values print without a wasteful
    // mantissa.
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace anvil::runner
