#include "runner/thread_pool.hh"

#include <algorithm>

namespace anvil::runner {

ThreadPool::ThreadPool(unsigned threads)
{
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
}

void
ThreadPool::wait_idle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::worker_loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_available_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            // stopping_ && empty queue: drain complete.
            return;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        try {
            task();
        } catch (...) {
            // A task that throws must not terminate the worker (and with
            // it the process): the pool stays usable, the queue drains.
            // Tasks that care about failures catch them themselves — the
            // sweep's trial boundary does exactly that.
        }
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idle_.notify_all();
    }
}

unsigned
ThreadPool::default_threads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace anvil::runner
