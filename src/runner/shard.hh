/**
 * @file
 * Trial-range sharding and the deterministic shard-journal merge.
 *
 * A sharded campaign splits a sweep's trial plan into contiguous ranges,
 * runs each range in its own `anvil-sim shard` child process (its own
 * failure domain, its own checkpoint journal), and folds the journals
 * back into one canonical `anvil-sweep-v1` report. Because every trial's
 * result is a pure function of (master seed, scenario, trial index) and
 * the merge feeds the sink strictly in plan order, the merged JSON is
 * byte-identical to a single-process `--jobs N` run — no matter how many
 * shards ran, how often they crashed, or which surviving shard picked up
 * a dead one's requeued trials.
 *
 * Merge rules:
 *   - every journal's header must match the sweep (name, master seed,
 *     plan hash) and its claimed shard identity;
 *   - a trial recorded by two shards (a requeue race: the original
 *     owner's record survived *and* the work was reassigned) is accepted
 *     when both records encode identically — determinism guarantees they
 *     do — and refused as divergent otherwise;
 *   - a plan trial held by no journal makes the merge incomplete: no
 *     report is written (a partial report that looks complete is worse
 *     than no report), and the diagnostics name the missing ranges.
 */
#ifndef ANVIL_RUNNER_SHARD_HH
#define ANVIL_RUNNER_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/result_sink.hh"
#include "runner/sweep.hh"

namespace anvil::runner {

/**
 * Splits @p total trials into @p count contiguous, near-equal ranges
 * (the first `total % count` ranges are one trial longer). Ranges past
 * the trial count come back empty — a 4-shard campaign over 3 trials
 * simply has an empty fourth shard.
 */
std::vector<std::vector<TrialRange>> partition_trials(std::uint64_t total,
                                                      std::uint32_t count);

/**
 * Parses the `--shard-trials` syntax "A-B[,C-D...]" (inclusive bounds)
 * into ascending disjoint ranges; a bare "A" means the single trial A.
 * @throw Error on malformed text, descending bounds, or overlap.
 */
std::vector<TrialRange> parse_trial_ranges(const std::string &text);

/** Renders ranges back to the `--shard-trials` syntax. */
std::string to_string(const std::vector<TrialRange> &ranges);

/** Compresses ascending indices into minimal inclusive ranges. */
std::vector<TrialRange> compress_indices(
    const std::vector<std::uint64_t> &sorted_indices);

/** How merge_shards() behaves beyond the defaults. */
struct MergeOptions {
    /// The campaign's JSON destination; shard journals live beside it.
    std::string json_out;
    /// Journals to look for: `<json_out>.shard-0..count-1.journal`.
    std::uint32_t shard_count = 0;
    /// Strict validator mode (anvil-sim merge --check): overlaps —
    /// even byte-identical ones — and missing journals are reported
    /// as problems, and per-shard coverage is printed.
    bool check = false;
};

/** What a merge found and (when clean) produced. */
struct MergeResult {
    ResultSink sink;                 ///< valid only when complete()
    std::uint64_t merged = 0;        ///< distinct trials folded in
    std::uint64_t duplicates = 0;    ///< identical records dropped
    std::uint64_t failed = 0;        ///< merged trials that had failed
    /// Human-readable, per-shard diagnostics; empty = mergeable.
    std::vector<std::string> problems;
    /// "shard K: N trial record(s) [+ M duplicate(s)]" coverage lines.
    std::vector<std::string> coverage;

    bool complete() const { return problems.empty(); }
};

/**
 * Reads every shard journal of the campaign and folds the records into
 * one canonical sink in plan order. Never throws for per-journal
 * problems — they become MergeResult::problems so a validator can show
 * all of them at once.
 */
MergeResult merge_shards(const std::vector<TrialSpec> &plan,
                         const std::string &sweep,
                         std::uint64_t master_seed,
                         const MergeOptions &options);

/** Removes every shard journal of the campaign (after a commit). */
void remove_shard_journals(const std::string &json_out,
                           std::uint32_t shard_count);

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_SHARD_HH
