/**
 * @file
 * The parallel, fault-tolerant experiment-sweep engine.
 *
 * A Sweep is a list of scenarios, each contributing N independent trials.
 * run() fans the trials out over a fixed-size thread pool (each trial
 * builds its own simulated machine, so there is no shared mutable state),
 * buffers every outcome in its pre-assigned slot, and then feeds the sink
 * in trial order — making the aggregate output invariant under the
 * number of worker threads and their scheduling.
 *
 * Fault tolerance, end to end:
 *   - every trial runs inside a structured error boundary: an escaped
 *     exception (or watchdog timeout) becomes a TrialOutcome, recorded in
 *     the JSON as a "failed"/"timed_out" record — it never takes down
 *     sibling trials or the pool;
 *   - --retries N re-runs a failing trial with its identical re-derived
 *     seed, so a flaky-infra retry cannot change results;
 *   - with a file JSON destination, every completed trial is journaled
 *     (append-only, checksummed, fsync'd) to `<json-out>.journal`;
 *     --resume replays the journal and runs only the remainder, and the
 *     final JSON is byte-identical to an uninterrupted run;
 *   - request_shutdown() (wired to SIGINT/SIGTERM by the driver) drains
 *     the sweep: in-flight trials finish, unstarted trials are skipped,
 *     the journal stays on disk for --resume, and finish_sweep() maps
 *     the state to a distinct exit code.
 *
 * Replay: every trial's seed is a pure function of (master seed, scenario,
 * trial index), so `--replay-trial N` re-runs exactly one trial of the
 * sweep serially — the debugging workflow for anything a parallel run
 * surfaces.
 */
#ifndef ANVIL_RUNNER_SWEEP_HH
#define ANVIL_RUNNER_SWEEP_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runner/fault.hh"
#include "runner/result_sink.hh"
#include "runner/trial.hh"

namespace anvil::runner {

/** An inclusive range of global trial indices. */
struct TrialRange {
    std::uint64_t first = 0;
    std::uint64_t last = 0;

    bool
    contains(std::uint64_t index) const
    {
        return index >= first && index <= last;
    }
    std::uint64_t size() const { return last - first + 1; }
};

/**
 * One shard's slice of a sharded campaign: which trials this process
 * owns, its identity within the shard set, and how often it proves
 * liveness. A sharded Sweep::run() journals to
 * `<json-out>.shard-K.journal`, always resumes from that journal, never
 * writes the JSON report (the supervisor's merge does), and appends a
 * lease heartbeat every @p lease_interval_ms so a supervisor can tell
 * slow progress from a wedged process.
 */
struct ShardAssignment {
    std::uint32_t index = 0;  ///< shard slot K
    std::uint32_t count = 1;  ///< shards in the campaign
    /// Trials this process owns; disjoint, ascending. Empty = none
    /// (an empty shard exits immediately with a valid, bare journal).
    std::vector<TrialRange> ranges;
    std::uint64_t lease_interval_ms = 500;

    bool owns(std::uint64_t index) const;
};

/** How a sweep executes (not what it computes). */
struct SweepOptions {
    std::string name = "sweep";
    /// Worker threads; 0 means one per hardware thread.
    unsigned jobs = 0;
    /// Root of the per-trial seed derivation chain.
    std::uint64_t master_seed = 0x5eedULL;
    /// When set, run only this global trial index, serially.
    std::optional<std::uint64_t> replay_trial;
    /// JSON report destination: empty = none, "-" = stdout, else a path.
    std::string json_out;
    /// Re-run a failed trial up to this many extra times (same seed).
    unsigned retries = 0;
    /// Per-trial simulated-event budget (memory accesses); 0 = unlimited.
    std::uint64_t trial_timeout = 0;
    /// Replay `<json-out>.journal` and run only the missing trials.
    bool resume = false;
    /// Deterministic fault injections (tests / CI).
    std::vector<FaultSpec> faults;
    /// When set, run as one shard of a multi-process campaign (implies
    /// resume-from-shard-journal; requires a file json_out).
    std::optional<ShardAssignment> shard;
};

/** Computes one trial's TrialResult. Must be thread-safe & self-contained. */
using TrialFn = std::function<TrialResult(const TrialContext &)>;

/** Everything one Sweep::run() produced. */
struct SweepRun {
    ResultSink sink;
    /// Per-trial outcomes in plan order (replayed, executed, or skipped).
    std::vector<TrialOutcome> outcomes;
    std::uint64_t completed = 0;  ///< trials that ended ok
    std::uint64_t failed = 0;     ///< failed + timed-out trials
    std::uint64_t skipped = 0;    ///< drained by a shutdown request
    std::uint64_t resumed = 0;    ///< replayed from the journal
    double wall_seconds = 0.0;
    unsigned jobs_used = 0;

    /** False when a shutdown drain left trials unrun (resumable). */
    bool complete() const { return skipped == 0; }
};

/** A set of scenarios executed as one (possibly parallel) batch. */
class Sweep
{
  public:
    explicit Sweep(SweepOptions options);

    /**
     * Registers @p trials trials of @p scenario. Trials are seeded
     * individually; @p fn must not touch anything outside its context.
     */
    void add_scenario(std::string scenario, std::uint64_t trials,
                      TrialFn fn);

    /**
     * Runs every registered trial and returns the aggregated results and
     * per-trial outcomes. Exceptions escaping a trial body are captured
     * as that trial's outcome, never propagated (one bad trial must not
     * sink a sweep).
     * @throw Error only for configuration-level faults: a --resume
     *        journal that belongs to a different sweep, or journal I/O
     *        failure.
     */
    SweepRun run();

    const SweepOptions &options() const { return options_; }

    /**
     * The full deterministic trial plan (every scenario × trial, seeds
     * assigned) — what a supervisor partitions into shards and a merge
     * validates journals against. Independent of shard assignment and
     * replay filtering.
     */
    std::vector<TrialSpec> plan_specs() const;

    /** plan_hash() over plan_specs(). */
    std::uint64_t plan_digest() const;

  private:
    struct Pending {
        TrialSpec spec;
        const TrialFn *fn;
    };

    /** All trials in deterministic order, seeds assigned. */
    std::vector<Pending> plan() const;

    struct Scenario {
        std::string name;
        std::uint64_t trials;
        TrialFn fn;
    };

    SweepOptions options_;
    std::vector<Scenario> scenarios_;
};

// ---------------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------------

/**
 * Requests a sweep drain: trials not yet started are skipped, in-flight
 * trials finish, the journal is flushed. Async-signal-safe — the driver
 * calls this from its SIGINT/SIGTERM handler; tests call it directly.
 */
void request_shutdown();

/** True once request_shutdown() was called (until clear_shutdown()). */
bool shutdown_requested();

/** Re-arms the drain flag (tests; a fresh process starts cleared). */
void clear_shutdown();

/** Installs SIGINT/SIGTERM handlers that call request_shutdown(). */
void install_signal_handlers();

// ---------------------------------------------------------------------------
// Output + exit codes
// ---------------------------------------------------------------------------

/** Process exit codes shared by every sweep binary. */
enum ExitCode : int {
    kExitOk = 0,            ///< sweep complete, every trial ok
    kExitJsonError = 1,     ///< report requested but not writable
    kExitUsage = 2,         ///< bad command line / unknown sweep
    kExitPartial = 3,       ///< drained by shutdown; resumable
    kExitTrialFailure = 4,  ///< complete, but >= 1 trial failed
    kExitShardDead = 5,     ///< supervisor: trials outstanding after
                            ///< every shard slot exhausted its respawn
                            ///< budget (rerun `supervise` to continue)
    kExitMergeError = 6,    ///< merge: shard journals incomplete,
                            ///< conflicting, or invalid — no report
                            ///< was written
};

/**
 * Writes the sweep's JSON report according to @p options.json_out. File
 * writes are atomic (temp file + rename): a crash can never leave a
 * half-written report where a committed one stood.
 * @return false only if a report was requested and could not be written;
 *         callers should propagate that as a nonzero exit code.
 */
bool write_json_output(const ResultSink &sink, const SweepOptions &options);

/**
 * Finishes a sweep run: writes the JSON report (complete runs only),
 * removes the journal once the report is durably committed, and maps the
 * run's state to its ExitCode — kExitPartial for an interrupted run
 * (journal kept for --resume), kExitTrialFailure when any trial failed,
 * kExitJsonError when the report could not be written, else kExitOk.
 */
int finish_sweep(const SweepRun &run, const SweepOptions &options);

/**
 * Finishes a *shard* run: no JSON report (the supervisor's merge folds
 * the shard journals into the canonical one), just the exit-code
 * mapping — kExitPartial when a drain left assigned trials unrun,
 * kExitTrialFailure when any assigned trial failed, else kExitOk.
 * Either way every completed trial is already durable in the shard
 * journal.
 */
int finish_shard(const SweepRun &run);

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_SWEEP_HH
