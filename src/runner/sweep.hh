/**
 * @file
 * The parallel experiment-sweep engine.
 *
 * A Sweep is a list of scenarios, each contributing N independent trials.
 * run() fans the trials out over a fixed-size thread pool (each trial
 * builds its own simulated machine, so there is no shared mutable state),
 * buffers every result in its pre-assigned slot, and then feeds the sink
 * in trial order — making the aggregate output invariant under the
 * number of worker threads and their scheduling.
 *
 * Replay: every trial's seed is a pure function of (master seed, scenario,
 * trial index), so `--replay-trial N` re-runs exactly one trial of the
 * sweep serially — the debugging workflow for anything a parallel run
 * surfaces.
 */
#ifndef ANVIL_RUNNER_SWEEP_HH
#define ANVIL_RUNNER_SWEEP_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "runner/result_sink.hh"
#include "runner/trial.hh"

namespace anvil::runner {

/** How a sweep executes (not what it computes). */
struct SweepOptions {
    std::string name = "sweep";
    /// Worker threads; 0 means one per hardware thread.
    unsigned jobs = 0;
    /// Root of the per-trial seed derivation chain.
    std::uint64_t master_seed = 0x5eedULL;
    /// When set, run only this global trial index, serially.
    std::optional<std::uint64_t> replay_trial;
    /// JSON report destination: empty = none, "-" = stdout, else a path.
    std::string json_out;
};

/** Computes one trial's TrialResult. Must be thread-safe & self-contained. */
using TrialFn = std::function<TrialResult(const TrialContext &)>;

/** A set of scenarios executed as one (possibly parallel) batch. */
class Sweep
{
  public:
    explicit Sweep(SweepOptions options);

    /**
     * Registers @p trials trials of @p scenario. Trials are seeded
     * individually; @p fn must not touch anything outside its context.
     */
    void add_scenario(std::string scenario, std::uint64_t trials,
                      TrialFn fn);

    /**
     * Runs every registered trial and returns the aggregated results.
     * Exceptions escaping a trial body are captured as that trial's
     * error, never propagated (one bad trial must not sink a sweep).
     */
    ResultSink run();

    /** Wall-clock of the last run(), in seconds. */
    double wall_seconds() const { return wall_seconds_; }

    /** Worker threads the last run() actually used. */
    unsigned jobs_used() const { return jobs_used_; }

    const SweepOptions &options() const { return options_; }

  private:
    struct Pending {
        TrialSpec spec;
        const TrialFn *fn;
    };

    /** All trials in deterministic order, seeds assigned. */
    std::vector<Pending> plan() const;

    struct Scenario {
        std::string name;
        std::uint64_t trials;
        TrialFn fn;
    };

    SweepOptions options_;
    std::vector<Scenario> scenarios_;
    double wall_seconds_ = 0.0;
    unsigned jobs_used_ = 0;
};

/**
 * Writes the sweep's JSON report according to @p options.json_out.
 * @return false only if a report was requested and could not be written;
 *         callers should propagate that as a nonzero exit code.
 */
bool write_json_output(const ResultSink &sink, const SweepOptions &options);

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_SWEEP_HH
