/**
 * @file
 * Fixed-size worker pool for fanning out independent trials.
 *
 * Deliberately minimal: submit() enqueues closures, wait_idle() blocks
 * until every submitted closure has finished. Result ordering is the
 * caller's concern (the Sweep writes each trial's result into its own
 * pre-allocated slot, then aggregates in trial order, so completion order
 * never influences output).
 */
#ifndef ANVIL_RUNNER_THREAD_POOL_HH
#define ANVIL_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace anvil::runner {

/** Fixed set of worker threads draining one FIFO task queue. */
class ThreadPool
{
  public:
    /** Spawns @p threads workers. @pre threads >= 1 */
    explicit ThreadPool(unsigned threads);

    /** Waits for outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueues @p task. An exception escaping the task is swallowed by
     * the worker (the pool survives, the queue keeps draining) — tasks
     * that need to observe failures must catch and record them
     * themselves, as the Sweep's trial error boundary does.
     */
    void submit(std::function<void()> task);

    /** Blocks until the queue is empty and every worker is idle. */
    void wait_idle();

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Reasonable default worker count for this host (hardware
     * concurrency, minimum 1).
     */
    static unsigned default_threads();

  private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::size_t active_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_THREAD_POOL_HH
