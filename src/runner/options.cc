#include "runner/options.hh"

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string_view>

#include "runner/shard.hh"

namespace anvil::runner {
namespace {

void
print_usage(const char *prog, const std::string &extra)
{
    std::cerr
        << "usage: " << prog << " [options] [positional...]\n"
        << "  --jobs N           worker threads (default: hardware "
           "threads)\n"
        << "  --master-seed N    root seed for all trials (default "
           "0x5eed)\n"
        << "  --trials N         override per-scenario trial count\n"
        << "  --json-out PATH    write aggregated JSON report (\"-\" = "
           "stdout)\n"
        << "  --replay-trial N   run only global trial N, serially\n"
        << "  --retries N        re-run failed trials up to N extra times "
           "(same seed)\n"
        << "  --trial-timeout N  per-trial simulated-event budget "
           "(0 = unlimited)\n"
        << "  --resume           replay <json-out>.journal and run only "
           "missing trials\n"
        << "  --inject-fault S   inject a deterministic fault, "
           "S = kind@scenario:trial\n"
        << "                     (kind: throw | flaky | hang | corrupt | "
           "abort |\n"
        << "                      sigkill-self | stall; repeatable)\n"
        << "sharded campaigns (see EXPERIMENTS.md):\n"
        << "  --shard-index K    run as shard K of a sharded campaign\n"
        << "  --shard-count N    total shards in the campaign\n"
        << "  --shard-trials R   trial ranges this shard owns, "
           "R = A-B[,C-D...]\n"
        << "                     (default: shard K's slice of an even "
           "partition)\n"
        << "  --lease-interval-ms N  shard heartbeat period (default "
           "500)\n"
        << "  --shards N         supervise: shard process count "
           "(default 4)\n"
        << "  --respawn-budget N supervise: deaths tolerated per shard "
           "slot (default 3)\n"
        << "  --lease-timeout-ms N   supervise: silent-journal limit "
           "before a\n"
        << "                     shard is declared hung (default 10000)\n"
        << "  --backoff-ms N     supervise: initial respawn delay, "
           "doubles per death\n"
        << "  --shard-jobs N     supervise: worker threads per shard "
           "child\n"
        << "  --check            merge: validate shard journals, write "
           "nothing\n"
        << "  --help             this message\n";
    if (!extra.empty())
        std::cerr << extra << "\n";
}

/** Parses a uint64 flag value; exits 2 with usage on garbage. */
std::uint64_t
parse_u64(const char *prog, const std::string &extra,
          std::string_view flag, const char *text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::cerr << prog << ": bad value for " << flag << ": '" << text
                  << "'\n";
        print_usage(prog, extra);
        std::exit(2);
    }
    return v;
}

}  // namespace

double
CliOptions::positional_double(std::size_t index, double fallback) const
{
    if (index >= positional.size())
        return fallback;
    return std::atof(positional[index].c_str());
}

CliOptions
CliOptions::parse(int argc, char **argv, const std::string &extra_usage)
{
    CliOptions opts;
    const char *prog = argc > 0 ? argv[0] : "bench";
    std::optional<std::uint32_t> shard_index;
    std::optional<std::uint32_t> shard_count;
    std::optional<std::string> shard_trials;
    std::optional<std::uint64_t> lease_interval_ms;

    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        std::string inline_value;
        // Accept both "--flag value" and "--flag=value".
        if (const auto eq = arg.find('=');
            arg.rfind("--", 0) == 0 && eq != std::string_view::npos) {
            inline_value = std::string(arg.substr(eq + 1));
            arg = arg.substr(0, eq);
        }
        const auto take_value = [&]() -> const char * {
            if (!inline_value.empty())
                return inline_value.c_str();
            if (i + 1 >= argc) {
                std::cerr << prog << ": " << arg << " needs a value\n";
                print_usage(prog, extra_usage);
                std::exit(2);
            }
            return argv[++i];
        };

        if (arg == "--help" || arg == "-h") {
            print_usage(prog, extra_usage);
            std::exit(0);
        } else if (arg == "--jobs" || arg == "-j") {
            opts.sweep.jobs = static_cast<unsigned>(
                parse_u64(prog, extra_usage, arg, take_value()));
        } else if (arg == "--master-seed") {
            opts.sweep.master_seed =
                parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--trials") {
            opts.trials = parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--json-out") {
            opts.sweep.json_out = take_value();
        } else if (arg == "--replay-trial") {
            opts.sweep.replay_trial =
                parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--retries") {
            opts.sweep.retries = static_cast<unsigned>(
                parse_u64(prog, extra_usage, arg, take_value()));
        } else if (arg == "--trial-timeout") {
            opts.sweep.trial_timeout =
                parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--resume") {
            opts.sweep.resume = true;
        } else if (arg == "--inject-fault") {
            try {
                opts.sweep.faults.push_back(parse_fault(take_value()));
            } catch (const Error &e) {
                std::cerr << prog << ": bad value for --inject-fault: "
                          << e.what() << "\n";
                print_usage(prog, extra_usage);
                std::exit(2);
            }
        } else if (arg == "--shard-index") {
            shard_index = static_cast<std::uint32_t>(
                parse_u64(prog, extra_usage, arg, take_value()));
        } else if (arg == "--shard-count") {
            shard_count = static_cast<std::uint32_t>(
                parse_u64(prog, extra_usage, arg, take_value()));
        } else if (arg == "--shard-trials") {
            shard_trials = take_value();
        } else if (arg == "--lease-interval-ms") {
            lease_interval_ms =
                parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--shards") {
            opts.supervisor.shards = static_cast<std::uint32_t>(
                parse_u64(prog, extra_usage, arg, take_value()));
        } else if (arg == "--respawn-budget") {
            opts.supervisor.respawn_budget = static_cast<unsigned>(
                parse_u64(prog, extra_usage, arg, take_value()));
        } else if (arg == "--lease-timeout-ms") {
            opts.supervisor.lease_timeout_ms =
                parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--backoff-ms") {
            opts.supervisor.backoff_ms =
                parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--shard-jobs") {
            opts.supervisor.shard_jobs = static_cast<unsigned>(
                parse_u64(prog, extra_usage, arg, take_value()));
        } else if (arg == "--check") {
            opts.check = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << prog << ": unknown flag " << arg << "\n";
            print_usage(prog, extra_usage);
            std::exit(2);
        } else {
            opts.positional.emplace_back(argv[i]);
        }
    }
    if (opts.sweep.resume && opts.sweep.replay_trial) {
        std::cerr << prog << ": --resume and --replay-trial are mutually "
                     "exclusive (a replay runs one trial and writes no "
                     "journal)\n";
        print_usage(prog, extra_usage);
        std::exit(2);
    }
    if (opts.sweep.resume &&
        (opts.sweep.json_out.empty() || opts.sweep.json_out == "-")) {
        std::cerr << prog << ": --resume needs --json-out FILE (the "
                     "journal lives next to the JSON report)\n";
        print_usage(prog, extra_usage);
        std::exit(2);
    }
    if (shard_index || shard_count || shard_trials || lease_interval_ms) {
        const auto usage_error = [&](const std::string &msg) {
            std::cerr << prog << ": " << msg << "\n";
            print_usage(prog, extra_usage);
            std::exit(2);
        };
        if (!shard_index || !shard_count) {
            usage_error("sharded runs need both --shard-index and "
                        "--shard-count");
        }
        if (*shard_count == 0 || *shard_index >= *shard_count) {
            usage_error("--shard-index must be < --shard-count (got " +
                        std::to_string(*shard_index) + " of " +
                        std::to_string(*shard_count) + ")");
        }
        if (opts.sweep.json_out.empty() || opts.sweep.json_out == "-") {
            usage_error("sharded runs need --json-out FILE (the shard "
                        "journal lives next to the JSON report)");
        }
        if (opts.sweep.replay_trial) {
            usage_error("--replay-trial cannot be combined with a shard "
                        "assignment");
        }
        ShardAssignment shard;
        shard.index = *shard_index;
        shard.count = *shard_count;
        if (lease_interval_ms)
            shard.lease_interval_ms = *lease_interval_ms;
        if (shard_trials) {
            try {
                shard.ranges = parse_trial_ranges(*shard_trials);
            } catch (const Error &e) {
                usage_error(std::string("bad value for --shard-trials: ") +
                            e.what());
            }
        }
        // An absent --shard-trials means "shard K's slice of the even
        // partition"; the driver fills it in once the plan size is known.
        opts.sweep.shard = std::move(shard);
    }
    return opts;
}

}  // namespace anvil::runner
