#include "runner/options.hh"

#include <cstdlib>
#include <iostream>
#include <string_view>

namespace anvil::runner {
namespace {

void
print_usage(const char *prog, const std::string &extra)
{
    std::cerr
        << "usage: " << prog << " [options] [positional...]\n"
        << "  --jobs N           worker threads (default: hardware "
           "threads)\n"
        << "  --master-seed N    root seed for all trials (default "
           "0x5eed)\n"
        << "  --trials N         override per-scenario trial count\n"
        << "  --json-out PATH    write aggregated JSON report (\"-\" = "
           "stdout)\n"
        << "  --replay-trial N   run only global trial N, serially\n"
        << "  --retries N        re-run failed trials up to N extra times "
           "(same seed)\n"
        << "  --trial-timeout N  per-trial simulated-event budget "
           "(0 = unlimited)\n"
        << "  --resume           replay <json-out>.journal and run only "
           "missing trials\n"
        << "  --inject-fault S   inject a deterministic fault, "
           "S = kind@scenario:trial\n"
        << "                     (kind: throw | flaky | hang | corrupt; "
           "repeatable)\n"
        << "  --help             this message\n";
    if (!extra.empty())
        std::cerr << extra << "\n";
}

/** Parses a uint64 flag value; exits 2 with usage on garbage. */
std::uint64_t
parse_u64(const char *prog, const std::string &extra,
          std::string_view flag, const char *text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::cerr << prog << ": bad value for " << flag << ": '" << text
                  << "'\n";
        print_usage(prog, extra);
        std::exit(2);
    }
    return v;
}

}  // namespace

double
CliOptions::positional_double(std::size_t index, double fallback) const
{
    if (index >= positional.size())
        return fallback;
    return std::atof(positional[index].c_str());
}

CliOptions
CliOptions::parse(int argc, char **argv, const std::string &extra_usage)
{
    CliOptions opts;
    const char *prog = argc > 0 ? argv[0] : "bench";

    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        std::string inline_value;
        // Accept both "--flag value" and "--flag=value".
        if (const auto eq = arg.find('=');
            arg.rfind("--", 0) == 0 && eq != std::string_view::npos) {
            inline_value = std::string(arg.substr(eq + 1));
            arg = arg.substr(0, eq);
        }
        const auto take_value = [&]() -> const char * {
            if (!inline_value.empty())
                return inline_value.c_str();
            if (i + 1 >= argc) {
                std::cerr << prog << ": " << arg << " needs a value\n";
                print_usage(prog, extra_usage);
                std::exit(2);
            }
            return argv[++i];
        };

        if (arg == "--help" || arg == "-h") {
            print_usage(prog, extra_usage);
            std::exit(0);
        } else if (arg == "--jobs" || arg == "-j") {
            opts.sweep.jobs = static_cast<unsigned>(
                parse_u64(prog, extra_usage, arg, take_value()));
        } else if (arg == "--master-seed") {
            opts.sweep.master_seed =
                parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--trials") {
            opts.trials = parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--json-out") {
            opts.sweep.json_out = take_value();
        } else if (arg == "--replay-trial") {
            opts.sweep.replay_trial =
                parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--retries") {
            opts.sweep.retries = static_cast<unsigned>(
                parse_u64(prog, extra_usage, arg, take_value()));
        } else if (arg == "--trial-timeout") {
            opts.sweep.trial_timeout =
                parse_u64(prog, extra_usage, arg, take_value());
        } else if (arg == "--resume") {
            opts.sweep.resume = true;
        } else if (arg == "--inject-fault") {
            try {
                opts.sweep.faults.push_back(parse_fault(take_value()));
            } catch (const Error &e) {
                std::cerr << prog << ": bad value for --inject-fault: "
                          << e.what() << "\n";
                print_usage(prog, extra_usage);
                std::exit(2);
            }
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << prog << ": unknown flag " << arg << "\n";
            print_usage(prog, extra_usage);
            std::exit(2);
        } else {
            opts.positional.emplace_back(argv[i]);
        }
    }
    if (opts.sweep.resume && opts.sweep.replay_trial) {
        std::cerr << prog << ": --resume and --replay-trial are mutually "
                     "exclusive (a replay runs one trial and writes no "
                     "journal)\n";
        print_usage(prog, extra_usage);
        std::exit(2);
    }
    if (opts.sweep.resume &&
        (opts.sweep.json_out.empty() || opts.sweep.json_out == "-")) {
        std::cerr << prog << ": --resume needs --json-out FILE (the "
                     "journal lives next to the JSON report)\n";
        print_usage(prog, extra_usage);
        std::exit(2);
    }
    return opts;
}

}  // namespace anvil::runner
