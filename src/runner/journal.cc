#include "runner/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string_view>

namespace anvil::runner {
namespace {

constexpr char kMagic[8] = {'A', 'N', 'V', 'L', 'J', 'N', 'L', '1'};
// v2 added the plan hash + shard identity to the header and a type byte
// to every record payload (trial vs lease).
constexpr std::uint32_t kVersion = 2;

/** Payload discriminator (first byte of every record payload). */
enum RecordType : std::uint8_t { kTrialRecord = 0, kLeaseRecord = 1 };

/** FNV-1a 64-bit over raw bytes (record checksums). */
std::uint64_t
fnv1a_bytes(const char *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Append-only byte buffer with fixed-width host-endian encoders. */
struct Encoder {
    std::string bytes;

    void
    put_u8(std::uint8_t v)
    {
        bytes.push_back(static_cast<char>(v));
    }
    void
    put_u32(std::uint32_t v)
    {
        bytes.append(reinterpret_cast<const char *>(&v), sizeof v);
    }
    void
    put_u64(std::uint64_t v)
    {
        bytes.append(reinterpret_cast<const char *>(&v), sizeof v);
    }
    void
    put_double(double v)
    {
        // Raw IEEE-754 bits: replayed values are bit-exact, which the
        // byte-identical-resume guarantee depends on.
        put_u64(std::bit_cast<std::uint64_t>(v));
    }
    void
    put_string(const std::string &s)
    {
        put_u32(static_cast<std::uint32_t>(s.size()));
        bytes.append(s);
    }
};

/** Bounds-checked reader over one record payload. */
class Decoder
{
  public:
    Decoder(const char *data, std::size_t size)
        : p_(data), end_(data + size)
    {
    }

    std::uint8_t
    get_u8()
    {
        need(1);
        return static_cast<std::uint8_t>(*p_++);
    }
    std::uint32_t
    get_u32()
    {
        need(sizeof(std::uint32_t));
        std::uint32_t v;
        std::memcpy(&v, p_, sizeof v);
        p_ += sizeof v;
        return v;
    }
    std::uint64_t
    get_u64()
    {
        need(sizeof(std::uint64_t));
        std::uint64_t v;
        std::memcpy(&v, p_, sizeof v);
        p_ += sizeof v;
        return v;
    }
    double
    get_double()
    {
        return std::bit_cast<double>(get_u64());
    }
    std::string
    get_string()
    {
        const std::uint32_t n = get_u32();
        need(n);
        std::string s(p_, n);
        p_ += n;
        return s;
    }
    bool exhausted() const { return p_ == end_; }

  private:
    void
    need(std::size_t n)
    {
        if (static_cast<std::size_t>(end_ - p_) < n)
            throw Error("journal record payload is short");
    }

    const char *p_;
    const char *end_;
};

std::string
encode_header(const JournalHeader &header)
{
    Encoder e;
    e.bytes.append(kMagic, sizeof kMagic);
    e.put_u32(kVersion);
    e.put_u64(header.master_seed);
    e.put_string(header.sweep);
    e.put_u64(header.plan_hash);
    e.put_u32(header.shard_index);
    e.put_u32(header.shard_count);
    return e.bytes;
}

/** Decodes the header; also returns its on-disk size via @p size. */
JournalHeader
decode_header(const std::string &data, const std::string &path,
              std::size_t &size)
{
    if (data.size() < sizeof kMagic ||
        std::memcmp(data.data(), kMagic, sizeof kMagic) != 0) {
        throw Error("journal is not an anvil sweep journal")
            .with("path", path);
    }
    Decoder d(data.data() + sizeof kMagic, data.size() - sizeof kMagic);
    JournalHeader header;
    try {
        const std::uint32_t version = d.get_u32();
        if (version != kVersion) {
            throw Error("journal format version is not supported by "
                        "this build; delete the journal and rerun")
                .with("path", path)
                .with("version", std::uint64_t{version})
                .with("supported", std::uint64_t{kVersion});
        }
        header.master_seed = d.get_u64();
        header.sweep = d.get_string();
        header.plan_hash = d.get_u64();
        header.shard_index = d.get_u32();
        header.shard_count = d.get_u32();
    } catch (const Error &e) {
        if (std::string_view(e.message()).find("version") !=
            std::string_view::npos)
            throw;
        throw Error("journal header is truncated")
            .with("path", path)
            .caused_by(e);
    }
    size = encode_header(header).size();
    return header;
}

/**
 * Field-by-field header validation: exact for name and seed, and for
 * plan hash / shard identity when the caller recorded expectations.
 */
void
validate_header(const JournalHeader &got, const JournalHeader &expect,
                const std::string &path)
{
    if (got.sweep != expect.sweep ||
        got.master_seed != expect.master_seed) {
        throw Error("journal belongs to a different sweep configuration "
                    "(name or master seed mismatch); delete it or rerun "
                    "without --resume")
            .with("path", path)
            .with("journal_sweep", got.sweep)
            .with("sweep", expect.sweep)
            .with_hex("journal_master_seed", got.master_seed)
            .with_hex("master_seed", expect.master_seed);
    }
    if (expect.plan_hash != 0 && got.plan_hash != 0 &&
        got.plan_hash != expect.plan_hash) {
        throw Error("journal was written against a different sweep plan "
                    "(trial count or scenario set changed); delete it "
                    "or rerun with the original flags")
            .with("path", path)
            .with_hex("journal_plan", got.plan_hash)
            .with_hex("plan", expect.plan_hash);
    }
    if (expect.shard_count != 0 &&
        (got.shard_count != expect.shard_count ||
         got.shard_index != expect.shard_index)) {
        throw Error("journal belongs to a different shard assignment")
            .with("path", path)
            .with_shard(got.shard_index, got.shard_count)
            .with("expected_shard", std::to_string(expect.shard_index) +
                                        "/" +
                                        std::to_string(expect.shard_count));
    }
}

std::string
encode_lease_payload(std::uint64_t seq)
{
    Encoder e;
    e.put_u8(kLeaseRecord);
    e.put_u64(static_cast<std::uint64_t>(::getpid()));
    e.put_u64(seq);
    e.put_u64(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count()));
    return e.bytes;
}

/** Decodes one payload; lease records yield nullopt (liveness only). */
std::optional<JournalRecord>
decode_payload(const char *data, std::size_t size)
{
    Decoder d(data, size);
    const std::uint8_t type = d.get_u8();
    if (type == kLeaseRecord) {
        d.get_u64();  // pid
        d.get_u64();  // seq
        d.get_u64();  // wall-clock ms
        if (!d.exhausted())
            throw Error("lease record payload has trailing bytes");
        return std::nullopt;
    }
    if (type != kTrialRecord)
        throw Error("unknown journal record type")
            .with("type", std::uint64_t{type});
    JournalRecord rec;
    rec.spec.global_index = d.get_u64();
    rec.spec.trial = d.get_u64();
    rec.spec.seed = d.get_u64();
    rec.spec.scenario = d.get_string();
    rec.outcome.status = static_cast<TrialStatus>(d.get_u8());
    rec.outcome.attempts = d.get_u32();
    rec.outcome.error = d.get_string();
    const std::uint32_t nvalues = d.get_u32();
    for (std::uint32_t i = 0; i < nvalues; ++i) {
        std::string name = d.get_string();
        const double v = d.get_double();
        rec.outcome.result.set_value(std::move(name), v);
    }
    const std::uint32_t ncounters = d.get_u32();
    for (std::uint32_t i = 0; i < ncounters; ++i) {
        std::string name = d.get_string();
        const std::uint64_t v = d.get_u64();
        rec.outcome.result.set_counter(std::move(name), v);
    }
    if (d.get_u8() != 0) {
        detector::AnvilStats s;
        s.stage1_windows = d.get_u64();
        s.stage1_triggers = d.get_u64();
        s.stage2_windows = d.get_u64();
        s.detections = d.get_u64();
        s.selective_refreshes = d.get_u64();
        s.false_positive_detections = d.get_u64();
        s.false_positive_refreshes = d.get_u64();
        s.overhead = d.get_u64();
        rec.outcome.result.set_anvil(s);
    }
    if (d.get_u8() != 0) {
        dram::DramSystem::Stats s;
        s.accesses = d.get_u64();
        s.row_hits = d.get_u64();
        s.row_misses = d.get_u64();
        s.selective_refreshes = d.get_u64();
        s.refresh_stall = d.get_u64();
        rec.outcome.result.set_dram(s);
    }
    if (!d.exhausted())
        throw Error("journal record payload has trailing bytes");
    return rec;
}

void
write_all(int fd, const char *data, std::size_t size,
          const std::string &path)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw Error("journal write failed")
                .with("path", path)
                .caused_by(std::strerror(errno));
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
}

/** Frames @p payload (length prefix + checksum) and appends it. */
void
append_framed(int fd, std::mutex &mutex, const std::string &payload,
              const std::string &path)
{
    Encoder record;
    record.put_u32(static_cast<std::uint32_t>(payload.size()));
    record.put_u64(fnv1a_bytes(payload.data(), payload.size()));
    record.bytes.append(payload);

    std::lock_guard<std::mutex> lock(mutex);
    if (fd < 0)
        return;
    // One contiguous write then fsync: a crash leaves at most one torn
    // trailing record, which read_journal truncates away on resume.
    write_all(fd, record.bytes.data(), record.bytes.size(), path);
    ::fsync(fd);
}

}  // namespace

std::string
encode_journal_payload(const TrialSpec &spec, const TrialOutcome &outcome)
{
    Encoder e;
    e.put_u8(kTrialRecord);
    e.put_u64(spec.global_index);
    e.put_u64(spec.trial);
    e.put_u64(spec.seed);
    e.put_string(spec.scenario);
    e.put_u8(static_cast<std::uint8_t>(outcome.status));
    e.put_u32(outcome.attempts);
    e.put_string(outcome.error);
    const TrialResult &r = outcome.result;
    e.put_u32(static_cast<std::uint32_t>(r.values().size()));
    for (const auto &[name, v] : r.values()) {
        e.put_string(name);
        e.put_double(v);
    }
    e.put_u32(static_cast<std::uint32_t>(r.counters().size()));
    for (const auto &[name, v] : r.counters()) {
        e.put_string(name);
        e.put_u64(v);
    }
    e.put_u8(r.has_anvil() ? 1 : 0);
    if (r.has_anvil()) {
        const detector::AnvilStats &s = r.anvil();
        e.put_u64(s.stage1_windows);
        e.put_u64(s.stage1_triggers);
        e.put_u64(s.stage2_windows);
        e.put_u64(s.detections);
        e.put_u64(s.selective_refreshes);
        e.put_u64(s.false_positive_detections);
        e.put_u64(s.false_positive_refreshes);
        e.put_u64(s.overhead);
    }
    e.put_u8(r.has_dram() ? 1 : 0);
    if (r.has_dram()) {
        const dram::DramSystem::Stats &s = r.dram();
        e.put_u64(s.accesses);
        e.put_u64(s.row_hits);
        e.put_u64(s.row_misses);
        e.put_u64(s.selective_refreshes);
        e.put_u64(s.refresh_stall);
    }
    return e.bytes;
}

std::string
journal_path(const std::string &json_out)
{
    return json_out + ".journal";
}

std::string
shard_journal_path(const std::string &json_out, std::uint32_t index)
{
    return json_out + ".shard-" + std::to_string(index) + ".journal";
}

void
fsync_parent_dir(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
        std::cerr << "[runner] cannot open directory " << dir
                  << " for fsync: " << std::strerror(errno) << "\n";
        return;
    }
    if (::fsync(fd) != 0) {
        std::cerr << "[runner] cannot fsync directory " << dir << ": "
                  << std::strerror(errno) << "\n";
    }
    ::close(fd);
}

JournalWriter::~JournalWriter()
{
    close();
}

void
JournalWriter::open(const std::string &path, const JournalHeader &header,
                    bool append)
{
    close();
    path_ = path;
    const std::string encoded = encode_header(header);
    if (append) {
        fd_ = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
        if (fd_ >= 0) {
            // Existing journal: the header must belong to this sweep
            // (read_journal validated it in detail; this is the cheap
            // re-check for the append handle).
            std::string existing(encoded.size(), '\0');
            const ssize_t n = ::read(fd_, existing.data(), existing.size());
            if (n != static_cast<ssize_t>(encoded.size()) ||
                existing != encoded) {
                ::close(fd_);
                fd_ = -1;
                throw Error("journal header does not match this sweep")
                    .with("path", path);
            }
            if (::lseek(fd_, 0, SEEK_END) < 0) {
                ::close(fd_);
                fd_ = -1;
                throw Error("journal seek failed").with("path", path);
            }
            return;
        }
        if (errno != ENOENT) {
            throw Error("cannot open journal")
                .with("path", path)
                .caused_by(std::strerror(errno));
        }
        // Fall through: nothing to resume from; start a fresh journal.
    }
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0) {
        throw Error("cannot create journal")
            .with("path", path)
            .caused_by(std::strerror(errno));
    }
    write_all(fd_, encoded.data(), encoded.size(), path_);
    ::fsync(fd_);
    // A journal whose directory entry evaporates on power loss would
    // leave a committed-looking run with nothing to resume from.
    fsync_parent_dir(path_);
}

void
JournalWriter::open(const std::string &path, const std::string &sweep,
                    std::uint64_t master_seed, bool append)
{
    JournalHeader header;
    header.sweep = sweep;
    header.master_seed = master_seed;
    open(path, header, append);
}

void
JournalWriter::append(const TrialSpec &spec, const TrialOutcome &outcome)
{
    append_framed(fd_, mutex_, encode_journal_payload(spec, outcome),
                  path_);
}

void
JournalWriter::append_lease(std::uint64_t seq)
{
    append_framed(fd_, mutex_, encode_lease_payload(seq), path_);
}

void
JournalWriter::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

JournalHeader
read_journal_header(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw Error("cannot read journal").with("path", path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::size_t size = 0;
    return decode_header(data, path, size);
}

std::vector<JournalRecord>
read_journal(const std::string &path, const JournalHeader &expect)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};  // nothing journaled yet: fresh run
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();

    std::size_t header_size = 0;
    const JournalHeader got = decode_header(data, path, header_size);
    validate_header(got, expect, path);

    std::vector<JournalRecord> records;
    std::size_t offset = header_size;
    while (offset < data.size()) {
        const std::size_t record_start = offset;
        constexpr std::size_t kPrefix =
            sizeof(std::uint32_t) + sizeof(std::uint64_t);
        bool torn = data.size() - offset < kPrefix;
        std::uint32_t size = 0;
        std::uint64_t checksum = 0;
        if (!torn) {
            std::memcpy(&size, data.data() + offset, sizeof size);
            std::memcpy(&checksum, data.data() + offset + sizeof size,
                        sizeof checksum);
            torn = data.size() - offset - kPrefix < size;
        }
        if (!torn) {
            const char *payload = data.data() + offset + kPrefix;
            if (fnv1a_bytes(payload, size) != checksum) {
                torn = true;  // corrupt: treat like a torn tail
            } else {
                try {
                    if (auto rec = decode_payload(payload, size))
                        records.push_back(std::move(*rec));
                } catch (const Error &) {
                    torn = true;
                }
            }
        }
        if (torn) {
            std::cerr << "[runner] journal " << path
                      << ": torn record at byte " << record_start
                      << " truncated (recovered " << records.size()
                      << " intact record(s))\n";
            if (::truncate(path.c_str(),
                           static_cast<off_t>(record_start)) != 0) {
                throw Error("cannot truncate torn journal record")
                    .with("path", path)
                    .caused_by(std::strerror(errno));
            }
            break;
        }
        offset += kPrefix + size;
    }
    return records;
}

std::vector<JournalRecord>
read_journal(const std::string &path, const std::string &sweep,
             std::uint64_t master_seed)
{
    JournalHeader expect;
    expect.sweep = sweep;
    expect.master_seed = master_seed;
    return read_journal(path, expect);
}

}  // namespace anvil::runner
