/**
 * @file
 * Minimal streaming JSON writer for machine-readable experiment output.
 *
 * The writer produces pretty-printed JSON with insertion-ordered object
 * keys and a fixed, locale-independent number format, so that two runs
 * computing the same values emit byte-identical documents — the property
 * the parallel-vs-serial regression tests assert on.
 */
#ifndef ANVIL_RUNNER_JSON_HH
#define ANVIL_RUNNER_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace anvil::runner {

/**
 * Streaming JSON emitter.
 *
 * Usage is push-based: begin_object()/end_object(), key(), value().
 * The writer tracks nesting and inserts commas, newlines, and two-space
 * indentation itself; callers only describe structure.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /** Emits an object key; the next call must produce its value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(bool v);

    /** Shorthand for key(k) followed by value(v). */
    template <typename T>
    JsonWriter &
    field(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /**
     * Formats a double exactly as value(double) does ("%.17g", with
     * non-finite values mapped to null). Exposed so tests and ad-hoc
     * emitters share the canonical format.
     */
    static std::string format_double(double v);

    /** JSON string escaping (quotes not included). */
    static std::string escape(std::string_view s);

  private:
    enum class Frame : std::uint8_t { kObject, kArray };

    /** Emits separator + layout before a value or key. */
    void prepare_slot();
    void newline_indent();

    std::ostream &os_;
    std::vector<Frame> stack_;
    bool first_in_frame_ = true;
    bool after_key_ = false;
};

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_JSON_HH
