/**
 * @file
 * Deterministic fault injection for the experiment runner.
 *
 * A FaultPlan forces failures at chosen (scenario, trial) coordinates so
 * tests and CI can exercise every fault path of the sweep engine — error
 * boundaries, retries, watchdog timeouts, journaling, resume, and the
 * shard supervisor's crash/respawn machinery — without depending on real
 * infrastructure flaking at the right moment. All injected behaviour is
 * a pure function of the trial's identity (and, for corruption, of the
 * trial RNG's named "fault" sub-stream), so an injection is exactly
 * replayable: the same command line fails the same trial the same way
 * every run.
 *
 * CLI syntax (repeatable): --inject-fault kind@scenario:trial
 *
 *   throw        the trial throws before running (fails every attempt)
 *   flaky        the trial throws on its first attempt only — succeeds
 *                when retried, with the identical re-derived seed
 *                (exercises --retries determinism)
 *   hang         the trial spins consuming simulated events until the
 *                --trial-timeout watchdog aborts it (an error when no
 *                timeout is configured, since it would never terminate)
 *   corrupt      the trial runs normally, then its counters are
 *                perturbed by a seed-derived delta (silent corruption;
 *                exercises downstream detection such as resume
 *                byte-comparisons)
 *
 * Process-level kinds kill or wedge the whole process, exercising the
 * supervisor's shard-death paths (crash detection, lease expiry,
 * respawn, requeue):
 *
 *   abort        std::abort() mid-trial (SIGABRT — a real crash, not an
 *                exception the error boundary could catch)
 *   sigkill-self SIGKILL to the own process mid-trial (the external
 *                kill -9 / OOM-kill case, but deterministic)
 *   stall        SIGSTOP to the own process — every thread freezes,
 *                heartbeats stop, and the supervisor's lease expires
 *                (the hung-process case)
 *
 * Process-level kinds fire **once**: before crashing, the fault durably
 * creates a marker file next to the sweep's JSON destination, and a
 * respawned process that finds the marker skips the injection. Without
 * that, a deterministic crash would burn every respawn in the
 * supervisor's budget and no recovery path could ever be tested to
 * completion. (With no file JSON destination there is nowhere to put
 * the marker, so the fault fires every time.)
 */
#ifndef ANVIL_RUNNER_FAULT_HH
#define ANVIL_RUNNER_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/trial.hh"

namespace anvil::runner {

/** What an injected fault does to its trial. */
enum class FaultKind : std::uint8_t {
    kThrow,
    kFlaky,
    kHang,
    kCorrupt,
    kAbort,        ///< process-level: SIGABRT mid-trial
    kSigkillSelf,  ///< process-level: SIGKILL mid-trial
    kStall,        ///< process-level: SIGSTOP (freezes heartbeats too)
};

/** True for kinds that kill or wedge the whole process. */
bool is_process_fault(FaultKind kind);

/** One injection coordinate: fail trial @p trial of @p scenario. */
struct FaultSpec {
    FaultKind kind = FaultKind::kThrow;
    std::string scenario;
    std::uint64_t trial = 0;
};

/**
 * Parses "kind@scenario:trial" (the trial index follows the last ':',
 * so scenario names may themselves contain ':').
 * @throw Error on malformed input.
 */
FaultSpec parse_fault(const std::string &text);

/** Renders @p fault back to its CLI form (supervisor respawn lines). */
std::string to_string(const FaultSpec &fault);

/**
 * The once-marker path for a process-level fault: @p base (the sweep's
 * JSON destination) plus a deterministic suffix derived from the fault
 * coordinate.
 */
std::string fault_marker_path(const std::string &base,
                              const FaultSpec &fault);

/** The faults active for one sweep. */
class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(std::vector<FaultSpec> faults)
        : faults_(std::move(faults))
    {
    }

    bool empty() const { return faults_.empty(); }

    /**
     * Sets the directory anchor for process-fault once-markers (the
     * sweep's JSON destination). Empty = markers disabled, process
     * faults fire on every execution.
     */
    void set_marker_base(std::string base) { marker_base_ = std::move(base); }

    /** The fault aimed at @p spec, or nullptr. */
    const FaultSpec *match(const TrialSpec &spec) const;

    /**
     * Runs the pre-execution stage of @p fault for attempt @p attempt
     * (1-based): throws for kThrow always and kFlaky on the first
     * attempt; spins the watchdog down for kHang; crashes or stops the
     * process for the process-level kinds (once, when a marker base is
     * set). No-op for kCorrupt.
     */
    void inject_before(const FaultSpec &fault, const TrialContext &ctx,
                       unsigned attempt) const;

    /**
     * Runs the post-execution stage: perturbs @p result's counters and
     * values by deltas drawn from the trial's "fault" sub-stream
     * (kCorrupt only).
     */
    static void inject_after(const FaultSpec &fault, const TrialSpec &spec,
                             TrialResult &result);

  private:
    std::vector<FaultSpec> faults_;
    std::string marker_base_;
};

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_FAULT_HH
