/**
 * @file
 * Deterministic fault injection for the experiment runner.
 *
 * A FaultPlan forces failures at chosen (scenario, trial) coordinates so
 * tests and CI can exercise every fault path of the sweep engine — error
 * boundaries, retries, watchdog timeouts, journaling, resume — without
 * depending on real infrastructure flaking at the right moment. All
 * injected behaviour is a pure function of the trial's identity (and, for
 * corruption, of the trial RNG's named "fault" sub-stream), so an
 * injection is exactly replayable: the same command line fails the same
 * trial the same way every run.
 *
 * CLI syntax (repeatable): --inject-fault kind@scenario:trial
 *
 *   throw    the trial throws before running (fails every attempt)
 *   flaky    the trial throws on its first attempt only — succeeds when
 *            retried, with the identical re-derived seed (exercises
 *            --retries determinism)
 *   hang     the trial spins consuming simulated events until the
 *            --trial-timeout watchdog aborts it (an error when no
 *            timeout is configured, since it would never terminate)
 *   corrupt  the trial runs normally, then its counters are perturbed by
 *            a seed-derived delta (silent corruption; exercises
 *            downstream detection such as resume byte-comparisons)
 */
#ifndef ANVIL_RUNNER_FAULT_HH
#define ANVIL_RUNNER_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/trial.hh"

namespace anvil::runner {

/** What an injected fault does to its trial. */
enum class FaultKind : std::uint8_t { kThrow, kFlaky, kHang, kCorrupt };

/** One injection coordinate: fail trial @p trial of @p scenario. */
struct FaultSpec {
    FaultKind kind = FaultKind::kThrow;
    std::string scenario;
    std::uint64_t trial = 0;
};

/**
 * Parses "kind@scenario:trial" (the trial index follows the last ':',
 * so scenario names may themselves contain ':').
 * @throw Error on malformed input.
 */
FaultSpec parse_fault(const std::string &text);

/** The faults active for one sweep. */
class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(std::vector<FaultSpec> faults)
        : faults_(std::move(faults))
    {
    }

    bool empty() const { return faults_.empty(); }

    /** The fault aimed at @p spec, or nullptr. */
    const FaultSpec *match(const TrialSpec &spec) const;

    /**
     * Runs the pre-execution stage of @p fault for attempt @p attempt
     * (1-based): throws for kThrow always and kFlaky on the first
     * attempt; spins the watchdog down for kHang. No-op for kCorrupt.
     */
    static void inject_before(const FaultSpec &fault,
                              const TrialContext &ctx, unsigned attempt);

    /**
     * Runs the post-execution stage: perturbs @p result's counters and
     * values by deltas drawn from the trial's "fault" sub-stream
     * (kCorrupt only).
     */
    static void inject_after(const FaultSpec &fault, const TrialSpec &spec,
                             TrialResult &result);

  private:
    std::vector<FaultSpec> faults_;
};

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_FAULT_HH
