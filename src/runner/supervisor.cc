#include "runner/supervisor.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <thread>

#include "runner/journal.hh"
#include "runner/sweep.hh"

namespace anvil::runner {
namespace {

std::uint64_t
now_ms()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** The indices of @p unit not yet durable, compressed back to ranges. */
std::vector<TrialRange>
subtract_done(const std::vector<TrialRange> &unit,
              const std::vector<bool> &done)
{
    std::vector<std::uint64_t> left;
    for (const TrialRange &range : unit) {
        for (std::uint64_t i = range.first; i <= range.last; ++i) {
            if (i >= done.size() || !done[i])
                left.push_back(i);
        }
    }
    return compress_indices(left);
}

/** fork+exec a shard child; SIGKILLed if the supervisor dies first. */
pid_t
spawn_child(const std::string &exe, const std::vector<std::string> &args)
{
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const std::string &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        throw Error("fork failed for shard child")
            .with("errno", std::strerror(errno));
    }
    if (pid == 0) {
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        ::execv(exe.c_str(), argv.data());
        ::_exit(127);  // exec failure; the supervisor maps this to Error
    }
    return pid;
}

const char *
describe_status(int status, std::string &storage)
{
    if (WIFSIGNALED(status)) {
        storage = "killed by signal " + std::to_string(WTERMSIG(status));
    } else if (WIFEXITED(status)) {
        storage = "exited with status " + std::to_string(WEXITSTATUS(status));
    } else {
        storage = "ended with raw status " + std::to_string(status);
    }
    return storage.c_str();
}

struct Slot {
    enum class State { kIdle, kRunning, kBackoff, kRetired };

    State state = State::kIdle;
    pid_t pid = -1;
    /// The work unit this slot currently owns (empty when idle).
    std::vector<TrialRange> unit;
    /// Consecutive deaths while holding the current unit.
    unsigned deaths = 0;
    std::uint64_t backoff_deadline_ms = 0;
    /// Journal-growth lease state.
    off_t last_size = -1;
    std::uint64_t last_growth_ms = 0;
};

}  // namespace

std::uint64_t
backoff_delay_ms(std::uint64_t base, unsigned attempt)
{
    if (attempt == 0)
        return 0;
    const unsigned shift = std::min(attempt - 1, 16u);
    return base << shift;
}

SupervisorReport
supervise(const std::vector<TrialSpec> &plan,
          const SupervisorOptions &options)
{
    if (options.shards == 0)
        throw Error("cannot supervise a campaign with zero shards");
    const std::uint64_t lease_interval =
        options.lease_interval_ms != 0
            ? options.lease_interval_ms
            : std::max<std::uint64_t>(1, options.lease_timeout_ms / 4);

    SupervisorReport report;
    std::vector<bool> done(plan.size(), false);
    const std::uint64_t digest = plan_hash(plan);

    // Absorb whatever previous (possibly crashed) campaigns left behind:
    // every durable record in a shard journal is a trial nobody needs to
    // run again. A journal from a *different* campaign is a hard error —
    // silently mixing sweeps would corrupt the merge.
    const auto absorb_journal = [&](std::uint32_t k) {
        JournalHeader expect;
        expect.sweep = options.sweep;
        expect.master_seed = options.master_seed;
        expect.plan_hash = digest;
        expect.shard_index = k;
        expect.shard_count = options.shards;
        std::uint64_t fresh = 0;
        for (const JournalRecord &rec :
             read_journal(shard_journal_path(options.json_out, k), expect)) {
            const std::uint64_t i = rec.spec.global_index;
            if (i < done.size() && !done[i]) {
                done[i] = true;
                ++fresh;
            }
        }
        return fresh;
    };
    std::uint64_t resumed = 0;
    for (std::uint32_t k = 0; k < options.shards; ++k)
        resumed += absorb_journal(k);
    if (resumed != 0) {
        std::fprintf(stderr,
                     "[supervisor] resuming: %llu of %zu trial(s) already "
                     "durable in shard journals\n",
                     static_cast<unsigned long long>(resumed), plan.size());
    }

    // Initial assignment: slot k owns partition k, minus anything done.
    std::vector<Slot> slots(options.shards);
    std::deque<std::vector<TrialRange>> queue;
    {
        const auto partitions = partition_trials(plan.size(), options.shards);
        for (std::uint32_t k = 0; k < options.shards; ++k) {
            std::vector<TrialRange> unit =
                subtract_done(partitions[k], done);
            if (!unit.empty())
                queue.push_back(std::move(unit));
        }
    }

    const auto outstanding = [&] {
        std::uint64_t n = 0;
        for (std::uint64_t i = 0; i < done.size(); ++i)
            n += done[i] ? 0 : 1;
        return n;
    };

    const auto launch = [&](std::uint32_t k) {
        Slot &slot = slots[k];
        std::vector<std::string> args;
        args.push_back(options.exe);
        args.insert(args.end(), options.child_args.begin(),
                    options.child_args.end());
        args.push_back("--shard-index");
        args.push_back(std::to_string(k));
        args.push_back("--shard-count");
        args.push_back(std::to_string(options.shards));
        args.push_back("--shard-trials");
        args.push_back(to_string(slot.unit));
        args.push_back("--lease-interval-ms");
        args.push_back(std::to_string(lease_interval));
        slot.pid = spawn_child(options.exe, args);
        slot.state = Slot::State::kRunning;
        slot.last_size = -1;
        slot.last_growth_ms = now_ms();
        std::fprintf(stderr,
                     "[supervisor] shard %u (pid %ld): running trial(s) "
                     "%s%s\n",
                     k, static_cast<long>(slot.pid),
                     to_string(slot.unit).c_str(),
                     slot.deaths != 0 ? " (respawn)" : "");
    };

    const auto reap = [&](std::uint32_t k, int status) {
        Slot &slot = slots[k];
        slot.pid = -1;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 127) {
            throw Error("shard child could not exec the simulator binary")
                .with("exe", options.exe);
        }
        // Whatever the exit path, the journal is the truth: every record
        // in it is durable (fsync'd before the trial counted as done).
        try {
            absorb_journal(k);
        } catch (const Error &e) {
            std::fprintf(stderr, "[supervisor] shard %u: journal unreadable "
                         "after exit: %s\n", k, e.what());
        }
        std::vector<TrialRange> remaining = subtract_done(slot.unit, done);
        if (remaining.empty()) {
            // Unit complete. Nonzero exits (trial failures) still count:
            // the failed trials are recorded, which is all a shard owes.
            slot.unit.clear();
            slot.deaths = 0;
            slot.state = Slot::State::kIdle;
            return;
        }
        std::string why;
        describe_status(status, why);
        slot.unit = std::move(remaining);
        ++slot.deaths;
        if (slot.deaths > options.respawn_budget) {
            std::fprintf(stderr,
                         "[supervisor] shard %u: %s with trial(s) %s "
                         "outstanding; respawn budget (%u) exhausted — "
                         "retiring slot and requeueing its trials\n",
                         k, why.c_str(), to_string(slot.unit).c_str(),
                         options.respawn_budget);
            queue.push_back(std::move(slot.unit));
            slot.unit.clear();
            slot.state = Slot::State::kRetired;
            ++report.retired_slots;
            ++report.requeues;
            return;
        }
        const std::uint64_t delay =
            backoff_delay_ms(options.backoff_ms, slot.deaths);
        std::fprintf(stderr,
                     "[supervisor] shard %u: %s with trial(s) %s "
                     "outstanding; respawning in %llu ms (death %u/%u)\n",
                     k, why.c_str(), to_string(slot.unit).c_str(),
                     static_cast<unsigned long long>(delay), slot.deaths,
                     options.respawn_budget);
        slot.state = Slot::State::kBackoff;
        slot.backoff_deadline_ms = now_ms() + delay;
    };

    const auto shutdown_children = [&] {
        for (std::uint32_t k = 0; k < slots.size(); ++k) {
            Slot &slot = slots[k];
            if (slot.state != Slot::State::kRunning)
                continue;
            // SIGCONT first: a stopped (wedged-by-SIGSTOP) child cannot
            // handle the drain request otherwise.
            ::kill(slot.pid, SIGCONT);
            ::kill(slot.pid, SIGTERM);
        }
        for (std::uint32_t k = 0; k < slots.size(); ++k) {
            Slot &slot = slots[k];
            if (slot.state != Slot::State::kRunning)
                continue;
            int status = 0;
            while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {
            }
            reap(k, status);
        }
    };

    while (true) {
        if (shutdown_requested()) {
            std::fprintf(stderr, "[supervisor] shutdown requested; "
                         "draining shard children\n");
            shutdown_children();
            report.interrupted = true;
            break;
        }

        const std::uint64_t now = now_ms();
        bool any_running = false;
        bool any_waiting = false;

        for (std::uint32_t k = 0; k < slots.size(); ++k) {
            Slot &slot = slots[k];
            switch (slot.state) {
            case Slot::State::kRunning: {
                int status = 0;
                const pid_t got = ::waitpid(slot.pid, &status, WNOHANG);
                if (got == slot.pid) {
                    reap(k, status);
                    // A reap into backoff still holds work: without this
                    // the loop could see every other slot idle and exit
                    // with the respawn pending.
                    if (slot.state == Slot::State::kBackoff)
                        any_waiting = true;
                    break;
                }
                // Lease check: a live shard's journal keeps growing
                // (trial records or heartbeats). Stalled past the lease
                // timeout means wedged — SIGKILL works even on a child
                // stopped by SIGSTOP, which SIGTERM cannot reach.
                struct stat st {};
                const off_t size =
                    ::stat(shard_journal_path(options.json_out, k).c_str(),
                           &st) == 0
                        ? st.st_size
                        : -1;
                if (size != slot.last_size) {
                    slot.last_size = size;
                    slot.last_growth_ms = now;
                } else if (now - slot.last_growth_ms >
                           options.lease_timeout_ms) {
                    std::fprintf(
                        stderr,
                        "[supervisor] shard %u (pid %ld): lease expired "
                        "(journal silent for %llu ms) — killing wedged "
                        "shard\n",
                        k, static_cast<long>(slot.pid),
                        static_cast<unsigned long long>(
                            now - slot.last_growth_ms));
                    ::kill(slot.pid, SIGKILL);
                    slot.last_growth_ms = now;  // don't re-kill every poll
                }
                any_running = true;
                break;
            }
            case Slot::State::kBackoff:
                if (now >= slot.backoff_deadline_ms) {
                    ++report.respawns;
                    launch(k);
                    any_running = true;
                } else {
                    any_waiting = true;
                }
                break;
            case Slot::State::kIdle:
                if (!queue.empty()) {
                    slot.unit = subtract_done(queue.front(), done);
                    queue.pop_front();
                    slot.deaths = 0;
                    if (slot.unit.empty())
                        break;  // requeued unit finished elsewhere
                    launch(k);
                    any_running = true;
                }
                break;
            case Slot::State::kRetired:
                break;
            }
        }

        if (!any_running && !any_waiting && queue.empty())
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.poll_ms));
    }

    report.outstanding = outstanding();
    report.complete = report.outstanding == 0 && !report.interrupted;
    if (report.complete) {
        std::fprintf(stderr,
                     "[supervisor] campaign complete: %zu trial(s) durable "
                     "across %u shard journal(s), %u respawn(s), %u "
                     "requeue(s)\n",
                     plan.size(), options.shards, report.respawns,
                     report.requeues);
    } else {
        std::fprintf(stderr,
                     "[supervisor] campaign incomplete: %llu trial(s) "
                     "outstanding (%s); shard journals kept — rerun "
                     "`supervise` to continue\n",
                     static_cast<unsigned long long>(report.outstanding),
                     report.interrupted ? "shutdown requested"
                                        : "every slot retired");
    }
    return report;
}

}  // namespace anvil::runner
