/**
 * @file
 * Deterministic cross-trial aggregation and JSON report emission.
 *
 * The sink is fed completed trials strictly in sweep order (the Sweep
 * buffers parallel completions into per-trial slots first), so the
 * aggregates — and therefore the emitted JSON — are bit-identical
 * whether the trials ran on one thread or sixteen.
 */
#ifndef ANVIL_RUNNER_RESULT_SINK_HH
#define ANVIL_RUNNER_RESULT_SINK_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hh"
#include "runner/trial.hh"

namespace anvil::runner {

/**
 * Diagnostics of one failed (or timed-out) trial, preserved in the
 * sweep JSON so a failure is a record, not just a counter. The error
 * string is the rendered anvil::Error cause chain, which is a pure
 * function of the trial — so JSON stays byte-stable across reruns and
 * journal replays.
 */
struct TrialFailure {
    std::uint64_t trial = 0;
    std::uint64_t seed = 0;
    TrialStatus status = TrialStatus::kFailed;
    std::uint32_t attempts = 1;
    std::string error;
};

/** Everything accumulated for one scenario (one row of a paper table). */
class ScenarioAggregate
{
  public:
    explicit ScenarioAggregate(std::string name) : name_(std::move(name)) {}

    /** Folds one trial in (order matters; the sink guarantees it). */
    void add(const TrialSpec &spec, const TrialOutcome &outcome);

    /** Attaches a derived scalar (computed by the bench from aggregates). */
    void set_derived(std::string name, double v);

    const std::string &name() const { return name_; }
    std::uint64_t trials() const { return trials_; }
    std::uint64_t errors() const { return errors_; }
    const std::vector<TrialFailure> &failures() const { return failures_; }

    /** Distribution of a named value, or nullptr if never recorded. */
    const RunningStat *value_stat(std::string_view name) const;

    /** Sum of a named counter over all trials (0 if never recorded). */
    std::uint64_t counter_sum(std::string_view name) const;

    /** Mean of a named value, or @p fallback when it was never recorded. */
    double value_mean(std::string_view name, double fallback = 0.0) const;

    const detector::AnvilStats &anvil() const { return anvil_; }
    bool has_anvil() const { return has_anvil_; }
    const dram::DramSystem::Stats &dram() const { return dram_; }
    bool has_dram() const { return has_dram_; }

    /** Serializes this scenario as one JSON object. */
    void write_json(class JsonWriter &json) const;

  private:
    struct CounterAgg {
        std::string name;
        std::uint64_t sum = 0;
        RunningStat per_trial;
    };
    struct ValueAgg {
        std::string name;
        RunningStat stat;
    };

    std::string name_;
    std::uint64_t trials_ = 0;
    std::uint64_t errors_ = 0;
    std::vector<TrialFailure> failures_;  ///< one per failed trial
    std::vector<ValueAgg> values_;      ///< insertion order
    std::vector<CounterAgg> counters_;  ///< insertion order
    std::vector<NamedValue> derived_;   ///< insertion order
    detector::AnvilStats anvil_;
    dram::DramSystem::Stats dram_;
    bool has_anvil_ = false;
    bool has_dram_ = false;
};

/** Orders scenarios and writes the sweep-level JSON document. */
class ResultSink
{
  public:
    /** Sweep-level metadata echoed into the JSON header. */
    void
    set_meta(std::string sweep_name, std::uint64_t master_seed)
    {
        sweep_name_ = std::move(sweep_name);
        master_seed_ = master_seed;
    }

    /**
     * Folds in one finished trial (called in deterministic order).
     * Skipped outcomes must not reach the sink: a skipped trial is
     * absent from the output, never an empty record.
     */
    void add(const TrialSpec &spec, const TrialOutcome &outcome);

    /** Scenario accessor; creates the scenario on first use. */
    ScenarioAggregate &scenario(std::string_view name);

    /** Read-only lookup; nullptr when absent. */
    const ScenarioAggregate *find(std::string_view name) const;

    /** Attaches a derived scalar to @p scenario_name. */
    void set_derived(std::string_view scenario_name, std::string name,
                     double v);

    const std::vector<ScenarioAggregate> &scenarios() const
    {
        return scenarios_;
    }
    std::uint64_t total_trials() const { return total_trials_; }
    std::uint64_t total_errors() const { return total_errors_; }

    /**
     * Emits the whole sweep as one JSON document (schema
     * "anvil-sweep-v1"). Deliberately excludes wall-clock time and job
     * count so output is invariant under parallelism.
     */
    void write_json(std::ostream &os) const;

  private:
    std::string sweep_name_ = "sweep";
    std::uint64_t master_seed_ = 0;
    std::vector<ScenarioAggregate> scenarios_;  ///< first-use order
    std::uint64_t total_trials_ = 0;
    std::uint64_t total_errors_ = 0;
};

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_RESULT_SINK_HH
