#include "runner/trial.hh"

#include "common/rng.hh"

namespace anvil::runner {
namespace {

/** FNV-1a 64-bit over a string — stable, platform-independent. */
std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace

std::uint64_t
trial_seed(std::uint64_t master_seed, std::string_view scenario,
           std::uint64_t trial)
{
    // Two splitmix64 rounds fully avalanche the (master, scenario, trial)
    // triple; a plain XOR would let correlated inputs collide.
    return splitmix64(splitmix64(master_seed ^ fnv1a(scenario)) + trial);
}

std::uint64_t
sub_seed(std::uint64_t seed, std::string_view stream)
{
    return splitmix64(seed ^ fnv1a(stream));
}

std::uint64_t
plan_hash(const std::vector<TrialSpec> &plan)
{
    // FNV-1a folded over every trial's identity. Any change to the
    // scenario set, trial counts, seeds, or ordering produces a
    // different hash, so two journals with equal plan hashes hold
    // interchangeable facts about the same deterministic computation.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (const TrialSpec &spec : plan) {
        h ^= fnv1a(spec.scenario);
        h *= 0x100000001b3ULL;
        mix(spec.trial);
        mix(spec.seed);
        mix(spec.global_index);
    }
    return h;
}

std::string_view
to_string(TrialStatus status)
{
    switch (status) {
      case TrialStatus::kOk: return "ok";
      case TrialStatus::kFailed: return "failed";
      case TrialStatus::kTimedOut: return "timed_out";
      case TrialStatus::kSkipped: return "skipped";
    }
    return "unknown";
}

}  // namespace anvil::runner
