#include "runner/trial.hh"

#include "common/rng.hh"

namespace anvil::runner {
namespace {

/** FNV-1a 64-bit over a string — stable, platform-independent. */
std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace

std::uint64_t
trial_seed(std::uint64_t master_seed, std::string_view scenario,
           std::uint64_t trial)
{
    // Two splitmix64 rounds fully avalanche the (master, scenario, trial)
    // triple; a plain XOR would let correlated inputs collide.
    return splitmix64(splitmix64(master_seed ^ fnv1a(scenario)) + trial);
}

std::uint64_t
sub_seed(std::uint64_t seed, std::string_view stream)
{
    return splitmix64(seed ^ fnv1a(stream));
}

std::string_view
to_string(TrialStatus status)
{
    switch (status) {
      case TrialStatus::kOk: return "ok";
      case TrialStatus::kFailed: return "failed";
      case TrialStatus::kTimedOut: return "timed_out";
      case TrialStatus::kSkipped: return "skipped";
    }
    return "unknown";
}

}  // namespace anvil::runner
