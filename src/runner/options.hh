/**
 * @file
 * Shared command-line interface of the experiment-runner benchmarks.
 *
 * Every migrated bench binary accepts the same sweep-control flags
 * (documented in EXPERIMENTS.md):
 *
 *   --jobs N           worker threads (default: one per hardware thread)
 *   --master-seed N    seed root for all trials (default 0x5eed)
 *   --trials N         override each scenario's default trial count
 *   --json-out PATH    write the aggregated JSON report (PATH or "-")
 *   --replay-trial N   run only global trial N, serially (debugging)
 *   --retries N        re-run failed trials up to N extra times
 *   --trial-timeout N  per-trial simulated-event budget (0 = unlimited)
 *   --resume           replay <json-out>.journal; run only what's missing
 *   --inject-fault S   deterministic fault "kind@scenario:trial" (CI/tests)
 *   --help             usage
 *
 * Sharded-campaign flags (EXPERIMENTS.md "Sharded runs"): a shard child
 * is selected with --shard-index/--shard-count (+ optional
 * --shard-trials A-B[,C-D...] and --lease-interval-ms), and a supervisor
 * is tuned with --shards, --respawn-budget, --lease-timeout-ms,
 * --backoff-ms and --shard-jobs. `anvil-sim merge` accepts --check.
 *
 * Unrecognized non-flag arguments are passed through as positionals so
 * benches keep their historical argument (e.g. seconds per cell).
 */
#ifndef ANVIL_RUNNER_OPTIONS_HH
#define ANVIL_RUNNER_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/sweep.hh"

namespace anvil::runner {

/** Supervisor tuning knobs (anvil-sim supervise). */
struct SupervisorCli {
    std::uint32_t shards = 4;            ///< --shards
    unsigned respawn_budget = 3;         ///< --respawn-budget
    std::uint64_t lease_timeout_ms = 10000;  ///< --lease-timeout-ms
    std::uint64_t backoff_ms = 200;      ///< --backoff-ms
    /// --shard-jobs: worker threads per shard child; 0 = divide the
    /// machine's hardware threads evenly across the shards.
    unsigned shard_jobs = 0;
};

/** Parsed command line of a runner-based bench binary. */
struct CliOptions {
    SweepOptions sweep;
    /// --trials override; 0 keeps each bench's default.
    std::uint64_t trials = 0;
    /// Non-flag arguments, in order.
    std::vector<std::string> positional;
    /// Supervisor knobs (meaningful to `anvil-sim supervise` only).
    SupervisorCli supervisor;
    /// --check: merge validates shard journals without writing a report.
    bool check = false;

    /** Trial count: the --trials override, else @p bench_default. */
    std::uint64_t
    trials_or(std::uint64_t bench_default) const
    {
        return trials != 0 ? trials : bench_default;
    }

    /** Positional @p index parsed as double, else @p fallback. */
    double positional_double(std::size_t index, double fallback) const;

    /**
     * Parses argv. On --help prints usage (with @p extra_usage appended)
     * and exits 0; on a malformed flag prints usage and exits 2.
     */
    static CliOptions parse(int argc, char **argv,
                            const std::string &extra_usage = "");
};

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_OPTIONS_HH
