#include "runner/sweep.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <iostream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <unistd.h>

#include "runner/journal.hh"
#include "runner/thread_pool.hh"

namespace anvil::runner {
namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void
shutdown_signal_handler(int)
{
    // Async-signal-safe: a lock-free atomic store and nothing else.
    g_shutdown.store(true, std::memory_order_relaxed);
}

/** True when trial outcomes should be journaled for these options. */
bool
journaling_enabled(const SweepOptions &options)
{
    return !options.replay_trial && !options.json_out.empty() &&
           options.json_out != "-";
}

/**
 * Appends a lease heartbeat to @p journal every @p interval_ms until
 * stopped, so a supervisor watching the journal grow can distinguish a
 * shard mid-long-trial from one that is wedged (a stopped or deadlocked
 * process stops beating).
 */
class LeaseHeartbeat
{
  public:
    LeaseHeartbeat(JournalWriter &journal, std::uint64_t interval_ms)
    {
        if (interval_ms == 0 || !journal.is_open())
            return;
        thread_ = std::thread([this, &journal, interval_ms] {
            std::uint64_t seq = 0;
            std::unique_lock<std::mutex> lock(mutex_);
            while (!cv_.wait_for(lock,
                                 std::chrono::milliseconds(interval_ms),
                                 [this] { return stop_; })) {
                try {
                    journal.append_lease(seq++);
                } catch (const Error &) {
                    // Heartbeats are liveness evidence, not data; a
                    // failing append means the journal itself is dying
                    // and the supervisor will see the silence.
                    return;
                }
            }
        });
    }

    ~LeaseHeartbeat()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

std::string
boundary_error(const char *what_happened, const TrialSpec &spec,
               const std::exception &cause)
{
    return Error(what_happened)
        .with("scenario", spec.scenario)
        .with("trial", spec.trial)
        .with_hex("seed", spec.seed)
        .caused_by(cause)
        .what();
}

/**
 * The per-trial error boundary: runs @p fn with fault injection, the
 * watchdog, and deterministic retries. Never throws — every failure mode
 * becomes a structured outcome.
 */
TrialOutcome
run_one(const TrialSpec &spec, const TrialFn &fn,
        const SweepOptions &options, const FaultPlan &faults)
{
    const FaultSpec *fault = faults.match(spec);
    const unsigned max_attempts = 1 + options.retries;
    TrialOutcome outcome;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        outcome = TrialOutcome{};
        outcome.attempts = attempt;
        try {
            // The context (and therefore every seed stream) is re-derived
            // identically on every attempt: a retry that succeeds yields
            // the result the trial would always have produced.
            TrialContext ctx(spec);
            ctx.watchdog().arm(options.trial_timeout);
            if (fault != nullptr)
                faults.inject_before(*fault, ctx, attempt);
            outcome.result = fn(ctx);
            if (fault != nullptr)
                FaultPlan::inject_after(*fault, spec, outcome.result);
            outcome.status = TrialStatus::kOk;
            return outcome;
        } catch (const TimeoutError &e) {
            // Deterministic by construction: a retry would burn the whole
            // budget again and time out at the identical event, so don't.
            outcome.status = TrialStatus::kTimedOut;
            outcome.error = boundary_error("trial timed out", spec, e);
            return outcome;
        } catch (const std::exception &e) {
            outcome.status = TrialStatus::kFailed;
            outcome.error = boundary_error("trial failed", spec, e);
        } catch (...) {
            outcome.status = TrialStatus::kFailed;
            outcome.error = boundary_error(
                "trial failed", spec, Error("unknown exception"));
        }
    }
    return outcome;
}

}  // namespace

void
request_shutdown()
{
    g_shutdown.store(true, std::memory_order_relaxed);
}

bool
shutdown_requested()
{
    return g_shutdown.load(std::memory_order_relaxed);
}

void
clear_shutdown()
{
    g_shutdown.store(false, std::memory_order_relaxed);
}

void
install_signal_handlers()
{
    std::signal(SIGINT, shutdown_signal_handler);
    std::signal(SIGTERM, shutdown_signal_handler);
}

bool
ShardAssignment::owns(std::uint64_t index) const
{
    for (const TrialRange &range : ranges) {
        if (range.contains(index))
            return true;
    }
    return false;
}

Sweep::Sweep(SweepOptions options) : options_(std::move(options)) {}

void
Sweep::add_scenario(std::string scenario, std::uint64_t trials, TrialFn fn)
{
    scenarios_.push_back(
        Scenario{std::move(scenario), trials, std::move(fn)});
}

std::vector<Sweep::Pending>
Sweep::plan() const
{
    std::vector<Pending> pending;
    std::uint64_t global = 0;
    for (const Scenario &s : scenarios_) {
        for (std::uint64_t t = 0; t < s.trials; ++t, ++global) {
            TrialSpec spec;
            spec.scenario = s.name;
            spec.trial = t;
            spec.seed = trial_seed(options_.master_seed, s.name, t);
            spec.global_index = global;
            pending.push_back(Pending{std::move(spec), &s.fn});
        }
    }
    return pending;
}

std::vector<TrialSpec>
Sweep::plan_specs() const
{
    std::vector<TrialSpec> specs;
    for (const Pending &p : plan())
        specs.push_back(p.spec);
    return specs;
}

std::uint64_t
Sweep::plan_digest() const
{
    return plan_hash(plan_specs());
}

SweepRun
Sweep::run()
{
    std::vector<Pending> pending = plan();

    if (options_.replay_trial) {
        const std::uint64_t want = *options_.replay_trial;
        const std::size_t total = pending.size();
        std::vector<Pending> one;
        for (Pending &p : pending) {
            if (p.spec.global_index == want)
                one.push_back(std::move(p));
        }
        pending = std::move(one);
        if (pending.empty()) {
            std::cerr << "[runner] " << options_.name << ": --replay-trial "
                      << want << " is out of range (sweep has " << total
                      << " trial(s), indices 0.." << (total ? total - 1 : 0)
                      << "); nothing to run\n";
        }
    }

    SweepRun run;
    run.outcomes.resize(pending.size());
    std::vector<bool> replayed(pending.size(), false);

    // A sharded run executes only its assigned ranges; everything else
    // in the plan belongs to sibling processes. `mine[i]` is the
    // ownership mask (all-true when unsharded).
    const ShardAssignment *shard =
        options_.shard ? &*options_.shard : nullptr;
    std::vector<bool> mine(pending.size(), true);
    if (shard != nullptr) {
        for (std::size_t i = 0; i < pending.size(); ++i)
            mine[i] = shard->owns(pending[i].spec.global_index);
    }

    // Checkpoint/resume: replay the journal, validate each record against
    // the plan (the sweep definition must not have changed under us), and
    // pre-fill those slots so only the remainder executes. A shard always
    // resumes from its own journal — that is how a respawned child picks
    // up where its predecessor crashed.
    const bool journaling = journaling_enabled(options_);
    const bool resuming = options_.resume || shard != nullptr;
    JournalHeader header;
    header.sweep = options_.name;
    header.master_seed = options_.master_seed;
    header.plan_hash = plan_digest();
    if (shard != nullptr) {
        header.shard_index = shard->index;
        header.shard_count = shard->count;
    }
    const std::string jpath =
        shard != nullptr
            ? shard_journal_path(options_.json_out, shard->index)
            : journal_path(options_.json_out);
    if (resuming && journaling) {
        for (JournalRecord &rec : read_journal(jpath, header)) {
            const std::uint64_t i = rec.spec.global_index;
            if (i >= pending.size() ||
                pending[i].spec.scenario != rec.spec.scenario ||
                pending[i].spec.trial != rec.spec.trial ||
                pending[i].spec.seed != rec.spec.seed) {
                throw Error("journal record does not match the sweep plan "
                            "(the sweep definition or flags changed); "
                            "delete the journal or rerun without --resume")
                    .with("path", jpath)
                    .with("record_trial", rec.spec.global_index)
                    .with("record_scenario", rec.spec.scenario);
            }
            run.outcomes[i] = std::move(rec.outcome);
            replayed[i] = true;
            // Records outside this shard's assignment (an earlier
            // requeue unit run by the same slot) are durable facts the
            // merge will collect; they are not "resumed work" here.
            if (mine[i])
                ++run.resumed;
        }
    }

    JournalWriter journal;
    if (journaling) {
        try {
            journal.open(jpath, header, /*append=*/resuming);
        } catch (const Error &e) {
            // A journal we cannot resume from is a configuration fault,
            // and a shard without a journal would do work the merge can
            // never see; a journal a plain sweep merely cannot create is
            // not worth killing the run over — run unjournaled and let
            // the final report write surface the unwritable path as its
            // own exit code.
            if (options_.resume || shard != nullptr)
                throw;
            std::cerr << "[runner] " << options_.name
                      << ": running without a checkpoint journal: "
                      << e.what() << "\n";
        }
    }

    const unsigned jobs =
        options_.replay_trial
            ? 1u
            : (options_.jobs != 0 ? options_.jobs
                                  : ThreadPool::default_threads());
    run.jobs_used = jobs;

    FaultPlan faults(options_.faults);
    if (journaling)
        faults.set_marker_base(options_.json_out);
    // Shards prove liveness between trial completions; a supervisor
    // whose lease on this journal expires declares the shard hung.
    LeaseHeartbeat heartbeat(
        journal, shard != nullptr ? shard->lease_interval_ms : 0);
    const auto execute = [&](std::size_t i) {
        // The drain point: a shutdown request skips every trial that has
        // not started yet; in-flight trials run to completion.
        if (shutdown_requested()) {
            run.outcomes[i].status = TrialStatus::kSkipped;
            return;
        }
        run.outcomes[i] =
            run_one(pending[i].spec, *pending[i].fn, options_, faults);
        if (journaling) {
            // append() no-ops (under its lock) once the journal is
            // closed — is_open() here would race with the close below.
            try {
                journal.append(pending[i].spec, run.outcomes[i]);
            } catch (const Error &e) {
                // Journal I/O died mid-run (disk full, volume gone).
                // Checkpointing is best-effort: keep the sweep alive,
                // stop journaling — a crash from here is no longer
                // resumable, which beats losing the run now.
                journal.close();
                std::cerr << "[runner] " << options_.name
                          << ": checkpoint journaling disabled: "
                          << e.what() << "\n";
            }
        }
    };

    const auto wall_start = std::chrono::steady_clock::now();
    if (jobs <= 1 || pending.size() <= 1) {
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (mine[i] && !replayed[i])
                execute(i);
        }
    } else {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < pending.size(); ++i) {
            // Each task writes only its own pre-allocated slot;
            // wait_idle() publishes all slots to this thread.
            if (mine[i] && !replayed[i])
                pool.submit([&execute, i] { execute(i); });
        }
        pool.wait_idle();
    }
    run.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
    journal.close();

    // Aggregate strictly in plan order: output is independent of the
    // completion order above, and of which trials were journal replays.
    // A shard aggregates (and reports) only its assigned trials — its
    // durable output is the journal, and the merge owns the JSON.
    run.sink.set_meta(options_.name, options_.master_seed);
    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (!mine[i])
            continue;
        const TrialOutcome &outcome = run.outcomes[i];
        switch (outcome.status) {
          case TrialStatus::kSkipped:
              ++run.skipped;
              continue;
          case TrialStatus::kOk:
              ++run.completed;
              break;
          case TrialStatus::kFailed:
          case TrialStatus::kTimedOut:
              ++run.failed;
              break;
        }
        run.sink.add(pending[i].spec, outcome);
    }

    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (!mine[i])
            continue;
        const TrialOutcome &outcome = run.outcomes[i];
        if (!outcome.failed())
            continue;
        std::cerr << "[runner] " << options_.name << " trial #"
                  << pending[i].spec.global_index << " ("
                  << pending[i].spec.scenario << "/"
                  << pending[i].spec.trial << ") "
                  << to_string(outcome.status);
        if (outcome.attempts > 1)
            std::cerr << " after " << outcome.attempts << " attempts";
        std::cerr << ": " << outcome.error
                  << " (replay with --jobs 1 --replay-trial "
                  << pending[i].spec.global_index << ")\n";
    }
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < pending.size(); ++i)
        assigned += mine[i] ? 1 : 0;
    std::cerr << "[runner] " << options_.name;
    if (shard != nullptr)
        std::cerr << " shard " << shard->index << "/" << shard->count;
    std::cerr << ": " << assigned << " trial(s) on " << jobs
              << " job(s) in " << run.wall_seconds << " s";
    if (run.resumed != 0)
        std::cerr << ", " << run.resumed << " resumed from journal";
    if (run.failed != 0)
        std::cerr << ", " << run.failed << " failed";
    if (run.skipped != 0)
        std::cerr << ", " << run.skipped << " skipped (shutdown drain)";
    std::cerr << "\n";
    return run;
}

namespace {

/**
 * Durably commits @p data to @p path: write a sibling temp file, fsync
 * it, then rename over the destination — a crash leaves either the old
 * committed artifact or the new one, never a torn hybrid.
 */
bool
atomic_write_file(const std::string &path, const std::string &data)
{
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        std::cerr << "[runner] cannot open " << tmp
                  << " for writing: " << std::strerror(errno) << "\n";
        return false;
    }
    const char *p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::cerr << "[runner] error writing " << tmp << ": "
                      << std::strerror(errno) << "\n";
            ::close(fd);
            std::remove(tmp.c_str());
            return false;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::cerr << "[runner] cannot rename " << tmp << " to " << path
                  << ": " << std::strerror(errno) << "\n";
        std::remove(tmp.c_str());
        return false;
    }
    // The rename is only durable once the directory entry is: without
    // this, a power cut after "commit" could leave neither the report
    // nor (the journal having been removed next) anything to resume.
    fsync_parent_dir(path);
    return true;
}

}  // namespace

bool
write_json_output(const ResultSink &sink, const SweepOptions &options)
{
    if (options.json_out.empty())
        return true;
    if (options.json_out == "-") {
        sink.write_json(std::cout);
        return true;
    }
    std::ostringstream out;
    sink.write_json(out);
    return atomic_write_file(options.json_out, out.str());
}

int
finish_sweep(const SweepRun &run, const SweepOptions &options)
{
    const bool journaling = journaling_enabled(options);
    if (!run.complete()) {
        std::cerr << "[runner] " << options.name << ": interrupted — "
                  << run.skipped << " trial(s) not run";
        if (journaling) {
            std::cerr << "; resume with --resume (journal: "
                      << journal_path(options.json_out) << ")";
        }
        std::cerr << "\n";
        // No JSON: a partial report must never overwrite a committed one.
        return kExitPartial;
    }
    if (!write_json_output(run.sink, options))
        return kExitJsonError;
    // The report is durably committed; the checkpoint is now redundant.
    if (journaling)
        std::remove(journal_path(options.json_out).c_str());
    return run.failed != 0 ? kExitTrialFailure : kExitOk;
}

int
finish_shard(const SweepRun &run)
{
    if (!run.complete())
        return kExitPartial;
    return run.failed != 0 ? kExitTrialFailure : kExitOk;
}

}  // namespace anvil::runner

