#include "runner/sweep.hh"

#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>

#include "runner/thread_pool.hh"

namespace anvil::runner {
namespace {

TrialResult
run_one(const TrialSpec &spec, const TrialFn &fn)
{
    try {
        return fn(TrialContext(spec));
    } catch (const std::exception &e) {
        TrialResult result;
        result.set_error(e.what());
        return result;
    } catch (...) {
        TrialResult result;
        result.set_error("unknown exception");
        return result;
    }
}

}  // namespace

Sweep::Sweep(SweepOptions options) : options_(std::move(options)) {}

void
Sweep::add_scenario(std::string scenario, std::uint64_t trials, TrialFn fn)
{
    scenarios_.push_back(
        Scenario{std::move(scenario), trials, std::move(fn)});
}

std::vector<Sweep::Pending>
Sweep::plan() const
{
    std::vector<Pending> pending;
    std::uint64_t global = 0;
    for (const Scenario &s : scenarios_) {
        for (std::uint64_t t = 0; t < s.trials; ++t, ++global) {
            TrialSpec spec;
            spec.scenario = s.name;
            spec.trial = t;
            spec.seed = trial_seed(options_.master_seed, s.name, t);
            spec.global_index = global;
            pending.push_back(Pending{std::move(spec), &s.fn});
        }
    }
    return pending;
}

ResultSink
Sweep::run()
{
    std::vector<Pending> pending = plan();

    if (options_.replay_trial) {
        const std::uint64_t want = *options_.replay_trial;
        const std::size_t total = pending.size();
        std::vector<Pending> one;
        for (Pending &p : pending) {
            if (p.spec.global_index == want)
                one.push_back(std::move(p));
        }
        pending = std::move(one);
        if (pending.empty()) {
            std::cerr << "[runner] " << options_.name << ": --replay-trial "
                      << want << " is out of range (sweep has " << total
                      << " trial(s), indices 0.." << (total ? total - 1 : 0)
                      << "); nothing to run\n";
        }
    }

    const unsigned jobs =
        options_.replay_trial
            ? 1u
            : (options_.jobs != 0 ? options_.jobs
                                  : ThreadPool::default_threads());
    jobs_used_ = jobs;

    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<TrialResult> results(pending.size());
    if (jobs <= 1 || pending.size() <= 1) {
        for (std::size_t i = 0; i < pending.size(); ++i)
            results[i] = run_one(pending[i].spec, *pending[i].fn);
    } else {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < pending.size(); ++i) {
            // Each task writes only its own pre-allocated slot;
            // wait_idle() publishes all slots to this thread.
            pool.submit([this, &pending, &results, i] {
                results[i] = run_one(pending[i].spec, *pending[i].fn);
            });
        }
        pool.wait_idle();
    }
    wall_seconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();

    // Aggregate strictly in plan order: output is independent of the
    // completion order above.
    ResultSink sink;
    sink.set_meta(options_.name, options_.master_seed);
    for (std::size_t i = 0; i < pending.size(); ++i)
        sink.add(pending[i].spec, results[i]);

    for (std::size_t i = 0; i < pending.size(); ++i) {
        if (results[i].failed()) {
            std::cerr << "[runner] " << options_.name << " trial #"
                      << pending[i].spec.global_index << " ("
                      << pending[i].spec.scenario << "/"
                      << pending[i].spec.trial
                      << ") failed: " << results[i].error()
                      << " (replay with --jobs 1 --replay-trial "
                      << pending[i].spec.global_index << ")\n";
        }
    }
    std::cerr << "[runner] " << options_.name << ": " << pending.size()
              << " trial(s) on " << jobs << " job(s) in " << wall_seconds_
              << " s\n";
    return sink;
}

bool
write_json_output(const ResultSink &sink, const SweepOptions &options)
{
    if (options.json_out.empty())
        return true;
    if (options.json_out == "-") {
        sink.write_json(std::cout);
        return true;
    }
    std::ofstream out(options.json_out);
    if (!out) {
        std::cerr << "[runner] cannot open " << options.json_out
                  << " for writing\n";
        return false;
    }
    sink.write_json(out);
    if (!out) {
        std::cerr << "[runner] error writing " << options.json_out << "\n";
        return false;
    }
    return true;
}

}  // namespace anvil::runner
