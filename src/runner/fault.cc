#include "runner/fault.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/rng.hh"
#include "runner/journal.hh"

namespace anvil::runner {
namespace {

FaultKind
parse_kind(const std::string &text)
{
    if (text == "throw")
        return FaultKind::kThrow;
    if (text == "flaky")
        return FaultKind::kFlaky;
    if (text == "hang")
        return FaultKind::kHang;
    if (text == "corrupt")
        return FaultKind::kCorrupt;
    if (text == "abort")
        return FaultKind::kAbort;
    if (text == "sigkill-self")
        return FaultKind::kSigkillSelf;
    if (text == "stall")
        return FaultKind::kStall;
    throw Error("unknown fault kind (expected throw, flaky, hang, "
                "corrupt, abort, sigkill-self, or stall)")
        .with("kind", text);
}

const char *
kind_name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kThrow: return "throw";
      case FaultKind::kFlaky: return "flaky";
      case FaultKind::kHang: return "hang";
      case FaultKind::kCorrupt: return "corrupt";
      case FaultKind::kAbort: return "abort";
      case FaultKind::kSigkillSelf: return "sigkill-self";
      case FaultKind::kStall: return "stall";
    }
    return "unknown";
}

/**
 * Durably creates the once-marker before the process dies: O_EXCL so
 * the creator knows it fired first, fsync of file and directory so a
 * respawn after power loss still sees it.
 * @return true when this call created the marker (the fault may fire),
 *         false when it already existed (the fault is spent).
 */
bool
claim_marker(const std::string &path)
{
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0) {
        if (errno == EEXIST)
            return false;
        // An uncreatable marker must not hide the fault (tests would
        // silently pass); fire anyway and let the repeat be diagnosed.
        return true;
    }
    ::fsync(fd);
    ::close(fd);
    fsync_parent_dir(path);
    return true;
}

}  // namespace

bool
is_process_fault(FaultKind kind)
{
    return kind == FaultKind::kAbort || kind == FaultKind::kSigkillSelf ||
           kind == FaultKind::kStall;
}

FaultSpec
parse_fault(const std::string &text)
{
    const auto at = text.find('@');
    const auto colon = text.rfind(':');
    if (at == std::string::npos || colon == std::string::npos ||
        colon < at || colon + 1 >= text.size()) {
        throw Error("malformed fault spec (expected kind@scenario:trial)")
            .with("spec", text);
    }
    FaultSpec fault;
    fault.kind = parse_kind(text.substr(0, at));
    fault.scenario = text.substr(at + 1, colon - at - 1);
    const std::string trial = text.substr(colon + 1);
    char *end = nullptr;
    fault.trial = std::strtoull(trial.c_str(), &end, 0);
    if (end == trial.c_str() || *end != '\0') {
        throw Error("malformed fault trial index")
            .with("spec", text)
            .with("trial", trial);
    }
    return fault;
}

std::string
to_string(const FaultSpec &fault)
{
    return std::string(kind_name(fault.kind)) + "@" + fault.scenario +
           ":" + std::to_string(fault.trial);
}

std::string
fault_marker_path(const std::string &base, const FaultSpec &fault)
{
    std::string suffix = std::string(kind_name(fault.kind)) + "-" +
                         fault.scenario + "-" +
                         std::to_string(fault.trial);
    // Scenario names carry spaces and parentheses; keep the marker a
    // boring portable filename.
    for (char &c : suffix) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_';
        if (!keep)
            c = '_';
    }
    return base + ".fault-fired-" + suffix;
}

const FaultSpec *
FaultPlan::match(const TrialSpec &spec) const
{
    for (const FaultSpec &fault : faults_) {
        if (fault.trial == spec.trial && fault.scenario == spec.scenario)
            return &fault;
    }
    return nullptr;
}

void
FaultPlan::inject_before(const FaultSpec &fault, const TrialContext &ctx,
                         unsigned attempt) const
{
    if (is_process_fault(fault.kind)) {
        // Once-semantics: a respawned shard that finds the marker must
        // run the trial cleanly, or no recovery path could complete.
        if (!marker_base_.empty() &&
            !claim_marker(fault_marker_path(marker_base_, fault)))
            return;
        switch (fault.kind) {
          case FaultKind::kAbort:
              std::abort();
          case FaultKind::kSigkillSelf:
              ::kill(::getpid(), SIGKILL);
              // SIGKILL is not synchronous with the kill() return; don't
              // fall through into the trial body in the meantime.
              for (;;)
                  ::pause();
          case FaultKind::kStall:
              // Freezes every thread — including the journal heartbeat —
              // so a supervisor's lease expires. A SIGCONT (e.g. a test
              // poking at the stopped child) lets the trial continue
              // normally; the marker keeps the stall from recurring.
              ::raise(SIGSTOP);
              return;
          default:
              break;
        }
    }
    switch (fault.kind) {
      case FaultKind::kThrow:
          throw Error("injected fault").with("kind", "throw");
      case FaultKind::kFlaky:
          if (attempt == 1)
              throw Error("injected fault").with("kind", "flaky");
          break;
      case FaultKind::kHang:
          if (!ctx.watchdog().armed()) {
              throw Error("injected hang would never terminate; set "
                          "--trial-timeout to bound it")
                  .with("kind", "hang");
          }
          // A runaway trial: consume simulated events until the watchdog
          // aborts the attempt with TimeoutError.
          for (;;)
              ctx.watchdog().tick();
      default:
          break;
    }
}

void
FaultPlan::inject_after(const FaultSpec &fault, const TrialSpec &spec,
                        TrialResult &result)
{
    if (fault.kind != FaultKind::kCorrupt)
        return;
    // Silent corruption, seeded from the trial's named sub-stream so the
    // perturbation itself is replayable.
    std::uint64_t x = sub_seed(spec.seed, "fault");
    for (auto &[name, v] : result.counters()) {
        x = splitmix64(x);
        v += 1 + x % 1000;
    }
    for (auto &[name, v] : result.values()) {
        x = splitmix64(x);
        v += 1.0 + static_cast<double>(x % 1000);
    }
}

}  // namespace anvil::runner
