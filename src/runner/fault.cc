#include "runner/fault.hh"

#include <cstdlib>

#include "common/rng.hh"

namespace anvil::runner {
namespace {

FaultKind
parse_kind(const std::string &text)
{
    if (text == "throw")
        return FaultKind::kThrow;
    if (text == "flaky")
        return FaultKind::kFlaky;
    if (text == "hang")
        return FaultKind::kHang;
    if (text == "corrupt")
        return FaultKind::kCorrupt;
    throw Error("unknown fault kind (expected throw, flaky, hang, or "
                "corrupt)")
        .with("kind", text);
}

}  // namespace

FaultSpec
parse_fault(const std::string &text)
{
    const auto at = text.find('@');
    const auto colon = text.rfind(':');
    if (at == std::string::npos || colon == std::string::npos ||
        colon < at || colon + 1 >= text.size()) {
        throw Error("malformed fault spec (expected kind@scenario:trial)")
            .with("spec", text);
    }
    FaultSpec fault;
    fault.kind = parse_kind(text.substr(0, at));
    fault.scenario = text.substr(at + 1, colon - at - 1);
    const std::string trial = text.substr(colon + 1);
    char *end = nullptr;
    fault.trial = std::strtoull(trial.c_str(), &end, 0);
    if (end == trial.c_str() || *end != '\0') {
        throw Error("malformed fault trial index")
            .with("spec", text)
            .with("trial", trial);
    }
    return fault;
}

const FaultSpec *
FaultPlan::match(const TrialSpec &spec) const
{
    for (const FaultSpec &fault : faults_) {
        if (fault.trial == spec.trial && fault.scenario == spec.scenario)
            return &fault;
    }
    return nullptr;
}

void
FaultPlan::inject_before(const FaultSpec &fault, const TrialContext &ctx,
                         unsigned attempt)
{
    switch (fault.kind) {
      case FaultKind::kThrow:
          throw Error("injected fault").with("kind", "throw");
      case FaultKind::kFlaky:
          if (attempt == 1)
              throw Error("injected fault").with("kind", "flaky");
          break;
      case FaultKind::kHang:
          if (!ctx.watchdog().armed()) {
              throw Error("injected hang would never terminate; set "
                          "--trial-timeout to bound it")
                  .with("kind", "hang");
          }
          // A runaway trial: consume simulated events until the watchdog
          // aborts the attempt with TimeoutError.
          for (;;)
              ctx.watchdog().tick();
      case FaultKind::kCorrupt:
          break;
    }
}

void
FaultPlan::inject_after(const FaultSpec &fault, const TrialSpec &spec,
                        TrialResult &result)
{
    if (fault.kind != FaultKind::kCorrupt)
        return;
    // Silent corruption, seeded from the trial's named sub-stream so the
    // perturbation itself is replayable.
    std::uint64_t x = sub_seed(spec.seed, "fault");
    for (auto &[name, v] : result.counters()) {
        x = splitmix64(x);
        v += 1 + x % 1000;
    }
    for (auto &[name, v] : result.values()) {
        x = splitmix64(x);
        v += 1.0 + static_cast<double>(x % 1000);
    }
}

}  // namespace anvil::runner
