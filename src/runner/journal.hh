/**
 * @file
 * Crash-safe checkpoint journal for sweep execution.
 *
 * While a sweep with a file JSON destination runs, every completed
 * trial's outcome is appended to `<json-out>.journal` as a
 * length-prefixed, checksummed, fsync'd binary record. If the process
 * dies mid-sweep — Ctrl-C, SIGKILL, OOM — `--resume` replays the journal,
 * skips the trials it holds, runs only the remainder, and produces final
 * JSON byte-identical to an uninterrupted run (the sink aggregates in
 * plan order, and doubles are journaled as raw IEEE-754 bits, so replayed
 * results are bit-exact).
 *
 * Sharded runs (anvil-sim shard/supervise) write one journal per shard,
 * `<json-out>.shard-K.journal`. The header then carries the shard's
 * identity (index, count) and a hash of the full trial plan, so a merge
 * can refuse journals from a different sweep definition; shard journals
 * also interleave *lease records* — periodic heartbeats appended by the
 * child — so a supervisor can tell a shard that is slowly working from
 * one that is wedged.
 *
 * Recovery rules:
 *   - a torn trailing record (partial write at the kill point) is
 *     truncated away, never fatal;
 *   - a header that does not match the resuming sweep (different name,
 *     master seed, plan hash, or shard identity) refuses the resume with
 *     a structured error;
 *   - a record that contradicts the sweep plan (seed mismatch at its
 *     global index — the sweep definition changed) likewise refuses.
 *
 * The format is host-endian and process-local (a checkpoint, not an
 * interchange format); the version byte guards against record-layout
 * drift across builds.
 */
#ifndef ANVIL_RUNNER_JOURNAL_HH
#define ANVIL_RUNNER_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runner/trial.hh"

namespace anvil::runner {

/**
 * Identity block at the front of every journal. Two journals with equal
 * headers were produced by the same sweep definition: same name, same
 * master seed, and — when recorded — the same full trial plan, so their
 * records are interchangeable facts about the same deterministic
 * computation.
 */
struct JournalHeader {
    std::string sweep;
    std::uint64_t master_seed = 0;
    /// plan_hash() over the *full* sweep plan; 0 = not recorded
    /// (legacy callers that only know the sweep name and seed).
    std::uint64_t plan_hash = 0;
    std::uint32_t shard_index = 0;
    /// Number of shards in the campaign; 0 = not a shard journal.
    std::uint32_t shard_count = 0;
};

/** One replayed journal entry: the trial's identity and its outcome. */
struct JournalRecord {
    TrialSpec spec;
    TrialOutcome outcome;
};

/**
 * Append-side of the journal. Thread-safe: workers append records as
 * trials complete, in completion order — records carry their global
 * index, so ordering never matters for replay.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Opens @p path for journaling the sweep identified by @p header.
     * Fresh runs truncate, write a new header, and fsync the parent
     * directory (a journal that vanishes on power loss is no journal);
     * resuming runs (@p append) keep existing records and validate the
     * header first.
     * @throw Error on I/O failure or an append-mode header mismatch.
     */
    void open(const std::string &path, const JournalHeader &header,
              bool append);

    /** Legacy convenience: header with only name + master seed. */
    void open(const std::string &path, const std::string &sweep,
              std::uint64_t master_seed, bool append);

    bool is_open() const { return fd_ >= 0; }

    /** Appends one record and fsyncs it to disk. @throw Error on I/O. */
    void append(const TrialSpec &spec, const TrialOutcome &outcome);

    /**
     * Appends a lease (heartbeat) record: sequence number plus the
     * writing process id. Lease records are liveness evidence for a
     * supervisor — read_journal() skips them during replay.
     * @throw Error on I/O.
     */
    void append_lease(std::uint64_t seq);

    void close();

  private:
    std::mutex mutex_;
    int fd_ = -1;
    std::string path_;
};

/**
 * Reads every intact trial record of @p path (lease records are
 * skipped), validating the header against @p expect: sweep name and
 * master seed always; plan hash and shard identity only when @p expect
 * records them (nonzero). A torn or corrupt tail is truncated from the
 * file (recovery, reported on stderr), not an error.
 * @throw Error when the file exists but belongs to a different sweep.
 */
std::vector<JournalRecord> read_journal(const std::string &path,
                                        const JournalHeader &expect);

/** Legacy convenience: validate only name + master seed. */
std::vector<JournalRecord> read_journal(const std::string &path,
                                        const std::string &sweep,
                                        std::uint64_t master_seed);

/**
 * Reads and returns just the header of @p path (merge diagnostics:
 * report which shard a journal claims to be before validating it).
 * @throw Error when the file is missing or not a journal.
 */
JournalHeader read_journal_header(const std::string &path);

/**
 * Canonical encoding of one trial record's payload. Two records encode
 * identically iff they describe the same outcome bit-for-bit — the
 * merge uses this to accept duplicate trials claimed by two shards
 * (requeue races) while refusing divergent ones.
 */
std::string encode_journal_payload(const TrialSpec &spec,
                                   const TrialOutcome &outcome);

/** The journal path for a JSON destination: `<json_out>.journal`. */
std::string journal_path(const std::string &json_out);

/** Shard @p index's journal: `<json_out>.shard-K.journal`. */
std::string shard_journal_path(const std::string &json_out,
                               std::uint32_t index);

/**
 * fsyncs the directory containing @p path, making a just-created or
 * just-renamed entry durable. Best-effort: failures are reported on
 * stderr, not thrown (an unsyncable directory should not kill a sweep
 * whose data writes all succeeded).
 */
void fsync_parent_dir(const std::string &path);

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_JOURNAL_HH
