/**
 * @file
 * Crash-safe checkpoint journal for sweep execution.
 *
 * While a sweep with a file JSON destination runs, every completed
 * trial's outcome is appended to `<json-out>.journal` as a
 * length-prefixed, checksummed, fsync'd binary record. If the process
 * dies mid-sweep — Ctrl-C, SIGKILL, OOM — `--resume` replays the journal,
 * skips the trials it holds, runs only the remainder, and produces final
 * JSON byte-identical to an uninterrupted run (the sink aggregates in
 * plan order, and doubles are journaled as raw IEEE-754 bits, so replayed
 * results are bit-exact).
 *
 * Recovery rules:
 *   - a torn trailing record (partial write at the kill point) is
 *     truncated away, never fatal;
 *   - a header that does not match the resuming sweep (different name or
 *     master seed) refuses the resume with a structured error;
 *   - a record that contradicts the sweep plan (seed mismatch at its
 *     global index — the sweep definition changed) likewise refuses.
 *
 * The format is host-endian and process-local (a checkpoint, not an
 * interchange format); the version byte guards against record-layout
 * drift across builds.
 */
#ifndef ANVIL_RUNNER_JOURNAL_HH
#define ANVIL_RUNNER_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runner/trial.hh"

namespace anvil::runner {

/** One replayed journal entry: the trial's identity and its outcome. */
struct JournalRecord {
    TrialSpec spec;
    TrialOutcome outcome;
};

/**
 * Append-side of the journal. Thread-safe: workers append records as
 * trials complete, in completion order — records carry their global
 * index, so ordering never matters for replay.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Opens @p path for journaling sweep @p sweep / @p master_seed.
     * Fresh runs truncate and write a new header; resuming runs
     * (@p append) keep existing records and validate the header first.
     * @throw Error on I/O failure or an append-mode header mismatch.
     */
    void open(const std::string &path, const std::string &sweep,
              std::uint64_t master_seed, bool append);

    bool is_open() const { return fd_ >= 0; }

    /** Appends one record and fsyncs it to disk. @throw Error on I/O. */
    void append(const TrialSpec &spec, const TrialOutcome &outcome);

    void close();

  private:
    std::mutex mutex_;
    int fd_ = -1;
    std::string path_;
};

/**
 * Reads every intact record of @p path, validating the header against
 * (@p sweep, @p master_seed). A torn or corrupt tail is truncated from
 * the file (recovery, reported on stderr), not an error.
 * @throw Error when the file exists but belongs to a different sweep.
 */
std::vector<JournalRecord> read_journal(const std::string &path,
                                        const std::string &sweep,
                                        std::uint64_t master_seed);

/** The journal path for a JSON destination: `<json_out>.journal`. */
std::string journal_path(const std::string &json_out);

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_JOURNAL_HH
