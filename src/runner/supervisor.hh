/**
 * @file
 * The multi-process sweep supervisor (anvil-sim supervise).
 *
 * The supervisor partitions a sweep's trial plan into contiguous ranges
 * and runs each as a child `anvil-sim shard` process — its own failure
 * domain, its own checkpoint journal. It then babysits the fleet:
 *
 *   - **Crash detection.** A child that exits abnormally (SIGKILL, OOM,
 *     SIGABRT, a real bug) is detected by waitpid; its journal — every
 *     completed trial fsync'd, the torn tail truncated by PR 5's
 *     recovery — tells the supervisor exactly which trials are durable.
 *   - **Hang detection.** A healthy shard's journal grows continuously
 *     (trial records, plus lease heartbeats between them). A shard whose
 *     journal stops growing past the lease timeout is declared wedged
 *     and SIGKILLed — catching livelocks and stopped processes that
 *     waitpid alone never reports.
 *   - **Respawn with exponential backoff.** A dead shard is respawned
 *     over only its remaining trials; its journal replay makes the
 *     respawn resume, not restart. Each respawn doubles the delay.
 *   - **Requeue (graceful degradation).** A shard slot that exhausts its
 *     respawn budget is retired and its remaining trials are queued for
 *     surviving slots to pick up as they finish their own ranges. The
 *     campaign only fails — exit kExitShardDead, journals kept, rerun
 *     `supervise` to continue — when every slot has been retired with
 *     work outstanding.
 *
 * Recovery never changes results: every trial's outcome is a pure
 * function of (master seed, scenario, trial), so it does not matter
 * which process finally runs it, after how many crashes.
 */
#ifndef ANVIL_RUNNER_SUPERVISOR_HH
#define ANVIL_RUNNER_SUPERVISOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runner/shard.hh"
#include "runner/trial.hh"

namespace anvil::runner {

/** How a supervised campaign executes. */
struct SupervisorOptions {
    /// Binary to spawn for each shard (normally /proc/self/exe).
    std::string exe;
    /// argv tail shared by every shard: the `shard` verb, the sweep
    /// name and its positionals, and every forwarded runner flag.
    /// The supervisor appends the per-shard flags itself.
    std::vector<std::string> child_args;
    /// Campaign JSON destination; shard journals live beside it.
    std::string json_out;
    /// Sweep identity (shard-journal header validation).
    std::string sweep;
    std::uint64_t master_seed = 0;
    std::uint32_t shards = 4;
    /// Process deaths tolerated per slot before it is retired and its
    /// remaining trials are requeued onto surviving slots.
    unsigned respawn_budget = 3;
    /// Journal-growth lease: a running shard whose journal has not
    /// grown for this long is declared hung and SIGKILLed.
    std::uint64_t lease_timeout_ms = 10000;
    /// Heartbeat period passed to children; 0 = lease_timeout_ms / 4.
    std::uint64_t lease_interval_ms = 0;
    /// Initial respawn delay; doubles with each consecutive death.
    std::uint64_t backoff_ms = 200;
    /// Supervision loop poll period.
    std::uint64_t poll_ms = 25;
};

/** What a supervision run did and where it ended. */
struct SupervisorReport {
    /// Every plan trial has a durable record in some shard journal.
    bool complete = false;
    /// True when an operator shutdown (SIGINT/SIGTERM) drained the
    /// campaign rather than shard death exhausting it.
    bool interrupted = false;
    unsigned respawns = 0;      ///< children restarted after a death
    unsigned requeues = 0;      ///< work units moved to surviving slots
    unsigned retired_slots = 0; ///< slots that exhausted their budget
    std::uint64_t outstanding = 0;  ///< trials still not durable
};

/** Deterministic respawn delay: @p base doubled per prior death. */
std::uint64_t backoff_delay_ms(std::uint64_t base, unsigned attempt);

/**
 * Runs the campaign over @p plan to durable completion (or until every
 * slot is retired / the operator shuts it down). Purely a process-level
 * loop: the trials themselves run in the children, and the caller is
 * responsible for the merge afterwards.
 * @throw Error for configuration-level faults (an existing shard
 *        journal from a different sweep, an unspawnable child binary).
 */
SupervisorReport supervise(const std::vector<TrialSpec> &plan,
                           const SupervisorOptions &options);

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_SUPERVISOR_HH
