#include "runner/result_sink.hh"

#include <algorithm>

#include "runner/json.hh"

namespace anvil::runner {
namespace {

void
write_stat(JsonWriter &json, const RunningStat &stat)
{
    json.field("count", stat.count());
    json.field("sum", stat.sum());
    json.field("mean", stat.mean());
    json.field("min", stat.min());
    json.field("max", stat.max());
    json.field("stddev", stat.stddev());
}

void
write_anvil(JsonWriter &json, const detector::AnvilStats &s)
{
    json.field("stage1_windows", s.stage1_windows);
    json.field("stage1_triggers", s.stage1_triggers);
    json.field("stage2_windows", s.stage2_windows);
    json.field("detections", s.detections);
    json.field("selective_refreshes", s.selective_refreshes);
    json.field("false_positive_detections", s.false_positive_detections);
    json.field("false_positive_refreshes", s.false_positive_refreshes);
    json.field("overhead_ticks", s.overhead);
}

void
write_dram(JsonWriter &json, const dram::DramSystem::Stats &s)
{
    json.field("accesses", s.accesses);
    json.field("row_hits", s.row_hits);
    json.field("row_misses", s.row_misses);
    json.field("selective_refreshes", s.selective_refreshes);
    json.field("refresh_stall_ticks", s.refresh_stall);
}

}  // namespace

void
ScenarioAggregate::add(const TrialSpec &spec, const TrialOutcome &outcome)
{
    ++trials_;
    if (outcome.failed()) {
        ++errors_;
        failures_.push_back(TrialFailure{spec.trial, spec.seed,
                                         outcome.status, outcome.attempts,
                                         outcome.error});
        return;
    }
    const TrialResult &result = outcome.result;
    for (const auto &[name, v] : result.values()) {
        auto it = std::find_if(values_.begin(), values_.end(),
                               [&](const ValueAgg &a) {
                                   return a.name == name;
                               });
        if (it == values_.end()) {
            values_.push_back(ValueAgg{name, RunningStat{}});
            it = values_.end() - 1;
        }
        it->stat.add(v);
    }
    for (const auto &[name, v] : result.counters()) {
        auto it = std::find_if(counters_.begin(), counters_.end(),
                               [&](const CounterAgg &a) {
                                   return a.name == name;
                               });
        if (it == counters_.end()) {
            counters_.push_back(CounterAgg{name, 0, RunningStat{}});
            it = counters_.end() - 1;
        }
        it->sum += v;
        it->per_trial.add(static_cast<double>(v));
    }
    if (result.has_anvil()) {
        anvil_ += result.anvil();
        has_anvil_ = true;
    }
    if (result.has_dram()) {
        dram_ += result.dram();
        has_dram_ = true;
    }
}

void
ScenarioAggregate::set_derived(std::string name, double v)
{
    for (NamedValue &d : derived_) {
        if (d.name == name) {
            d.value = v;
            return;
        }
    }
    derived_.push_back(NamedValue{std::move(name), v});
}

const RunningStat *
ScenarioAggregate::value_stat(std::string_view name) const
{
    for (const ValueAgg &a : values_) {
        if (a.name == name)
            return &a.stat;
    }
    return nullptr;
}

std::uint64_t
ScenarioAggregate::counter_sum(std::string_view name) const
{
    for (const CounterAgg &a : counters_) {
        if (a.name == name)
            return a.sum;
    }
    return 0;
}

double
ScenarioAggregate::value_mean(std::string_view name, double fallback) const
{
    const RunningStat *stat = value_stat(name);
    return stat != nullptr && stat->count() > 0 ? stat->mean() : fallback;
}

void
ScenarioAggregate::write_json(JsonWriter &json) const
{
    json.begin_object();
    json.field("name", name_);
    json.field("trials", trials_);
    json.field("errors", errors_);
    // Only present when a trial failed, so fault-free sweep JSON is
    // byte-identical to what the pre-fault-tolerance runner emitted.
    if (!failures_.empty()) {
        json.key("failures").begin_array();
        for (const TrialFailure &f : failures_) {
            json.begin_object();
            json.field("trial", f.trial);
            json.field("seed", f.seed);
            json.field("status", to_string(f.status));
            json.field("attempts", std::uint64_t{f.attempts});
            json.field("error", f.error);
            json.end_object();
        }
        json.end_array();
    }
    json.key("values").begin_array();
    for (const ValueAgg &a : values_) {
        json.begin_object();
        json.field("name", a.name);
        write_stat(json, a.stat);
        json.end_object();
    }
    json.end_array();
    json.key("counters").begin_array();
    for (const CounterAgg &a : counters_) {
        json.begin_object();
        json.field("name", a.name);
        json.field("sum", a.sum);
        json.field("mean_per_trial", a.per_trial.mean());
        json.end_object();
    }
    json.end_array();
    if (has_anvil_) {
        json.key("anvil").begin_object();
        write_anvil(json, anvil_);
        json.end_object();
    }
    if (has_dram_) {
        json.key("dram").begin_object();
        write_dram(json, dram_);
        json.end_object();
    }
    if (!derived_.empty()) {
        json.key("derived").begin_array();
        for (const NamedValue &d : derived_) {
            json.begin_object();
            json.field("name", d.name);
            json.field("value", d.value);
            json.end_object();
        }
        json.end_array();
    }
    json.end_object();
}

void
ResultSink::add(const TrialSpec &spec, const TrialOutcome &outcome)
{
    scenario(spec.scenario).add(spec, outcome);
    ++total_trials_;
    if (outcome.failed())
        ++total_errors_;
}

ScenarioAggregate &
ResultSink::scenario(std::string_view name)
{
    for (ScenarioAggregate &s : scenarios_) {
        if (s.name() == name)
            return s;
    }
    scenarios_.emplace_back(std::string(name));
    return scenarios_.back();
}

const ScenarioAggregate *
ResultSink::find(std::string_view name) const
{
    for (const ScenarioAggregate &s : scenarios_) {
        if (s.name() == name)
            return &s;
    }
    return nullptr;
}

void
ResultSink::set_derived(std::string_view scenario_name, std::string name,
                        double v)
{
    scenario(scenario_name).set_derived(std::move(name), v);
}

void
ResultSink::write_json(std::ostream &os) const
{
    JsonWriter json(os);
    json.begin_object();
    json.field("schema", "anvil-sweep-v1");
    json.field("sweep", sweep_name_);
    json.field("master_seed", master_seed_);
    json.field("total_trials", total_trials_);
    json.field("total_errors", total_errors_);
    json.key("scenarios").begin_array();
    for (const ScenarioAggregate &s : scenarios_)
        s.write_json(json);
    json.end_array();
    json.end_object();
}

}  // namespace anvil::runner
