/**
 * @file
 * The unit of parallel experimentation: one fully-isolated trial.
 *
 * A trial owns its entire simulated machine (MemorySystem + Anvil +
 * workloads), so trials share no mutable state and a sweep of them is
 * embarrassingly parallel. Determinism rests on the seed chain: every
 * random stream a trial uses is derived from (master seed, scenario name,
 * trial index) — never from global state, wall-clock time, or thread
 * identity — so any trial can be replayed serially, and a parallel sweep
 * aggregates to bit-identical results as a serial one.
 */
#ifndef ANVIL_RUNNER_TRIAL_HH
#define ANVIL_RUNNER_TRIAL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "anvil/anvil.hh"
#include "dram/dram_system.hh"

namespace anvil::runner {

/** Identity of one trial within a sweep. */
struct TrialSpec {
    std::string scenario;    ///< row label, e.g. "CLFLUSH (Heavy Load)"
    std::uint64_t trial = 0; ///< index within the scenario
    std::uint64_t seed = 0;  ///< derived: trial_seed(master, scenario, trial)
    std::uint64_t global_index = 0;  ///< position in the whole sweep
};

/**
 * Derives the seed of trial @p trial of @p scenario from @p master_seed.
 * Stable across runs, platforms, and thread schedules.
 */
std::uint64_t trial_seed(std::uint64_t master_seed,
                         std::string_view scenario, std::uint64_t trial);

/**
 * Derives an independent named random stream from a trial seed, so one
 * trial can seed its VM layout, its workload, and its phase jitter from
 * decorrelated values.
 */
std::uint64_t sub_seed(std::uint64_t seed, std::string_view stream);

/** Everything a trial body may consult. Cheap to copy. */
class TrialContext
{
  public:
    explicit TrialContext(TrialSpec spec) : spec_(std::move(spec)) {}

    const TrialSpec &spec() const { return spec_; }
    std::uint64_t seed() const { return spec_.seed; }

    /** Named decorrelated stream seed (see sub_seed). */
    std::uint64_t
    seed_for(std::string_view stream) const
    {
        return sub_seed(spec_.seed, stream);
    }

  private:
    TrialSpec spec_;
};

/**
 * The measurements one trial produced: insertion-ordered named scalars
 * plus (optionally) the standard detector/DRAM stat blocks. Values are
 * per-trial observations aggregated into count/mean/min/max/stddev;
 * counters are event totals aggregated by summation.
 */
class TrialResult
{
  public:
    /** Records a per-trial observation (aggregated as a distribution). */
    void
    set_value(std::string name, double v)
    {
        values_.emplace_back(std::move(name), v);
    }

    /** Records an event total (aggregated by summation). */
    void
    set_counter(std::string name, std::uint64_t v)
    {
        counters_.emplace_back(std::move(name), v);
    }

    /** Attaches the trial's detector statistics block. */
    void
    set_anvil(const detector::AnvilStats &stats)
    {
        anvil_ = stats;
        has_anvil_ = true;
    }

    /** Attaches the trial's DRAM statistics block. */
    void
    set_dram(const dram::DramSystem::Stats &stats)
    {
        dram_ = stats;
        has_dram_ = true;
    }

    /** Marks the trial failed; failed trials aggregate only as errors. */
    void set_error(std::string what) { error_ = std::move(what); }

    const std::vector<std::pair<std::string, double>> &
    values() const
    {
        return values_;
    }
    const std::vector<std::pair<std::string, std::uint64_t>> &
    counters() const
    {
        return counters_;
    }
    bool has_anvil() const { return has_anvil_; }
    const detector::AnvilStats &anvil() const { return anvil_; }
    bool has_dram() const { return has_dram_; }
    const dram::DramSystem::Stats &dram() const { return dram_; }
    bool failed() const { return !error_.empty(); }
    const std::string &error() const { return error_; }

  private:
    std::vector<std::pair<std::string, double>> values_;
    std::vector<std::pair<std::string, std::uint64_t>> counters_;
    detector::AnvilStats anvil_;
    dram::DramSystem::Stats dram_;
    bool has_anvil_ = false;
    bool has_dram_ = false;
    std::string error_;
};

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_TRIAL_HH
