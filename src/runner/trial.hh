/**
 * @file
 * The unit of parallel experimentation: one fully-isolated trial.
 *
 * A trial owns its entire simulated machine (MemorySystem + Anvil +
 * workloads), so trials share no mutable state and a sweep of them is
 * embarrassingly parallel. Determinism rests on the seed chain: every
 * random stream a trial uses is derived from (master seed, scenario name,
 * trial index) — never from global state, wall-clock time, or thread
 * identity — so any trial can be replayed serially, and a parallel sweep
 * aggregates to bit-identical results as a serial one.
 *
 * Fault tolerance rests on the same property: a trial that fails is
 * captured as a structured TrialOutcome (never an escaped exception), a
 * retried trial re-derives the identical seed (so a flaky-infra retry
 * cannot change results), and a runaway trial is bounded by a Watchdog
 * counting simulated events — not wall-clock time — so timeouts are
 * reproducible too.
 */
#ifndef ANVIL_RUNNER_TRIAL_HH
#define ANVIL_RUNNER_TRIAL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "anvil/anvil.hh"
#include "common/error.hh"
#include "dram/dram_system.hh"

namespace anvil::runner {

/** Identity of one trial within a sweep. */
struct TrialSpec {
    std::string scenario;    ///< row label, e.g. "CLFLUSH (Heavy Load)"
    std::uint64_t trial = 0; ///< index within the scenario
    std::uint64_t seed = 0;  ///< derived: trial_seed(master, scenario, trial)
    std::uint64_t global_index = 0;  ///< position in the whole sweep
};

/**
 * Derives the seed of trial @p trial of @p scenario from @p master_seed.
 * Stable across runs, platforms, and thread schedules.
 */
std::uint64_t trial_seed(std::uint64_t master_seed,
                         std::string_view scenario, std::uint64_t trial);

/**
 * Derives an independent named random stream from a trial seed, so one
 * trial can seed its VM layout, its workload, and its phase jitter from
 * decorrelated values.
 */
std::uint64_t sub_seed(std::uint64_t seed, std::string_view stream);

/**
 * Order-sensitive digest of a whole trial plan (every spec's scenario,
 * trial index, seed, and global index). Shard journals record it so a
 * merge or resume can refuse records produced against a different sweep
 * definition without replaying them first.
 */
std::uint64_t plan_hash(const std::vector<TrialSpec> &plan);

/**
 * Deterministic per-trial deadline: a budget of simulated events (memory
 * accesses). The trial body charges events via tick(); exhausting the
 * budget throws TimeoutError, which the sweep records as a timed-out
 * outcome. Counting simulated work instead of wall-clock time keeps the
 * abort point identical across machines, thread counts, and reruns.
 */
class Watchdog
{
  public:
    /** Sets the budget; 0 disarms (tick becomes a no-op). */
    void
    arm(std::uint64_t budget)
    {
        budget_ = budget;
        used_ = 0;
    }

    bool armed() const { return budget_ != 0; }
    std::uint64_t used() const { return used_; }
    std::uint64_t budget() const { return budget_; }

    /**
     * Charges @p n simulated events.
     * @throw TimeoutError once the budget is exhausted.
     */
    void
    tick(std::uint64_t n = 1)
    {
        if (budget_ == 0)
            return;
        used_ += n;
        if (used_ >= budget_) {
            // Built before the throw: with() returns Error&, and throwing
            // through that reference would slice away the TimeoutError
            // type the sweep's timed-out classification depends on.
            TimeoutError e("trial exceeded its simulated-event budget");
            e.with("budget", budget_);
            throw e;
        }
    }

  private:
    std::uint64_t budget_ = 0;
    std::uint64_t used_ = 0;
};

/** Everything a trial body may consult. Cheap to copy. */
class TrialContext
{
  public:
    explicit TrialContext(TrialSpec spec) : spec_(std::move(spec)) {}

    const TrialSpec &spec() const { return spec_; }
    std::uint64_t seed() const { return spec_.seed; }

    /** Named decorrelated stream seed (see sub_seed). */
    std::uint64_t
    seed_for(std::string_view stream) const
    {
        return sub_seed(spec_.seed, stream);
    }

    /**
     * The trial's deadline counter. Trial bodies that simulate machines
     * should charge one tick per simulated access (ScenarioBuilder wires
     * this automatically); unarmed watchdogs make tick() free.
     */
    Watchdog &watchdog() const { return watchdog_; }

  private:
    TrialSpec spec_;
    /// Charged through const contexts: the watchdog is bookkeeping about
    /// the trial's execution, not part of its observable inputs.
    mutable Watchdog watchdog_;
};

/**
 * The measurements one trial produced: insertion-ordered named scalars
 * plus (optionally) the standard detector/DRAM stat blocks. Values are
 * per-trial observations aggregated into count/mean/min/max/stddev;
 * counters are event totals aggregated by summation.
 */
class TrialResult
{
  public:
    /** Records a per-trial observation (aggregated as a distribution). */
    void
    set_value(std::string name, double v)
    {
        values_.emplace_back(std::move(name), v);
    }

    /** Records an event total (aggregated by summation). */
    void
    set_counter(std::string name, std::uint64_t v)
    {
        counters_.emplace_back(std::move(name), v);
    }

    /** Attaches the trial's detector statistics block. */
    void
    set_anvil(const detector::AnvilStats &stats)
    {
        anvil_ = stats;
        has_anvil_ = true;
    }

    /** Attaches the trial's DRAM statistics block. */
    void
    set_dram(const dram::DramSystem::Stats &stats)
    {
        dram_ = stats;
        has_dram_ = true;
    }

    const std::vector<std::pair<std::string, double>> &
    values() const
    {
        return values_;
    }
    std::vector<std::pair<std::string, double>> &values() { return values_; }
    const std::vector<std::pair<std::string, std::uint64_t>> &
    counters() const
    {
        return counters_;
    }
    std::vector<std::pair<std::string, std::uint64_t>> &
    counters()
    {
        return counters_;
    }
    bool has_anvil() const { return has_anvil_; }
    const detector::AnvilStats &anvil() const { return anvil_; }
    bool has_dram() const { return has_dram_; }
    const dram::DramSystem::Stats &dram() const { return dram_; }

  private:
    std::vector<std::pair<std::string, double>> values_;
    std::vector<std::pair<std::string, std::uint64_t>> counters_;
    detector::AnvilStats anvil_;
    dram::DramSystem::Stats dram_;
    bool has_anvil_ = false;
    bool has_dram_ = false;
};

/** How one trial ended. */
enum class TrialStatus : std::uint8_t {
    kOk = 0,        ///< result is valid
    kFailed = 1,    ///< an exception escaped the trial body
    kTimedOut = 2,  ///< the watchdog budget was exhausted
    kSkipped = 3,   ///< never ran (shutdown drain); absent from output
};

/** JSON/journal name of a status ("ok", "failed", "timed_out", ...). */
std::string_view to_string(TrialStatus status);

/**
 * The structured record of one trial's execution: its classification,
 * the result (valid only when ok), the rendered error chain (failed or
 * timed-out), and how many attempts were spent (> 1 when --retries
 * re-ran a failing trial with its identical re-derived seed).
 */
struct TrialOutcome {
    TrialStatus status = TrialStatus::kOk;
    TrialResult result;
    std::string error;
    std::uint32_t attempts = 1;

    bool ok() const { return status == TrialStatus::kOk; }
    bool
    failed() const
    {
        return status == TrialStatus::kFailed ||
               status == TrialStatus::kTimedOut;
    }
};

}  // namespace anvil::runner

#endif  // ANVIL_RUNNER_TRIAL_HH
