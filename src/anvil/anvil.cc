#include "anvil/anvil.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/log.hh"

namespace anvil::detector {

AnvilConfig
AnvilConfig::baseline()
{
    AnvilConfig config;
    config.name = "ANVIL-baseline";
    return config;
}

AnvilConfig
AnvilConfig::light()
{
    AnvilConfig config;
    config.name = "ANVIL-light";
    config.llc_miss_threshold = 10000;
    return config;
}

AnvilConfig
AnvilConfig::heavy()
{
    AnvilConfig config;
    config.name = "ANVIL-heavy";
    config.tc = ms(2.0);
    config.ts = ms(2.0);
    return config;
}

Anvil::Anvil(mem::MemorySystem &mem, pmu::Pmu &pmu,
             const AnvilConfig &config)
    : mem_(mem),
      pmu_(pmu),
      config_(config),
      dram_map_(mem.dram().address_map())
{
}

Anvil::~Anvil()
{
    stop();
}

void
Anvil::set_ground_truth(std::function<bool()> oracle)
{
    ground_truth_ = std::move(oracle);
}

void
Anvil::reset_stats()
{
    stats_ = AnvilStats();
    detections_.clear();
}

void
Anvil::charge(Cycles cycles)
{
    stats_.overhead += mem_.core().cycles_to_ticks(cycles);
    mem_.advance_cycles(cycles);
}

void
Anvil::start()
{
    if (running_)
        return;
    running_ = true;
    begin_stage1();
}

void
Anvil::stop()
{
    if (!running_)
        return;
    running_ = false;
    stage_ = Stage::kIdle;
    if (window_event_ != 0) {
        mem_.clock().cancel(window_event_);
        window_event_ = 0;
    }
    pmu_.counter(pmu::Event::kLlcMisses).disarm();
    pmu_.disable_sampling();
}

void
Anvil::begin_stage1()
{
    if (!config_.two_stage) {
        // Ablation mode: no miss-rate gate, sample every window.
        load_misses_at_stage_start_ =
            pmu_.counter(pmu::Event::kLlcLoadMisses).value();
        misses_at_stage1_start_ =
            pmu_.counter(pmu::Event::kLlcMisses).value();
        begin_stage2();
        return;
    }
    stage_ = Stage::kStage1;
    ++stats_.stage1_windows;
    charge(config_.stage1_check_cycles);

    load_misses_at_stage_start_ =
        pmu_.counter(pmu::Event::kLlcLoadMisses).value();
    misses_at_stage1_start_ = 0;  // arm_overflow resets the counter
    // Arm the miss counter to interrupt at the threshold; if the PMI wins
    // the race against the tc window timer, the rate is attack-class.
    pmu_.counter(pmu::Event::kLlcMisses)
        .arm_overflow(config_.llc_miss_threshold,
                      [this] { on_miss_overflow(); });
    window_event_ = mem_.clock().schedule_in(config_.tc, [this] {
        window_event_ = 0;
        on_stage1_timeout();
    });
}

void
Anvil::on_stage1_timeout()
{
    // Miss rate stayed below threshold for the whole window: benign.
    pmu_.counter(pmu::Event::kLlcMisses).disarm();
    begin_stage1();
}

void
Anvil::on_miss_overflow()
{
    if (!running_ || stage_ != Stage::kStage1)
        return;
    if (window_event_ != 0) {
        mem_.clock().cancel(window_event_);
        window_event_ = 0;
    }
    ++stats_.stage1_triggers;
    begin_stage2();
}

void
Anvil::begin_stage2()
{
    stage_ = Stage::kStage2;
    ++stats_.stage2_windows;

    // Choose what to sample from the load share of Stage-1's misses.
    const std::uint64_t total =
        pmu_.counter(pmu::Event::kLlcMisses).value() -
        misses_at_stage1_start_;
    const std::uint64_t loads =
        pmu_.counter(pmu::Event::kLlcLoadMisses).value() -
        load_misses_at_stage_start_;
    const double load_fraction =
        total > 0 ? static_cast<double>(std::min(loads, total)) /
                        static_cast<double>(total)
                  : 1.0;

    pmu::SampleConfig sc;
    sc.mean_period = static_cast<Tick>(
        static_cast<double>(kTicksPerSec) / config_.samples_per_sec);
    // "We set the clock cycle value to match last-level cache miss
    // latency so that we only sample loads that miss in the L3 cache"
    // (Section 3.3): every DRAM-served load qualifies — including
    // row-buffer hits, which are only marginally slower than an LLC hit —
    // while on-chip hits do not.
    sc.load_latency_threshold = mem_.core().cycles_to_ticks(
        mem_.config().cache.llc_latency + 5);
    sc.sample_loads = load_fraction >= config_.store_only_fraction;
    sc.sample_stores = load_fraction <= config_.load_only_fraction;

    pmu_.discard_samples();  // discard anything stale
    pmu_.enable_sampling(sc);
    misses_at_stage_start_ = pmu_.counter(pmu::Event::kLlcMisses).value();

    window_event_ = mem_.clock().schedule_in(config_.ts, [this] {
        window_event_ = 0;
        on_stage2_end();
    });
}

void
Anvil::on_stage2_end()
{
    pmu_.disable_sampling();
    pmu_.drain_samples(sample_buf_);
    const std::vector<pmu::PebsRecord> &samples = sample_buf_;
    const std::uint64_t misses_in_ts =
        pmu_.counter(pmu::Event::kLlcMisses).value() -
        misses_at_stage_start_;

    // Sampling PMIs plus the end-of-window analysis run on the victim's
    // core; this is where nearly all of ANVIL's overhead comes from
    // (Section 4.3).
    charge(static_cast<Cycles>(samples.size()) *
               config_.per_sample_cycles +
           config_.analysis_cycles);

    analyze_and_protect(samples, misses_in_ts);
    begin_stage1();
}

void
Anvil::analyze_and_protect(const std::vector<pmu::PebsRecord> &samples,
                           std::uint64_t misses_in_ts)
{
    if (samples.empty())
        return;

    // Resolve each sampled VA through the owning process's page table
    // (the kernel-module task_struct walk) and the reverse-engineered
    // DRAM mapping.
    struct RowKey {
        std::uint32_t bank;
        std::uint32_t row;
        bool operator<(const RowKey &o) const
        {
            return bank != o.bank ? bank < o.bank : row < o.row;
        }
    };
    std::map<RowKey, std::uint32_t> row_samples;
    std::map<RowKey, std::map<Pid, std::uint32_t>> row_pids;
    std::map<std::uint32_t, std::uint32_t> bank_samples;
    std::uint32_t resolved = 0;
    for (const pmu::PebsRecord &record : samples) {
        const Addr pa = mem_.process(record.pid).translate(record.va);
        if (pa == kInvalidAddr)
            continue;
        const dram::DramCoord coord = dram_map_.decode(pa);
        const std::uint32_t bank = dram_map_.flat_bank(coord);
        ++row_samples[RowKey{bank, coord.row}];
        ++row_pids[RowKey{bank, coord.row}][record.pid];
        ++bank_samples[bank];
        ++resolved;
    }
    if (resolved == 0)
        return;

    if (Logger::enabled(LogLevel::kDebug)) {
        for (const auto &[key, count] : row_samples) {
            ANVIL_DEBUG("anvil.analyze")
                << "bank " << key.bank << " row " << key.row << ": "
                << count << "/" << resolved << " samples";
        }
    }

    // Row locality: estimate each sampled row's access count within ts
    // and compare against the rate a successful attack needs.
    const double needed_in_ts =
        static_cast<double>(config_.min_hammer_accesses) *
        static_cast<double>(config_.ts) /
        static_cast<double>(config_.refresh_period) /
        config_.detection_safety;

    // The sample-count thresholds are calibrated for a ~30-sample window;
    // scale them down when the window collected fewer (ANVIL-heavy's 2 ms
    // windows see ~10 samples).
    const double sample_scale =
        std::min(1.0, static_cast<double>(resolved) /
                          config_.nominal_window_samples);
    const auto scaled = [&](std::uint32_t nominal, std::uint32_t floor) {
        return std::max(floor, static_cast<std::uint32_t>(std::lround(
                                   nominal * sample_scale)));
    };
    const std::uint32_t min_row = scaled(config_.min_row_samples, 2);
    const std::uint32_t min_bank =
        config_.min_bank_samples == 0
            ? 0
            : scaled(config_.min_bank_samples, 1);

    std::vector<Aggressor> aggressors;
    for (const auto &[key, count] : row_samples) {
        if (count < min_row)
            continue;
        const double estimated =
            static_cast<double>(count) / static_cast<double>(resolved) *
            static_cast<double>(misses_in_ts);
        if (estimated < needed_in_ts)
            continue;
        // Bank locality: hammering requires at least two rows in the same
        // bank (otherwise the row buffer absorbs the accesses); thrashing
        // patterns spread across banks fail this check.
        const std::uint32_t others = bank_samples[key.bank] - count;
        if (others < min_bank)
            continue;
        aggressors.push_back(
            Aggressor{key.bank, key.row, count, estimated});
    }
    if (aggressors.empty())
        return;

    Detection detection;
    detection.time = mem_.now();
    detection.aggressors = aggressors;
    detection.ground_truth_attack = ground_truth_ ? ground_truth_() : false;
    // Blame the process whose samples dominate the accepted aggressor
    // rows (ties go to the lowest pid — map order). The attribution is
    // pure bookkeeping: it never feeds back into detection or protection.
    std::map<Pid, std::uint32_t> offender_votes;
    for (const Aggressor &a : aggressors) {
        for (const auto &[pid, count] : row_pids[RowKey{a.flat_bank, a.row}])
            offender_votes[pid] += count;
    }
    std::uint32_t best_votes = 0;
    for (const auto &[pid, votes] : offender_votes) {
        if (votes > best_votes) {
            best_votes = votes;
            detection.offender_pid = pid;
        }
    }
    protect(aggressors, detection);

    ++stats_.detections;
    stats_.selective_refreshes += detection.refreshes_performed;
    if (!detection.ground_truth_attack) {
        ++stats_.false_positive_detections;
        stats_.false_positive_refreshes += detection.refreshes_performed;
    }
    detections_.push_back(std::move(detection));

    ANVIL_INFO("anvil") << config_.name << " detection at "
                        << to_ms(mem_.now()) << " ms: "
                        << aggressors.size() << " aggressor row(s)";
}

void
Anvil::protect(const std::vector<Aggressor> &aggressors,
               Detection &detection)
{
    const std::uint32_t rows_per_bank = mem_.dram().config().rows_per_bank;
    std::set<std::pair<std::uint32_t, std::uint32_t>> victims;
    for (const Aggressor &aggressor : aggressors) {
        for (std::uint32_t d = 1; d <= config_.blast_radius; ++d) {
            if (aggressor.row >= d)
                victims.insert({aggressor.flat_bank, aggressor.row - d});
            if (aggressor.row + d < rows_per_bank)
                victims.insert({aggressor.flat_bank, aggressor.row + d});
        }
    }
    for (const auto &[bank, row] : victims) {
        // One read refreshes the whole victim row (Section 3.2).
        mem_.refresh_row_phys(mem_.dram().row_to_addr(bank, row));
        ++detection.refreshes_performed;
    }
}

}  // namespace anvil::detector
