/**
 * @file
 * ANVIL detector configuration (paper Table 2 plus the Section 4.5
 * sensitivity variants).
 */
#ifndef ANVIL_ANVIL_CONFIG_HH
#define ANVIL_ANVIL_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "common/units.hh"

namespace anvil::detector {

/** All tunables of the two-stage detector. */
struct AnvilConfig {
    std::string name = "ANVIL-baseline";

    // -- Stage 1: LLC miss-rate monitor ------------------------------------
    /// The point of the two-stage design (Section 3.1): cheap miss-rate
    /// monitoring gates the expensive sampling. Setting this false
    /// bypasses Stage 1 and samples continuously — the ablation showing
    /// why the gate exists.
    bool two_stage = true;
    /// Miss-count window (Table 2: 6 ms).
    Tick tc = ms(6.0);
    /// Stage-1 trigger: LLC misses within tc. Table 2: 20 K, derived from
    /// the minimum 220 K accesses per 64 ms refresh period that produced a
    /// flip (220K * 6/64 = 20.6K).
    std::uint64_t llc_miss_threshold = 20000;

    // -- Stage 2: address sampling -----------------------------------------
    /// Sampling window (Table 2: 6 ms).
    Tick ts = ms(6.0);
    /// PEBS sampling rate (Section 3.3: 5000 samples/s => ~30 per 6 ms).
    double samples_per_sec = 5000.0;
    /// "If load operations account for more than 90% of all misses then
    /// only loads are sampled; ... less than 10%, only stores."
    double load_only_fraction = 0.9;
    double store_only_fraction = 0.1;

    // -- Analysis ------------------------------------------------------------
    /// Minimum per-aggressor row activations per refresh period assumed
    /// able to flip bits (the paper's measured 110 K per side).
    std::uint64_t min_hammer_accesses = 110000;
    /// DRAM refresh period the derivation assumes.
    Tick refresh_period = ms(64.0);
    /// Safety margin: flag rows whose estimated access rate is at least
    /// 1/safety of the minimum hammering rate.
    double detection_safety = 2.0;
    /// A row needs at least this many samples (per ~30-sample window) to
    /// be considered at all. A genuine aggressor row receives roughly
    /// half the window's samples, so 3 keeps detection robust while
    /// rejecting pair-wise sampling coincidences on benign workloads.
    /// Scaled proportionally when a window collects fewer samples
    /// (ANVIL-heavy's 2 ms windows see ~10).
    std::uint32_t min_row_samples = 3;
    /// Bank-locality filter: cumulative samples (per ~30-sample window)
    /// of *other* rows in the candidate's bank required to confirm (0
    /// disables the check). Hammering requires a second hot row in the
    /// same bank (the row buffer absorbs single-row traffic): an attack's
    /// co-aggressor supplies ~15 same-bank samples, while scattered
    /// benign misses average ~1-2 per bank, so 6 separates them with wide
    /// margin on both sides. Scaled like min_row_samples.
    std::uint32_t min_bank_samples = 6;
    /// Sample count the two thresholds above are calibrated for.
    std::uint32_t nominal_window_samples = 30;

    // -- Protection ----------------------------------------------------------
    /// Refresh rows within this distance of an aggressor (paper: 1, "our
    /// approach easily extends to N adjacent rows").
    std::uint32_t blast_radius = 1;

    // -- Software overhead model (charged to the shared core) ---------------
    /// Stage-1 window bookkeeping: read+rearm of the miss counter.
    Cycles stage1_check_cycles = 2600;        // ~1 us
    /// Per-PEBS-sample cost: PMI, DS-buffer drain, task_struct walk.
    /// Calibrated (with analysis_cycles) so a workload that saturates
    /// Stage 1 pays ~3 % — the paper's peak overhead of 3.18 %.
    Cycles per_sample_cycles = 16000;         // ~6 us
    /// End-of-window analysis: sort samples, locality checks.
    Cycles analysis_cycles = 80000;           // ~31 us

    /** Table 2 parameters. */
    static AnvilConfig baseline();

    /**
     * Section 4.5 "ANVIL-light": catches attacks spread thinly across a
     * refresh period — threshold halved to 10 K, windows unchanged.
     */
    static AnvilConfig light();

    /**
     * Section 4.5 "ANVIL-heavy": catches attacks twice as fast as
     * measured — tc = ts = 2 ms, threshold unchanged.
     */
    static AnvilConfig heavy();
};

}  // namespace anvil::detector

#endif  // ANVIL_ANVIL_CONFIG_HH
