/**
 * @file
 * ANVIL: the software rowhammer detector/protector (paper Section 3).
 *
 * The detector is a two-stage state machine driven by the simulated
 * clock, consuming only what a kernel module consumes on real hardware:
 * performance-counter values, counter-overflow interrupts, PEBS sample
 * records (virtual address + data source), per-process page tables (the
 * task_struct walk), and the reverse-engineered physical-to-DRAM mapping.
 *
 *   Stage 1  arm the LLC-miss counter to interrupt at the miss threshold;
 *            if the interrupt beats the tc window timer, escalate.
 *   Stage 2  sample miss addresses for ts (loads, stores, or both,
 *            chosen from the load-miss fraction), then analyze:
 *            rows with high estimated access rate (row locality) that
 *            share a bank with other sampled rows (bank locality) are
 *            aggressors.
 *   Protect  read one word from each row adjacent to an aggressor,
 *            refreshing the potential victims; then restart Stage 1.
 */
#ifndef ANVIL_ANVIL_ANVIL_HH
#define ANVIL_ANVIL_ANVIL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "anvil/config.hh"
#include "common/types.hh"
#include "dram/address_map.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "sim/event_queue.hh"

namespace anvil::detector {

/** One aggressor row identified by the sample analysis. */
struct Aggressor {
    std::uint32_t flat_bank = 0;
    std::uint32_t row = 0;
    std::uint32_t samples = 0;
    double estimated_accesses = 0.0;  ///< est. accesses within ts
};

/** One detection (possibly a false positive) and its response. */
struct Detection {
    Tick time = 0;
    std::vector<Aggressor> aggressors;
    std::uint32_t refreshes_performed = 0;
    bool ground_truth_attack = false;  ///< harness-provided label
    /// The process whose samples dominate the accepted aggressor rows —
    /// the tenant a system-wide daemon would blame (ties break to the
    /// lowest pid); kInvalidPid when no sample resolved. Attribution is
    /// bookkeeping only: it never feeds back into detection logic.
    Pid offender_pid = kInvalidPid;
};

/** Aggregate detector statistics. */
struct AnvilStats {
    std::uint64_t stage1_windows = 0;
    std::uint64_t stage1_triggers = 0;   ///< windows escalating to Stage 2
    std::uint64_t stage2_windows = 0;
    std::uint64_t detections = 0;
    std::uint64_t selective_refreshes = 0;
    std::uint64_t false_positive_detections = 0;
    std::uint64_t false_positive_refreshes = 0;
    Tick overhead = 0;  ///< core time charged to the detector
};

/** Accumulates stats across independent detector instances (sweeps). */
inline AnvilStats &
operator+=(AnvilStats &a, const AnvilStats &b)
{
    a.stage1_windows += b.stage1_windows;
    a.stage1_triggers += b.stage1_triggers;
    a.stage2_windows += b.stage2_windows;
    a.detections += b.detections;
    a.selective_refreshes += b.selective_refreshes;
    a.false_positive_detections += b.false_positive_detections;
    a.false_positive_refreshes += b.false_positive_refreshes;
    a.overhead += b.overhead;
    return a;
}

/** The detector module. */
class Anvil
{
  public:
    /**
     * @param mem    the machine (clock, page tables, DRAM read primitive)
     * @param pmu    the performance-monitoring unit to program
     * @param config detector parameters
     */
    Anvil(mem::MemorySystem &mem, pmu::Pmu &pmu, const AnvilConfig &config);
    ~Anvil();

    Anvil(const Anvil &) = delete;
    Anvil &operator=(const Anvil &) = delete;

    /** Loads the module: begins Stage-1 monitoring. */
    void start();

    /** Unloads the module: cancels all monitoring. */
    void stop();

    bool running() const { return running_; }

    /**
     * Ground-truth oracle supplied by the experiment harness: returns
     * true while an attack is actually running. Used only for
     * false-positive accounting, never by the detector logic.
     */
    void set_ground_truth(std::function<bool()> oracle);

    const AnvilStats &stats() const { return stats_; }
    const std::vector<Detection> &detections() const { return detections_; }
    const AnvilConfig &config() const { return config_; }

    /** Resets statistics and the detection log (not the state machine). */
    void reset_stats();

  private:
    enum class Stage { kIdle, kStage1, kStage2 };

    void begin_stage1();
    void on_miss_overflow();  ///< Stage-1 PMI: threshold beaten the timer
    void on_stage1_timeout();
    void begin_stage2();
    void on_stage2_end();
    void analyze_and_protect(const std::vector<pmu::PebsRecord> &samples,
                             std::uint64_t misses_in_ts);
    void protect(const std::vector<Aggressor> &aggressors,
                 Detection &detection);
    void charge(Cycles cycles);

    mem::MemorySystem &mem_;
    pmu::Pmu &pmu_;
    AnvilConfig config_;
    const dram::AddressMap &dram_map_;

    bool running_ = false;
    Stage stage_ = Stage::kIdle;
    sim::EventId window_event_ = 0;

    // Stage-bookkeeping snapshots.
    std::uint64_t misses_at_stage_start_ = 0;
    std::uint64_t misses_at_stage1_start_ = 0;
    std::uint64_t load_misses_at_stage_start_ = 0;

    /// Scratch buffer the PMU's PEBS records are swapped into at the end
    /// of each Stage-2 window; reused across windows so the steady state
    /// allocates nothing.
    std::vector<pmu::PebsRecord> sample_buf_;

    std::function<bool()> ground_truth_;
    AnvilStats stats_;
    std::vector<Detection> detections_;
};

}  // namespace anvil::detector

#endif  // ANVIL_ANVIL_ANVIL_HH
