/**
 * @file
 * SPEC CPU2006 integer workload profiles.
 *
 * The paper evaluates ANVIL's false-positive rate and slowdown on the
 * SPEC2006 integer suite (Section 4.1). Real SPEC binaries and inputs are
 * not available here, so each benchmark is modelled as a synthetic access
 * generator whose *memory behaviour* is calibrated to the paper's
 * qualitative characterization:
 *
 *  - libquantum / omnetpp / mcf / xalancbmk cross the Stage-1 LLC-miss
 *    threshold in 95-99 % of 6 ms windows (Section 4.3);
 *  - h264ref / gobmk / sjeng / hmmer cross it in < 10 % of windows;
 *  - bzip2 and gcc exhibit occasional cache-set-conflict thrash phases
 *    (blocked compression / bursty compilation), which are the source of
 *    their comparatively high false-positive refresh rates (Table 4).
 *
 * The absolute SPEC scores are irrelevant to the reproduction; what the
 * experiments consume is each benchmark's LLC miss rate, its load/store
 * miss mix, and its DRAM row/bank locality statistics.
 */
#ifndef ANVIL_WORKLOAD_PROFILE_HH
#define ANVIL_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"

namespace anvil::workload {

/** Tunable description of one benchmark's memory behaviour. */
struct SpecProfile {
    std::string name;

    /// Total arena mapped by the benchmark.
    std::uint64_t arena_bytes = 64ULL << 20;
    /// Size of the frequently revisited (cache-resident) hot region.
    std::uint64_t hot_bytes = 1ULL << 20;
    /// Probability that a non-streaming access goes to the hot region.
    double hot_fraction = 0.9;
    /// Probability that an access advances the sequential stream pointer
    /// instead of drawing hot/cold.
    double stream_fraction = 0.0;
    /// Fraction of accesses that are stores.
    double store_fraction = 0.2;
    /// Mean compute cycles between memory operations (exponential jitter).
    Cycles think_cycles = 200;

    /// Rate of cache-set-conflict thrash phases (false-positive source).
    double thrash_phases_per_sec = 0.0;
    /// Duration of one thrash phase. Long enough by default to span a
    /// full Stage-1 + Stage-2 detection cycle (12 ms), as real conflict
    /// phases do.
    Tick thrash_duration = ms(12.0);
    /// Fraction of thrash phases that are full set sweeps missing on every
    /// access (the most intense kind).
    double thrash_burst_fraction = 0.2;
    /// Fraction that are full-speed two-line ping-pong phases; the rest
    /// are throttled ("weak") phases whose miss rate falls between the
    /// ANVIL-light and ANVIL-baseline Stage-1 thresholds.
    double thrash_strong_fraction = 0.4;

    std::uint64_t seed = 1;
};

/** The twelve SPEC2006 integer profiles used throughout the evaluation. */
const std::vector<SpecProfile> &spec2006_int();

/** Looks a profile up by name. @throw std::out_of_range if unknown. */
const SpecProfile &spec_profile(const std::string &name);

}  // namespace anvil::workload

#endif  // ANVIL_WORKLOAD_PROFILE_HH
