/**
 * @file
 * Synthetic benchmark driver.
 *
 * A Workload owns one simulated process and issues memory operations
 * according to its SpecProfile: a mixture of hot-region reuse, cold random
 * accesses, sequential streaming, and occasional cache-set-conflict
 * "thrash phases". Thrash phases model the pathological-but-benign
 * conflict-miss behaviour (e.g. blocked compression with power-of-two
 * strides) that stresses ANVIL's false-positive filtering: repeated DRAM
 * row accesses with high locality that are NOT an attack.
 */
#ifndef ANVIL_WORKLOAD_WORKLOAD_HH
#define ANVIL_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "attack/memory_layout.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "mem/memory_system.hh"
#include "workload/profile.hh"

namespace anvil::workload {

/** One synthetic benchmark process. */
class Workload
{
  public:
    Workload(mem::MemorySystem &mem, const SpecProfile &profile);

    /** Issues one memory operation (plus its think time). */
    void step();

    /** Issues @p n operations. */
    void run_ops(std::uint64_t n);

    /** Steps until the simulated clock reaches now() + dt. */
    void run_for(Tick dt);

    /** Operations issued so far (the fixed-work unit for slowdowns). */
    std::uint64_t ops() const { return ops_; }

    Pid pid() const { return pid_; }
    const SpecProfile &profile() const { return profile_; }

    /** True while a conflict-thrash phase is active (for tests). */
    bool in_thrash_phase() const { return in_thrash_; }

  private:
    /** Intensity of one thrash phase. */
    enum class ThrashKind { kBurst, kStrong, kWeak };

    void maybe_toggle_thrash();
    void enter_thrash();
    void thrash_step();
    void normal_step();
    Addr random_line(Addr base, std::uint64_t bytes);
    void think(Cycles mean);
    void schedule_next_thrash();

    mem::MemorySystem &mem_;
    SpecProfile profile_;
    Rng rng_;
    Pid pid_;

    Addr arena_ = 0;
    Addr stream_pos_ = 0;
    attack::MemoryLayout layout_;
    std::vector<Addr> block_bases_;  ///< VA of each THP block in the arena

    // Thrash-phase state.
    bool in_thrash_ = false;
    Tick thrash_end_ = 0;
    Tick next_thrash_ = 0;
    std::vector<Addr> thrash_seq_;
    std::size_t thrash_idx_ = 0;
    Cycles thrash_think_ = 0;

    std::uint64_t ops_ = 0;
};

/**
 * Round-robin multi-program driver: interleaves several steppables on the
 * shared memory system, modelling concurrent load (the paper's "heavy
 * load" runs mcf + libquantum + omnetpp alongside the attack).
 */
class Runner
{
  public:
    explicit Runner(mem::MemorySystem &mem) : mem_(mem) {}

    /** Adds a driver; fn() must issue at least one operation. */
    void add(std::function<void()> step_fn)
    {
        drivers_.push_back(std::move(step_fn));
    }

    /** Interleaves drivers until the clock reaches @p deadline. */
    void
    run_until(Tick deadline)
    {
        while (mem_.now() < deadline) {
            for (auto &driver : drivers_) {
                driver();
                if (mem_.now() >= deadline)
                    break;
            }
        }
    }

    void run_for(Tick dt) { run_until(mem_.now() + dt); }

  private:
    mem::MemorySystem &mem_;
    std::vector<std::function<void()>> drivers_;
};

}  // namespace anvil::workload

#endif  // ANVIL_WORKLOAD_WORKLOAD_HH
