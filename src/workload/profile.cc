#include "workload/profile.hh"

#include <stdexcept>

namespace anvil::workload {

namespace {

std::vector<SpecProfile>
build_profiles()
{
    std::vector<SpecProfile> profiles;

    auto add = [&](SpecProfile p) { profiles.push_back(std::move(p)); };

    // --- Memory-intensive group: crosses the Stage-1 threshold in
    // --- 95-99 % of 6 ms windows.
    {
        SpecProfile p;
        p.name = "mcf";
        p.arena_bytes = 192ULL << 20;
        p.hot_bytes = 1ULL << 20;
        p.hot_fraction = 0.05;  // almost everything is a cold pointer hop
        p.stream_fraction = 0.0;
        p.store_fraction = 0.15;
        p.think_cycles = 120;
        p.thrash_phases_per_sec = 0.0011;
        p.thrash_burst_fraction = 0.0;
        p.thrash_strong_fraction = 1.0;
        p.seed = 101;
        add(p);
    }
    {
        SpecProfile p;
        p.name = "libquantum";
        p.arena_bytes = 64ULL << 20;
        p.stream_fraction = 0.95;  // long unit-stride sweeps
        p.hot_bytes = 256ULL << 10;
        p.hot_fraction = 0.9;
        p.store_fraction = 0.30;
        p.think_cycles = 60;
        p.thrash_phases_per_sec = 0.007;
        p.thrash_burst_fraction = 0.7;
        p.thrash_strong_fraction = 0.3;
        p.seed = 102;
        add(p);
    }
    {
        SpecProfile p;
        p.name = "omnetpp";
        p.arena_bytes = 128ULL << 20;
        p.hot_bytes = 2ULL << 20;
        p.hot_fraction = 0.45;
        p.store_fraction = 0.3;
        p.think_cycles = 100;
        p.thrash_phases_per_sec = 0.0034;
        p.thrash_burst_fraction = 0.0;
        p.thrash_strong_fraction = 1.0;
        p.seed = 103;
        add(p);
    }
    {
        SpecProfile p;
        p.name = "xalancbmk";
        p.arena_bytes = 96ULL << 20;
        p.hot_bytes = 2ULL << 20;
        p.hot_fraction = 0.55;
        p.store_fraction = 0.25;
        p.think_cycles = 110;
        p.thrash_phases_per_sec = 0.0085;
        p.thrash_burst_fraction = 0.14;
        p.thrash_strong_fraction = 0.86;
        p.seed = 104;
        add(p);
    }

    // --- Moderate group.
    {
        SpecProfile p;
        p.name = "astar";
        p.arena_bytes = 64ULL << 20;
        p.hot_bytes = 2ULL << 20;
        p.hot_fraction = 0.88;
        p.store_fraction = 0.25;
        p.think_cycles = 160;
        p.thrash_phases_per_sec = 0.043;
        p.thrash_burst_fraction = 0.0;
        p.thrash_strong_fraction = 0.667;
        p.seed = 105;
        add(p);
    }
    {
        // Blocked compression: strongest conflict-thrash behaviour in the
        // suite, hence the highest false-positive rate in Table 4.
        SpecProfile p;
        p.name = "bzip2";
        p.arena_bytes = 64ULL << 20;
        p.hot_bytes = 2ULL << 20;
        p.hot_fraction = 0.85;
        p.store_fraction = 0.35;
        p.think_cycles = 150;
        p.thrash_phases_per_sec = 0.107;
        p.thrash_burst_fraction = 0.73;
        p.thrash_strong_fraction = 0.0;
        p.thrash_duration = ms(12.0);
        p.seed = 106;
        add(p);
    }
    {
        // Bursty compilation phases; many weak thrash phases (the Table 5
        // ANVIL-light jump comes from these).
        SpecProfile p;
        p.name = "gcc";
        p.arena_bytes = 96ULL << 20;
        p.hot_bytes = 3ULL << 20;
        p.hot_fraction = 0.95;
        p.store_fraction = 0.3;
        p.think_cycles = 140;
        p.thrash_phases_per_sec = 1.16;
        p.thrash_burst_fraction = 0.021;
        p.thrash_strong_fraction = 0.0;
        p.thrash_duration = ms(12.0);
        p.seed = 107;
        add(p);
    }

    // --- Cache-resident group: crosses the Stage-1 threshold in < 10 %
    // --- of windows.
    {
        SpecProfile p;
        p.name = "gobmk";
        p.arena_bytes = 64ULL << 20;
        p.hot_bytes = 1536ULL << 10;
        p.hot_fraction = 0.985;
        p.store_fraction = 0.3;
        p.think_cycles = 140;
        p.thrash_phases_per_sec = 0.032;
        p.thrash_burst_fraction = 0.231;
        p.thrash_strong_fraction = 0.0;
        p.thrash_duration = ms(12.0);
        p.seed = 108;
        add(p);
    }
    {
        SpecProfile p;
        p.name = "h264ref";
        p.arena_bytes = 24ULL << 20;
        p.hot_bytes = 1ULL << 20;
        p.hot_fraction = 0.995;
        p.store_fraction = 0.35;
        p.think_cycles = 100;
        p.thrash_phases_per_sec = 0.0;
        p.thrash_burst_fraction = 0.0;
        p.thrash_strong_fraction = 0.0;
        p.seed = 109;
        add(p);
    }
    {
        SpecProfile p;
        p.name = "hmmer";
        p.arena_bytes = 16ULL << 20;
        p.hot_bytes = 768ULL << 10;
        p.hot_fraction = 0.995;
        p.store_fraction = 0.45;
        p.think_cycles = 80;
        p.thrash_phases_per_sec = 0.0;
        p.thrash_burst_fraction = 0.0;
        p.thrash_strong_fraction = 0.0;
        p.seed = 110;
        add(p);
    }
    {
        SpecProfile p;
        p.name = "perlbench";
        p.arena_bytes = 48ULL << 20;
        p.hot_bytes = 2ULL << 20;
        p.hot_fraction = 0.99;
        p.store_fraction = 0.35;
        p.think_cycles = 120;
        p.thrash_phases_per_sec = 0.0375;
        p.thrash_burst_fraction = 0.0;
        p.thrash_strong_fraction = 0.0;
        p.seed = 111;
        add(p);
    }
    {
        SpecProfile p;
        p.name = "sjeng";
        p.arena_bytes = 32ULL << 20;
        p.hot_bytes = 1ULL << 20;
        p.hot_fraction = 0.99;
        p.store_fraction = 0.25;
        p.think_cycles = 150;
        p.thrash_phases_per_sec = 0.005;
        p.thrash_burst_fraction = 0.0;
        p.thrash_strong_fraction = 0.0;
        p.seed = 112;
        add(p);
    }

    return profiles;
}

}  // namespace

const std::vector<SpecProfile> &
spec2006_int()
{
    static const std::vector<SpecProfile> profiles = build_profiles();
    return profiles;
}

const SpecProfile &
spec_profile(const std::string &name)
{
    for (const SpecProfile &p : spec2006_int()) {
        if (p.name == name)
            return p;
    }
    throw std::out_of_range("unknown SPEC profile: " + name);
}

}  // namespace anvil::workload
