#include "workload/workload.hh"

#include <cmath>

namespace anvil::workload {

Workload::Workload(mem::MemorySystem &mem, const SpecProfile &profile)
    : mem_(mem),
      profile_(profile),
      rng_(profile.seed * 0x9e3779b97f4a7c15ULL + 1),
      pid_(mem.create_process().pid()),
      layout_(mem.process(pid_), mem.dram().address_map(), mem.hierarchy())
{
    arena_ = mem_.process(pid_).mmap(profile_.arena_bytes);
    stream_pos_ = arena_;
    layout_.scan(arena_, profile_.arena_bytes);
    for (const mem::MappedRegion &region : mem_.process(pid_).regions()) {
        if (!region.huge || region.va_base != arena_)
            continue;
        for (std::uint64_t off = 0; off < region.bytes;
             off += mem::kHugeBytes) {
            block_bases_.push_back(region.va_base + off);
        }
    }
    schedule_next_thrash();
}

void
Workload::schedule_next_thrash()
{
    if (profile_.thrash_phases_per_sec <= 0.0) {
        next_thrash_ = ~static_cast<Tick>(0);
        return;
    }
    // Poisson arrivals: exponential inter-arrival times.
    const double mean_gap_sec = 1.0 / profile_.thrash_phases_per_sec;
    double u;
    do {
        u = rng_.next_double();
    } while (u <= 0.0);
    next_thrash_ = mem_.now() + seconds(-std::log(u) * mean_gap_sec);
}

void
Workload::enter_thrash()
{
    in_thrash_ = true;
    thrash_end_ = mem_.now() + profile_.thrash_duration;
    thrash_idx_ = 0;
    thrash_seq_.clear();

    const Addr anchor = random_line(arena_, profile_.arena_bytes);
    const double kind_draw = rng_.next_double();
    ThrashKind kind;
    if (kind_draw < profile_.thrash_burst_fraction)
        kind = ThrashKind::kBurst;
    else if (kind_draw <
             profile_.thrash_burst_fraction + profile_.thrash_strong_fraction)
        kind = ThrashKind::kStrong;
    else
        kind = ThrashKind::kWeak;

    try {
        if (kind == ThrashKind::kBurst) {
            // Same line offset in many THP blocks: all lines share one
            // LLC set (and hence one DRAM bank), one per block-sized row
            // group. Sweeping more of them than the set holds misses on
            // every access — the classic column-of-structs stride
            // pathology over huge pages.
            if (block_bases_.size() < 26) {
                in_thrash_ = false;
                return;
            }
            const Addr offset =
                rng_.next_below(mem::kHugeBytes / cache::kLineBytes) *
                cache::kLineBytes;
            std::vector<Addr> pool = block_bases_;
            for (std::size_t i = 0; i < 28 && !pool.empty(); ++i) {
                const std::size_t j = rng_.next_below(pool.size());
                thrash_seq_.push_back(pool[j] + offset);
                pool[j] = pool.back();
                pool.pop_back();
            }
            thrash_think_ = 0;
        } else {
            // Two-line ping-pong with replacement-state maintenance: the
            // two "block" lines miss on every cycle — conflict-miss
            // behaviour indistinguishable (by rate and row locality) from
            // hammering, except usually landing in different banks.
            auto lines = layout_.build_eviction_set(anchor, 12);
            const Addr other = lines.back();
            lines.pop_back();
            thrash_seq_.push_back(anchor);
            thrash_seq_.insert(thrash_seq_.end(), lines.begin(),
                               lines.end());
            thrash_seq_.push_back(other);
            thrash_seq_.insert(thrash_seq_.end(), lines.begin(),
                               lines.end());
            // Weak phases are throttled so their miss rate (plus typical
            // background misses) lands between the ANVIL-light (10 K) and
            // ANVIL-baseline (20 K) Stage-1 thresholds.
            thrash_think_ = kind == ThrashKind::kStrong ? 0 : 70;
        }
    } catch (const std::exception &) {
        // Buffer layout too unlucky for a conflict group; skip the phase.
        in_thrash_ = false;
    }
}

void
Workload::maybe_toggle_thrash()
{
    const Tick now = mem_.now();
    if (in_thrash_) {
        if (now >= thrash_end_) {
            in_thrash_ = false;
            schedule_next_thrash();
        }
    } else if (now >= next_thrash_) {
        enter_thrash();
    }
}

Addr
Workload::random_line(Addr base, std::uint64_t bytes)
{
    const std::uint64_t lines = bytes / cache::kLineBytes;
    return base + rng_.next_below(lines) * cache::kLineBytes;
}

void
Workload::think(Cycles mean)
{
    if (mean == 0)
        return;
    // Exponential jitter around the mean keeps access timing aperiodic.
    double u;
    do {
        u = rng_.next_double();
    } while (u <= 0.0);
    const auto cycles =
        static_cast<Cycles>(-std::log(u) * static_cast<double>(mean));
    mem_.advance_cycles(cycles);
}

void
Workload::thrash_step()
{
    const Addr va = thrash_seq_[thrash_idx_];
    thrash_idx_ = (thrash_idx_ + 1) % thrash_seq_.size();
    mem_.access(pid_, va,
                rng_.next_bool(profile_.store_fraction)
                    ? AccessType::kStore
                    : AccessType::kLoad);
    think(thrash_think_);
}

void
Workload::normal_step()
{
    Addr va;
    if (rng_.next_bool(profile_.stream_fraction)) {
        stream_pos_ += cache::kLineBytes;
        if (stream_pos_ >= arena_ + profile_.arena_bytes)
            stream_pos_ = arena_;
        va = stream_pos_;
    } else if (rng_.next_bool(profile_.hot_fraction)) {
        va = random_line(arena_, profile_.hot_bytes);
    } else {
        va = random_line(arena_, profile_.arena_bytes);
    }
    mem_.access(pid_, va,
                rng_.next_bool(profile_.store_fraction)
                    ? AccessType::kStore
                    : AccessType::kLoad);
    think(profile_.think_cycles);
}

void
Workload::step()
{
    maybe_toggle_thrash();
    if (in_thrash_)
        thrash_step();
    else
        normal_step();
    ++ops_;
}

void
Workload::run_ops(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i)
        step();
}

void
Workload::run_for(Tick dt)
{
    const Tick deadline = mem_.now() + dt;
    while (mem_.now() < deadline)
        step();
}

}  // namespace anvil::workload
