#include "scenario/scheduler.hh"

#include <algorithm>
#include <map>

namespace anvil::scenario {
namespace {

constexpr Tick kNoDeadline = ~static_cast<Tick>(0);

}  // namespace

std::vector<TenantSpec>
normalized_tenants(const ScenarioSpec &spec)
{
    std::vector<TenantSpec> out;
    out.reserve(spec.attacks.size() + spec.workloads.size() +
                spec.tenants.size());
    for (const AttackSpec &attack : spec.attacks) {
        TenantSpec t;
        t.attack = attack;
        out.push_back(std::move(t));
    }
    for (const WorkloadSpec &workload : spec.workloads) {
        TenantSpec t;
        t.workload = workload;
        out.push_back(std::move(t));
    }
    out.insert(out.end(), spec.tenants.begin(), spec.tenants.end());

    std::map<std::string, std::uint32_t> used;
    for (TenantSpec &t : out) {
        std::string base = t.name;
        if (base.empty()) {
            if (t.attack)
                base = "attacker";
            else if (t.workload && !t.workload->profile.empty())
                base = t.workload->profile;
            else
                base = "tenant";
        }
        const std::uint32_t n = ++used[base];
        t.name = n == 1 ? base : base + "#" + std::to_string(n);
    }
    return out;
}

void
TenantScheduler::add(ScheduledTenant tenant)
{
    if (tenant.quantum_accesses == 0)
        tenant.quantum_accesses = 1;
    tenants_.push_back(std::move(tenant));
    stats_.emplace_back();
}

bool
TenantScheduler::run_quantum(std::size_t index, Tick deadline)
{
    ScheduledTenant &t = tenants_[index];
    TenantRunStats &s = stats_[index];
    const bool track = t.pid != kInvalidPid;
    std::uint64_t consumed = 0;
    bool stepped = false;
    while (consumed < t.quantum_accesses) {
        if (mem_.now() >= deadline)
            break;
        const std::uint64_t before =
            track ? mem_.process(t.pid).accesses() : 0;
        t.step();
        ++s.steps;
        stepped = true;
        const std::uint64_t delta =
            track ? mem_.process(t.pid).accesses() - before : 1;
        s.accesses += delta;
        // A step that completed no counted access (a pure-CLFLUSH
        // hammer iteration, say) still consumes one unit: the quantum
        // always drains and the schedule can never livelock.
        consumed += std::max<std::uint64_t>(1, delta);
    }
    if (stepped)
        ++s.quanta;
    return stepped;
}

void
TenantScheduler::run_until(Tick deadline)
{
    if (tenants_.empty()) {
        if (mem_.now() < deadline)
            mem_.advance(deadline - mem_.now());
        return;
    }
    while (mem_.now() < deadline) {
        bool progressed = false;
        Tick earliest_arrival = deadline;
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            if (mem_.now() >= deadline)
                return;
            if (mem_.now() < tenants_[i].not_before) {
                earliest_arrival =
                    std::min(earliest_arrival, tenants_[i].not_before);
                continue;
            }
            progressed = run_quantum(i, deadline) || progressed;
        }
        if (!progressed && mem_.now() < deadline) {
            // Every tenant is still waiting on its start delay: jump the
            // clock to the first arrival instead of spinning.
            mem_.advance(std::min(earliest_arrival, deadline) -
                         mem_.now());
        }
    }
}

void
TenantScheduler::run_rounds(const std::function<bool()> &more)
{
    if (tenants_.empty())
        return;
    while (more()) {
        bool progressed = false;
        Tick earliest_arrival = kNoDeadline;
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            if (mem_.now() < tenants_[i].not_before) {
                earliest_arrival =
                    std::min(earliest_arrival, tenants_[i].not_before);
                continue;
            }
            progressed = run_quantum(i, kNoDeadline) || progressed;
        }
        if (!progressed && earliest_arrival != kNoDeadline)
            mem_.advance(earliest_arrival - mem_.now());
    }
}

}  // namespace anvil::scenario
