#include "scenario/builder.hh"

#include <stdexcept>
#include <utility>

#include "mitigations/registry.hh"
#include "runner/sweep.hh"
#include "scenario/scheduler.hh"
#include "scenario/validate.hh"
#include "workload/profile.hh"

namespace anvil::scenario {
namespace {

/** Builds one attacker's hammer (target selection + kernel). */
BuiltAttack
build_attack(const AttackSpec &spec, mem::MemorySystem &machine,
             Attacker &attacker)
{
    BuiltAttack built;
    built.kind = spec.kind;
    switch (spec.kind) {
      case AttackKind::kClflushSingleSided: {
          const auto target = weakest_single_sided(machine, attacker);
          if (!target)
              throw std::runtime_error("no single-sided target");
          built.flat_bank = target->flat_bank;
          built.victim_row = target->aggressor_row + 1;
          built.hammer = std::make_unique<attack::ClflushSingleSided>(
              machine, attacker.pid(), *target);
          break;
      }
      case AttackKind::kClflushDoubleSided: {
          const auto target = weakest_double_sided(machine, attacker);
          if (!target)
              throw std::runtime_error("no double-sided target");
          built.flat_bank = target->flat_bank;
          built.victim_row = target->victim_row;
          built.hammer = std::make_unique<attack::ClflushDoubleSided>(
              machine, attacker.pid(), *target);
          break;
      }
      case AttackKind::kClflushFreeDoubleSided: {
          const auto target = weakest_double_sided(
              machine, attacker, /*require_slice_compatible=*/true);
          if (!target)
              throw std::runtime_error("no slice-compatible target");
          built.flat_bank = target->flat_bank;
          built.victim_row = target->victim_row;
          built.hammer = std::make_unique<attack::ClflushFreeDoubleSided>(
              machine, attacker.pid(), *target, attacker.layout);
          break;
      }
      case AttackKind::kClflushHalfDouble: {
          const auto target = weakest_half_double(machine, attacker);
          if (!target)
              throw std::runtime_error("no half-double target");
          built.flat_bank = target->flat_bank;
          built.victim_row = target->victim_row;
          built.hammer = std::make_unique<attack::ClflushHalfDouble>(
              machine, attacker.pid(), *target);
          break;
      }
      case AttackKind::kTrackerThrash: {
          auto rows = attacker.layout.find_thrash_rows(4096);
          if (rows.empty())
              throw std::runtime_error("no thrash rows");
          // No single victim: the target of this attack is the tracker's
          // tables, not a DRAM row.
          built.flat_bank = 0;
          built.victim_row = 0;
          built.hammer = std::make_unique<attack::TrackerThrash>(
              machine, attacker.pid(), std::move(rows));
          break;
      }
    }
    return built;
}

}  // namespace

std::size_t
Execution::tenant_index_of(Pid pid) const
{
    if (pid == kInvalidPid)
        return tenants_.size();
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (tenants_[i].pid == pid)
            return i;
    }
    return tenants_.size();
}

ScenarioBuilder::ScenarioBuilder(const ScenarioSpec &spec,
                                 const runner::TrialContext &ctx)
    : spec_(spec), ctx_(ctx)
{
}

Tick
ScenarioBuilder::draw(const PhaseJitter &jitter) const
{
    Tick t = jitter.base;
    if (jitter.jitter != 0)
        t += ctx_.seed_for(jitter.stream) % jitter.jitter;
    return t;
}

Execution &
ScenarioBuilder::build()
{
    validate(spec_);

    exec_ = std::make_unique<Execution>();
    Execution &e = *exec_;

    e.config_ = spec_.system;
    if (spec_.seed_vm_from_trial)
        e.config_.vm_seed = ctx_.seed_for("vm");

    const std::vector<TenantSpec> tenants = normalized_tenants(spec_);

    e.machine_ = std::make_unique<mem::MemorySystem>(e.config_);
    e.pmu_ = std::make_unique<pmu::Pmu>(*e.machine_);

    // Attacker processes map and scan their buffers right after the
    // machine comes up (the legacy Testbed sequence), before any
    // workload arena claims frames.
    for (const TenantSpec &t : tenants) {
        if (t.attack) {
            e.intruders_.push_back(std::make_unique<Attacker>(
                *e.machine_, t.attack->buffer_bytes));
        }
    }

    if (ctx_.watchdog().armed()) {
        // Every completed memory access ticks the trial's event budget:
        // the watchdog fires at the same simulated event no matter how
        // trials are scheduled, so timeouts are deterministic.
        runner::Watchdog *wd = &ctx_.watchdog();
        e.machine().add_observer(
            [wd](const mem::AccessInfo &) { wd->tick(); });
    }

    if (!spec_.mitigation.empty()) {
        e.mitigation_ = mitigations::mitigation_registry()
                            .at(spec_.mitigation)
                            .make(e.machine().dram(),
                                  ctx_.seed_for("mitigation"));
    }

    if (!spec_.pre_detector.empty())
        e.machine().advance(draw(spec_.pre_detector));

    const auto build_workloads = [&] {
        for (const TenantSpec &t : tenants) {
            if (!t.workload)
                continue;
            const WorkloadSpec &ws = *t.workload;
            workload::SpecProfile profile =
                workload::spec_profile(ws.profile);
            if (!ws.seed_stream.empty())
                profile.seed = ctx_.seed_for(ws.seed_stream);
            if (ws.boost_thrash)
                e.boost_ *= boost_thrash_rate(profile);
            e.workloads_.push_back(
                std::make_unique<workload::Workload>(e.machine(),
                                                     profile));
        }
    };
    const auto build_detector = [&] {
        if (!spec_.detector)
            return;
        e.anvil_ = std::make_unique<detector::Anvil>(e.machine(), e.pmu(),
                                                     *spec_.detector);
        if (spec_.ground_truth == GroundTruth::kAttackLifetime) {
            // The oracle is scoped to the attack's actual lifetime: a
            // detection fired during the free-run window (before the
            // hammer starts) is labeled a false positive.
            Execution *exec = &e;
            e.anvil_->set_ground_truth(
                [exec] { return exec->attack_active_; });
        }
        // Starting the detector charges the first stage-1 check to the
        // simulated clock, so order relative to workload construction is
        // observable (spec.detector_before_workloads).
        e.anvil_->start();
    };
    if (spec_.detector_before_workloads) {
        build_detector();
        build_workloads();
    } else {
        build_workloads();
        build_detector();
    }

    if (!spec_.pre_attack.empty())
        e.machine().advance(draw(spec_.pre_attack));

    std::size_t attacker_index = 0;
    std::size_t workload_index = 0;
    for (const TenantSpec &t : tenants) {
        BuiltTenant built;
        built.name = t.name;
        built.quantum_accesses =
            t.quantum_accesses != 0 ? t.quantum_accesses : 1;
        built.start_delay = t.start_delay.empty() ? 0 : draw(t.start_delay);
        if (t.attack) {
            built.is_attacker = true;
            built.payload = attacker_index;
            Attacker &intruder = *e.intruders_[attacker_index];
            built.pid = intruder.pid();
            e.attacks_.push_back(
                build_attack(*t.attack, e.machine(), intruder));
            ++attacker_index;
        } else {
            built.payload = workload_index;
            built.pid = e.workloads_[workload_index]->pid();
            ++workload_index;
        }
        e.tenants_.push_back(std::move(built));
    }

    return e;
}

void
ScenarioBuilder::run()
{
    Execution &e = *exec_;
    e.run_start_ = e.machine().now();
    e.attack_start_ = e.run_start_;
    e.attack_active_ = !e.attacks_.empty();
    for (BuiltTenant &t : e.tenants_) {
        if (!t.is_attacker)
            t.run_start_ops = e.workloads_[t.payload]->ops();
    }

    const auto add_tenants = [&](TenantScheduler &sched) {
        for (const BuiltTenant &t : e.tenants_) {
            ScheduledTenant st;
            st.name = t.name;
            st.pid = t.pid;
            st.quantum_accesses = t.quantum_accesses;
            st.not_before = e.run_start_ + t.start_delay;
            if (t.is_attacker) {
                attack::Hammer *hammer = e.attacks_[t.payload].hammer.get();
                st.step = [hammer] { hammer->step(); };
            } else {
                workload::Workload *w = e.workloads_[t.payload].get();
                st.step = [w] { w->step(); };
            }
            sched.add(std::move(st));
        }
    };

    switch (spec_.run.mode) {
      case RunMode::kInterleaveFor: {
          TenantScheduler sched(e.machine());
          add_tenants(sched);
          sched.run_until(e.run_start_ + spec_.run.duration);
          break;
      }
      case RunMode::kWorkloadOps: {
          for (auto &load : e.workloads_)
              load->run_ops(spec_.run.ops);
          break;
      }
      case RunMode::kHammerToFirstFlip: {
          BuiltAttack &attack = e.attacks_.at(0);
          // Phase-align so the trial measures pure hammering time within
          // one clean refresh window of the victim.
          align_to_refresh(e.machine(), attack.victim_row);
          e.hammer_result_ = attack.hammer->run(
              e.config_.dram.refresh_period + spec_.run.duration);
          break;
      }
      case RunMode::kHammerUntilFlipOrDeadline: {
          BuiltAttack &attack = e.attacks_.at(0);
          const Tick deadline = e.machine().now() + spec_.run.duration;
          while (e.machine().now() < deadline &&
                 e.machine().dram().flips().empty()) {
              attack.hammer->step();
              if (spec_.run.step_gap != 0)
                  e.machine().advance(spec_.run.step_gap);
          }
          break;
      }
      case RunMode::kInterleaveUntilOps: {
          // Fixed-work slowdown under live attack pressure: round-robin
          // everything until the FIRST workload finishes its quota, so
          // the measured run_ms scales with whatever latency the attack
          // (and any mitigation response it provokes) inflicts.
          workload::Workload *lead = e.workloads_.at(0).get();
          const std::uint64_t start_ops = lead->ops();
          const std::uint64_t quota = spec_.run.ops;
          TenantScheduler sched(e.machine());
          add_tenants(sched);
          sched.run_rounds([lead, start_ops, quota] {
              return lead->ops() - start_ops < quota;
          });
          break;
      }
      case RunMode::kPatternMeasure: {
          BuiltAttack &attack = e.attacks_.at(0);
          for (std::uint64_t i = 0; i < spec_.run.warmup_iterations; ++i)
              attack.hammer->step();  // reach steady state

          const auto llc_before = e.machine().hierarchy().llc_stats();
          const std::uint64_t acts_before =
              e.machine().dram().bank(attack.flat_bank).activations();
          const std::uint64_t dram_before =
              e.machine().dram().stats().accesses;
          const Tick t0 = e.machine().now();
          const std::uint64_t iterations = spec_.run.iterations;
          for (std::uint64_t i = 0; i < iterations; ++i)
              attack.hammer->step();
          const auto llc_after = e.machine().hierarchy().llc_stats();

          PatternStats &p = e.pattern_;
          p.misses_per_iteration =
              static_cast<double>(llc_after.misses - llc_before.misses) /
              static_cast<double>(iterations);
          p.accesses_per_iteration =
              static_cast<double>(llc_after.accesses -
                                  llc_before.accesses) /
              static_cast<double>(iterations);
          p.ns_per_iteration = to_ns(e.machine().now() - t0) /
                               static_cast<double>(iterations);
          p.cycles_per_iteration =
              p.ns_per_iteration * e.machine().core().freq_ghz();
          p.hammers_per_refresh = 64e6 / p.ns_per_iteration;
          const double aggressor_acts = static_cast<double>(
              e.machine().dram().bank(attack.flat_bank).activations() -
              acts_before);
          const double dram_accesses = static_cast<double>(
              e.machine().dram().stats().accesses - dram_before);
          p.aggressor_activation_share =
              dram_accesses > 0 ? aggressor_acts / dram_accesses : 0.0;
          break;
      }
    }

    e.attack_active_ = false;
    e.run_seconds_ = to_sec(e.machine().now() - e.run_start_);
}

runner::TrialResult
ScenarioBuilder::emit() const
{
    const Execution &e = *exec_;
    runner::TrialResult r;
    for (const Output output : spec_.outputs) {
        switch (output) {
          case Output::kFlips:
              r.set_counter("flips", e.machine_->dram().flips().size());
              break;
          case Output::kDetections:
              r.set_counter("detections", e.anvil_->stats().detections);
              break;
          case Output::kSelectiveRefreshes:
              r.set_counter("selective_refreshes",
                            e.anvil_->stats().selective_refreshes);
              break;
          case Output::kAttackMs:
              r.set_value("attack_ms",
                          to_ms(e.machine_->now() - e.attack_start_));
              break;
          case Output::kDetectMs:
              if (!e.anvil_->detections().empty()) {
                  r.set_value("detect_ms",
                              to_ms(e.anvil_->detections().front().time -
                                    e.attack_start_));
              }
              break;
          case Output::kFpPerSec:
              r.set_value(
                  "fp_per_sec",
                  static_cast<double>(
                      e.anvil_->stats().false_positive_refreshes) /
                      e.run_seconds_ / e.boost_);
              break;
          case Output::kBoost:
              r.set_value("boost", e.boost_);
              break;
          case Output::kFalsePositiveRefreshes:
              r.set_counter("false_positive_refreshes",
                            e.anvil_->stats().false_positive_refreshes);
              break;
          case Output::kRunMs:
              r.set_value("run_ms",
                          to_ms(e.machine_->now() - e.run_start_));
              break;
          case Output::kOps:
              r.set_counter("ops", spec_.run.ops);
              break;
          case Output::kFlipped:
              r.set_counter("flipped", e.hammer_result_.flipped ? 1 : 0);
              break;
          case Output::kAggressorAccesses:
              r.set_counter("aggressor_accesses",
                            e.hammer_result_.aggressor_accesses);
              break;
          case Output::kFlipMs:
              r.set_value("flip_ms", to_ms(e.hammer_result_.duration));
              break;
          case Output::kMissesPerIter:
              r.set_value("misses_per_iter",
                          e.pattern_.misses_per_iteration);
              break;
          case Output::kAccessesPerIter:
              r.set_value("accesses_per_iter",
                          e.pattern_.accesses_per_iteration);
              break;
          case Output::kNsPerIter:
              r.set_value("ns_per_iter", e.pattern_.ns_per_iteration);
              break;
          case Output::kCyclesPerIter:
              r.set_value("cycles_per_iter",
                          e.pattern_.cycles_per_iteration);
              break;
          case Output::kHammersPerRefresh:
              r.set_value("hammers_per_refresh",
                          e.pattern_.hammers_per_refresh);
              break;
          case Output::kAggressorActShare:
              r.set_value("aggressor_act_share",
                          e.pattern_.aggressor_activation_share);
              break;
          case Output::kAnvilStats:
              if (e.anvil_)
                  r.set_anvil(e.anvil_->stats());
              break;
          case Output::kDramStats:
              r.set_dram(e.machine_->dram().stats());
              break;
          case Output::kMitigationRefreshes:
              r.set_counter("mitigation_refreshes",
                            e.mitigation_->stats().neighbor_refreshes);
              break;
          case Output::kMitigationEvictions:
              r.set_counter("mitigation_evictions",
                            e.mitigation_->stats().table_evictions);
              break;
          case Output::kTenantOps:
              for (const BuiltTenant &t : e.tenants_) {
                  if (t.is_attacker)
                      continue;
                  r.set_counter("ops/" + t.name,
                                e.workloads_[t.payload]->ops() -
                                    t.run_start_ops);
              }
              break;
          case Output::kTenantDetections: {
              std::vector<std::uint64_t> per_tenant(e.tenants_.size(), 0);
              std::uint64_t unattributed = 0;
              for (const detector::Detection &d : e.anvil_->detections()) {
                  const std::size_t idx = e.tenant_index_of(d.offender_pid);
                  if (idx < e.tenants_.size())
                      ++per_tenant[idx];
                  else
                      ++unattributed;
              }
              for (std::size_t i = 0; i < e.tenants_.size(); ++i) {
                  r.set_counter("detections/" + e.tenants_[i].name,
                                per_tenant[i]);
              }
              r.set_counter("detections/unattributed", unattributed);
              break;
          }
          case Output::kCrossTenantFp: {
              // A detection blamed on a benign (workload) tenant is a
              // cross-tenant false positive regardless of the attack
              // window: the daemon would throttle the wrong process.
              std::vector<std::uint64_t> per_tenant(e.tenants_.size(), 0);
              std::uint64_t total = 0;
              for (const detector::Detection &d : e.anvil_->detections()) {
                  const std::size_t idx = e.tenant_index_of(d.offender_pid);
                  if (idx < e.tenants_.size() &&
                      !e.tenants_[idx].is_attacker) {
                      ++per_tenant[idx];
                      ++total;
                  }
              }
              r.set_counter("cross_tenant_fp", total);
              for (std::size_t i = 0; i < e.tenants_.size(); ++i) {
                  if (e.tenants_[i].is_attacker)
                      continue;
                  r.set_counter("cross_tenant_fp/" + e.tenants_[i].name,
                                per_tenant[i]);
              }
              break;
          }
        }
    }
    return r;
}

runner::TrialResult
ScenarioBuilder::run_trial(const ScenarioSpec &spec,
                           const runner::TrialContext &ctx)
{
    ScenarioBuilder builder(spec, ctx);
    builder.build();
    builder.run();
    return builder.emit();
}

runner::Sweep
make_sweep(const SweepSpec &spec, runner::CliOptions &cli)
{
    validate(spec);

    cli.sweep.name = spec.name;
    runner::Sweep sweep(cli.sweep);
    for (const ScenarioSpec &cell : spec.cells) {
        const std::uint64_t trials =
            cell.fixed_trials != 0 ? cell.fixed_trials
                                   : cli.trials_or(spec.default_trials);
        sweep.add_scenario(cell.name, trials,
                           [cell](const runner::TrialContext &ctx) {
                               return ScenarioBuilder::run_trial(cell, ctx);
                           });
    }
    return sweep;
}

runner::SweepRun
run_sweep(const SweepSpec &spec, runner::CliOptions &cli)
{
    runner::Sweep sweep = make_sweep(spec, cli);
    runner::SweepRun run = sweep.run();
    if (spec.finalize)
        spec.finalize(run.sink);
    return run;
}

}  // namespace anvil::scenario
