#include "scenario/builder.hh"

#include <stdexcept>

#include "mitigations/registry.hh"
#include "runner/sweep.hh"
#include "scenario/validate.hh"
#include "workload/profile.hh"

namespace anvil::scenario {
namespace {

/** Builds one attacker on the testbed (target selection + kernel). */
BuiltAttack
build_attack(const AttackSpec &spec, Testbed &bed)
{
    BuiltAttack built;
    built.kind = spec.kind;
    switch (spec.kind) {
      case AttackKind::kClflushSingleSided: {
          const auto target = bed.weakest_single_sided();
          if (!target)
              throw std::runtime_error("no single-sided target");
          built.flat_bank = target->flat_bank;
          built.victim_row = target->aggressor_row + 1;
          built.hammer = std::make_unique<attack::ClflushSingleSided>(
              bed.machine, bed.attacker->pid(), *target);
          break;
      }
      case AttackKind::kClflushDoubleSided: {
          const auto target = bed.weakest_double_sided();
          if (!target)
              throw std::runtime_error("no double-sided target");
          built.flat_bank = target->flat_bank;
          built.victim_row = target->victim_row;
          built.hammer = std::make_unique<attack::ClflushDoubleSided>(
              bed.machine, bed.attacker->pid(), *target);
          break;
      }
      case AttackKind::kClflushFreeDoubleSided: {
          const auto target = bed.weakest_double_sided(
              /*require_slice_compatible=*/true);
          if (!target)
              throw std::runtime_error("no slice-compatible target");
          built.flat_bank = target->flat_bank;
          built.victim_row = target->victim_row;
          built.hammer = std::make_unique<attack::ClflushFreeDoubleSided>(
              bed.machine, bed.attacker->pid(), *target, bed.layout);
          break;
      }
      case AttackKind::kClflushHalfDouble: {
          const auto target = bed.weakest_half_double();
          if (!target)
              throw std::runtime_error("no half-double target");
          built.flat_bank = target->flat_bank;
          built.victim_row = target->victim_row;
          built.hammer = std::make_unique<attack::ClflushHalfDouble>(
              bed.machine, bed.attacker->pid(), *target);
          break;
      }
      case AttackKind::kTrackerThrash: {
          auto rows = bed.layout.find_thrash_rows(4096);
          if (rows.empty())
              throw std::runtime_error("no thrash rows");
          // No single victim: the target of this attack is the tracker's
          // tables, not a DRAM row.
          built.flat_bank = 0;
          built.victim_row = 0;
          built.hammer = std::make_unique<attack::TrackerThrash>(
              bed.machine, bed.attacker->pid(), std::move(rows));
          break;
      }
    }
    return built;
}

}  // namespace

ScenarioBuilder::ScenarioBuilder(const ScenarioSpec &spec,
                                 const runner::TrialContext &ctx)
    : spec_(spec), ctx_(ctx)
{
}

Tick
ScenarioBuilder::draw(const PhaseJitter &jitter) const
{
    Tick t = jitter.base;
    if (jitter.jitter != 0)
        t += ctx_.seed_for(jitter.stream) % jitter.jitter;
    return t;
}

Execution &
ScenarioBuilder::build()
{
    validate(spec_);

    exec_ = std::make_unique<Execution>();
    Execution &e = *exec_;

    e.config_ = spec_.system;
    if (spec_.seed_vm_from_trial)
        e.config_.vm_seed = ctx_.seed_for("vm");

    if (!spec_.attacks.empty()) {
        e.bed_ = std::make_unique<Testbed>(e.config_);
    } else {
        e.machine_ = std::make_unique<mem::MemorySystem>(e.config_);
        e.pmu_ = std::make_unique<pmu::Pmu>(*e.machine_);
    }

    if (ctx_.watchdog().armed()) {
        // Every completed memory access ticks the trial's event budget:
        // the watchdog fires at the same simulated event no matter how
        // trials are scheduled, so timeouts are deterministic.
        runner::Watchdog *wd = &ctx_.watchdog();
        e.machine().add_observer(
            [wd](const mem::AccessInfo &) { wd->tick(); });
    }

    if (!spec_.mitigation.empty()) {
        e.mitigation_ = mitigations::mitigation_registry()
                            .at(spec_.mitigation)
                            .make(e.machine().dram(),
                                  ctx_.seed_for("mitigation"));
    }

    if (!spec_.pre_detector.empty())
        e.machine().advance(draw(spec_.pre_detector));

    const auto build_workloads = [&] {
        for (const WorkloadSpec &ws : spec_.workloads) {
            workload::SpecProfile profile =
                workload::spec_profile(ws.profile);
            if (!ws.seed_stream.empty())
                profile.seed = ctx_.seed_for(ws.seed_stream);
            if (ws.boost_thrash)
                e.boost_ *= boost_thrash_rate(profile);
            e.workloads_.push_back(
                std::make_unique<workload::Workload>(e.machine(),
                                                     profile));
        }
    };
    const auto build_detector = [&] {
        if (!spec_.detector)
            return;
        e.anvil_ = std::make_unique<detector::Anvil>(e.machine(), e.pmu(),
                                                     *spec_.detector);
        if (spec_.ground_truth == GroundTruth::kAttackLifetime) {
            // The oracle is scoped to the attack's actual lifetime: a
            // detection fired during the free-run window (before the
            // hammer starts) is labeled a false positive.
            Execution *exec = &e;
            e.anvil_->set_ground_truth(
                [exec] { return exec->attack_active_; });
        }
        // Starting the detector charges the first stage-1 check to the
        // simulated clock, so order relative to workload construction is
        // observable (spec.detector_before_workloads).
        e.anvil_->start();
    };
    if (spec_.detector_before_workloads) {
        build_detector();
        build_workloads();
    } else {
        build_workloads();
        build_detector();
    }

    if (!spec_.pre_attack.empty())
        e.machine().advance(draw(spec_.pre_attack));

    for (const AttackSpec &as : spec_.attacks)
        e.attacks_.push_back(build_attack(as, *e.bed_));

    return e;
}

void
ScenarioBuilder::run()
{
    Execution &e = *exec_;
    e.run_start_ = e.machine().now();
    e.attack_start_ = e.run_start_;
    e.attack_active_ = !e.attacks_.empty();

    switch (spec_.run.mode) {
      case RunMode::kInterleaveFor: {
          if (e.attacks_.empty() && e.workloads_.size() == 1) {
              e.workloads_[0]->run_for(spec_.run.duration);
              break;
          }
          workload::Runner drivers(e.machine());
          for (BuiltAttack &attack : e.attacks_) {
              attack::Hammer *hammer = attack.hammer.get();
              drivers.add([hammer] { hammer->step(); });
          }
          for (auto &load : e.workloads_) {
              workload::Workload *w = load.get();
              drivers.add([w] { w->step(); });
          }
          drivers.run_for(spec_.run.duration);
          break;
      }
      case RunMode::kWorkloadOps: {
          for (auto &load : e.workloads_)
              load->run_ops(spec_.run.ops);
          break;
      }
      case RunMode::kHammerToFirstFlip: {
          BuiltAttack &attack = e.attacks_.at(0);
          // Phase-align so the trial measures pure hammering time within
          // one clean refresh window of the victim.
          e.bed_->align_to_refresh(attack.victim_row);
          e.hammer_result_ = attack.hammer->run(
              e.config_.dram.refresh_period + spec_.run.duration);
          break;
      }
      case RunMode::kHammerUntilFlipOrDeadline: {
          BuiltAttack &attack = e.attacks_.at(0);
          const Tick deadline = e.machine().now() + spec_.run.duration;
          while (e.machine().now() < deadline &&
                 e.machine().dram().flips().empty()) {
              attack.hammer->step();
              if (spec_.run.step_gap != 0)
                  e.machine().advance(spec_.run.step_gap);
          }
          break;
      }
      case RunMode::kInterleaveUntilOps: {
          // Fixed-work slowdown under live attack pressure: round-robin
          // everything until the FIRST workload finishes its quota, so
          // the measured run_ms scales with whatever latency the attack
          // (and any mitigation response it provokes) inflicts.
          workload::Workload *lead = e.workloads_.at(0).get();
          const std::uint64_t start_ops = lead->ops();
          while (lead->ops() - start_ops < spec_.run.ops) {
              for (BuiltAttack &attack : e.attacks_)
                  attack.hammer->step();
              for (auto &load : e.workloads_)
                  load->step();
          }
          break;
      }
      case RunMode::kPatternMeasure: {
          BuiltAttack &attack = e.attacks_.at(0);
          for (std::uint64_t i = 0; i < spec_.run.warmup_iterations; ++i)
              attack.hammer->step();  // reach steady state

          const auto llc_before = e.machine().hierarchy().llc_stats();
          const std::uint64_t acts_before =
              e.machine().dram().bank(attack.flat_bank).activations();
          const std::uint64_t dram_before =
              e.machine().dram().stats().accesses;
          const Tick t0 = e.machine().now();
          const std::uint64_t iterations = spec_.run.iterations;
          for (std::uint64_t i = 0; i < iterations; ++i)
              attack.hammer->step();
          const auto llc_after = e.machine().hierarchy().llc_stats();

          PatternStats &p = e.pattern_;
          p.misses_per_iteration =
              static_cast<double>(llc_after.misses - llc_before.misses) /
              static_cast<double>(iterations);
          p.accesses_per_iteration =
              static_cast<double>(llc_after.accesses -
                                  llc_before.accesses) /
              static_cast<double>(iterations);
          p.ns_per_iteration = to_ns(e.machine().now() - t0) /
                               static_cast<double>(iterations);
          p.cycles_per_iteration =
              p.ns_per_iteration * e.machine().core().freq_ghz();
          p.hammers_per_refresh = 64e6 / p.ns_per_iteration;
          const double aggressor_acts = static_cast<double>(
              e.machine().dram().bank(attack.flat_bank).activations() -
              acts_before);
          const double dram_accesses = static_cast<double>(
              e.machine().dram().stats().accesses - dram_before);
          p.aggressor_activation_share =
              dram_accesses > 0 ? aggressor_acts / dram_accesses : 0.0;
          break;
      }
    }

    e.attack_active_ = false;
    e.run_seconds_ = to_sec(e.machine().now() - e.run_start_);
}

runner::TrialResult
ScenarioBuilder::emit() const
{
    const Execution &e = *exec_;
    runner::TrialResult r;
    for (const Output output : spec_.outputs) {
        switch (output) {
          case Output::kFlips:
              r.set_counter("flips", e.bed_->machine.dram().flips().size());
              break;
          case Output::kDetections:
              r.set_counter("detections", e.anvil_->stats().detections);
              break;
          case Output::kSelectiveRefreshes:
              r.set_counter("selective_refreshes",
                            e.anvil_->stats().selective_refreshes);
              break;
          case Output::kAttackMs:
              r.set_value("attack_ms",
                          to_ms(e.bed_->machine.now() - e.attack_start_));
              break;
          case Output::kDetectMs:
              if (!e.anvil_->detections().empty()) {
                  r.set_value("detect_ms",
                              to_ms(e.anvil_->detections().front().time -
                                    e.attack_start_));
              }
              break;
          case Output::kFpPerSec:
              r.set_value(
                  "fp_per_sec",
                  static_cast<double>(
                      e.anvil_->stats().false_positive_refreshes) /
                      e.run_seconds_ / e.boost_);
              break;
          case Output::kBoost:
              r.set_value("boost", e.boost_);
              break;
          case Output::kFalsePositiveRefreshes:
              r.set_counter("false_positive_refreshes",
                            e.anvil_->stats().false_positive_refreshes);
              break;
          case Output::kRunMs: {
              auto &machine = const_cast<Execution &>(e).machine();
              r.set_value("run_ms", to_ms(machine.now() - e.run_start_));
              break;
          }
          case Output::kOps:
              r.set_counter("ops", spec_.run.ops);
              break;
          case Output::kFlipped:
              r.set_counter("flipped", e.hammer_result_.flipped ? 1 : 0);
              break;
          case Output::kAggressorAccesses:
              r.set_counter("aggressor_accesses",
                            e.hammer_result_.aggressor_accesses);
              break;
          case Output::kFlipMs:
              r.set_value("flip_ms", to_ms(e.hammer_result_.duration));
              break;
          case Output::kMissesPerIter:
              r.set_value("misses_per_iter",
                          e.pattern_.misses_per_iteration);
              break;
          case Output::kAccessesPerIter:
              r.set_value("accesses_per_iter",
                          e.pattern_.accesses_per_iteration);
              break;
          case Output::kNsPerIter:
              r.set_value("ns_per_iter", e.pattern_.ns_per_iteration);
              break;
          case Output::kCyclesPerIter:
              r.set_value("cycles_per_iter",
                          e.pattern_.cycles_per_iteration);
              break;
          case Output::kHammersPerRefresh:
              r.set_value("hammers_per_refresh",
                          e.pattern_.hammers_per_refresh);
              break;
          case Output::kAggressorActShare:
              r.set_value("aggressor_act_share",
                          e.pattern_.aggressor_activation_share);
              break;
          case Output::kAnvilStats:
              if (e.anvil_)
                  r.set_anvil(e.anvil_->stats());
              break;
          case Output::kDramStats: {
              auto &machine = const_cast<Execution &>(e).machine();
              r.set_dram(machine.dram().stats());
              break;
          }
          case Output::kMitigationRefreshes:
              r.set_counter("mitigation_refreshes",
                            e.mitigation_->stats().neighbor_refreshes);
              break;
          case Output::kMitigationEvictions:
              r.set_counter("mitigation_evictions",
                            e.mitigation_->stats().table_evictions);
              break;
        }
    }
    return r;
}

runner::TrialResult
ScenarioBuilder::run_trial(const ScenarioSpec &spec,
                           const runner::TrialContext &ctx)
{
    ScenarioBuilder builder(spec, ctx);
    builder.build();
    builder.run();
    return builder.emit();
}

runner::SweepRun
run_sweep(const SweepSpec &spec, runner::CliOptions &cli)
{
    validate(spec);

    cli.sweep.name = spec.name;
    runner::Sweep sweep(cli.sweep);
    for (const ScenarioSpec &cell : spec.cells) {
        const std::uint64_t trials =
            cell.fixed_trials != 0 ? cell.fixed_trials
                                   : cli.trials_or(spec.default_trials);
        sweep.add_scenario(cell.name, trials,
                           [cell](const runner::TrialContext &ctx) {
                               return ScenarioBuilder::run_trial(cell, ctx);
                           });
    }
    runner::SweepRun run = sweep.run();
    if (spec.finalize)
        spec.finalize(run.sink);
    return run;
}

}  // namespace anvil::scenario
