/**
 * @file
 * Deterministic multi-tenant scheduler: time-slices N tenant processes
 * (attackers and workloads) round-robin over the one shared machine,
 * replacing the ad-hoc interleave loops the RunSpec run modes used.
 *
 * Quanta are measured in completed simulated accesses — never wall
 * clock, thread identity, or iteration counts that drift with host
 * speed — so a schedule is a pure function of the tenant list and the
 * trial seed, and parallel sweeps stay byte-identical to serial ones.
 * With every quantum at 1 the scheduler reproduces, step for step, the
 * legacy one-step-per-turn interleave (workload::Runner), which keeps
 * all committed single-tenant sweep JSON unchanged.
 */
#ifndef ANVIL_SCENARIO_SCHEDULER_HH
#define ANVIL_SCENARIO_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"
#include "scenario/spec.hh"

namespace anvil::scenario {

/**
 * Flattens a spec's legacy `attacks`/`workloads` shorthands and its
 * explicit `tenants` into one ordered tenant list: attacks first, then
 * workloads, then explicit tenants, each in declaration order (the order
 * the legacy interleave loops stepped them). Empty names are derived
 * from the payload (profile name, or "attacker"); colliding names get
 * "#2", "#3", ... suffixes in list order.
 */
std::vector<TenantSpec> normalized_tenants(const ScenarioSpec &spec);

/** One runnable tenant handed to the scheduler. */
struct ScheduledTenant {
    std::string name;
    /// Address space charged for the tenant's accesses; kInvalidPid
    /// disables access accounting (each step then costs one unit).
    Pid pid = kInvalidPid;
    /// Completed accesses per turn before the next tenant runs (>= 1).
    std::uint64_t quantum_accesses = 1;
    /// Absolute tick of first eligibility (staggered arrival).
    Tick not_before = 0;
    /// One atomic step of the tenant (one hammer iteration, one workload
    /// operation). Must advance the simulated clock and/or complete at
    /// least the bookkeeping of one unit of work.
    std::function<void()> step;
};

/** Per-tenant scheduling telemetry. */
struct TenantRunStats {
    std::uint64_t steps = 0;     ///< step() invocations
    std::uint64_t quanta = 0;    ///< turns in which the tenant ran
    std::uint64_t accesses = 0;  ///< completed accesses attributed
};

/**
 * Round-robin quantum scheduler over one shared MemorySystem.
 *
 * Determinism contract: given the same tenant list (order, quanta,
 * arrival ticks) and the same per-tenant step behaviour, the interleaving
 * of steps — and therefore every downstream observable (clock, DRAM
 * state, detector windows) — is identical run to run.
 */
class TenantScheduler
{
  public:
    explicit TenantScheduler(mem::MemorySystem &mem) : mem_(mem) {}

    /** Appends a tenant; schedule order is insertion order. */
    void add(ScheduledTenant tenant);

    std::size_t size() const { return tenants_.size(); }

    /**
     * Runs the round-robin schedule until the clock reaches @p deadline.
     * The deadline is checked before every step (the legacy
     * workload::Runner contract), so a tenant never starts a step at or
     * past the deadline. With no runnable tenant the clock jumps to the
     * earliest arrival (or the deadline).
     */
    void run_until(Tick deadline);

    /**
     * Runs whole round-robin rounds while @p more returns true,
     * checking the predicate once per round — the legacy
     * kInterleaveUntilOps contract (every tenant gets its quantum each
     * round, even after the lead workload crosses its quota mid-round).
     * @pre at least one tenant's step can eventually satisfy !more().
     */
    void run_rounds(const std::function<bool()> &more);

    /** Telemetry, indexed like the insertion order. */
    const std::vector<TenantRunStats> &stats() const { return stats_; }

  private:
    /**
     * Runs one quantum of tenant @p index, stopping early at
     * @p deadline. @return true if at least one step ran.
     */
    bool run_quantum(std::size_t index, Tick deadline);

    mem::MemorySystem &mem_;
    std::vector<ScheduledTenant> tenants_;
    std::vector<TenantRunStats> stats_;
};

}  // namespace anvil::scenario

#endif  // ANVIL_SCENARIO_SCHEDULER_HH
