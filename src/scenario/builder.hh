/**
 * @file
 * ScenarioBuilder: instantiates a declarative ScenarioSpec into a running
 * multi-tenant machine and executes it as one runner trial.
 *
 * The build order is fixed and deliberate — it reproduces, step for
 * step, the construction sequence the hand-written experiments used, so
 * migrated scenarios stay bit-identical for a fixed trial seed:
 *
 *   1. machine + PMU, with the trial's "vm" sub-stream seeding the page
 *      allocator; then every attacker tenant's process (buffer mmap +
 *      pagemap scan), in tenant order — the legacy Testbed sequence;
 *   2. hardware mitigation attached to the DRAM device;
 *   3. pre-detector clock advance (layout/refresh-phase jitter);
 *   4. workload tenants' processes (each seeded from its named
 *      sub-stream), in tenant order;
 *   5. detector + ground-truth oracle + start;
 *   6. free-run advance (the attack starts at a seed-chosen phase);
 *   7. attack target selection and hammer construction, in tenant order.
 *
 * The run phase hands every tenant to the TenantScheduler
 * (scheduler.hh): round-robin quanta measured in simulated accesses,
 * which with all-default quanta reproduces the legacy interleave loops
 * exactly — single-tenant specs are the degenerate 1-tenant case.
 *
 * Ground-truth labeling: the builder installs an oracle that returns
 * true exactly while the run phase's attack is in flight, so a detection
 * fired outside the attack window (e.g. during the free run) counts as
 * a false positive. Detections additionally carry the offending pid, so
 * emit() can score each one against the tenant the detector blamed
 * (cross-tenant false-positive accounting).
 */
#ifndef ANVIL_SCENARIO_BUILDER_HH
#define ANVIL_SCENARIO_BUILDER_HH

#include <memory>
#include <vector>

#include "anvil/anvil.hh"
#include "attack/hammer.hh"
#include "mitigations/mitigation.hh"
#include "runner/options.hh"
#include "runner/result_sink.hh"
#include "runner/trial.hh"
#include "scenario/spec.hh"
#include "scenario/testbed.hh"
#include "workload/workload.hh"

namespace anvil::scenario {

/** One instantiated attacker: the hammer kernel plus its target. */
struct BuiltAttack {
    AttackKind kind = AttackKind::kClflushDoubleSided;
    std::unique_ptr<attack::Hammer> hammer;
    std::uint32_t flat_bank = 0;
    std::uint32_t victim_row = 0;
};

/** One tenant resolved against the built machine. */
struct BuiltTenant {
    std::string name;           ///< normalized attribution label
    bool is_attacker = false;
    Pid pid = kInvalidPid;      ///< the tenant's address space
    std::size_t payload = 0;    ///< index into attacks() or workloads()
    std::uint64_t quantum_accesses = 1;
    Tick start_delay = 0;       ///< drawn at build, applied at run start
    std::uint64_t run_start_ops = 0;  ///< workload ops() when run began
};

/** Per-iteration cost model measured by RunMode::kPatternMeasure. */
struct PatternStats {
    double misses_per_iteration = 0.0;
    double accesses_per_iteration = 0.0;
    double ns_per_iteration = 0.0;
    double cycles_per_iteration = 0.0;
    double hammers_per_refresh = 0.0;
    double aggressor_activation_share = 0.0;
};

/**
 * A spec instantiated into live components. Owned by the builder; tests
 * may drive the machine between build() and run() (e.g. to fire a
 * detection outside the attack window).
 */
class Execution
{
  public:
    mem::MemorySystem &machine() { return *machine_; }
    const mem::MemorySystem &machine() const { return *machine_; }
    pmu::Pmu &pmu() { return *pmu_; }
    /** The detector; nullptr when the scenario runs unprotected. */
    detector::Anvil *anvil() { return anvil_.get(); }
    /** The hardware mitigation tracker; nullptr when none configured. */
    mitigations::Mitigation *mitigation() { return mitigation_.get(); }
    std::vector<BuiltAttack> &attacks() { return attacks_; }
    /** Attacker processes, parallel to the attacker tenants' payloads. */
    std::vector<std::unique_ptr<Attacker>> &intruders()
    {
        return intruders_;
    }
    std::vector<std::unique_ptr<workload::Workload>> &
    workloads()
    {
        return workloads_;
    }

    /** All tenants in schedule order (attacks, workloads, explicit). */
    const std::vector<BuiltTenant> &tenants() const { return tenants_; }

    /**
     * Index into tenants() of the tenant owning @p pid, or
     * tenants().size() when no tenant owns it (e.g. kInvalidPid).
     */
    std::size_t tenant_index_of(Pid pid) const;

    /** True exactly while the run phase's attack is hammering. */
    bool attack_active() const { return attack_active_; }
    Tick attack_start() const { return attack_start_; }
    double boost() const { return boost_; }
    const PatternStats &pattern() const { return pattern_; }

  private:
    friend class ScenarioBuilder;

    mem::SystemConfig config_;
    std::unique_ptr<mem::MemorySystem> machine_;
    std::unique_ptr<pmu::Pmu> pmu_;
    std::vector<std::unique_ptr<Attacker>> intruders_;
    std::unique_ptr<mitigations::Mitigation> mitigation_;
    std::vector<std::unique_ptr<workload::Workload>> workloads_;
    double boost_ = 1.0;
    std::unique_ptr<detector::Anvil> anvil_;
    std::vector<BuiltAttack> attacks_;
    std::vector<BuiltTenant> tenants_;

    bool attack_active_ = false;
    Tick attack_start_ = 0;
    Tick run_start_ = 0;
    double run_seconds_ = 0.0;
    attack::HammerResult hammer_result_;
    PatternStats pattern_;
};

/** Instantiates and executes one ScenarioSpec as one trial. */
class ScenarioBuilder
{
  public:
    ScenarioBuilder(const ScenarioSpec &spec,
                    const runner::TrialContext &ctx);

    /**
     * Builds the machine, tenants, detector, and attacks in the fixed
     * order documented above. @throw std::runtime_error when a required
     * attack target does not exist in the scanned buffer.
     */
    Execution &build();

    /** Executes the run phase per the spec's RunSpec. @pre build() ran. */
    void run();

    /** Emits the spec's outputs, in order. @pre run() ran. */
    runner::TrialResult emit() const;

    /** build() + run() + emit() — the TrialFn body of every scenario. */
    static runner::TrialResult run_trial(const ScenarioSpec &spec,
                                         const runner::TrialContext &ctx);

  private:
    Tick draw(const PhaseJitter &jitter) const;

    const ScenarioSpec &spec_;
    const runner::TrialContext &ctx_;
    std::unique_ptr<Execution> exec_;
};

/**
 * Instantiates a SweepSpec as a configured (not yet run) runner::Sweep:
 * validates the spec, sets cli.sweep.name to the spec's name, and
 * registers every cell with its per-cell fixed trial count (else
 * cli.trials_or(default)). The sharded-campaign machinery builds on
 * this — a supervisor needs the sweep's deterministic trial plan
 * (Sweep::plan_specs()) without running anything, and a shard child
 * needs the same Sweep run under its ShardAssignment. Does NOT apply
 * spec.finalize; callers that run the sweep themselves must apply it to
 * the resulting sink (run_sweep and the merge path both do).
 * @throw Error when the spec fails validation (validate.hh).
 */
runner::Sweep make_sweep(const SweepSpec &spec, runner::CliOptions &cli);

/**
 * Runs a whole SweepSpec on the parallel experiment runner with the
 * shared CLI options (--jobs/--master-seed/--trials/--replay-trial plus
 * the fault-tolerance flags --retries/--trial-timeout/--resume/
 * --inject-fault), applying per-cell fixed trial counts and the sweep's
 * finalize hook (on the run's sink). Sets cli.sweep.name to the sweep's
 * name. Both the per-table bench binaries and the anvil-sim driver
 * funnel through here, so their anvil-sweep-v1 JSON is identical.
 * @throw Error when the spec fails validation (validate.hh) or a
 *        --resume journal does not belong to this sweep.
 */
runner::SweepRun run_sweep(const SweepSpec &spec, runner::CliOptions &cli);

}  // namespace anvil::scenario

#endif  // ANVIL_SCENARIO_BUILDER_HH
