/**
 * @file
 * The declarative scenario layer: every paper experiment — machine,
 * detector, attacks, background workloads, phase jitter, run mode, and
 * measurement outputs — expressed as data.
 *
 * A ScenarioSpec is one cell of a paper table/figure (one runner
 * scenario: a row label plus N trials). A SweepSpec is a whole
 * table/figure: an ordered list of cells plus sweep-level metadata and an
 * optional finalize hook computing derived aggregates. Specs carry no
 * behaviour; ScenarioBuilder (builder.hh) instantiates a spec into a
 * running testbed, and the ScenarioRegistry (registry.hh) names whole
 * sweeps so one driver binary can run any of them.
 *
 * Evaluations of rowhammer defenses live or die on how easily new
 * attacker/workload combinations can be composed ("Another Flip in the
 * Wall" broke ANVIL-class defenses by varying exactly these knobs) —
 * hence scenarios are data, not copy-pasted C++.
 */
#ifndef ANVIL_SCENARIO_SPEC_HH
#define ANVIL_SCENARIO_SPEC_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "anvil/config.hh"
#include "common/units.hh"
#include "mem/memory_system.hh"

namespace anvil::runner {
class ResultSink;
struct CliOptions;
}  // namespace anvil::runner

namespace anvil::scenario {

/** Which hammer kernel the attacker runs. */
enum class AttackKind {
    kClflushSingleSided,
    kClflushDoubleSided,
    kClflushFreeDoubleSided,
    /// Aggressors at distance 2 (needs second_neighbor_weight > 0).
    kClflushHalfDouble,
    /// Round-robin over many distinct rows: stresses mitigation tracker
    /// tables without hammering any single row.
    kTrackerThrash,
};

/** How the attacker picks its target among the scanned candidates. */
enum class TargetPolicy {
    /// First candidate whose victim has the module's minimum flip
    /// threshold (slice-compatibility is additionally required for the
    /// CLFLUSH-free attack). This is how all paper experiments select.
    kWeakestVictim,
};

/// The paper's attacker buffer: 64 MB mapped and scanned via pagemap.
inline constexpr std::uint64_t kDefaultAttackBufferBytes = 64ULL << 20;

/** One attacker in the scenario. */
struct AttackSpec {
    AttackKind kind = AttackKind::kClflushDoubleSided;
    TargetPolicy target = TargetPolicy::kWeakestVictim;
    /// Bytes the attacker mmaps and scans for targets. Must be a nonzero
    /// power of two of at least one THP block, and all attackers together
    /// must fit the huge-page pool (validate.cc enforces both).
    std::uint64_t buffer_bytes = kDefaultAttackBufferBytes;
};

/** One background (or foreground) benign workload. */
struct WorkloadSpec {
    /// SPEC2006 profile name (workload::spec_profile).
    std::string profile;
    /// Named trial sub-stream seeding the workload; empty keeps the
    /// profile's built-in seed (legacy fixed-seed scenarios).
    std::string seed_stream;
    /// Apply rate-boosted importance sampling to the thrash-phase rate
    /// (false-positive measurements; see boost_thrash_rate).
    bool boost_thrash = false;
};


/**
 * How detections are labeled against ground truth. Labeling never feeds
 * back into the detector — it only drives false-positive accounting.
 */
enum class GroundTruth {
    /// The oracle returns true exactly while the scenario's attack phase
    /// is running: a detection before the attack starts (e.g. during the
    /// free-run window) counts as a false positive. This is the correct
    /// scoping and the default.
    kAttackLifetime,
    /// No oracle installed: every detection is labeled "not an attack"
    /// (the detector's legacy default). Kept only for scenarios whose
    /// committed JSON predates attack-lifetime scoping.
    kUnlabeled,
};

/** A fixed advance plus a seed-stream-chosen jitter (phase decorrelation). */
struct PhaseJitter {
    Tick base = 0;
    Tick jitter = 0;        ///< advance += seed_for(stream) % jitter
    std::string stream;     ///< named trial sub-stream drawn from
    bool empty() const { return base == 0 && jitter == 0; }
};

/**
 * One tenant process of a multi-tenant scenario: an attacker OR a benign
 * workload, co-scheduled with every other tenant on the one shared
 * machine (shared frame allocator, caches, DRAM, and detector). The
 * legacy `attacks`/`workloads` shorthands normalize into tenants (see
 * normalized_tenants in scheduler.hh), so single-tenant specs are just
 * the degenerate one-entry case.
 */
struct TenantSpec {
    /// Attribution label: the JSON counter suffix ("ops/<name>",
    /// "detections/<name>") and the name detections are scored against.
    /// Empty derives the label from the payload (the workload's profile
    /// name, or "attacker"); colliding labels are deduplicated with
    /// "#2", "#3", ... suffixes in declaration order.
    std::string name;

    /// Exactly one of attack/workload must be set (validate.cc).
    std::optional<AttackSpec> attack;
    std::optional<WorkloadSpec> workload;

    /// Scheduler quantum in completed memory accesses: how much of this
    /// tenant runs before the next tenant gets the core. 1 reproduces
    /// the legacy one-step-per-turn interleave; larger quanta model
    /// coarser OS time slices. A tenant step that completes no counted
    /// access (e.g. a pure-CLFLUSH iteration) still consumes one unit,
    /// so every quantum makes forward progress.
    std::uint64_t quantum_accesses = 1;

    /// The tenant joins the schedule only after this (seed-jittered)
    /// advance past run start — staggered tenant arrival. While every
    /// tenant is still waiting, the scheduler jumps the clock to the
    /// first arrival.
    PhaseJitter start_delay;
};

/** What the run phase of the scenario does. */
enum class RunMode {
    /// Interleave all attacks and workloads round-robin for `duration`
    /// (a single workload with no attack runs directly).
    kInterleaveFor,
    /// Each workload executes `ops` operations (fixed-work slowdowns).
    kWorkloadOps,
    /// Align to the victim's refresh, then run the hammer kernel until
    /// first flip or one refresh period plus `duration` of grace.
    kHammerToFirstFlip,
    /// Step the hammer until first flip or `duration` elapses, advancing
    /// `step_gap` of think time between iterations (spread-out attacks).
    kHammerUntilFlipOrDeadline,
    /// Warm the hammer up, then measure per-iteration cache/DRAM/latency
    /// behaviour over `iterations` iterations (Figure 1b cost model).
    kPatternMeasure,
    /// Interleave all attacks and workloads round-robin until the FIRST
    /// workload completes `ops` operations (fixed-work slowdown under
    /// live attack pressure — e.g. tracker-thrash refresh storms).
    kInterleaveUntilOps,
};

/** Run-phase parameters (interpreted per RunMode). */
struct RunSpec {
    RunMode mode = RunMode::kInterleaveFor;
    Tick duration = 0;
    std::uint64_t ops = 0;
    Tick step_gap = 0;
    std::uint64_t warmup_iterations = 8;
    std::uint64_t iterations = 20000;
};

/**
 * Measurements the scenario emits, in emission order. Each kind maps to
 * a fixed counter/value name in the anvil-sweep-v1 JSON; specs list
 * exactly the outputs (and order) their table consumes.
 */
enum class Output {
    kFlips,                   ///< counter "flips": DRAM bit flips
    kDetections,              ///< counter "detections"
    kSelectiveRefreshes,      ///< counter "selective_refreshes"
    kAttackMs,                ///< value "attack_ms": run-phase duration
    kDetectMs,                ///< value "detect_ms": first detection
    kFpPerSec,                ///< value "fp_per_sec": boost-corrected FP rate
    kBoost,                   ///< value "boost": thrash-rate boost applied
    kFalsePositiveRefreshes,  ///< counter "false_positive_refreshes"
    kRunMs,                   ///< value "run_ms": run-phase duration
    kOps,                     ///< counter "ops": operations executed
    kFlipped,                 ///< counter "flipped": hammer run flipped
    kAggressorAccesses,       ///< counter "aggressor_accesses"
    kFlipMs,                  ///< value "flip_ms": time to first flip
    kMissesPerIter,           ///< value "misses_per_iter" (pattern)
    kAccessesPerIter,         ///< value "accesses_per_iter" (pattern)
    kNsPerIter,               ///< value "ns_per_iter" (pattern)
    kCyclesPerIter,           ///< value "cycles_per_iter" (pattern)
    kHammersPerRefresh,       ///< value "hammers_per_refresh" (pattern)
    kAggressorActShare,       ///< value "aggressor_act_share" (pattern)
    kAnvilStats,              ///< detector stats block (when configured)
    kDramStats,               ///< DRAM stats block
    kMitigationRefreshes,     ///< counter "mitigation_refreshes"
    kMitigationEvictions,     ///< counter "mitigation_evictions"
    /// counter "ops/<tenant>" per workload tenant: run-phase operations
    /// (the fixed-time throughput each victim achieved).
    kTenantOps,
    /// counter "detections/<tenant>" per tenant, in tenant order, plus
    /// "detections/unattributed" for detections no tenant owns.
    kTenantDetections,
    /// counter "cross_tenant_fp" (detections blamed on a benign tenant)
    /// plus "cross_tenant_fp/<tenant>" per workload tenant.
    kCrossTenantFp,
};

/** One fully declarative experiment cell. */
struct ScenarioSpec {
    /// Runner scenario name — the row label and the trial-seed salt.
    std::string name;

    /// The machine. vm_seed is replaced by the trial's "vm" sub-stream
    /// unless seed_vm_from_trial is false (legacy fixed-layout cells).
    mem::SystemConfig system;
    bool seed_vm_from_trial = true;

    /// Registry name of the hardware mitigation tracker attached right
    /// after machine construction (mitigations::mitigation_registry());
    /// empty runs without one. The tracker's RNG (if any) is seeded from
    /// the trial's "mitigation" sub-stream.
    std::string mitigation;

    /// Clock advance before the detector loads (layout/refresh-phase
    /// decorrelation across trials).
    PhaseJitter pre_detector;

    /// Benign workloads, constructed before the detector loads.
    std::vector<WorkloadSpec> workloads;

    /// Start the detector before constructing workloads. Anvil::start()
    /// charges its first stage-1 check to the simulated clock, so the
    /// construction order shifts the workloads' thrash-phase schedule
    /// relative to the detector windows; scenarios pin whichever order
    /// their measurement was calibrated against.
    bool detector_before_workloads = false;

    /// The detector; nullopt runs unprotected.
    std::optional<detector::AnvilConfig> detector;
    GroundTruth ground_truth = GroundTruth::kAttackLifetime;

    /// Free-run advance between detector start and attack start, so the
    /// attack begins at an arbitrary (seed-chosen) window phase.
    PhaseJitter pre_attack;

    /// Attackers (target selection + hammer construction happen after
    /// the free-run window, like a process that just started).
    std::vector<AttackSpec> attacks;

    /// Explicit tenants scheduled alongside the legacy shorthands.
    /// Normalized execution (and attribution) order is: `attacks`, then
    /// `workloads`, then `tenants`, each in declaration order. Process
    /// creation keeps the legacy phase order regardless (attacker spaces
    /// scan right after machine construction; workload arenas map at the
    /// workload-construction point), so pids follow build order, not
    /// schedule order.
    std::vector<TenantSpec> tenants;

    RunSpec run;
    std::vector<Output> outputs;

    /// When nonzero this cell always runs exactly this many trials,
    /// ignoring --trials (e.g. fig4's single-shot future-attack cells).
    std::uint64_t fixed_trials = 0;
};

/** A whole paper table/figure: named, ordered cells + aggregation hook. */
struct SweepSpec {
    /// Registry key and JSON "sweep" name, e.g. "table3_detection".
    std::string name;
    /// One line for `anvil-sim --list`.
    std::string description;
    /// Cells in execution (and JSON) order.
    std::vector<ScenarioSpec> cells;
    /// Default trials per cell when --trials is not given.
    std::uint64_t default_trials = 1;
    /// Computes derived aggregates (set_derived) after the sweep runs;
    /// shared by the bench binaries and the anvil-sim driver so both
    /// emit identical JSON.
    std::function<void(runner::ResultSink &)> finalize;
};

}  // namespace anvil::scenario

#endif  // ANVIL_SCENARIO_SPEC_HH
