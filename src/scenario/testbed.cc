#include "scenario/testbed.hh"

#include <algorithm>

namespace anvil::scenario {

Attacker::Attacker(mem::MemorySystem &machine, std::uint64_t buffer_bytes)
    : space(&machine.create_process()),
      buffer(space->mmap(buffer_bytes)),
      buffer_bytes(buffer_bytes),
      layout(*space, machine.dram().address_map(), machine.hierarchy())
{
    layout.scan(buffer, buffer_bytes);
}

bool
is_weakest_victim(const mem::MemorySystem &machine,
                  std::uint32_t flat_bank, std::uint32_t victim_row)
{
    return machine.dram().disturbance(flat_bank).threshold_of(victim_row) ==
           machine.dram().config().flip_threshold;
}

std::optional<attack::DoubleSidedTarget>
weakest_double_sided(mem::MemorySystem &machine, Attacker &attacker,
                     bool require_slice_compatible)
{
    for (const auto &t : attacker.layout.find_double_sided_targets(1024)) {
        if (!is_weakest_victim(machine, t.flat_bank, t.victim_row))
            continue;
        if (require_slice_compatible &&
            !attack::ClflushFreeDoubleSided::slice_compatible(
                machine, attacker.pid(), t)) {
            continue;
        }
        return t;
    }
    return std::nullopt;
}

std::optional<attack::SingleSidedTarget>
weakest_single_sided(mem::MemorySystem &machine, Attacker &attacker)
{
    for (const auto &t :
         attacker.layout.find_single_sided_targets(1024, 64)) {
        if (is_weakest_victim(machine, t.flat_bank, t.aggressor_row + 1))
            return t;
    }
    return std::nullopt;
}

std::optional<attack::HalfDoubleTarget>
weakest_half_double(mem::MemorySystem &machine, Attacker &attacker)
{
    for (const auto &t : attacker.layout.find_half_double_targets(1024)) {
        if (is_weakest_victim(machine, t.flat_bank, t.victim_row))
            return t;
    }
    return std::nullopt;
}

void
align_to_refresh(mem::MemorySystem &machine, std::uint32_t victim_row)
{
    const auto &schedule = machine.dram().refresh_schedule();
    machine.advance(schedule.next_refresh(victim_row, machine.now()) + 10 -
                    machine.now());
}

Testbed::Testbed(mem::SystemConfig config)
    : machine(config),
      pmu(machine),
      intruder_(machine),
      attacker(intruder_.space),
      buffer(intruder_.buffer),
      layout(intruder_.layout)
{
}

void
Testbed::align_to_refresh(std::uint32_t victim_row)
{
    scenario::align_to_refresh(machine, victim_row);
}

bool
Testbed::is_weakest(std::uint32_t flat_bank, std::uint32_t victim_row) const
{
    return is_weakest_victim(machine, flat_bank, victim_row);
}

std::optional<attack::DoubleSidedTarget>
Testbed::weakest_double_sided(bool require_slice_compatible)
{
    return scenario::weakest_double_sided(machine, intruder_,
                                          require_slice_compatible);
}

std::optional<attack::SingleSidedTarget>
Testbed::weakest_single_sided()
{
    return scenario::weakest_single_sided(machine, intruder_);
}

std::optional<attack::HalfDoubleTarget>
Testbed::weakest_half_double()
{
    return scenario::weakest_half_double(machine, intruder_);
}

double
boost_thrash_rate(workload::SpecProfile &profile,
                  double target_component_rate, double max_total_rate)
{
    const double rate = profile.thrash_phases_per_sec;
    if (rate <= 0.0)
        return 1.0;
    double min_fraction = 1.0;
    const double weak_fraction = 1.0 - profile.thrash_burst_fraction -
                                 profile.thrash_strong_fraction;
    for (const double f : {profile.thrash_burst_fraction,
                           profile.thrash_strong_fraction, weak_fraction}) {
        if (f > 1e-9)
            min_fraction = std::min(min_fraction, f);
    }
    double boost = target_component_rate / (rate * min_fraction);
    boost = std::max(1.0, std::min(boost, max_total_rate / rate));
    profile.thrash_phases_per_sec = rate * boost;
    return boost;
}

}  // namespace anvil::scenario
