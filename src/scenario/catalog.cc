/**
 * @file
 * The paper catalog: every table/figure of the ANVIL evaluation as a
 * registered SweepSpec factory. Each factory transcribes the exact cell
 * grid, seed streams, phase jitter, run mode, and output list its
 * hand-written bench used, so a migrated bench (or the anvil-sim driver)
 * reproduces the historical JSON byte for byte for a fixed master seed.
 */
#include <string>

#include "cache/replacement.hh"
#include "runner/options.hh"
#include "runner/result_sink.hh"
#include "scenario/registry.hh"
#include "workload/profile.hh"

namespace anvil::scenario {
namespace {

constexpr const char *kTable3Cells[] = {
    "CLFLUSH (Heavy Load)",
    "CLFLUSH (Light Load)",
    "CLFLUSH-free (Heavy Load)",
    "CLFLUSH-free (Light Load)",
};

SweepFactory
table3_detection()
{
    return {
        "table3_detection",
        "Table 2/3: detection latency, selective refreshes, and bit flips "
        "for CLFLUSH and CLFLUSH-free attacks under light and heavy load",
        "",
        [](const runner::CliOptions &) {
            SweepSpec sweep;
            sweep.name = "table3_detection";
            sweep.default_trials = 6;
            struct Cell {
                const char *label;
                bool clflush_free;
                bool heavy;
            };
            const Cell cells[] = {
                {kTable3Cells[0], false, true},
                {kTable3Cells[1], false, false},
                {kTable3Cells[2], true, true},
                {kTable3Cells[3], true, false},
            };
            for (const Cell &cell : cells) {
                ScenarioSpec s;
                s.name = cell.label;
                // Per-trial layout / refresh-phase variation.
                s.pre_detector = {us(137), us(6000), "phase"};
                if (cell.heavy) {
                    // The paper runs mcf + libquantum + omnetpp.
                    for (const char *name :
                         {"mcf", "libquantum", "omnetpp"}) {
                        s.workloads.push_back({name, name, false});
                    }
                }
                s.detector = detector::AnvilConfig::baseline();
                // Let the detector free-run before the attack begins so
                // the attack starts at an arbitrary window phase.
                s.pre_attack = {ms(1), us(4000), "attack-phase"};
                s.attacks = {
                    {cell.clflush_free
                         ? AttackKind::kClflushFreeDoubleSided
                         : AttackKind::kClflushDoubleSided}};
                s.run.mode = RunMode::kInterleaveFor;
                s.run.duration = ms(128);  // two refresh periods
                s.outputs = {Output::kFlips,
                             Output::kDetections,
                             Output::kSelectiveRefreshes,
                             Output::kAttackMs,
                             Output::kDetectMs,
                             Output::kAnvilStats,
                             Output::kDramStats};
                sweep.cells.push_back(std::move(s));
            }
            sweep.finalize = [](runner::ResultSink &sink) {
                for (const char *label : kTable3Cells) {
                    const runner::ScenarioAggregate &agg =
                        sink.scenario(label);
                    const double avg_detect_ms =
                        agg.value_mean("detect_ms", -1.0);
                    const double attack_ms_total =
                        agg.value_stat("attack_ms") != nullptr
                            ? agg.value_stat("attack_ms")->sum()
                            : 0.0;
                    const std::uint64_t refreshes =
                        agg.counter_sum("selective_refreshes");
                    const double per_64ms =
                        attack_ms_total > 0.0
                            ? static_cast<double>(refreshes) /
                                  (attack_ms_total / 64.0)
                            : 0.0;
                    sink.set_derived(label, "avg_detect_ms",
                                     avg_detect_ms);
                    sink.set_derived(label, "refreshes_per_64ms",
                                     per_64ms);
                }
            };
            return sweep;
        },
    };
}

/** Shared shape of the Table 4 / Table 5 FP-rate cells. */
ScenarioSpec
false_positive_cell(std::string name, const std::string &benchmark,
                    const detector::AnvilConfig &config, double run_sec)
{
    ScenarioSpec s;
    s.name = std::move(name);
    s.workloads = {{benchmark, "workload", /*boost_thrash=*/true}};
    s.detector_before_workloads = true;
    s.detector = config;
    s.run.mode = RunMode::kInterleaveFor;
    s.run.duration = seconds(run_sec);
    return s;
}

SweepFactory
table4_false_positives()
{
    return {
        "table4_false_positives",
        "Table 4: false-positive refresh rate of the twelve SPEC2006 "
        "integer benchmarks under ANVIL-baseline",
        "[run_seconds]",
        [](const runner::CliOptions &cli) {
            const double run_sec = cli.positional_double(0, 3.0);
            SweepSpec sweep;
            sweep.name = "table4_false_positives";
            sweep.default_trials = 1;
            for (const char *name :
                 {"astar", "bzip2", "gcc", "gobmk", "h264ref", "hmmer",
                  "libquantum", "mcf", "omnetpp", "perlbench", "sjeng",
                  "xalancbmk"}) {
                ScenarioSpec s = false_positive_cell(
                    name, name, detector::AnvilConfig::baseline(),
                    run_sec);
                s.outputs = {Output::kFpPerSec, Output::kBoost,
                             Output::kFalsePositiveRefreshes,
                             Output::kAnvilStats, Output::kDramStats};
                sweep.cells.push_back(std::move(s));
            }
            return sweep;
        },
    };
}

SweepFactory
table5_fp_sensitivity()
{
    return {
        "table5_fp_sensitivity",
        "Table 5: false-positive refresh rate under ANVIL-light and "
        "ANVIL-heavy on the Figure-4 benchmark subset",
        "[run_seconds]",
        [](const runner::CliOptions &cli) {
            const double run_sec = cli.positional_double(0, 3.0);
            SweepSpec sweep;
            sweep.name = "table5_fp_sensitivity";
            sweep.default_trials = 1;
            const struct {
                const char *label;
                detector::AnvilConfig config;
            } configs[] = {
                {"light", detector::AnvilConfig::light()},
                {"heavy", detector::AnvilConfig::heavy()},
            };
            for (const char *name :
                 {"bzip2", "gcc", "gobmk", "libquantum", "perlbench"}) {
                for (const auto &c : configs) {
                    ScenarioSpec s = false_positive_cell(
                        std::string(name) + "/" + c.label, name, c.config,
                        run_sec);
                    s.outputs = {Output::kFpPerSec,
                                 Output::kFalsePositiveRefreshes,
                                 Output::kAnvilStats};
                    sweep.cells.push_back(std::move(s));
                }
            }
            return sweep;
        },
    };
}

constexpr const char *kFig4Benchmarks[] = {"bzip2", "gcc", "gobmk",
                                           "libquantum", "perlbench"};

SweepFactory
fig4_sensitivity()
{
    return {
        "fig4_sensitivity",
        "Figure 4 + Section 4.5: slowdown sensitivity of ANVIL-baseline/"
        "-light/-heavy, plus future-module (110K-access) attack scenarios",
        "[ops]",
        [](const runner::CliOptions &cli) {
            const std::uint64_t ops = static_cast<std::uint64_t>(
                cli.positional_double(0, 4000000.0));
            SweepSpec sweep;
            sweep.name = "fig4_sensitivity";
            sweep.default_trials = 1;

            const struct {
                const char *label;
                std::optional<detector::AnvilConfig> config;
            } settings[] = {
                {"none", std::nullopt},
                {"baseline", detector::AnvilConfig::baseline()},
                {"light", detector::AnvilConfig::light()},
                {"heavy", detector::AnvilConfig::heavy()},
            };
            for (const char *name : kFig4Benchmarks) {
                for (const auto &setting : settings) {
                    ScenarioSpec s;
                    s.name = std::string(name) + "/" + setting.label;
                    s.workloads = {{name, "workload", false}};
                    s.detector_before_workloads = true;
                    s.detector = setting.config;
                    s.run.mode = RunMode::kWorkloadOps;
                    s.run.ops = ops;
                    s.outputs = {Output::kRunMs, Output::kOps,
                                 Output::kAnvilStats, Output::kDramStats};
                    sweep.cells.push_back(std::move(s));
                }
            }

            // Section 4.5: "a future scenario where bit flips can occur
            // with 110K DRAM row accesses". These cells predate
            // attack-lifetime ground-truth scoping; kUnlabeled keeps
            // their committed JSON stable.
            const struct {
                const char *name;
                bool spread;
                detector::AnvilConfig config;
            } cases[] = {
                {"future/fast/heavy", false,
                 detector::AnvilConfig::heavy()},
                {"future/fast/baseline", false,
                 detector::AnvilConfig::baseline()},
                {"future/spread/light", true,
                 detector::AnvilConfig::light()},
                {"future/spread/baseline", true,
                 detector::AnvilConfig::baseline()},
            };
            for (const auto &c : cases) {
                ScenarioSpec s;
                s.name = c.name;
                s.system.dram.flip_threshold = 200000;  // 55 K per side
                s.detector = c.config;
                s.ground_truth = GroundTruth::kUnlabeled;
                s.attacks = {{AttackKind::kClflushDoubleSided}};
                s.run.mode = RunMode::kHammerUntilFlipOrDeadline;
                s.run.duration = ms(200);
                // Spread ~110 K total accesses across a whole refresh
                // period: rate just above 10 K misses / 6 ms, below 20 K.
                s.run.step_gap = c.spread ? ns(700) : 0;
                s.outputs = {Output::kFlips, Output::kDetections,
                             Output::kAnvilStats};
                s.fixed_trials = 1;
                sweep.cells.push_back(std::move(s));
            }

            sweep.finalize = [](runner::ResultSink &sink) {
                for (const char *name : kFig4Benchmarks) {
                    const std::string benchmark = name;
                    const double base =
                        sink.scenario(benchmark + "/none")
                            .value_mean("run_ms");
                    for (const char *label :
                         {"baseline", "light", "heavy"}) {
                        const std::string cell =
                            benchmark + "/" + label;
                        const double t =
                            sink.scenario(cell).value_mean("run_ms");
                        sink.set_derived(cell, "normalized",
                                         base > 0.0 ? t / base : 0.0);
                    }
                }
            };
            return sweep;
        },
    };
}

/** Shared shape of the hammer-to-first-flip cells (Table 1 family). */
ScenarioSpec
attack_cell(std::string name, AttackKind kind, Tick refresh_period)
{
    ScenarioSpec s;
    s.name = std::move(name);
    s.system.dram.refresh_period = refresh_period;
    // These cells characterize the fixed reference module; the layout is
    // not a random variable.
    s.seed_vm_from_trial = false;
    s.attacks = {{kind}};
    s.run.mode = RunMode::kHammerToFirstFlip;
    s.run.duration = ms(16);  // grace beyond one refresh period
    s.outputs = {Output::kFlipped, Output::kAggressorAccesses,
                 Output::kFlipMs};
    return s;
}

SweepFactory
table1_attacks()
{
    return {
        "table1_attacks",
        "Table 1 + Section 2.1: minimum accesses and time-to-flip per "
        "hammer technique, and the refresh-rate arms race",
        "",
        [](const runner::CliOptions &) {
            SweepSpec sweep;
            sweep.name = "table1_attacks";
            sweep.default_trials = 1;
            sweep.cells = {
                attack_cell("single-sided/64ms",
                            AttackKind::kClflushSingleSided, ms(64)),
                attack_cell("double-sided/64ms",
                            AttackKind::kClflushDoubleSided, ms(64)),
                attack_cell("clflush-free/64ms",
                            AttackKind::kClflushFreeDoubleSided, ms(64)),
                attack_cell("double-sided/32ms",
                            AttackKind::kClflushDoubleSided, ms(32)),
                attack_cell("double-sided/16ms",
                            AttackKind::kClflushDoubleSided, ms(16)),
                attack_cell("single-sided/32ms",
                            AttackKind::kClflushSingleSided, ms(32)),
                attack_cell("clflush-free/32ms",
                            AttackKind::kClflushFreeDoubleSided, ms(32)),
            };
            return sweep;
        },
    };
}

SweepFactory
fig1_pattern()
{
    return {
        "fig1_pattern",
        "Figure 1b / Section 2.2: CLFLUSH-free eviction pattern cost "
        "model, with the LLC replacement-policy ablation",
        "",
        [](const runner::CliOptions &) {
            SweepSpec sweep;
            sweep.name = "fig1_pattern";
            sweep.default_trials = 1;
            for (const cache::ReplPolicy policy :
                 {cache::ReplPolicy::kBitPlru, cache::ReplPolicy::kLru,
                  cache::ReplPolicy::kNru, cache::ReplPolicy::kTreePlru,
                  cache::ReplPolicy::kSrrip,
                  cache::ReplPolicy::kRandom}) {
                ScenarioSpec s;
                s.name = std::string("pattern/") +
                         cache::to_string(policy);
                s.system.cache.llc_policy = policy;
                s.seed_vm_from_trial = false;
                s.attacks = {{AttackKind::kClflushFreeDoubleSided}};
                s.run.mode = RunMode::kPatternMeasure;
                s.run.warmup_iterations = 8;
                s.run.iterations = 20000;
                s.outputs = {Output::kMissesPerIter,
                             Output::kAccessesPerIter,
                             Output::kNsPerIter,
                             Output::kCyclesPerIter,
                             Output::kHammersPerRefresh,
                             Output::kAggressorActShare};
                sweep.cells.push_back(std::move(s));
            }
            return sweep;
        },
    };
}

SweepFactory
fig3_overhead()
{
    return {
        "fig3_overhead",
        "Figure 3: benign slowdown of ANVIL vs a doubled refresh rate "
        "over the SPEC2006 integer suite",
        "[ops]",
        [](const runner::CliOptions &cli) {
            const std::uint64_t ops = static_cast<std::uint64_t>(
                cli.positional_double(0, 4000000.0));
            SweepSpec sweep;
            sweep.name = "fig3_overhead";
            sweep.default_trials = 1;
            const struct {
                const char *label;
                Tick refresh_period;
                bool with_anvil;
            } settings[] = {
                {"base", ms(64), false},
                {"anvil", ms(64), true},
                {"double-refresh", ms(32), false},
            };
            for (const auto &profile : workload::spec2006_int()) {
                for (const auto &setting : settings) {
                    ScenarioSpec s;
                    s.name = profile.name + "/" + setting.label;
                    s.system.dram.refresh_period =
                        setting.refresh_period;
                    // Historic fixed-seed methodology: default VM layout
                    // and each profile's built-in workload seed.
                    s.seed_vm_from_trial = false;
                    s.workloads = {{profile.name, "", false}};
                    s.detector_before_workloads = true;
                    if (setting.with_anvil)
                        s.detector = detector::AnvilConfig::baseline();
                    s.run.mode = RunMode::kWorkloadOps;
                    s.run.ops = ops;
                    s.outputs = {Output::kRunMs, Output::kOps,
                                 Output::kAnvilStats,
                                 Output::kDramStats};
                    sweep.cells.push_back(std::move(s));
                }
            }
            sweep.finalize = [](runner::ResultSink &sink) {
                for (const auto &profile : workload::spec2006_int()) {
                    const double base =
                        sink.scenario(profile.name + "/base")
                            .value_mean("run_ms");
                    for (const char *label :
                         {"anvil", "double-refresh"}) {
                        const std::string cell =
                            profile.name + "/" + label;
                        const double t =
                            sink.scenario(cell).value_mean("run_ms");
                        sink.set_derived(cell, "normalized",
                                         base > 0.0 ? t / base : 0.0);
                    }
                }
            };
            return sweep;
        },
    };
}

struct DefenseCell {
    const char *label;
    Tick refresh_period;
    const char *mitigation;  ///< registry name; "" runs untracked
    bool with_anvil;
};

constexpr Tick kStandardRefresh = ms(64);

const DefenseCell kDefenses[] = {
    {"none", kStandardRefresh, "", false},
    {"double-refresh", ms(32), "", false},
    {"para", kStandardRefresh, "para", false},
    {"trr", kStandardRefresh, "trr", false},
    {"anvil", kStandardRefresh, "", true},
};

SweepFactory
mitigation_comparison()
{
    return {
        "mitigation_comparison",
        "Mitigation landscape: every defense discussed in the paper vs "
        "every attack, plus each defense's benign (mcf) slowdown",
        "",
        [](const runner::CliOptions &) {
            SweepSpec sweep;
            sweep.name = "mitigation_comparison";
            sweep.default_trials = 1;
            const struct {
                const char *label;
                AttackKind kind;
            } attacks[] = {
                {"single-sided", AttackKind::kClflushSingleSided},
                {"double-sided", AttackKind::kClflushDoubleSided},
                {"clflush-free", AttackKind::kClflushFreeDoubleSided},
            };
            for (const DefenseCell &defense : kDefenses) {
                for (const auto &attack : attacks) {
                    ScenarioSpec s = attack_cell(
                        std::string(defense.label) + "/" + attack.label,
                        attack.kind, defense.refresh_period);
                    s.mitigation = defense.mitigation;
                    if (defense.with_anvil)
                        s.detector = detector::AnvilConfig::baseline();
                    s.outputs = {Output::kFlipped};
                    sweep.cells.push_back(std::move(s));
                }
            }
            for (const DefenseCell &defense : kDefenses) {
                ScenarioSpec s;
                s.name = std::string("benign/") +
                         (defense.mitigation[0] == '\0' &&
                                  !defense.with_anvil &&
                                  defense.refresh_period ==
                                      kStandardRefresh
                              ? "unprotected"
                              : defense.label);
                s.system.dram.refresh_period = defense.refresh_period;
                s.seed_vm_from_trial = false;
                s.mitigation = defense.mitigation;
                s.workloads = {{"mcf", "", false}};
                s.detector_before_workloads = true;
                if (defense.with_anvil)
                    s.detector = detector::AnvilConfig::baseline();
                s.run.mode = RunMode::kWorkloadOps;
                s.run.ops = 1500000;
                s.outputs = {Output::kRunMs, Output::kOps};
                sweep.cells.push_back(std::move(s));
            }
            sweep.finalize = [](runner::ResultSink &sink) {
                const double base = sink.scenario("benign/unprotected")
                                        .value_mean("run_ms");
                for (const char *label :
                     {"double-refresh", "para", "trr", "anvil"}) {
                    const std::string cell =
                        std::string("benign/") + label;
                    const double t =
                        sink.scenario(cell).value_mean("run_ms");
                    sink.set_derived(cell, "slowdown",
                                     base > 0.0 ? t / base : 0.0);
                }
            };
            return sweep;
        },
    };
}

/// Trackers of the mitigation matrix, in row order ("none" = untracked
/// baseline the miss-rate and slowdown columns normalize against).
constexpr const char *kMatrixTrackers[] = {
    "none",       "para",        "trr",  "ctrr-sampled",
    "ctrr-evict", "ctrr-radius2", "rvc", "dapper",
};

constexpr const char *kMatrixAttacks[] = {
    "single-sided",
    "double-sided",
    "clflush-free",
    "half-double",
};

SweepFactory
mitigation_matrix()
{
    return {
        "mitigation_matrix",
        "Tracker zoo matrix: detection/miss rate of every registered "
        "mitigation tracker against classic, half-double, and "
        "tracker-thrash attacks on a next-generation module, plus the "
        "refresh-storm slowdown each tracker inflicts under thrash",
        "",
        [](const runner::CliOptions &) {
            SweepSpec sweep;
            sweep.name = "mitigation_matrix";
            sweep.default_trials = 2;

            const struct {
                const char *label;
                AttackKind kind;
            } attacks[] = {
                {kMatrixAttacks[0], AttackKind::kClflushSingleSided},
                {kMatrixAttacks[1], AttackKind::kClflushDoubleSided},
                {kMatrixAttacks[2], AttackKind::kClflushFreeDoubleSided},
                {kMatrixAttacks[3], AttackKind::kClflushHalfDouble},
            };
            for (const char *tracker : kMatrixTrackers) {
                const bool tracked = std::string(tracker) != "none";
                for (const auto &attack : attacks) {
                    ScenarioSpec s = attack_cell(
                        std::string(tracker) + "/" + attack.label,
                        attack.kind, kStandardRefresh);
                    // Next-generation module (Section 4.5's 110 K-class
                    // parts): halved flip threshold plus real
                    // second-neighbour coupling, the regime half-double
                    // exploits.
                    s.system.dram.flip_threshold = 200000;
                    s.system.dram.second_neighbor_weight = 0.5;
                    if (tracked)
                        s.mitigation = tracker;
                    s.outputs = {Output::kFlipped, Output::kFlipMs};
                    if (tracked)
                        s.outputs.push_back(Output::kMitigationRefreshes);
                    sweep.cells.push_back(std::move(s));
                }
                // Thrash column: fixed mcf work interleaved with the
                // tracker-thrash adversary; run_ms grows with whatever
                // refresh storm the tracker's table-pressure response
                // adds on top of the attacker's own traffic.
                ScenarioSpec s;
                s.name = std::string(tracker) + "/thrash";
                s.system.dram.flip_threshold = 200000;
                s.system.dram.second_neighbor_weight = 0.5;
                s.seed_vm_from_trial = false;
                if (tracked)
                    s.mitigation = tracker;
                s.workloads = {{"mcf", "", false}};
                s.attacks = {{AttackKind::kTrackerThrash}};
                s.run.mode = RunMode::kInterleaveUntilOps;
                s.run.ops = 300000;
                s.outputs = {Output::kRunMs, Output::kOps};
                if (tracked) {
                    s.outputs.push_back(Output::kMitigationRefreshes);
                    s.outputs.push_back(Output::kMitigationEvictions);
                }
                sweep.cells.push_back(std::move(s));
            }

            sweep.finalize = [](runner::ResultSink &sink) {
                const double thrash_base =
                    sink.scenario("none/thrash").value_mean("run_ms");
                for (const char *tracker : kMatrixTrackers) {
                    for (const char *attack : kMatrixAttacks) {
                        const std::string cell =
                            std::string(tracker) + "/" + attack;
                        const runner::ScenarioAggregate &agg =
                            sink.scenario(cell);
                        const double trials =
                            static_cast<double>(agg.trials());
                        // Fraction of trials where the attack still
                        // flipped a bit = the tracker's miss rate for
                        // this attack kind.
                        sink.set_derived(
                            cell, "miss_rate",
                            trials > 0.0
                                ? static_cast<double>(
                                      agg.counter_sum("flipped")) /
                                      trials
                                : 0.0);
                    }
                    const std::string cell =
                        std::string(tracker) + "/thrash";
                    const runner::ScenarioAggregate &agg =
                        sink.scenario(cell);
                    const double t = agg.value_mean("run_ms");
                    sink.set_derived(cell, "slowdown",
                                     thrash_base > 0.0 ? t / thrash_base
                                                       : 0.0);
                    const RunningStat *run_stat =
                        agg.value_stat("run_ms");
                    const double run_ms_total =
                        run_stat != nullptr ? run_stat->sum() : 0.0;
                    sink.set_derived(
                        cell, "refreshes_per_64ms",
                        run_ms_total > 0.0
                            ? static_cast<double>(agg.counter_sum(
                                  "mitigation_refreshes")) /
                                  (run_ms_total / 64.0)
                            : 0.0);
                }
            };
            return sweep;
        },
    };
}

/// Victims of the colocation sweep, in pid order after the attacker.
constexpr const char *kColocationVictims[] = {"mcf", "libquantum",
                                              "omnetpp", "gcc"};

/// How many simulated accesses one scheduler turn grants each tenant.
/// Coarser than the legacy 1-step interleave: tenants run in visible
/// bursts, the regime where cross-tenant attribution can actually err.
constexpr std::uint64_t kColocationQuantum = 64;

SweepFactory
multi_tenant_colocation()
{
    return {
        "multi_tenant_colocation",
        "Multi-tenant colocation: one attacker beside 1-4 victim "
        "tenants — detection latency, offender attribution, and each "
        "victim's slowdown vs its solo run",
        "",
        [](const runner::CliOptions &) {
            SweepSpec sweep;
            sweep.name = "multi_tenant_colocation";
            sweep.default_trials = 2;

            // Solo baselines: each victim alone on the machine, same
            // quantum and duration as the colocated cells, so the ops
            // ratio isolates the neighbours' impact.
            for (const char *victim : kColocationVictims) {
                ScenarioSpec s;
                s.name = std::string("solo/") + victim;
                TenantSpec t;
                t.workload =
                    WorkloadSpec{victim, std::string("w:") + victim,
                                 /*boost_thrash=*/false};
                t.quantum_accesses = kColocationQuantum;
                s.tenants.push_back(std::move(t));
                s.run.mode = RunMode::kInterleaveFor;
                s.run.duration = ms(128);
                s.outputs = {Output::kTenantOps, Output::kDramStats};
                sweep.cells.push_back(std::move(s));
            }

            for (std::size_t n = 1; n <= 4; ++n) {
                ScenarioSpec s;
                s.name = "colocated/" + std::to_string(n);
                s.pre_detector = {us(137), us(6000), "phase"};
                s.detector = detector::AnvilConfig::baseline();
                s.pre_attack = {ms(1), us(4000), "attack-phase"};
                TenantSpec attacker;
                attacker.attack =
                    AttackSpec{AttackKind::kClflushDoubleSided};
                attacker.quantum_accesses = kColocationQuantum;
                s.tenants.push_back(std::move(attacker));
                for (std::size_t i = 0; i < n; ++i) {
                    const char *victim = kColocationVictims[i];
                    TenantSpec t;
                    t.workload =
                        WorkloadSpec{victim, std::string("w:") + victim,
                                     /*boost_thrash=*/false};
                    t.quantum_accesses = kColocationQuantum;
                    s.tenants.push_back(std::move(t));
                }
                s.run.mode = RunMode::kInterleaveFor;
                s.run.duration = ms(128);
                s.outputs = {Output::kDetections,
                             Output::kDetectMs,
                             Output::kTenantOps,
                             Output::kTenantDetections,
                             Output::kCrossTenantFp,
                             Output::kAnvilStats,
                             Output::kDramStats};
                sweep.cells.push_back(std::move(s));
            }

            sweep.finalize = [](runner::ResultSink &sink) {
                for (std::size_t n = 1; n <= 4; ++n) {
                    const std::string cell =
                        "colocated/" + std::to_string(n);
                    const runner::ScenarioAggregate &agg =
                        sink.scenario(cell);
                    sink.set_derived(cell, "avg_detect_ms",
                                     agg.value_mean("detect_ms", -1.0));
                    for (std::size_t i = 0; i < n; ++i) {
                        const std::string victim = kColocationVictims[i];
                        const std::string ops = "ops/" + victim;
                        const double solo = static_cast<double>(
                            sink.scenario("solo/" + victim)
                                .counter_sum(ops));
                        const double here = static_cast<double>(
                            agg.counter_sum(ops));
                        sink.set_derived(cell, "slowdown/" + victim,
                                         here > 0.0 ? solo / here : 0.0);
                    }
                }
            };
            return sweep;
        },
    };
}

/// Cache-hostile tenants of the noisy-neighbor sweep: the profiles with
/// the liveliest conflict-thrash phases, i.e. the likeliest to be
/// mistaken for a rowhammer aggressor.
constexpr const char *kNoisyHogs[] = {"gcc", "bzip2", "astar",
                                      "xalancbmk"};

constexpr std::size_t kNoisyCounts[] = {1, 2, 4};

SweepFactory
noisy_neighbor_fp()
{
    return {
        "noisy_neighbor_fp",
        "Noisy neighbors, zero attackers: N boosted cache-hog tenants "
        "under the system-wide daemon — false-positive refresh rate, "
        "cross-tenant blame, and the daemon's aggregate overhead",
        "[run_seconds]",
        [](const runner::CliOptions &cli) {
            const double run_sec = cli.positional_double(0, 1.0);
            SweepSpec sweep;
            sweep.name = "noisy_neighbor_fp";
            sweep.default_trials = 1;

            const auto hogs = [&](ScenarioSpec &s, std::size_t n) {
                for (std::size_t i = 0; i < n; ++i) {
                    const char *hog = kNoisyHogs[i];
                    TenantSpec t;
                    t.workload =
                        WorkloadSpec{hog, std::string("w:") + hog,
                                     /*boost_thrash=*/true};
                    t.quantum_accesses = kColocationQuantum;
                    s.tenants.push_back(std::move(t));
                }
                s.run.mode = RunMode::kInterleaveFor;
                s.run.duration = seconds(run_sec);
            };
            for (const std::size_t n : kNoisyCounts) {
                ScenarioSpec s;
                s.name = "hogs/" + std::to_string(n);
                s.detector_before_workloads = true;
                s.detector = detector::AnvilConfig::baseline();
                hogs(s, n);
                s.outputs = {Output::kFalsePositiveRefreshes,
                             Output::kBoost,
                             Output::kRunMs,
                             Output::kTenantOps,
                             Output::kTenantDetections,
                             Output::kCrossTenantFp,
                             Output::kAnvilStats};
                sweep.cells.push_back(std::move(s));

                ScenarioSpec u;
                u.name = "hogs/" + std::to_string(n) + "/unprotected";
                hogs(u, n);
                u.outputs = {Output::kTenantOps, Output::kRunMs};
                sweep.cells.push_back(std::move(u));
            }

            sweep.finalize = [](runner::ResultSink &sink) {
                for (const std::size_t n : kNoisyCounts) {
                    const std::string cell =
                        "hogs/" + std::to_string(n);
                    const runner::ScenarioAggregate &agg =
                        sink.scenario(cell);
                    const RunningStat *run_stat =
                        agg.value_stat("run_ms");
                    const double run_ms_total =
                        run_stat != nullptr ? run_stat->sum() : 0.0;
                    // Raw boosted rate: divide by the cell's "boost"
                    // value for the unbiased estimate (the boost is the
                    // product over every boosted tenant).
                    sink.set_derived(
                        cell, "fp_refreshes_per_sec",
                        run_ms_total > 0.0
                            ? static_cast<double>(agg.counter_sum(
                                  "false_positive_refreshes")) /
                                  (run_ms_total / 1000.0)
                            : 0.0);
                    double protected_ops = 0.0;
                    double unprotected_ops = 0.0;
                    for (std::size_t i = 0; i < n; ++i) {
                        const std::string ops =
                            std::string("ops/") + kNoisyHogs[i];
                        protected_ops += static_cast<double>(
                            agg.counter_sum(ops));
                        unprotected_ops += static_cast<double>(
                            sink.scenario(cell + "/unprotected")
                                .counter_sum(ops));
                    }
                    sink.set_derived(cell, "overhead",
                                     protected_ops > 0.0
                                         ? unprotected_ops /
                                               protected_ops
                                         : 0.0);
                }
            };
            return sweep;
        },
    };
}

}  // namespace

const ScenarioRegistry &
paper_registry()
{
    static const ScenarioRegistry registry = [] {
        ScenarioRegistry r;
        r.add(table1_attacks());
        r.add(fig1_pattern());
        r.add(table3_detection());
        r.add(table4_false_positives());
        r.add(table5_fp_sensitivity());
        r.add(fig3_overhead());
        r.add(fig4_sensitivity());
        r.add(mitigation_comparison());
        r.add(mitigation_matrix());
        r.add(multi_tenant_colocation());
        r.add(noisy_neighbor_fp());
        return r;
    }();
    return registry;
}

}  // namespace anvil::scenario
