#include "scenario/registry.hh"

#include <stdexcept>

namespace anvil::scenario {

void
ScenarioRegistry::add(SweepFactory factory)
{
    if (find(factory.name) != nullptr) {
        throw std::invalid_argument("duplicate scenario sweep name: " +
                                    factory.name);
    }
    factories_.push_back(std::move(factory));
}

const SweepFactory *
ScenarioRegistry::find(const std::string &name) const
{
    for (const SweepFactory &factory : factories_) {
        if (factory.name == name)
            return &factory;
    }
    return nullptr;
}

const SweepFactory &
ScenarioRegistry::at(const std::string &name) const
{
    const SweepFactory *factory = find(name);
    if (factory == nullptr)
        throw std::out_of_range("unknown scenario sweep: " + name);
    return *factory;
}

}  // namespace anvil::scenario
