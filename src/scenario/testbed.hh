/**
 * @file
 * Shared experiment apparatus for paper-reproduction scenarios: an
 * attacker process with a scanned buffer, a machine + attacker bundle,
 * weakest-victim target selection, refresh-phase alignment, and the
 * thrash-rate importance-sampling boost. Formerly bench/harness.hh;
 * promoted into the library so scenarios, benches, examples, and tests
 * all share one apparatus.
 */
#ifndef ANVIL_SCENARIO_TESTBED_HH
#define ANVIL_SCENARIO_TESTBED_HH

#include <cstdint>
#include <optional>

#include "attack/hammer.hh"
#include "attack/memory_layout.hh"
#include "mem/memory_system.hh"
#include "pmu/pmu.hh"
#include "workload/profile.hh"

namespace anvil::scenario {

/**
 * One attacker process on an existing machine: maps a buffer and scans
 * it through /proc/pagemap. Use directly when the machine (and its PMU /
 * detector / workloads) already exists — e.g. an attacker joining a
 * running system — or via Testbed for the common machine+attacker case.
 */
struct Attacker {
    static constexpr std::uint64_t kBufferBytes = 64ULL << 20;

    explicit Attacker(mem::MemorySystem &machine,
                      std::uint64_t buffer_bytes = kBufferBytes);

    Pid pid() const { return space->pid(); }

    mem::AddressSpace *space;
    Addr buffer;
    std::uint64_t buffer_bytes;
    attack::MemoryLayout layout;
};

/** True if @p victim_row has the module's minimum flip threshold. */
bool is_weakest_victim(const mem::MemorySystem &machine,
                       std::uint32_t flat_bank, std::uint32_t victim_row);

/** First double-sided target whose victim is maximally sensitive. */
std::optional<attack::DoubleSidedTarget>
weakest_double_sided(mem::MemorySystem &machine, Attacker &attacker,
                     bool require_slice_compatible = false);

/** First single-sided target with a maximally sensitive victim. */
std::optional<attack::SingleSidedTarget>
weakest_single_sided(mem::MemorySystem &machine, Attacker &attacker);

/** First half-double target whose victim is maximally sensitive. */
std::optional<attack::HalfDoubleTarget>
weakest_half_double(mem::MemorySystem &machine, Attacker &attacker);

/** Advances the clock to just after @p victim_row's next refresh. */
void align_to_refresh(mem::MemorySystem &machine, std::uint32_t victim_row);

/** A machine with one attacker process that has scanned a 64 MB buffer. */
class Testbed
{
  public:
    static constexpr std::uint64_t kBufferBytes = Attacker::kBufferBytes;

    explicit Testbed(mem::SystemConfig config = mem::SystemConfig{});

    /** Advances the clock to just after @p victim_row's next refresh. */
    void align_to_refresh(std::uint32_t victim_row);

    /** True if @p victim has the module's minimum flip threshold. */
    bool is_weakest(std::uint32_t flat_bank, std::uint32_t victim_row) const;

    /** First double-sided target whose victim is maximally sensitive. */
    std::optional<attack::DoubleSidedTarget>
    weakest_double_sided(bool require_slice_compatible = false);

    /** First single-sided target with a maximally sensitive victim. */
    std::optional<attack::SingleSidedTarget> weakest_single_sided();

    /** First half-double target whose victim is maximally sensitive. */
    std::optional<attack::HalfDoubleTarget> weakest_half_double();

    mem::MemorySystem machine;
    pmu::Pmu pmu;

  private:
    Attacker intruder_;

  public:
    // Aliases preserving the historical harness field names.
    mem::AddressSpace *const attacker;
    const Addr buffer;
    attack::MemoryLayout &layout;
};

/**
 * Rate-boosted importance sampling for false-positive measurements.
 *
 * Benchmarks' conflict-thrash phases arrive as a Poisson process at
 * tenths of a hertz, with per-phase type fractions — far too rare to
 * observe in a few simulated seconds. Since each phase contributes
 * independently to the false-positive count, boosting the arrival rate
 * and dividing the measured rate by the boost is an unbiased estimator.
 * The boost targets the *rarest* phase component (e.g. gcc's occasional
 * bursts among its many weak phases) and is capped so phases stay
 * non-overlapping.
 *
 * @return the boost factor applied (divide measured rates by it).
 */
double boost_thrash_rate(workload::SpecProfile &profile,
                         double target_component_rate = 1.5,
                         double max_total_rate = 12.0);

}  // namespace anvil::scenario

#endif  // ANVIL_SCENARIO_TESTBED_HH
