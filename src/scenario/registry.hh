/**
 * @file
 * Named registry of scenario sweeps, so one driver binary (anvil-sim)
 * can list and run every paper table/figure, and per-table bench
 * binaries stay one-line wrappers over the same definitions.
 */
#ifndef ANVIL_SCENARIO_REGISTRY_HH
#define ANVIL_SCENARIO_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "runner/options.hh"
#include "scenario/spec.hh"

namespace anvil::scenario {

/**
 * Builds a SweepSpec from the parsed CLI options. A factory rather than
 * a stored spec because some sweeps take positional parameters (run
 * seconds, operation counts) that scale their cells.
 */
struct SweepFactory {
    std::string name;
    std::string description;
    /// Positional-argument usage appended to the driver's help line,
    /// e.g. "[run_seconds]"; empty when the sweep takes none.
    std::string usage;
    std::function<SweepSpec(const runner::CliOptions &)> make;
};

/** Ordered, named collection of sweep factories. */
class ScenarioRegistry
{
  public:
    /** @throw std::invalid_argument on a duplicate name. */
    void add(SweepFactory factory);

    /** @return the factory named @p name, or nullptr. */
    const SweepFactory *find(const std::string &name) const;

    /** @return the factory named @p name. @throw std::out_of_range. */
    const SweepFactory &at(const std::string &name) const;

    const std::vector<SweepFactory> &all() const { return factories_; }

  private:
    std::vector<SweepFactory> factories_;
};

/**
 * The registry of every paper table/figure sweep (populated by
 * catalog.cc). Singleton so bench mains and the driver share one list.
 */
const ScenarioRegistry &paper_registry();

}  // namespace anvil::scenario

#endif  // ANVIL_SCENARIO_REGISTRY_HH
