#include "scenario/validate.hh"

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/bits.hh"
#include "common/error.hh"
#include "common/text.hh"
#include "mem/virtual_memory.hh"
#include "mitigations/registry.hh"
#include "scenario/scheduler.hh"
#include "workload/profile.hh"

namespace anvil::scenario {
namespace {

/** Error with the scenario name already attached. */
Error
cell_error(const ScenarioSpec &spec, const std::string &message)
{
    return Error(message).with("scenario", spec.name);
}

void
require_pow2(const ScenarioSpec &spec, const char *field, std::uint64_t v)
{
    if (v == 0 || !is_pow2(v)) {
        throw cell_error(spec,
                         std::string(field) +
                             " must be a nonzero power of two (the set "
                             "index is taken from address bits)")
            .with("value", v);
    }
}

void
require_nonzero(const ScenarioSpec &spec, const char *field, std::uint64_t v)
{
    if (v == 0)
        throw cell_error(spec, std::string(field) + " must be nonzero");
}

std::string
known_profiles()
{
    std::ostringstream os;
    bool first = true;
    for (const workload::SpecProfile &p : workload::spec2006_int()) {
        os << (first ? "" : ", ") << p.name;
        first = false;
    }
    return os.str();
}

bool
needs_attack(RunMode mode)
{
    switch (mode) {
      case RunMode::kHammerToFirstFlip:
      case RunMode::kHammerUntilFlipOrDeadline:
      case RunMode::kPatternMeasure:
          return true;
      case RunMode::kInterleaveFor:
      case RunMode::kWorkloadOps:
      case RunMode::kInterleaveUntilOps:
          return false;
    }
    return false;
}

bool
needs_detector(Output output)
{
    switch (output) {
      case Output::kDetections:
      case Output::kSelectiveRefreshes:
      case Output::kDetectMs:
      case Output::kFpPerSec:
      case Output::kFalsePositiveRefreshes:
      case Output::kTenantDetections:
      case Output::kCrossTenantFp:
          return true;
      default:
          return false;
    }
}

bool
needs_testbed(Output output)
{
    switch (output) {
      case Output::kFlips:
      case Output::kAttackMs:
          return true;
      default:
          return false;
    }
}

bool
needs_mitigation(Output output)
{
    switch (output) {
      case Output::kMitigationRefreshes:
      case Output::kMitigationEvictions:
          return true;
      default:
          return false;
    }
}

}  // namespace

void
validate(const ScenarioSpec &spec)
{
    if (spec.name.empty())
        throw Error("scenario cell has an empty name (the name is the JSON "
                    "row label and the trial-seed salt; it is required)");

    const cache::HierarchyConfig &cache = spec.system.cache;
    require_pow2(spec, "cache.l1_sets", cache.l1_sets);
    require_pow2(spec, "cache.l2_sets", cache.l2_sets);
    require_pow2(spec, "cache.llc_sets_per_slice",
                 cache.llc_sets_per_slice);
    require_nonzero(spec, "cache.l1_ways", cache.l1_ways);
    require_nonzero(spec, "cache.l2_ways", cache.l2_ways);
    require_nonzero(spec, "cache.llc_ways", cache.llc_ways);
    require_nonzero(spec, "cache.llc_slices", cache.llc_slices);

    const dram::DramConfig &dram = spec.system.dram;
    require_nonzero(spec, "dram.channels", dram.channels);
    require_nonzero(spec, "dram.ranks_per_channel",
                    dram.ranks_per_channel);
    require_nonzero(spec, "dram.banks_per_rank", dram.banks_per_rank);
    if (dram.rows_per_bank == 0) {
        throw cell_error(spec,
                         "dram.rows_per_bank is zero — a rowhammer "
                         "simulation needs rows to hammer");
    }
    require_pow2(spec, "dram.row_bytes", dram.row_bytes);
    require_nonzero(spec, "dram.refresh_slots", dram.refresh_slots);
    if (dram.refresh_period == 0) {
        throw cell_error(spec,
                         "dram.refresh_period is zero — every row would "
                         "be refreshed continuously and no cell could "
                         "ever flip");
    }
    if (dram.flip_threshold == 0) {
        throw cell_error(spec,
                         "dram.flip_threshold is zero — every activation "
                         "would flip its neighbours immediately");
    }

    for (const TenantSpec &t : spec.tenants) {
        if (t.attack.has_value() == t.workload.has_value()) {
            throw cell_error(spec,
                             "a tenant must carry exactly one payload — "
                             "either an attack or a workload, not both "
                             "and not neither")
                .with("tenant", t.name.empty() ? "<unnamed>" : t.name);
        }
        if (t.quantum_accesses == 0) {
            throw cell_error(spec,
                             "tenant quantum_accesses is zero — the "
                             "scheduler grants quanta in completed "
                             "simulated accesses, so every tenant needs "
                             "at least one")
                .with("tenant", t.name.empty() ? "<unnamed>" : t.name);
        }
    }

    const std::vector<TenantSpec> tenants = normalized_tenants(spec);
    bool has_attack = false;
    std::size_t workload_tenants = 0;
    std::uint64_t buffer_total = 0;
    for (const TenantSpec &t : tenants) {
        if (t.attack) {
            has_attack = true;
            const std::uint64_t bytes = t.attack->buffer_bytes;
            if (bytes == 0 || !is_pow2(bytes)) {
                throw cell_error(spec,
                                 "attack buffer_bytes must be a nonzero "
                                 "power of two — the pagemap scan walks "
                                 "the buffer in pow2 strides")
                    .with("tenant", t.name)
                    .with("buffer_bytes", bytes);
            }
            if (bytes < mem::kHugeBytes) {
                throw cell_error(spec,
                                 "attack buffer_bytes is below one huge "
                                 "page — the attacker maps 2 MB THP "
                                 "frames, so smaller buffers cannot be "
                                 "placed")
                    .with("tenant", t.name)
                    .with("buffer_bytes", bytes)
                    .with("huge_page_bytes", mem::kHugeBytes);
            }
            buffer_total += bytes;
        } else {
            ++workload_tenants;
        }
    }
    // The huge-page pool is the upper half of physical memory; an
    // attacker set that outgrows it would fail mid-mmap with an obscure
    // allocator error, so reject it here with the actual budget.
    const std::uint64_t huge_pool = dram.capacity_bytes() / 2;
    if (buffer_total > huge_pool) {
        throw cell_error(spec,
                         "attacker buffers exceed the huge-page pool "
                         "(half of physical memory)")
            .with("buffer_total", buffer_total)
            .with("huge_pool_bytes", huge_pool);
    }

    if (needs_attack(spec.run.mode) && !has_attack) {
        throw cell_error(spec,
                         "this run mode drives a hammer kernel but the "
                         "scenario declares no attacks — add an AttackSpec "
                         "or switch to an interleave/workload run mode");
    }
    if (spec.run.mode == RunMode::kPatternMeasure &&
        spec.run.iterations == 0) {
        throw cell_error(spec,
                         "run.iterations is zero — the pattern cost model "
                         "divides per-iteration deltas by it");
    }
    if (spec.run.mode == RunMode::kInterleaveUntilOps) {
        if (workload_tenants == 0) {
            throw cell_error(spec,
                             "kInterleaveUntilOps runs until the first "
                             "workload finishes its quota, but the "
                             "scenario declares no workloads");
        }
        require_nonzero(spec, "run.ops", spec.run.ops);
    }

    if (!spec.mitigation.empty() &&
        mitigations::mitigation_registry().find(spec.mitigation) ==
            nullptr) {
        std::vector<std::string> names;
        for (const mitigations::MitigationEntry &entry :
             mitigations::mitigation_registry().all())
            names.push_back(entry.name);
        Error error = cell_error(spec, "unknown mitigation tracker")
                          .with("mitigation", spec.mitigation)
                          .with("known", mitigations::mitigation_registry()
                                             .known_names());
        if (const auto near = nearest_name(spec.mitigation, names))
            error.with("did_you_mean", *near);
        throw error;
    }

    for (const TenantSpec &t : tenants) {
        if (!t.workload)
            continue;
        try {
            (void)workload::spec_profile(t.workload->profile);
        } catch (const std::out_of_range &) {
            throw cell_error(spec, "unknown workload profile")
                .with("profile", t.workload->profile)
                .with("known", known_profiles());
        }
    }

    for (const Output output : spec.outputs) {
        if (needs_detector(output) && !spec.detector) {
            throw cell_error(spec,
                             "an output reads detector statistics but the "
                             "scenario runs unprotected — configure "
                             "`detector` or drop the output");
        }
        if (needs_testbed(output) && !has_attack) {
            throw cell_error(spec,
                             "an output reads attack results but the "
                             "scenario declares no attacks");
        }
        if (output == Output::kTenantOps && workload_tenants == 0) {
            throw cell_error(spec,
                             "kTenantOps reports per-tenant workload "
                             "progress but no tenant carries a workload");
        }
        if (needs_mitigation(output) && spec.mitigation.empty()) {
            throw cell_error(spec,
                             "an output reads mitigation-tracker "
                             "statistics but the scenario configures no "
                             "mitigation — set `mitigation` to a registry "
                             "name or drop the output");
        }
    }
}

void
validate(const SweepSpec &spec)
{
    if (spec.name.empty())
        throw Error("sweep has an empty name (it is the registry key and "
                    "the JSON \"sweep\" field)");
    if (spec.cells.empty()) {
        throw Error("sweep has no cells — every table/figure needs at "
                    "least one scenario")
            .with("sweep", spec.name);
    }
    if (spec.default_trials == 0) {
        throw Error("sweep default_trials is zero — cells without "
                    "fixed_trials would run no trials at all")
            .with("sweep", spec.name);
    }
    std::set<std::string> names;
    for (const ScenarioSpec &cell : spec.cells) {
        if (!names.insert(cell.name).second) {
            throw Error("duplicate cell name — JSON rows and trial seeds "
                        "are keyed by cell name, so each must be unique")
                .with("sweep", spec.name)
                .with("cell", cell.name);
        }
        try {
            validate(cell);
        } catch (Error &e) {
            throw e.with("sweep", spec.name);
        }
    }
}

}  // namespace anvil::scenario
