/**
 * @file
 * Build-time validation of declarative scenario and sweep specs.
 *
 * A bad machine config (non-power-of-two cache sets, a DRAM with zero
 * rows) or an inconsistent scenario (a hammer run mode with no attack,
 * a detector output with no detector) would otherwise surface deep in
 * construction as an assert or a null dereference, attributed to nothing.
 * validate() front-loads those checks and throws anvil::Error with the
 * scenario name and the offending field, so a misauthored spec fails with
 * an actionable message before any machine is built.
 *
 * run_sweep() validates the whole SweepSpec once up front;
 * ScenarioBuilder::build() re-validates its single cell so direct users
 * of the builder (tests, future drivers) get the same protection.
 */
#ifndef ANVIL_SCENARIO_VALIDATE_HH
#define ANVIL_SCENARIO_VALIDATE_HH

#include "scenario/spec.hh"

namespace anvil::scenario {

/**
 * Checks one scenario cell: machine geometry (power-of-two cache sets,
 * non-degenerate DRAM), run-mode requirements (hammer/pattern modes need
 * an attack), workload profile existence, and output/detector
 * consistency.
 * @throw anvil::Error describing the first violation found.
 */
void validate(const ScenarioSpec &spec);

/**
 * Checks a whole sweep: non-empty named cell list, positive default
 * trial count, unique cell names, then validate() on every cell.
 * @throw anvil::Error describing the first violation found.
 */
void validate(const SweepSpec &spec);

}  // namespace anvil::scenario

#endif  // ANVIL_SCENARIO_VALIDATE_HH
