/**
 * @file
 * Rowhammer disturbance model.
 *
 * Physics abstraction: every activation of row r partially discharges the
 * cells of nearby rows. A victim row v accumulates disturbance from its
 * neighbours *since v's own charge was last restored* — by the periodic
 * refresh sweep, by an activation of v itself (a DRAM read fully refreshes
 * the accessed row, Section 3.2 of the paper), or by ANVIL's selective
 * refresh. When the accumulated disturbance crosses the row's flip
 * threshold, a bit flip is recorded.
 *
 * Disturbance for victim v with adjacent activation counts L (row v-1) and
 * R (row v+1) in the current window:
 *
 *     D(v) = L + R + alpha * min(L, R) + w2 * (L2 + R2)
 *
 * The alpha term models the super-linear effect of double-sided hammering;
 * with the paper's calibration (Table 1) a single threshold H = 400 K
 * reproduces both the single-sided (400 K) and double-sided (2 x 110 K)
 * flip counts. L2/R2 are distance-2 activation counts with small weight w2
 * (0 by default).
 */
#ifndef ANVIL_DRAM_DISTURBANCE_HH
#define ANVIL_DRAM_DISTURBANCE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dram/config.hh"

namespace anvil::dram {

/** One recorded rowhammer-induced bit flip. */
struct FlipEvent {
    Tick time = 0;
    std::uint32_t flat_bank = 0;
    std::uint32_t row = 0;
    double disturbance = 0.0;
    std::uint64_t threshold = 0;
};

/**
 * The per-bank periodic refresh schedule.
 *
 * Rows are refreshed round-robin: REF command k (issued every tREFI)
 * refreshes rows [k * rows_per_ref, (k+1) * rows_per_ref) of every bank,
 * wrapping each refresh period. All rows start fully charged at time 0.
 */
class RefreshSchedule
{
  public:
    explicit RefreshSchedule(const DramConfig &config);

    /** Time at which @p row was most recently refreshed, as of @p now. */
    Tick last_refresh(std::uint32_t row, Tick now) const;

    /** First time strictly after @p now at which @p row is refreshed. */
    Tick next_refresh(std::uint32_t row, Tick now) const;

    /** Phase offset of @p row's refresh slot within the period. */
    Tick phase(std::uint32_t row) const;

  private:
    Tick period_;
    Tick t_refi_;
    std::uint32_t rows_per_ref_;
};

/**
 * Tracks disturbance accumulation and detects bit flips for one bank.
 *
 * State is kept sparsely (only rows that have been disturbed since their
 * last refresh), and refresh is applied lazily from the RefreshSchedule so
 * no per-row events are needed.
 */
class DisturbanceModel
{
  public:
    DisturbanceModel(const DramConfig &config, std::uint32_t flat_bank,
                     const RefreshSchedule &schedule,
                     std::vector<FlipEvent> &flip_log);

    /**
     * Records an activation of @p row at time @p now: restores the charge
     * of @p row itself and disturbs its neighbours, logging any flips.
     */
    void on_activate(std::uint32_t row, Tick now);

    /** Current accumulated disturbance of @p row (for tests/telemetry). */
    double disturbance_of(std::uint32_t row, Tick now) const;

    /** Flip threshold of @p row (deterministic per-row variation). */
    std::uint64_t threshold_of(std::uint32_t row) const;

    /** Activations of @p row's neighbours in its current window (L, R). */
    std::pair<std::uint64_t, std::uint64_t>
    neighbor_activations(std::uint32_t row, Tick now) const;

  private:
    struct RowState {
        Tick window_start = 0;
        /// First refresh strictly after window_start; 0 = not yet
        /// computed. Cached so the per-disturb window check is a single
        /// comparison instead of two divides in the refresh schedule.
        Tick refresh_due = 0;
        /// Cached threshold_of(row); 0 = not yet computed. The threshold
        /// is time-invariant, so it survives window resets.
        std::uint64_t threshold = 0;
        /// Conservative integer bound cached with threshold: while
        /// left + right < flip_floor (and no distance-2 disturbance has
        /// accrued), disturbance() cannot reach threshold, so the
        /// floating-point evaluation is skipped.
        std::uint64_t flip_floor = 0;
        std::uint64_t left = 0;        ///< activations of row-1
        std::uint64_t right = 0;       ///< activations of row+1
        double second_neighbor = 0.0;  ///< weighted distance-2 activations
        bool flipped = false;
    };

    /** Applies lazy refresh to @p state if the sweep passed since start. */
    void sync_window(std::uint32_t row, RowState &state, Tick now) const;

    double disturbance(const RowState &state) const;

    void disturb(std::uint32_t victim, std::uint32_t aggressor, Tick now);

    /**
     * rows_[row] through a small direct-mapped memo of recent lookups.
     * Hammering touches the same few rows millions of times; the memo
     * turns the hash-map probe into an array load in the common case.
     * Entries point at unordered_map nodes, which stay put (node-based
     * container, never erased from).
     */
    RowState &row_state(std::uint32_t row);

    struct Memo {
        std::uint32_t row = 0;
        RowState *state = nullptr;
    };
    static constexpr std::uint32_t kMemoSize = 8;

    const DramConfig &config_;
    std::uint32_t flat_bank_;
    const RefreshSchedule &schedule_;
    std::vector<FlipEvent> &flip_log_;
    std::array<Memo, kMemoSize> memo_;
    mutable std::unordered_map<std::uint32_t, RowState> rows_;
};

}  // namespace anvil::dram

#endif  // ANVIL_DRAM_DISTURBANCE_HH
