/**
 * @file
 * The DRAM subsystem facade: banks with row buffers, the periodic refresh
 * machinery, the disturbance model, and selective row refresh (ANVIL's
 * protection primitive).
 */
#ifndef ANVIL_DRAM_DRAM_SYSTEM_HH
#define ANVIL_DRAM_DRAM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "dram/address_map.hh"
#include "dram/config.hh"
#include "dram/disturbance.hh"

namespace anvil::dram {

/**
 * One DRAM bank: an open-row (row buffer) tracker wired to the
 * disturbance model.
 */
class Bank
{
  public:
    Bank(const DramConfig &config, std::uint32_t flat_bank,
         const RefreshSchedule &schedule, std::vector<FlipEvent> &flip_log);

    /**
     * Performs an access to @p row at time @p now.
     * @return true if the access hit the open row buffer.
     */
    bool access(std::uint32_t row, Tick now);

    /** Currently open row, if any. */
    std::optional<std::uint32_t> open_row() const { return open_row_; }

    /** Total row activations performed by this bank. */
    std::uint64_t activations() const { return activations_; }

    const DisturbanceModel &disturbance() const { return disturbance_; }

  private:
    const DramConfig &config_;
    DisturbanceModel disturbance_;
    std::optional<std::uint32_t> open_row_;
    Tick t_refi_;        ///< cached, avoids a divide per access
    Tick window_end_;    ///< end of the tREFI window of the last access
    std::uint64_t activations_ = 0;
};

/**
 * The full DRAM device.
 *
 * Time is supplied by the caller (the memory system) on every access; the
 * device is purely reactive, computing refresh effects lazily, which keeps
 * it fast and independently unit-testable.
 */
class DramSystem
{
  public:
    /** Outcome of one DRAM access. */
    struct AccessResult {
        Tick latency = 0;    ///< includes any refresh stall
        bool row_hit = false;
    };

    /**
     * Called on every row activation — the observation point in-DRAM /
     * in-controller rowhammer mitigations (PARA, TRR) attach to.
     */
    using ActivationHook =
        std::function<void(std::uint32_t flat_bank, std::uint32_t row,
                           Tick now)>;

    /** Aggregate counters. */
    struct Stats {
        std::uint64_t accesses = 0;
        std::uint64_t row_hits = 0;
        std::uint64_t row_misses = 0;
        std::uint64_t selective_refreshes = 0;
        Tick refresh_stall = 0;

        /** Accumulates stats across independent devices (sweeps). */
        Stats &
        operator+=(const Stats &o)
        {
            accesses += o.accesses;
            row_hits += o.row_hits;
            row_misses += o.row_misses;
            selective_refreshes += o.selective_refreshes;
            refresh_stall += o.refresh_stall;
            return *this;
        }
    };

    explicit DramSystem(const DramConfig &config);

    /** Reads or writes @p pa at time @p now. */
    AccessResult access(Addr pa, Tick now);

    /**
     * ANVIL's protection primitive: refreshes the row containing @p pa by
     * reading one word from it (a read fully restores the row's charge).
     * @return the latency of the refreshing read.
     */
    Tick refresh_row(Addr pa, Tick now);

    /** Row-coordinate variant of refresh_row. */
    Tick refresh_row(std::uint32_t flat_bank, std::uint32_t row, Tick now);

    /** Encodes (flat_bank, row, column 0) into a physical address. */
    Addr row_to_addr(std::uint32_t flat_bank, std::uint32_t row) const;

    const AddressMap &address_map() const { return map_; }
    const DramConfig &config() const { return config_; }
    const RefreshSchedule &refresh_schedule() const { return schedule_; }
    const Stats &stats() const { return stats_; }

    /** All bit flips recorded so far, in time order. */
    const std::vector<FlipEvent> &flips() const { return flips_; }
    void clear_flips() { flips_.clear(); }

    /** Disturbance telemetry for tests. */
    const DisturbanceModel &
    disturbance(std::uint32_t flat_bank) const
    {
        return banks_[flat_bank].disturbance();
    }

    const Bank &bank(std::uint32_t flat_bank) const
    {
        return banks_[flat_bank];
    }

    /**
     * Registers an activation observer. The hook runs after the
     * activation's disturbance is applied; a hook performing refresh
     * reads re-enters access(), so implementations must guard against
     * recursion themselves.
     */
    void add_activation_hook(ActivationHook hook)
    {
        activation_hooks_.push_back(std::move(hook));
    }

  private:
    /** Stall until any in-progress REF command completes. */
    Tick refresh_stall(Tick now);

    DramConfig config_;
    AddressMap map_;
    RefreshSchedule schedule_;
    std::vector<FlipEvent> flips_;
    std::vector<Bank> banks_;
    std::vector<ActivationHook> activation_hooks_;
    Stats stats_;

    // Cached refresh-window bounds for refresh_stall: rolled forward
    // monotonically instead of re-dividing by tREFI on every access.
    Tick t_refi_;
    Tick stall_window_start_ = 0;
};

}  // namespace anvil::dram

#endif  // ANVIL_DRAM_DRAM_SYSTEM_HH
