#include "dram/address_map.hh"

#include <cassert>

#include "common/bits.hh"

namespace anvil::dram {

AddressMap::AddressMap(const DramConfig &config)
    : bank_bits_(log2_exact(config.banks_per_rank)),
      rank_bits_(log2_exact(config.ranks_per_channel)),
      capacity_(config.capacity_bytes())
{
    const std::uint32_t column_bits = log2_exact(config.row_bytes);
    const std::uint32_t channel_bits = log2_exact(config.channels);
    const std::uint32_t row_bits = log2_exact(config.rows_per_bank);

    std::uint32_t shift = 0;
    column_ = Field{shift, low_mask(column_bits)};
    shift += column_bits;
    bank_ = Field{shift, low_mask(bank_bits_)};
    shift += bank_bits_;
    rank_ = Field{shift, low_mask(rank_bits_)};
    shift += rank_bits_;
    channel_ = Field{shift, low_mask(channel_bits)};
    shift += channel_bits;
    row_ = Field{shift, low_mask(row_bits)};

    row_stride_ = static_cast<Addr>(1) << shift;
}

}  // namespace anvil::dram
