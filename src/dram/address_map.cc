#include "dram/address_map.hh"

#include <cassert>

namespace anvil::dram {

std::uint32_t
AddressMap::log2_exact(std::uint64_t v)
{
    assert(v != 0 && (v & (v - 1)) == 0 && "value must be a power of two");
    std::uint32_t bits = 0;
    while (v > 1) {
        v >>= 1;
        ++bits;
    }
    return bits;
}

AddressMap::AddressMap(const DramConfig &config)
    : column_bits_(log2_exact(config.row_bytes)),
      bank_bits_(log2_exact(config.banks_per_rank)),
      rank_bits_(log2_exact(config.ranks_per_channel)),
      channel_bits_(log2_exact(config.channels)),
      row_bits_(log2_exact(config.rows_per_bank)),
      banks_per_rank_(config.banks_per_rank),
      ranks_per_channel_(config.ranks_per_channel),
      capacity_(config.capacity_bytes())
{
    row_stride_ = static_cast<Addr>(1)
                  << (column_bits_ + bank_bits_ + rank_bits_ +
                      channel_bits_);
}

DramCoord
AddressMap::decode(Addr pa) const
{
    assert(pa < capacity_ && "physical address outside module");
    DramCoord coord;
    std::uint32_t shift = 0;

    coord.column = static_cast<std::uint32_t>(pa & ((1ULL << column_bits_) -
                                                    1));
    shift += column_bits_;
    coord.bank = static_cast<std::uint32_t>((pa >> shift) &
                                            ((1ULL << bank_bits_) - 1));
    shift += bank_bits_;
    coord.rank = static_cast<std::uint32_t>((pa >> shift) &
                                            ((1ULL << rank_bits_) - 1));
    shift += rank_bits_;
    coord.channel = static_cast<std::uint32_t>((pa >> shift) &
                                               ((1ULL << channel_bits_) - 1));
    shift += channel_bits_;
    coord.row = static_cast<std::uint32_t>((pa >> shift) &
                                           ((1ULL << row_bits_) - 1));
    return coord;
}

Addr
AddressMap::encode(const DramCoord &coord) const
{
    Addr pa = 0;
    std::uint32_t shift = 0;

    pa |= static_cast<Addr>(coord.column);
    shift += column_bits_;
    pa |= static_cast<Addr>(coord.bank) << shift;
    shift += bank_bits_;
    pa |= static_cast<Addr>(coord.rank) << shift;
    shift += rank_bits_;
    pa |= static_cast<Addr>(coord.channel) << shift;
    shift += channel_bits_;
    pa |= static_cast<Addr>(coord.row) << shift;
    return pa;
}

std::uint32_t
AddressMap::flat_bank(const DramCoord &coord) const
{
    return (coord.channel * ranks_per_channel_ + coord.rank) *
               banks_per_rank_ +
           coord.bank;
}

}  // namespace anvil::dram
