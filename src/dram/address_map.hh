/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping.
 *
 * ANVIL's kernel module is "pre-configured using a reverse engineered
 * physical address to DRAM row and bank mapping scheme" (Section 3.3); this
 * class is that scheme for the simulated module. The layout places the
 * column bits lowest, then bank / rank / channel, then row bits highest, so
 * consecutive physical rows of a bank are `row_stride()` bytes apart —
 * matching the paper's assumption that sequentially numbered rows are
 * physically adjacent.
 */
#ifndef ANVIL_DRAM_ADDRESS_MAP_HH
#define ANVIL_DRAM_ADDRESS_MAP_HH

#include <cassert>
#include <cstdint>

#include "dram/config.hh"

namespace anvil::dram {

/** Decoded DRAM coordinates of one physical address. */
struct DramCoord {
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t column = 0;  ///< byte offset within the row

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank &&
               row == o.row && column == o.column;
    }
};

/**
 * Bit-slicing address decoder (and encoder, for tests and attacks).
 *
 * The per-field shift/mask pairs are precomputed at construction so
 * decode()/encode() on the per-access hot path are pure shift-and-mask
 * with no accumulation chain.
 */
class AddressMap
{
  public:
    explicit AddressMap(const DramConfig &config);

    /** Decodes @p pa into DRAM coordinates. @pre pa < capacity. */
    DramCoord
    decode(Addr pa) const
    {
        assert(pa < capacity_ && "physical address outside module");
        DramCoord coord;
        coord.column =
            static_cast<std::uint32_t>(pa & column_.mask);
        coord.bank =
            static_cast<std::uint32_t>((pa >> bank_.shift) & bank_.mask);
        coord.rank =
            static_cast<std::uint32_t>((pa >> rank_.shift) & rank_.mask);
        coord.channel = static_cast<std::uint32_t>((pa >> channel_.shift) &
                                                   channel_.mask);
        coord.row =
            static_cast<std::uint32_t>((pa >> row_.shift) & row_.mask);
        return coord;
    }

    /** Encodes coordinates back into a physical address. */
    Addr
    encode(const DramCoord &coord) const
    {
        return static_cast<Addr>(coord.column) |
               (static_cast<Addr>(coord.bank) << bank_.shift) |
               (static_cast<Addr>(coord.rank) << rank_.shift) |
               (static_cast<Addr>(coord.channel) << channel_.shift) |
               (static_cast<Addr>(coord.row) << row_.shift);
    }

    /**
     * Globally unique (flattened) bank index in
     * [0, config.total_banks()). Geometry fields are powers of two, so
     * this is shift/or rather than multiply/add.
     */
    std::uint32_t
    flat_bank(const DramCoord &coord) const
    {
        return (((coord.channel << rank_bits_) | coord.rank)
                << bank_bits_) |
               coord.bank;
    }

    /** Distance, in bytes of physical address, between rows of a bank. */
    Addr row_stride() const { return row_stride_; }

    /** Total mapped capacity in bytes. */
    Addr capacity() const { return capacity_; }

  private:
    /** One decoded field: value = (pa >> shift) & mask. */
    struct Field {
        std::uint32_t shift = 0;
        std::uint64_t mask = 0;
    };

    std::uint32_t bank_bits_;
    std::uint32_t rank_bits_;
    Field column_;
    Field bank_;
    Field rank_;
    Field channel_;
    Field row_;
    Addr row_stride_;
    Addr capacity_;
};

}  // namespace anvil::dram

#endif  // ANVIL_DRAM_ADDRESS_MAP_HH
