/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping.
 *
 * ANVIL's kernel module is "pre-configured using a reverse engineered
 * physical address to DRAM row and bank mapping scheme" (Section 3.3); this
 * class is that scheme for the simulated module. The layout places the
 * column bits lowest, then bank / rank / channel, then row bits highest, so
 * consecutive physical rows of a bank are `row_stride()` bytes apart —
 * matching the paper's assumption that sequentially numbered rows are
 * physically adjacent.
 */
#ifndef ANVIL_DRAM_ADDRESS_MAP_HH
#define ANVIL_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "dram/config.hh"

namespace anvil::dram {

/** Decoded DRAM coordinates of one physical address. */
struct DramCoord {
    std::uint32_t channel = 0;
    std::uint32_t rank = 0;
    std::uint32_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t column = 0;  ///< byte offset within the row

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank &&
               row == o.row && column == o.column;
    }
};

/** Bit-slicing address decoder (and encoder, for tests and attacks). */
class AddressMap
{
  public:
    explicit AddressMap(const DramConfig &config);

    /** Decodes @p pa into DRAM coordinates. @pre pa < capacity. */
    DramCoord decode(Addr pa) const;

    /** Encodes coordinates back into a physical address. */
    Addr encode(const DramCoord &coord) const;

    /**
     * Globally unique (flattened) bank index in
     * [0, config.total_banks()).
     */
    std::uint32_t flat_bank(const DramCoord &coord) const;

    /** Distance, in bytes of physical address, between rows of a bank. */
    Addr row_stride() const { return row_stride_; }

    /** Total mapped capacity in bytes. */
    Addr capacity() const { return capacity_; }

  private:
    static std::uint32_t log2_exact(std::uint64_t v);

    std::uint32_t column_bits_;
    std::uint32_t bank_bits_;
    std::uint32_t rank_bits_;
    std::uint32_t channel_bits_;
    std::uint32_t row_bits_;
    std::uint32_t banks_per_rank_;
    std::uint32_t ranks_per_channel_;
    Addr row_stride_;
    Addr capacity_;
};

}  // namespace anvil::dram

#endif  // ANVIL_DRAM_ADDRESS_MAP_HH
