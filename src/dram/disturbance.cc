#include "dram/disturbance.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"

namespace anvil::dram {

RefreshSchedule::RefreshSchedule(const DramConfig &config)
    : period_(config.refresh_period),
      t_refi_(config.t_refi()),
      rows_per_ref_(config.rows_per_ref())
{
}

Tick
RefreshSchedule::phase(std::uint32_t row) const
{
    return static_cast<Tick>(row / rows_per_ref_) * t_refi_;
}

Tick
RefreshSchedule::last_refresh(std::uint32_t row, Tick now) const
{
    const Tick p = phase(row);
    if (now < p)
        return 0;  // not yet swept this period; fully charged from t = 0
    return p + ((now - p) / period_) * period_;
}

Tick
RefreshSchedule::next_refresh(std::uint32_t row, Tick now) const
{
    const Tick p = phase(row);
    if (now < p)
        return p;
    return last_refresh(row, now) + period_;
}

DisturbanceModel::DisturbanceModel(const DramConfig &config,
                                   std::uint32_t flat_bank,
                                   const RefreshSchedule &schedule,
                                   std::vector<FlipEvent> &flip_log)
    : config_(config),
      flat_bank_(flat_bank),
      schedule_(schedule),
      flip_log_(flip_log)
{
}

std::uint64_t
DisturbanceModel::threshold_of(std::uint32_t row) const
{
    // Deterministic per-row sensitivity in ten discrete grades; one row in
    // ten sits at the minimum threshold (the "most sensitive" victims).
    const double u = hash_unit_double(
        config_.variation_seed ^ (static_cast<std::uint64_t>(flat_bank_)
                                  << 32),
        row);
    const double grade = std::floor(u * 10.0) / 10.0;
    const double factor = 1.0 + config_.variation_spread * grade;
    return static_cast<std::uint64_t>(
        static_cast<double>(config_.flip_threshold) * factor);
}

void
DisturbanceModel::sync_window(std::uint32_t row, RowState &state,
                              Tick now) const
{
    const Tick refreshed = schedule_.last_refresh(row, now);
    if (refreshed > state.window_start) {
        state = RowState();
        state.window_start = refreshed;
    }
}

double
DisturbanceModel::disturbance(const RowState &state) const
{
    const auto l = static_cast<double>(state.left);
    const auto r = static_cast<double>(state.right);
    return l + r +
           config_.double_sided_alpha * std::min(l, r) +
           state.second_neighbor;
}

void
DisturbanceModel::disturb(std::uint32_t victim, std::uint32_t aggressor,
                          Tick now)
{
    RowState &state = rows_[victim];
    sync_window(victim, state, now);

    const auto dist = static_cast<std::int64_t>(aggressor) -
                      static_cast<std::int64_t>(victim);
    if (dist == -1) {
        ++state.left;
    } else if (dist == 1) {
        ++state.right;
    } else {
        state.second_neighbor += config_.second_neighbor_weight;
    }

    if (!state.flipped && disturbance(state) >=
                              static_cast<double>(threshold_of(victim))) {
        state.flipped = true;
        flip_log_.push_back(FlipEvent{now, flat_bank_, victim,
                                      disturbance(state),
                                      threshold_of(victim)});
    }
}

void
DisturbanceModel::on_activate(std::uint32_t row, Tick now)
{
    // An activation restores the accessed row's own charge.
    RowState &self = rows_[row];
    self = RowState();
    self.window_start = now;

    const auto last_row = config_.rows_per_bank - 1;
    if (row > 0)
        disturb(row - 1, row, now);
    if (row < last_row)
        disturb(row + 1, row, now);
    if (config_.second_neighbor_weight > 0.0) {
        if (row > 1)
            disturb(row - 2, row, now);
        if (row < last_row - 1)
            disturb(row + 2, row, now);
    }
}

double
DisturbanceModel::disturbance_of(std::uint32_t row, Tick now) const
{
    auto it = rows_.find(row);
    if (it == rows_.end())
        return 0.0;
    RowState state = it->second;  // copy; sync without mutating
    sync_window(row, state, now);
    return disturbance(state);
}

std::pair<std::uint64_t, std::uint64_t>
DisturbanceModel::neighbor_activations(std::uint32_t row, Tick now) const
{
    auto it = rows_.find(row);
    if (it == rows_.end())
        return {0, 0};
    RowState state = it->second;
    sync_window(row, state, now);
    return {state.left, state.right};
}

}  // namespace anvil::dram
