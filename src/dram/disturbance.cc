#include "dram/disturbance.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"

namespace anvil::dram {

RefreshSchedule::RefreshSchedule(const DramConfig &config)
    : period_(config.refresh_period),
      t_refi_(config.t_refi()),
      rows_per_ref_(config.rows_per_ref())
{
}

Tick
RefreshSchedule::phase(std::uint32_t row) const
{
    return static_cast<Tick>(row / rows_per_ref_) * t_refi_;
}

Tick
RefreshSchedule::last_refresh(std::uint32_t row, Tick now) const
{
    const Tick p = phase(row);
    if (now < p)
        return 0;  // not yet swept this period; fully charged from t = 0
    return p + ((now - p) / period_) * period_;
}

Tick
RefreshSchedule::next_refresh(std::uint32_t row, Tick now) const
{
    const Tick p = phase(row);
    if (now < p)
        return p;
    return last_refresh(row, now) + period_;
}

DisturbanceModel::DisturbanceModel(const DramConfig &config,
                                   std::uint32_t flat_bank,
                                   const RefreshSchedule &schedule,
                                   std::vector<FlipEvent> &flip_log)
    : config_(config),
      flat_bank_(flat_bank),
      schedule_(schedule),
      flip_log_(flip_log)
{
}

std::uint64_t
DisturbanceModel::threshold_of(std::uint32_t row) const
{
    // Deterministic per-row sensitivity in ten discrete grades; one row in
    // ten sits at the minimum threshold (the "most sensitive" victims).
    const double u = hash_unit_double(
        config_.variation_seed ^ (static_cast<std::uint64_t>(flat_bank_)
                                  << 32),
        row);
    const double grade = std::floor(u * 10.0) / 10.0;
    const double factor = 1.0 + config_.variation_spread * grade;
    return static_cast<std::uint64_t>(
        static_cast<double>(config_.flip_threshold) * factor);
}

void
DisturbanceModel::sync_window(std::uint32_t row, RowState &state,
                              Tick now) const
{
    // last_refresh(now) > window_start exactly when now has reached the
    // first refresh after window_start, so caching that deadline reduces
    // the steady-state check to one comparison.
    if (state.refresh_due == 0)
        state.refresh_due = schedule_.next_refresh(row, state.window_start);
    if (now < state.refresh_due)
        return;
    const Tick refreshed = schedule_.last_refresh(row, now);
    const std::uint64_t threshold = state.threshold;
    const std::uint64_t flip_floor = state.flip_floor;
    state = RowState();
    state.window_start = refreshed;
    state.threshold = threshold;
    state.flip_floor = flip_floor;
}

double
DisturbanceModel::disturbance(const RowState &state) const
{
    const auto l = static_cast<double>(state.left);
    const auto r = static_cast<double>(state.right);
    return l + r +
           config_.double_sided_alpha * std::min(l, r) +
           state.second_neighbor;
}

DisturbanceModel::RowState &
DisturbanceModel::row_state(std::uint32_t row)
{
    Memo &m = memo_[row & (kMemoSize - 1)];
    if (m.state != nullptr && m.row == row)
        return *m.state;
    RowState &state = rows_[row];
    m.row = row;
    m.state = &state;
    return state;
}

void
DisturbanceModel::disturb(std::uint32_t victim, std::uint32_t aggressor,
                          Tick now)
{
    RowState &state = row_state(victim);
    sync_window(victim, state, now);

    const auto dist = static_cast<std::int64_t>(aggressor) -
                      static_cast<std::int64_t>(victim);
    if (dist == -1) {
        ++state.left;
    } else if (dist == 1) {
        ++state.right;
    } else {
        state.second_neighbor += config_.second_neighbor_weight;
    }

    if (state.flipped)
        return;
    if (state.threshold == 0) {
        state.threshold = threshold_of(victim);
        // D = L + R + alpha * min(L, R) + w2-term
        //   <= (L + R) * (1 + alpha / 2) when the w2 term is zero,
        // so no flip is possible while L + R stays below this floor
        // (floor-rounded, hence conservative).
        state.flip_floor = static_cast<std::uint64_t>(
            static_cast<double>(state.threshold) /
            (1.0 + config_.double_sided_alpha * 0.5));
    }
    if (state.second_neighbor == 0.0 &&
        state.left + state.right < state.flip_floor)
        return;
    if (disturbance(state) >= static_cast<double>(state.threshold)) {
        state.flipped = true;
        flip_log_.push_back(FlipEvent{now, flat_bank_, victim,
                                      disturbance(state), state.threshold});
    }
}

void
DisturbanceModel::on_activate(std::uint32_t row, Tick now)
{
    // An activation restores the accessed row's own charge. The cached
    // threshold survives (it is a property of the row, not the window);
    // refresh_due is left 0 for lazy recomputation if the row is ever
    // disturbed.
    RowState &self = row_state(row);
    const std::uint64_t threshold = self.threshold;
    self = RowState();
    self.window_start = now;
    self.threshold = threshold;

    const auto last_row = config_.rows_per_bank - 1;
    if (row > 0)
        disturb(row - 1, row, now);
    if (row < last_row)
        disturb(row + 1, row, now);
    if (config_.second_neighbor_weight > 0.0) {
        if (row > 1)
            disturb(row - 2, row, now);
        if (row < last_row - 1)
            disturb(row + 2, row, now);
    }
}

double
DisturbanceModel::disturbance_of(std::uint32_t row, Tick now) const
{
    auto it = rows_.find(row);
    if (it == rows_.end())
        return 0.0;
    RowState state = it->second;  // copy; sync without mutating
    sync_window(row, state, now);
    return disturbance(state);
}

std::pair<std::uint64_t, std::uint64_t>
DisturbanceModel::neighbor_activations(std::uint32_t row, Tick now) const
{
    auto it = rows_.find(row);
    if (it == rows_.end())
        return {0, 0};
    RowState state = it->second;
    sync_window(row, state, now);
    return {state.left, state.right};
}

}  // namespace anvil::dram
