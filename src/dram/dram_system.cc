#include "dram/dram_system.hh"

#include <cassert>

namespace anvil::dram {

Bank::Bank(const DramConfig &config, std::uint32_t flat_bank,
           const RefreshSchedule &schedule, std::vector<FlipEvent> &flip_log)
    : config_(config),
      disturbance_(config, flat_bank, schedule, flip_log),
      t_refi_(config.t_refi()),
      window_end_(t_refi_)
{
}

bool
Bank::access(std::uint32_t row, Tick now)
{
    // A REF command precharges all banks; if one was issued since our last
    // access, the row buffer no longer holds our row. The bank tracks the
    // bounds of the tREFI window containing its last access and only
    // recomputes them on a window crossing — the common case (same window,
    // or the immediately following one) costs no divide.
    if (now >= window_end_ || now + t_refi_ < window_end_) {
        open_row_.reset();
        if (now < window_end_ + t_refi_ && now >= window_end_)
            window_end_ += t_refi_;  // adjacent window: roll forward
        else
            window_end_ = (now / t_refi_ + 1) * t_refi_;  // far jump
    }

    if (open_row_ && *open_row_ == row)
        return true;

    open_row_ = row;
    ++activations_;
    disturbance_.on_activate(row, now);
    return false;
}

DramSystem::DramSystem(const DramConfig &config)
    : config_(config),
      map_(config),
      schedule_(config),
      t_refi_(config.t_refi())
{
    banks_.reserve(config_.total_banks());
    for (std::uint32_t b = 0; b < config_.total_banks(); ++b)
        banks_.emplace_back(config_, b, schedule_, flips_);
}

Tick
DramSystem::refresh_stall(Tick now)
{
    // Roll the cached tREFI window forward to the one containing `now`;
    // accesses arrive in (nearly) monotonic time order, so the window
    // start almost never needs the divide.
    if (now >= stall_window_start_ + t_refi_) {
        if (now < stall_window_start_ + 2 * t_refi_)
            stall_window_start_ += t_refi_;
        else
            stall_window_start_ = now - now % t_refi_;
    } else if (now < stall_window_start_) {
        stall_window_start_ = now - now % t_refi_;
    }
    const Tick window_end = stall_window_start_ + config_.t_rfc;
    return now < window_end ? window_end - now : 0;
}

DramSystem::AccessResult
DramSystem::access(Addr pa, Tick now)
{
    const DramCoord coord = map_.decode(pa);
    const std::uint32_t fb = map_.flat_bank(coord);
    assert(fb < banks_.size());

    const Tick stall = refresh_stall(now);
    const Tick start = now + stall;

    const bool hit = banks_[fb].access(coord.row, start);

    ++stats_.accesses;
    stats_.refresh_stall += stall;
    if (hit) {
        ++stats_.row_hits;
    } else {
        ++stats_.row_misses;
        for (const auto &hook : activation_hooks_)
            hook(fb, coord.row, start);
    }

    return AccessResult{stall + (hit ? config_.t_row_hit
                                     : config_.t_row_miss),
                        hit};
}

Addr
DramSystem::row_to_addr(std::uint32_t flat_bank, std::uint32_t row) const
{
    DramCoord coord;
    const std::uint32_t banks = config_.banks_per_rank;
    const std::uint32_t ranks = config_.ranks_per_channel;
    coord.bank = flat_bank % banks;
    coord.rank = (flat_bank / banks) % ranks;
    coord.channel = flat_bank / (banks * ranks);
    coord.row = row;
    coord.column = 0;
    return map_.encode(coord);
}

Tick
DramSystem::refresh_row(Addr pa, Tick now)
{
    ++stats_.selective_refreshes;
    // The refreshing read goes through the normal access path: it opens the
    // row (restoring its charge) and — honestly — also disturbs the row's
    // own neighbours. The protection is sound because ANVIL's selective
    // read rate is orders of magnitude below the hammering threshold
    // (Section 3.3).
    return access(pa, now).latency;
}

Tick
DramSystem::refresh_row(std::uint32_t flat_bank, std::uint32_t row, Tick now)
{
    return refresh_row(row_to_addr(flat_bank, row), now);
}

}  // namespace anvil::dram
