#include "dram/dram_system.hh"

#include <cassert>

namespace anvil::dram {

Bank::Bank(const DramConfig &config, std::uint32_t flat_bank,
           const RefreshSchedule &schedule, std::vector<FlipEvent> &flip_log)
    : config_(config),
      disturbance_(config, flat_bank, schedule, flip_log)
{
}

bool
Bank::access(std::uint32_t row, Tick now)
{
    // A REF command precharges all banks; if one was issued since our last
    // access, the row buffer no longer holds our row.
    const Tick t_refi = config_.t_refi();
    if (open_row_ && now / t_refi != last_access_ / t_refi)
        open_row_.reset();
    last_access_ = now;

    if (open_row_ && *open_row_ == row)
        return true;

    open_row_ = row;
    ++activations_;
    disturbance_.on_activate(row, now);
    return false;
}

DramSystem::DramSystem(const DramConfig &config)
    : config_(config), map_(config), schedule_(config)
{
    banks_.reserve(config_.total_banks());
    for (std::uint32_t b = 0; b < config_.total_banks(); ++b)
        banks_.emplace_back(config_, b, schedule_, flips_);
}

Tick
DramSystem::refresh_stall(Tick now) const
{
    const Tick t_refi = config_.t_refi();
    const Tick window_start = (now / t_refi) * t_refi;
    const Tick window_end = window_start + config_.t_rfc;
    return now < window_end ? window_end - now : 0;
}

DramSystem::AccessResult
DramSystem::access(Addr pa, Tick now)
{
    const DramCoord coord = map_.decode(pa);
    const std::uint32_t fb = map_.flat_bank(coord);
    assert(fb < banks_.size());

    const Tick stall = refresh_stall(now);
    const Tick start = now + stall;

    const bool hit = banks_[fb].access(coord.row, start);

    ++stats_.accesses;
    stats_.refresh_stall += stall;
    if (hit) {
        ++stats_.row_hits;
    } else {
        ++stats_.row_misses;
        for (const auto &hook : activation_hooks_)
            hook(fb, coord.row, start);
    }

    return AccessResult{stall + (hit ? config_.t_row_hit
                                     : config_.t_row_miss),
                        hit};
}

Addr
DramSystem::row_to_addr(std::uint32_t flat_bank, std::uint32_t row) const
{
    DramCoord coord;
    const std::uint32_t banks = config_.banks_per_rank;
    const std::uint32_t ranks = config_.ranks_per_channel;
    coord.bank = flat_bank % banks;
    coord.rank = (flat_bank / banks) % ranks;
    coord.channel = flat_bank / (banks * ranks);
    coord.row = row;
    coord.column = 0;
    return map_.encode(coord);
}

Tick
DramSystem::refresh_row(Addr pa, Tick now)
{
    ++stats_.selective_refreshes;
    // The refreshing read goes through the normal access path: it opens the
    // row (restoring its charge) and — honestly — also disturbs the row's
    // own neighbours. The protection is sound because ANVIL's selective
    // read rate is orders of magnitude below the hammering threshold
    // (Section 3.3).
    return access(pa, now).latency;
}

Tick
DramSystem::refresh_row(std::uint32_t flat_bank, std::uint32_t row, Tick now)
{
    return refresh_row(row_to_addr(flat_bank, row), now);
}

}  // namespace anvil::dram
