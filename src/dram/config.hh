/**
 * @file
 * DRAM device configuration: geometry, timing, refresh, and the
 * rowhammer disturbance model parameters.
 *
 * Defaults model the evaluation platform of the ANVIL paper: a 4 GB DDR3
 * module (2 ranks x 8 banks x 32768 rows x 8 KB rows) behind an Intel
 * i5-2540M (Sandy Bridge) at 2.6 GHz, with the paper's measured flip
 * thresholds (Table 1): 220 K total row accesses for double-sided
 * hammering, 400 K for single-sided.
 */
#ifndef ANVIL_DRAM_CONFIG_HH
#define ANVIL_DRAM_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace anvil::dram {

/** Full configuration of the simulated DRAM subsystem. */
struct DramConfig {
    // -- Geometry ---------------------------------------------------------
    std::uint32_t channels = 1;
    std::uint32_t ranks_per_channel = 2;
    std::uint32_t banks_per_rank = 8;
    std::uint32_t rows_per_bank = 32768;
    std::uint32_t row_bytes = 8192;  ///< row (page) size, bytes

    // -- Timing (ticks = picoseconds) --------------------------------------
    /// Access that hits the open row in the row buffer (CAS only).
    Tick t_row_hit = ns(16.2);  // ~42 cycles @ 2.6 GHz
    /// Access that must (pre)activate the row. The paper's cost model uses
    /// "a DRAM access latency of 150 cycles" (Section 2.2).
    Tick t_row_miss = ns(57.7);  // 150 cycles @ 2.6 GHz

    // -- Refresh ------------------------------------------------------------
    /// Every row is refreshed once per refresh_period (64 ms for DDR3;
    /// vendors' rowhammer BIOS updates halve this to 32 ms).
    Tick refresh_period = ms(64);
    /// Number of REF commands per refresh period (DDR3: one per 7.8 us).
    std::uint32_t refresh_slots = 8192;
    /// Duration the device is busy servicing one REF command.
    Tick t_rfc = ns(260);

    // -- Disturbance (rowhammer) model --------------------------------------
    /// Minimum disturbance (weakest cells) that flips a bit within one
    /// refresh window. Calibrated so single-sided hammering needs 400 K
    /// activations of the one adjacent row (Table 1).
    std::uint64_t flip_threshold = 400000;
    /// Super-linear coupling when both neighbours hammer: disturbance is
    /// L + R + alpha * min(L, R). alpha is calibrated so double-sided
    /// hammering flips at 110 K activations per aggressor (220 K total):
    /// 110K * (2 + alpha) = 400K  =>  alpha = 400/110 - 2.
    double double_sided_alpha = 400.0 / 110.0 - 2.0;
    /// Relative disturbance contributed to rows at distance 2 (rows at
    /// distance 1 contribute 1.0). Real modules show a small second-
    /// neighbour effect; default keeps the model first-order.
    double second_neighbor_weight = 0.0;
    /// Per-row threshold variation: threshold(row) =
    /// flip_threshold * (1 + variation_spread * u(row)) with u deterministic
    /// in {0, 0.1, ..., 0.9}. One row in ten is maximally sensitive, which
    /// models the paper's "victim rows most sensitive to hammering".
    double variation_spread = 2.0;
    /// Seed mixed into the per-row threshold hash.
    std::uint64_t variation_seed = 0x5eedULL;

    // -- Derived helpers ----------------------------------------------------
    std::uint32_t
    total_banks() const
    {
        return channels * ranks_per_channel * banks_per_rank;
    }

    std::uint64_t
    capacity_bytes() const
    {
        return static_cast<std::uint64_t>(total_banks()) * rows_per_bank *
               row_bytes;
    }

    /** Interval between REF commands (tREFI). */
    Tick
    t_refi() const
    {
        return refresh_period / refresh_slots;
    }

    /** Rows refreshed in each bank by one REF command. */
    std::uint32_t
    rows_per_ref() const
    {
        return (rows_per_bank + refresh_slots - 1) / refresh_slots;
    }
};

}  // namespace anvil::dram

#endif  // ANVIL_DRAM_CONFIG_HH
